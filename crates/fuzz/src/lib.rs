//! # tp-fuzz
//!
//! Adversarial control-flow fuzzer for the trace processor: a seeded,
//! deterministic generator of *structured* random programs (nested
//! hammocks, counted loops with data-dependent trip counts and second
//! exits, indirect jump tables, call/return ladders, stores feeding later
//! branches), a differential harness that runs every generated program
//! through all five control-independence models against the functional
//! oracle, and a structural shrinker that reduces a failing program to a
//! minimal reproducer.
//!
//! Every program is emitted through *both* frontends — the internal ISA
//! and RV64 via the `tp-rv` assembler/encoder/decoder — so a fuzz run
//! doubles as an encoder/decoder round trip. Termination is guaranteed by
//! construction (see [`ast`]), so any non-halting pipeline run is a
//! finding, not a generator artifact.
//!
//! # Example
//!
//! ```
//! use tp_fuzz::gen::{generate, FuzzConfig};
//! use tp_fuzz::harness::Harness;
//!
//! let harness = Harness::default();
//! let outcome = harness.check_seed(&FuzzConfig::small(), 42);
//! assert!(!outcome.is_divergence(), "{outcome:?}");
//! ```

pub mod ast;
pub mod emit;
pub mod gen;
pub mod harness;
pub mod shrink;

pub use ast::FuzzAst;
pub use emit::{
    emit_rv, emit_rv_source, emit_rv_with_truth, emit_synth, emit_synth_with_truth, ReconvTruth,
    TABLE_BASE,
};
pub use gen::{generate, FuzzConfig};
pub use harness::{Divergence, Harness, Isa, Outcome, MODELS};
pub use shrink::{shrink, ShrinkStats};
