//! Greedy structural shrinker for failing [`FuzzAst`] programs.
//!
//! Given an AST and a predicate "does this program still fail?", the
//! shrinker repeatedly tries one-step simplifications — delete a
//! statement, splice a region's body in place of the region, collapse a
//! switch to a single arm, force a trip count to one, drop a loop's early
//! exit, empty a whole function — and keeps any candidate that still
//! fails while being strictly simpler. It runs to a fixpoint or until the
//! evaluation budget is exhausted.
//!
//! Shrinking does not preserve semantics (it freely changes what the
//! program computes); it preserves only the predicate, which is exactly
//! what a minimal reproducer needs.

use crate::ast::{Func, FuzzAst, Stmt, Trip};

/// Statistics from a shrink run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShrinkStats {
    /// Number of predicate evaluations performed.
    pub evals: usize,
    /// Number of accepted simplification steps.
    pub steps: usize,
}

/// Shrinks `ast` while `still_fails` holds, evaluating the predicate at
/// most `max_evals` times. Returns the smallest failing AST found and the
/// run statistics. The input is assumed to fail (it is returned unchanged
/// if nothing simpler still fails).
pub fn shrink(
    ast: &FuzzAst,
    mut still_fails: impl FnMut(&FuzzAst) -> bool,
    max_evals: usize,
) -> (FuzzAst, ShrinkStats) {
    let mut best = ast.clone();
    let mut stats = ShrinkStats::default();
    'outer: loop {
        let mut cands = candidates(&best);
        // Smallest candidates first: the biggest cuts (emptying a whole
        // function, splicing out a nest) are tried before local tweaks.
        cands.sort_by_key(complexity);
        let bar = complexity(&best);
        for c in cands {
            if complexity(&c) >= bar {
                continue;
            }
            if stats.evals >= max_evals {
                break 'outer;
            }
            stats.evals += 1;
            if still_fails(&c) {
                best = c;
                stats.steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (best, stats)
}

/// Strictly decreasing shrink metric: statement count dominates, feature
/// richness (data-dependent trips, breaks, switch arms, indirect calls,
/// large constants) breaks ties so "same size but simpler" steps make
/// progress.
fn complexity(ast: &FuzzAst) -> usize {
    let mut features = 0usize;
    visit(ast, &mut |s| {
        features += match s {
            Stmt::Loop { trip, brk, .. } => {
                let t = match trip {
                    Trip::Const(n) => *n as usize,
                    Trip::Data { mask, .. } => 8 + *mask as usize,
                };
                t + if brk.is_some() { 4 } else { 0 }
            }
            Stmt::Switch { arms, .. } => 2 * arms.len(),
            Stmt::CallIndirect { .. } => 2,
            _ => 0,
        };
    });
    // Non-zero initial state counts too, so zeroing data/registers is an
    // accepted step even though it removes no statements.
    features += ast.data.iter().filter(|&&v| v != 0).count();
    features += ast.scratch_init.iter().filter(|&&v| v != 0).count();
    ast.size() * 4096 + features
}

fn visit(ast: &FuzzAst, f: &mut impl FnMut(&Stmt)) {
    fn walk(list: &[Stmt], f: &mut impl FnMut(&Stmt)) {
        for s in list {
            f(s);
            match s {
                Stmt::Hammock { then_b, else_b, .. } => {
                    walk(then_b, f);
                    walk(else_b, f);
                }
                Stmt::Loop { body, .. } => walk(body, f),
                Stmt::Switch { arms, .. } => arms.iter().for_each(|a| walk(a, f)),
                _ => {}
            }
        }
    }
    for func in &ast.funcs {
        walk(&func.body, f);
    }
}

/// All one-step simplifications of `ast`.
fn candidates(ast: &FuzzAst) -> Vec<FuzzAst> {
    let mut out = Vec::new();
    // Empty a whole function body (functions cannot be removed outright —
    // call sites address them by index).
    for (i, f) in ast.funcs.iter().enumerate() {
        if !f.body.is_empty() {
            let mut a = ast.clone();
            a.funcs[i] = Func { body: Vec::new() };
            out.push(a);
        }
    }
    // Structural edits inside each function.
    for (i, f) in ast.funcs.iter().enumerate() {
        for body in list_variants(&f.body) {
            let mut a = ast.clone();
            a.funcs[i] = Func { body };
            out.push(a);
        }
    }
    // Data simplification: zero the whole region, or one word at a time.
    if ast.data.iter().any(|&v| v != 0) {
        let mut a = ast.clone();
        a.data.iter_mut().for_each(|v| *v = 0);
        out.push(a);
    }
    if ast.scratch_init.iter().any(|&v| v != 0) {
        let mut a = ast.clone();
        a.scratch_init.iter_mut().for_each(|v| *v = 0);
        out.push(a);
    }
    out
}

/// One-step variants of a statement list: delete one statement, or apply
/// one [`stmt_variants`] edit to one statement.
fn list_variants(list: &[Stmt]) -> Vec<Vec<Stmt>> {
    let mut out = Vec::new();
    for i in 0..list.len() {
        let mut v = list.to_vec();
        v.remove(i);
        out.push(v);
    }
    for (i, s) in list.iter().enumerate() {
        for change in stmt_variants(s) {
            let mut v = list.to_vec();
            match change {
                Change::Replace(s) => v[i] = s,
                Change::Splice(ss) => {
                    v.splice(i..=i, ss);
                }
            }
            out.push(v);
        }
    }
    out
}

enum Change {
    /// Replace the statement with a simplified form.
    Replace(Stmt),
    /// Replace the statement with (a subset of) its children, hoisted.
    Splice(Vec<Stmt>),
}

fn stmt_variants(s: &Stmt) -> Vec<Change> {
    let mut out = Vec::new();
    match s {
        Stmt::Ops(ops) => {
            // Halve the block (deletion of the whole block is covered by
            // the list-level remove).
            if ops.len() > 1 {
                out.push(Change::Replace(Stmt::Ops(ops[..ops.len() / 2].to_vec())));
            }
        }
        Stmt::Hammock { cond, then_b, else_b } => {
            out.push(Change::Splice(then_b.clone()));
            if !else_b.is_empty() {
                out.push(Change::Splice(else_b.clone()));
                // Make the hammock one-sided before dissolving it.
                out.push(Change::Replace(Stmt::Hammock {
                    cond: *cond,
                    then_b: then_b.clone(),
                    else_b: Vec::new(),
                }));
            }
            for b in list_variants(then_b) {
                out.push(Change::Replace(Stmt::Hammock {
                    cond: *cond,
                    then_b: b,
                    else_b: else_b.clone(),
                }));
            }
            for b in list_variants(else_b) {
                out.push(Change::Replace(Stmt::Hammock {
                    cond: *cond,
                    then_b: then_b.clone(),
                    else_b: b,
                }));
            }
        }
        Stmt::Loop { trip, body, brk } => {
            out.push(Change::Splice(body.clone()));
            if !matches!(trip, Trip::Const(1)) {
                out.push(Change::Replace(Stmt::Loop {
                    trip: Trip::Const(1),
                    body: body.clone(),
                    brk: *brk,
                }));
            }
            if brk.is_some() {
                out.push(Change::Replace(Stmt::Loop {
                    trip: *trip,
                    body: body.clone(),
                    brk: None,
                }));
            }
            for b in list_variants(body) {
                // Keep the break position in range as the body shrinks.
                let brk = brk.map(|(c, pos)| (c, pos.min(b.len())));
                out.push(Change::Replace(Stmt::Loop { trip: *trip, body: b, brk }));
            }
        }
        Stmt::Switch { word, mask, arms } => {
            for arm in arms {
                out.push(Change::Splice(arm.clone()));
            }
            for (k, arm) in arms.iter().enumerate() {
                for b in list_variants(arm) {
                    let mut arms = arms.clone();
                    arms[k] = b;
                    out.push(Change::Replace(Stmt::Switch { word: *word, mask: *mask, arms }));
                }
            }
        }
        Stmt::Call { .. } => {}
        Stmt::CallIndirect { callee } => {
            out.push(Change::Replace(Stmt::Call { callee: *callee }));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, FuzzConfig};

    /// With an always-true predicate the shrinker drives any program to
    /// the empty AST (every function emptied, data zeroed).
    #[test]
    fn shrinks_to_nothing_under_trivial_predicate() {
        let ast = generate(&FuzzConfig::default(), 11);
        let (small, stats) = shrink(&ast, |_| true, 100_000);
        assert_eq!(small.size(), 0, "left: {small:?}");
        assert!(small.data.iter().all(|&v| v == 0));
        assert!(stats.steps > 0);
    }

    /// A predicate pinned to a deep structural property (an indirect call
    /// somewhere) keeps that property while discarding everything else.
    #[test]
    fn preserves_predicate_while_shrinking() {
        let cfg = FuzzConfig::default();
        let has_icall = |a: &FuzzAst| {
            let mut found = false;
            visit(a, &mut |s| found |= matches!(s, Stmt::CallIndirect { .. }));
            found
        };
        let ast = (0..64)
            .map(|seed| generate(&cfg, seed))
            .find(|a| has_icall(a))
            .expect("some seed has an indirect call");
        let before = ast.size();
        let (small, _) = shrink(&ast, has_icall, 100_000);
        assert!(has_icall(&small));
        assert!(small.size() < before);
        // A single indirect call (plus the emptied scaffolding) remains.
        assert!(small.size() <= 2, "size {} — {small:?}", small.size());
    }
}
