//! Differential harness: generated program vs. the functional oracle,
//! across every control-independence model and both frontends.
//!
//! For each emission ([`Isa::Synth`], [`Isa::Rv`]) the harness first runs
//! the functional [`Machine`] to get the reference architectural state and
//! retired-instruction count, then runs all five pipeline models with
//! per-retire oracle verification enabled
//! ([`TraceProcessorConfig::with_oracle`]: PC stream, committed store
//! address *and* value, per-trace registers). A run diverges if it raises
//! [`SimError::OracleMismatch`], deadlocks, fails to halt within the
//! oracle's retired count (plus slack), or halts with different final
//! architectural state or retired count.

use std::fmt;

use tp_core::{CiModel, SimError, TraceProcessor, TraceProcessorConfig};
use tp_isa::func::Machine;
use tp_isa::Program;

use crate::ast::FuzzAst;
use crate::emit::{emit_rv, emit_synth};
use crate::gen::{generate, FuzzConfig};

/// All five paper models, base first.
pub const MODELS: [CiModel; 5] =
    [CiModel::None, CiModel::Ret, CiModel::MlbRet, CiModel::Fg, CiModel::FgMlbRet];

/// Which frontend a program was emitted through.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Isa {
    /// Internal synthetic ISA, assembled directly.
    Synth,
    /// RV64: assembled to 32-bit encodings, then decoded and lowered.
    Rv,
}

impl fmt::Display for Isa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Isa::Synth => "synth",
            Isa::Rv => "rv",
        })
    }
}

/// A single divergence between a pipeline model and the oracle.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// The frontend the failing program came through.
    pub isa: Isa,
    /// The diverging model (`None` when the failure precedes simulation,
    /// e.g. an RV assembly error or a functional-oracle fault).
    pub model: Option<CiModel>,
    /// Human-readable description of the failure.
    pub detail: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.model {
            Some(m) => write!(f, "[{} {:?}] {}", self.isa, m, self.detail),
            None => write!(f, "[{}] {}", self.isa, self.detail),
        }
    }
}

/// Outcome of checking one generated program.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// Every model on every frontend matched the oracle.
    Pass {
        /// Oracle retired-instruction count (synth emission).
        retired: u64,
    },
    /// The program exceeded the oracle budget; not counted as a failure.
    TooLong,
    /// First divergence found (checking stops at the first failure so the
    /// shrinker has a single well-defined predicate to preserve).
    Diverged(Divergence),
}

impl Outcome {
    /// Whether this outcome is a divergence.
    pub fn is_divergence(&self) -> bool {
        matches!(self, Outcome::Diverged(_))
    }
}

/// Differential-check configuration.
#[derive(Clone, Debug)]
pub struct Harness {
    /// Functional-oracle instruction budget; programs that exceed it are
    /// skipped ([`Outcome::TooLong`]), not failed.
    pub oracle_budget: u64,
    /// Extra retired instructions granted to the pipeline beyond the
    /// oracle's count before "did not halt" is declared.
    pub sim_slack: u64,
    /// Models to check (defaults to all five).
    pub models: Vec<CiModel>,
    /// Frontends to check (defaults to both).
    pub isas: Vec<Isa>,
    /// Use [`TraceProcessorConfig::small`] instead of the paper machine —
    /// four PEs and short traces keep the window saturated, stressing the
    /// window-full insertion/abandon paths far harder.
    pub small_machine: bool,
    /// Re-introduce the fixed CGCI retired-upstream stall bug
    /// (`TraceProcessorConfig::inject_cgci_stall_bug`) so the pipeline
    /// from divergence through shrinking can be tested against a machine
    /// that is *known* bad. Only the shrinker self-test sets this.
    pub inject_cgci_stall_bug: bool,
    /// Additionally run the static CFG re-convergence oracle
    /// ([`TraceProcessorConfig::with_cfg_oracle`]): every CGCI attempt's
    /// detected re-convergent PC must be statically classifiable, turning
    /// a heuristic that "merely" loses coverage silently into a loud
    /// divergence.
    pub cfg_oracle: bool,
}

impl Default for Harness {
    fn default() -> Harness {
        Harness {
            oracle_budget: 2_000_000,
            sim_slack: 64,
            models: MODELS.to_vec(),
            isas: vec![Isa::Synth, Isa::Rv],
            small_machine: false,
            inject_cgci_stall_bug: false,
            cfg_oracle: false,
        }
    }
}

impl Harness {
    /// Builds the pipeline configuration for `model`. Centralized so the
    /// fuzz binary, CI sweep, and shrinker all test the identical machine.
    pub fn config(&self, model: CiModel) -> TraceProcessorConfig {
        let mut cfg = if self.small_machine {
            TraceProcessorConfig::small(model)
        } else {
            TraceProcessorConfig::paper(model)
        };
        cfg.inject_cgci_stall_bug = self.inject_cgci_stall_bug;
        cfg.cfg_oracle = self.cfg_oracle;
        cfg.with_oracle()
    }

    /// Generates seed `seed` under `cfg` and differentially checks it.
    pub fn check_seed(&self, cfg: &FuzzConfig, seed: u64) -> Outcome {
        self.check_ast(&generate(cfg, seed), &format!("fuzz-{seed}"))
    }

    /// Emits `ast` through each configured frontend and differentially
    /// checks every configured model against the functional oracle.
    pub fn check_ast(&self, ast: &FuzzAst, name: &str) -> Outcome {
        let mut retired = 0;
        for &isa in &self.isas {
            let program = match isa {
                Isa::Synth => emit_synth(ast, name),
                Isa::Rv => match emit_rv(ast, name) {
                    Ok(p) => p,
                    Err(e) => {
                        return Outcome::Diverged(Divergence {
                            isa,
                            model: None,
                            detail: format!("rv emission failed: {e}"),
                        })
                    }
                },
            };
            match self.check_program(&program, isa) {
                Outcome::Pass { retired: r } => retired = retired.max(r),
                other => return other,
            }
        }
        Outcome::Pass { retired }
    }

    /// Differentially checks one already-emitted program.
    pub fn check_program(&self, program: &Program, isa: Isa) -> Outcome {
        let mut oracle = Machine::new(program);
        let summary = match oracle.run(self.oracle_budget) {
            Ok(s) => s,
            Err(e) => {
                // The generator guarantees committed control flow stays in
                // range; reaching here means the emitter or generator is
                // broken, which is a finding in its own right.
                return Outcome::Diverged(Divergence {
                    isa,
                    model: None,
                    detail: format!("functional oracle fault: {e}"),
                });
            }
        };
        if !summary.halted {
            return Outcome::TooLong;
        }
        let expect = oracle.arch_state();
        for &model in &self.models {
            let fail =
                |detail: String| Outcome::Diverged(Divergence { isa, model: Some(model), detail });
            // A simulator panic is a finding like any other; capture it so
            // one crashing seed does not end the whole campaign. (The
            // processor is freshly built per seed, so no broken state
            // escapes the unwind.)
            let run = std::panic::catch_unwind(|| {
                let mut sim = TraceProcessor::new(program, self.config(model));
                sim.run(summary.retired + self.sim_slack)
                    .map(|r| (r.halted, r.stats.retired_instrs, sim.arch_state()))
            });
            let (halted, retired_instrs, arch) = match run {
                Err(p) => {
                    let msg = p
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| p.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".into());
                    return fail(format!("simulator panicked: {msg}"));
                }
                Ok(Err(SimError::OracleMismatch { cycle, detail })) => {
                    return fail(format!("oracle mismatch at cycle {cycle}: {detail}"))
                }
                Ok(Err(SimError::Deadlock { cycle, .. })) => {
                    return fail(format!("deadlock at cycle {cycle}"))
                }
                Ok(Ok(t)) => t,
            };
            if !halted {
                return fail(format!(
                    "did not halt within {} retired instructions (oracle: {})",
                    summary.retired + self.sim_slack,
                    summary.retired
                ));
            }
            if arch != expect {
                return fail("final architectural state diverged from oracle".into());
            }
            if retired_instrs != summary.retired {
                return fail(format!(
                    "retired {retired_instrs} instructions, oracle retired {}",
                    summary.retired
                ));
            }
        }
        Outcome::Pass { retired: summary.retired }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A short deterministic sweep: current pipeline matches the oracle on
    /// every model and both frontends for these seeds.
    #[test]
    fn smoke_sweep_passes() {
        let h = Harness::default();
        let cfg = FuzzConfig::small();
        for seed in 0..8 {
            let out = h.check_seed(&cfg, seed);
            assert!(!out.is_divergence(), "seed {seed}: {out:?}");
        }
    }
}
