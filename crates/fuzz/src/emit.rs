//! Emission of a [`FuzzAst`] to both frontends.
//!
//! [`emit_synth`] assembles the AST through the internal [`Asm`];
//! [`emit_rv`] renders RV64 assembly text and assembles it with the
//! `tp-rv` assembler, so the resulting program travels the full
//! assemble → encode → decode → lower path — every fuzz run is also an
//! encoder/decoder round trip.
//!
//! Both emitters use the *same* architectural registers (the scratch set
//! `x4..x11`/`r4..r11` and the helper registers below are fixed points of
//! the rv↔internal register involution), the same data layout, and the
//! same structured lowering, so a divergence reproduces on whichever
//! frontend it was found under.
//!
//! Register conventions (shared by both emissions):
//!
//! | register | role |
//! |---|---|
//! | `r4..r11` | scratch computation (`NUM_SCRATCH`) |
//! | `r13` | memory-sourced branch operands |
//! | `r14`, `r15` | jump-table address / target |
//! | `r16` | data-region base pointer |
//! | `r17` | table-region base pointer |
//! | `r20+d` | loop counter at loop depth `d` |
//! | `sp`, `ra` | stack / link (per-ISA conventional registers) |

use tp_isa::asm::Asm;
use tp_isa::{AluOp, Cond, Pc, Program, Reg, Word, DATA_BASE, STACK_BASE};
use tp_rv::{RvAsm, RvError};

use crate::ast::{CondSpec, CondSrc, FuzzAst, Op, Stmt, Trip};

/// Structural re-convergence ground truth, recorded *during* emission:
/// the emitters know exactly where every hammock joins, every loop
/// exits, and every jump table points, because they placed the labels.
/// This is what the static analysis (`tp-cfg`) must recover from the
/// decoded instruction stream alone — per branch, the exact immediate
/// post-dominator, with no classified-exception slack.
#[derive(Clone, Debug, Default)]
pub struct ReconvTruth {
    /// `(conditional branch PC, its re-convergent point)`: the hammock's
    /// join label, or the loop's exit label for back-edge and break
    /// branches.
    pub branches: Vec<(Pc, Pc)>,
    /// `(indirect transfer PC, exact target set)`: the switch's arm
    /// labels, or the indirectly called function's entry (sorted).
    pub indirects: Vec<(Pc, Vec<Pc>)>,
}

/// Byte base address of the jump-table region. Disjoint from the data
/// words (at [`DATA_BASE`]) so stores can never clobber a code address,
/// and from the stack (at [`STACK_BASE`]).
pub const TABLE_BASE: u64 = 0x4_0000;

/// Number of loop-counter registers (`r20..r20+NUM_COUNTERS`). These are
/// *callee-saved*: every function pushes and restores them, because a
/// callee's loop exiting early (via `break`) would otherwise leave a
/// caller's counter register re-armed to a positive value each iteration —
/// an infinite loop. The generator clamps nesting depth to this bound.
pub const NUM_COUNTERS: u8 = 6;

const SCRATCH_BASE: u8 = 4;
const COND_TMP: u8 = 13;
const TBL_ADDR: u8 = 14;
const TBL_TGT: u8 = 15;
const DATA_PTR: u8 = 16;
const TABLE_PTR: u8 = 17;
const LOOP_BASE: u8 = 20;

/// Emits the AST as an internal-ISA [`Program`].
pub fn emit_synth(ast: &FuzzAst, name: &str) -> Program {
    emit_synth_with_truth(ast, name).0
}

/// [`emit_synth`], also returning the emission's [`ReconvTruth`].
pub fn emit_synth_with_truth(ast: &FuzzAst, name: &str) -> (Program, ReconvTruth) {
    let mut e = SynthEmit {
        a: Asm::new(name),
        tables: Vec::new(),
        branch_truth: Vec::new(),
        indirect_truth: Vec::new(),
    };
    e.a.li64(Reg::SP, STACK_BASE as i64);
    e.a.li64(Reg::new(DATA_PTR), DATA_BASE as i64);
    e.a.li64(Reg::new(TABLE_PTR), TABLE_BASE as i64);
    for (k, &v) in ast.scratch_init.iter().enumerate() {
        e.a.li(Reg::new(SCRATCH_BASE + k as u8), v);
    }
    e.a.call("f0");
    e.a.halt();
    let frame = 8 * (1 + NUM_COUNTERS as i32);
    for (i, f) in ast.funcs.iter().enumerate() {
        e.a.label(format!("f{i}"));
        e.a.addi(Reg::SP, Reg::SP, -frame);
        e.a.store(Reg::RA, Reg::SP, 0);
        for c in 0..NUM_COUNTERS {
            e.a.store(Reg::new(LOOP_BASE + c), Reg::SP, 8 * (1 + c as i32));
        }
        e.stmts(&f.body, 0);
        for c in 0..NUM_COUNTERS {
            e.a.load(Reg::new(LOOP_BASE + c), Reg::SP, 8 * (1 + c as i32));
        }
        e.a.load(Reg::RA, Reg::SP, 0);
        e.a.addi(Reg::SP, Reg::SP, frame);
        e.a.ret();
    }
    for (i, &v) in ast.data.iter().enumerate() {
        e.a.data_word(DATA_BASE + 8 * i as u64, v);
    }
    for (i, label) in e.tables.iter().enumerate() {
        e.a.data_label(TABLE_BASE + 8 * i as u64, label.clone());
    }
    // Resolve the recorded truth labels before assembly consumes the
    // symbol table. Every label was defined by the emission above.
    let resolve = |l: &str| e.a.resolve_label(l).expect("truth label is defined");
    let truth = ReconvTruth {
        branches: e.branch_truth.iter().map(|&(pc, ref l)| (pc, resolve(l))).collect(),
        indirects: e
            .indirect_truth
            .iter()
            .map(|&(pc, ref ls)| {
                let mut ts: Vec<Pc> = ls.iter().map(|l| resolve(l)).collect();
                ts.sort_unstable();
                ts.dedup();
                (pc, ts)
            })
            .collect(),
    };
    (e.a.assemble().expect("emitted program is always valid"), truth)
}

struct SynthEmit {
    a: Asm,
    /// Jump-table entries (labels), in allocation order.
    tables: Vec<String>,
    /// `(branch PC, re-convergence label)` recorded at each branch.
    branch_truth: Vec<(Pc, String)>,
    /// `(indirect site PC, target labels)` recorded at each site.
    indirect_truth: Vec<(Pc, Vec<String>)>,
}

impl SynthEmit {
    fn stmts(&mut self, list: &[Stmt], depth: usize) {
        for s in list {
            self.stmt(s, depth);
        }
    }

    /// Evaluates a condition's operands, returning `(lhs, rhs)` registers.
    fn cond_operands(&mut self, c: &CondSpec) -> (Reg, Reg) {
        let lhs = match c.lhs {
            CondSrc::Reg(k) => Reg::new(SCRATCH_BASE + k),
            CondSrc::Mem(w) => {
                self.a.load(Reg::new(COND_TMP), Reg::new(DATA_PTR), 8 * w as i32);
                Reg::new(COND_TMP)
            }
        };
        let rhs = match c.rhs {
            None => Reg::ZERO,
            Some(k) => Reg::new(SCRATCH_BASE + k),
        };
        (lhs, rhs)
    }

    fn stmt(&mut self, s: &Stmt, depth: usize) {
        match s {
            Stmt::Ops(ops) => {
                for op in ops {
                    self.op(op);
                }
            }
            Stmt::Hammock { cond, then_b, else_b } => {
                let end = self.a.fresh_label("end");
                let (lhs, rhs) = self.cond_operands(cond);
                self.branch_truth.push((self.a.here(), end.clone()));
                if else_b.is_empty() {
                    self.a.branch(cond.cond, lhs, rhs, end.clone());
                    self.stmts(then_b, depth);
                } else {
                    let els = self.a.fresh_label("else");
                    self.a.branch(cond.cond, lhs, rhs, els.clone());
                    self.stmts(then_b, depth);
                    self.a.jump(end.clone());
                    self.a.label(els);
                    self.stmts(else_b, depth);
                }
                self.a.label(end);
            }
            Stmt::Loop { trip, body, brk } => {
                let counter = Reg::new(LOOP_BASE + depth as u8);
                let top = self.a.fresh_label("loop");
                let out = self.a.fresh_label("brk");
                match *trip {
                    Trip::Const(n) => self.a.li(counter, n as i32),
                    Trip::Data { word, mask } => {
                        self.a.load(counter, Reg::new(DATA_PTR), 8 * word as i32);
                        self.a.alui(AluOp::And, counter, counter, mask as i32);
                        self.a.addi(counter, counter, 1);
                    }
                }
                self.a.label(top.clone());
                for (i, s) in body.iter().enumerate() {
                    if let Some((c, pos)) = brk {
                        if *pos == i {
                            let (lhs, rhs) = self.cond_operands(c);
                            self.branch_truth.push((self.a.here(), out.clone()));
                            self.a.branch(c.cond, lhs, rhs, out.clone());
                        }
                    }
                    self.stmt(s, depth + 1);
                }
                if let Some((c, pos)) = brk {
                    if *pos >= body.len() {
                        let (lhs, rhs) = self.cond_operands(c);
                        self.branch_truth.push((self.a.here(), out.clone()));
                        self.a.branch(c.cond, lhs, rhs, out.clone());
                    }
                }
                self.a.addi(counter, counter, -1);
                self.branch_truth.push((self.a.here(), out.clone()));
                self.a.branch(Cond::Gt, counter, Reg::ZERO, top);
                self.a.label(out);
            }
            Stmt::Switch { word, mask, arms } => {
                let base = self.tables.len();
                let end = self.a.fresh_label("swend");
                let labels: Vec<String> =
                    (0..arms.len()).map(|_| self.a.fresh_label("arm")).collect();
                for l in &labels {
                    self.tables.push(l.clone());
                }
                let (t1, t2) = (Reg::new(TBL_ADDR), Reg::new(TBL_TGT));
                self.a.load(t1, Reg::new(DATA_PTR), 8 * *word as i32);
                self.a.alui(AluOp::And, t1, t1, *mask as i32);
                self.a.alui(AluOp::Shl, t1, t1, 3);
                self.a.alu(AluOp::Add, t1, Reg::new(TABLE_PTR), t1);
                self.a.load(t2, t1, 8 * base as i32);
                self.indirect_truth.push((self.a.here(), labels.clone()));
                self.a.jump_indirect(t2);
                for (arm, l) in arms.iter().zip(&labels) {
                    self.a.label(l.clone());
                    self.stmts(arm, depth);
                    self.a.jump(end.clone());
                }
                self.a.label(end);
            }
            Stmt::Call { callee } => self.a.call(format!("f{callee}")),
            Stmt::CallIndirect { callee } => {
                let slot = self.tables.len();
                self.tables.push(format!("f{callee}"));
                let t2 = Reg::new(TBL_TGT);
                self.a.load(t2, Reg::new(TABLE_PTR), 8 * slot as i32);
                self.indirect_truth.push((self.a.here(), vec![format!("f{callee}")]));
                self.a.call_indirect(t2);
            }
        }
    }

    fn op(&mut self, op: &Op) {
        let r = |k: u8| Reg::new(SCRATCH_BASE + k);
        match *op {
            Op::Alu { op, rd, rs, rt } => self.a.alu(op, r(rd), r(rs), r(rt)),
            Op::AluImm { op, rd, rs, imm } => self.a.alui(op, r(rd), r(rs), imm),
            Op::Load { rd, word } => self.a.load(r(rd), Reg::new(DATA_PTR), 8 * word as i32),
            Op::Store { rs, word } => self.a.store(r(rs), Reg::new(DATA_PTR), 8 * word as i32),
        }
    }
}

/// Renders the AST as RV64 assembly source (the input to [`emit_rv`]).
pub fn emit_rv_source(ast: &FuzzAst) -> String {
    emit_rv_render(ast).out
}

/// Renders the AST, keeping the emitter (and so its recorded truth
/// labels) alive for [`emit_rv_with_truth`] to resolve after assembly.
fn emit_rv_render(ast: &FuzzAst) -> RvEmit {
    let mut e = RvEmit {
        out: String::new(),
        tables: Vec::new(),
        fresh: 0,
        branch_truth: Vec::new(),
        indirect_truth: Vec::new(),
    };
    let line = |e: &mut RvEmit, s: &str| {
        e.out.push_str(s);
        e.out.push('\n');
    };
    line(&mut e, &format!("    li sp, {STACK_BASE:#x}"));
    line(&mut e, &format!("    li x{DATA_PTR}, {DATA_BASE:#x}"));
    line(&mut e, &format!("    li x{TABLE_PTR}, {TABLE_BASE:#x}"));
    for (k, &v) in ast.scratch_init.iter().enumerate() {
        line(&mut e, &format!("    li x{}, {v}", SCRATCH_BASE + k as u8));
    }
    line(&mut e, "    call f0");
    line(&mut e, "    ecall");
    let frame = 8 * (1 + NUM_COUNTERS as i32);
    for (i, f) in ast.funcs.iter().enumerate() {
        line(&mut e, &format!("f{i}:"));
        line(&mut e, &format!("    addi sp, sp, -{frame}"));
        line(&mut e, "    sd ra, (sp)");
        for c in 0..NUM_COUNTERS {
            line(&mut e, &format!("    sd x{}, {}(sp)", LOOP_BASE + c, 8 * (1 + c as i32)));
        }
        e.stmts(&f.body, 0);
        for c in 0..NUM_COUNTERS {
            line(&mut e, &format!("    ld x{}, {}(sp)", LOOP_BASE + c, 8 * (1 + c as i32)));
        }
        line(&mut e, "    ld ra, (sp)");
        line(&mut e, &format!("    addi sp, sp, {frame}"));
        line(&mut e, "    ret");
    }
    line(&mut e, &format!("    .org {DATA_BASE:#x}"));
    for &v in &ast.data {
        line(&mut e, &format!("    .word {v}"));
    }
    line(&mut e, &format!("    .org {TABLE_BASE:#x}"));
    for label in &e.tables.clone() {
        line(&mut e, &format!("    .wordpc {label}"));
    }
    e
}

/// Emits the AST through the RV64 frontend: renders assembly text,
/// assembles it to 32-bit encodings, and decodes + lowers those into a
/// [`Program`] (the only path to the simulator, as for the rv corpus).
///
/// # Errors
///
/// Propagates assembler/decoder/lowering failures; the emitter is
/// expected to always produce valid source, so callers treat an error as
/// a bug in the emitter (or the assembler/decoder under test).
pub fn emit_rv(ast: &FuzzAst, name: &str) -> Result<Program, RvError> {
    tp_rv::assemble_program(name, &emit_rv_source(ast))
}

/// [`emit_rv`], also returning the emission's [`ReconvTruth`]. Branch
/// sites are marked with fresh labels in the rendered source (zero-size;
/// the encoded words are identical), then resolved to PCs through the
/// assembled module's symbol table.
///
/// # Errors
///
/// As [`emit_rv`].
pub fn emit_rv_with_truth(ast: &FuzzAst, name: &str) -> Result<(Program, ReconvTruth), RvError> {
    let e = emit_rv_render(ast);
    let mut a = RvAsm::new(name);
    a.source(&e.out)?;
    // Labels resolve at parse time, so they can be read out before
    // `assemble` consumes the assembler.
    let resolve = |l: &str| a.label_pc(l).expect("truth label is defined");
    let truth = ReconvTruth {
        branches: e.branch_truth.iter().map(|(s, l)| (resolve(s), resolve(l))).collect(),
        indirects: e
            .indirect_truth
            .iter()
            .map(|(s, ls)| {
                let mut ts: Vec<Pc> = ls.iter().map(|l| resolve(l)).collect();
                ts.sort_unstable();
                ts.dedup();
                (resolve(s), ts)
            })
            .collect(),
    };
    let program = tp_rv::module_to_program(&a.assemble()?)?;
    Ok((program, truth))
}

struct RvEmit {
    out: String,
    tables: Vec<String>,
    fresh: u32,
    /// `(branch site label, re-convergence label)` per branch.
    branch_truth: Vec<(String, String)>,
    /// `(indirect site label, target labels)` per site.
    indirect_truth: Vec<(String, Vec<String>)>,
}

impl RvEmit {
    fn fresh(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}_{}", self.fresh)
    }

    fn line(&mut self, s: impl AsRef<str>) {
        self.out.push_str(s.as_ref());
        self.out.push('\n');
    }

    fn stmts(&mut self, list: &[Stmt], depth: usize) {
        for s in list {
            self.stmt(s, depth);
        }
    }

    /// Evaluates a condition's operands, returning `(lhs, rhs)` register
    /// names.
    fn cond_operands(&mut self, c: &CondSpec) -> (String, String) {
        let lhs = match c.lhs {
            CondSrc::Reg(k) => format!("x{}", SCRATCH_BASE + k),
            CondSrc::Mem(w) => {
                self.line(format!("    ld x{COND_TMP}, {}(x{DATA_PTR})", 8 * w as i32));
                format!("x{COND_TMP}")
            }
        };
        let rhs = match c.rhs {
            None => "zero".to_string(),
            Some(k) => format!("x{}", SCRATCH_BASE + k),
        };
        (lhs, rhs)
    }

    /// Emits a fresh zero-size label naming the *next* instruction as a
    /// truth site (the encodings are unchanged; only the symbol table
    /// grows).
    fn site(&mut self) -> String {
        let site = self.fresh("brsite");
        self.line(format!("{site}:"));
        site
    }

    /// Emits a conditional branch to `label` taken when `c` holds,
    /// returning the label of the branch instruction itself.
    fn branch(&mut self, c: &CondSpec, label: &str) -> String {
        let (lhs, rhs) = self.cond_operands(c);
        let site = self.site();
        // `ble`/`bgt`/`bleu`/`bgtu` are the assembler's operand-swapping
        // pseudos for the conditions RV lacks natively.
        let mnemonic = match c.cond {
            Cond::Eq => "beq",
            Cond::Ne => "bne",
            Cond::Lt => "blt",
            Cond::Ge => "bge",
            Cond::Le => "ble",
            Cond::Gt => "bgt",
            Cond::Ltu => "bltu",
            Cond::Geu => "bgeu",
        };
        self.line(format!("    {mnemonic} {lhs}, {rhs}, {label}"));
        site
    }

    fn stmt(&mut self, s: &Stmt, depth: usize) {
        match s {
            Stmt::Ops(ops) => {
                for op in ops {
                    self.op(op);
                }
            }
            Stmt::Hammock { cond, then_b, else_b } => {
                let end = self.fresh("end");
                if else_b.is_empty() {
                    let site = self.branch(cond, &end);
                    self.branch_truth.push((site, end.clone()));
                    self.stmts(then_b, depth);
                } else {
                    let els = self.fresh("else");
                    let site = self.branch(cond, &els);
                    self.branch_truth.push((site, end.clone()));
                    self.stmts(then_b, depth);
                    self.line(format!("    j {end}"));
                    self.line(format!("{els}:"));
                    self.stmts(else_b, depth);
                }
                self.line(format!("{end}:"));
            }
            Stmt::Loop { trip, body, brk } => {
                let counter = format!("x{}", LOOP_BASE + depth as u8);
                let top = self.fresh("loop");
                let out = self.fresh("brk");
                match *trip {
                    Trip::Const(n) => self.line(format!("    li {counter}, {n}")),
                    Trip::Data { word, mask } => {
                        self.line(format!("    ld {counter}, {}(x{DATA_PTR})", 8 * word as i32));
                        self.line(format!("    andi {counter}, {counter}, {mask}"));
                        self.line(format!("    addi {counter}, {counter}, 1"));
                    }
                }
                self.line(format!("{top}:"));
                for (i, s) in body.iter().enumerate() {
                    if let Some((c, pos)) = brk {
                        if *pos == i {
                            let site = self.branch(c, &out);
                            self.branch_truth.push((site, out.clone()));
                        }
                    }
                    self.stmt(s, depth + 1);
                }
                if let Some((c, pos)) = brk {
                    if *pos >= body.len() {
                        let site = self.branch(c, &out);
                        self.branch_truth.push((site, out.clone()));
                    }
                }
                self.line(format!("    addi {counter}, {counter}, -1"));
                let site = self.site();
                self.line(format!("    bgt {counter}, zero, {top}"));
                self.branch_truth.push((site, out.clone()));
                self.line(format!("{out}:"));
            }
            Stmt::Switch { word, mask, arms } => {
                let base = self.tables.len();
                let end = self.fresh("swend");
                let labels: Vec<String> = (0..arms.len()).map(|_| self.fresh("arm")).collect();
                for l in &labels {
                    self.tables.push(l.clone());
                }
                self.line(format!("    ld x{TBL_ADDR}, {}(x{DATA_PTR})", 8 * *word as i32));
                self.line(format!("    andi x{TBL_ADDR}, x{TBL_ADDR}, {mask}"));
                self.line(format!("    slli x{TBL_ADDR}, x{TBL_ADDR}, 3"));
                self.line(format!("    add x{TBL_ADDR}, x{TABLE_PTR}, x{TBL_ADDR}"));
                self.table_load(8 * base as i64);
                let site = self.site();
                self.line(format!("    jr x{TBL_TGT}"));
                self.indirect_truth.push((site, labels.clone()));
                for (arm, l) in arms.iter().zip(&labels) {
                    self.line(format!("{l}:"));
                    self.stmts(arm, depth);
                    self.line(format!("    j {end}"));
                }
                self.line(format!("{end}:"));
            }
            Stmt::Call { callee } => self.line(format!("    call f{callee}")),
            Stmt::CallIndirect { callee } => {
                let slot = self.tables.len();
                self.tables.push(format!("f{callee}"));
                self.line(format!("    mv x{TBL_ADDR}, x{TABLE_PTR}"));
                self.table_load(8 * slot as i64);
                let site = self.site();
                self.line(format!("    jalr x{TBL_TGT}"));
                self.indirect_truth.push((site, vec![format!("f{callee}")]));
            }
        }
    }

    /// Loads table entry at byte offset `off` from `x14` into `x15`,
    /// materializing offsets that exceed the 12-bit load displacement.
    fn table_load(&mut self, off: i64) {
        if off <= 2047 {
            self.line(format!("    ld x{TBL_TGT}, {off}(x{TBL_ADDR})"));
        } else {
            self.line(format!("    li x{TBL_TGT}, {off}"));
            self.line(format!("    add x{TBL_ADDR}, x{TBL_ADDR}, x{TBL_TGT}"));
            self.line(format!("    ld x{TBL_TGT}, (x{TBL_ADDR})"));
        }
    }

    fn op(&mut self, op: &Op) {
        let r = |k: u8| format!("x{}", SCRATCH_BASE + k);
        match *op {
            Op::Alu { op, rd, rs, rt } => {
                let m = match op {
                    AluOp::Add => "add",
                    AluOp::Sub => "sub",
                    AluOp::Mul => "mul",
                    AluOp::Div => "div",
                    AluOp::Rem => "rem",
                    AluOp::And => "and",
                    AluOp::Or => "or",
                    AluOp::Xor => "xor",
                    AluOp::Shl => "sll",
                    AluOp::Shr => "sra",
                    AluOp::Shru => "srl",
                    AluOp::Slt => "slt",
                    AluOp::Sltu => "sltu",
                };
                self.line(format!("    {m} {}, {}, {}", r(rd), r(rs), r(rt)));
            }
            Op::AluImm { op, rd, rs, imm } => match op {
                // RV has I-forms only for the logical/compare/add class;
                // shifts take the shamt form and the rest go through a
                // materialized operand in the condition temporary.
                AluOp::Add => self.line(format!("    addi {}, {}, {imm}", r(rd), r(rs))),
                AluOp::And => self.line(format!("    andi {}, {}, {imm}", r(rd), r(rs))),
                AluOp::Or => self.line(format!("    ori {}, {}, {imm}", r(rd), r(rs))),
                AluOp::Xor => self.line(format!("    xori {}, {}, {imm}", r(rd), r(rs))),
                AluOp::Slt => self.line(format!("    slti {}, {}, {imm}", r(rd), r(rs))),
                AluOp::Sltu => self.line(format!("    sltiu {}, {}, {imm}", r(rd), r(rs))),
                AluOp::Shl => {
                    self.line(format!("    slli {}, {}, {}", r(rd), r(rs), imm.rem_euclid(64)));
                }
                AluOp::Shr => {
                    self.line(format!("    srai {}, {}, {}", r(rd), r(rs), imm.rem_euclid(64)));
                }
                AluOp::Shru => {
                    self.line(format!("    srli {}, {}, {}", r(rd), r(rs), imm.rem_euclid(64)));
                }
                AluOp::Sub | AluOp::Mul | AluOp::Div | AluOp::Rem => {
                    let m = match op {
                        AluOp::Sub => "sub",
                        AluOp::Mul => "mul",
                        AluOp::Div => "div",
                        _ => "rem",
                    };
                    self.line(format!("    li x{COND_TMP}, {imm}"));
                    self.line(format!("    {m} {}, {}, x{COND_TMP}", r(rd), r(rs)));
                }
            },
            Op::Load { rd, word } => {
                self.line(format!("    ld {}, {}(x{DATA_PTR})", r(rd), 8 * word as i32));
            }
            Op::Store { rs, word } => {
                self.line(format!("    sd {}, {}(x{DATA_PTR})", r(rs), 8 * word as i32));
            }
        }
    }
}

/// The shared word type for data emission (re-exported for the harness).
pub type DataWord = Word;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, FuzzConfig};
    use tp_isa::func::Machine;

    /// Every generated AST emits to both frontends, and both programs run
    /// to halt on the functional machine within the generator's dynamic
    /// cost bound (`max_fn_cost` plus estimation slack).
    #[test]
    fn both_emissions_halt_for_many_seeds() {
        let cfg = FuzzConfig::default();
        let budget = 4 * cfg.max_fn_cost;
        for seed in 0..50 {
            let ast = generate(&cfg, seed);
            let ps = emit_synth(&ast, "t");
            let mut m = Machine::new(&ps);
            let s = m.run(budget).unwrap_or_else(|e| panic!("seed {seed} synth: {e}"));
            assert!(s.halted, "seed {seed} synth did not halt");

            let pr = emit_rv(&ast, "t").unwrap_or_else(|e| panic!("seed {seed} rv: {e}"));
            let mut m = Machine::new(&pr);
            let s = m.run(budget).unwrap_or_else(|e| panic!("seed {seed} rv: {e}"));
            assert!(s.halted, "seed {seed} rv did not halt");
        }
    }

    /// The two emissions compute the same thing: identical final scratch
    /// registers and identical data-region words. (The emitters share
    /// registers and layout precisely to make this comparable.)
    #[test]
    fn synth_and_rv_emissions_agree_architecturally() {
        let cfg = FuzzConfig::default();
        for seed in 0..20 {
            let ast = generate(&cfg, seed);
            let ps = emit_synth(&ast, "t");
            let pr = emit_rv(&ast, "t").unwrap();
            let mut ms = Machine::new(&ps);
            ms.run(3_000_000).unwrap();
            let mut mr = Machine::new(&pr);
            mr.run(3_000_000).unwrap();
            for k in 0..crate::ast::NUM_SCRATCH {
                let r = Reg::new(SCRATCH_BASE + k);
                assert_eq!(ms.reg(r), mr.reg(r), "seed {seed} scratch {r}");
            }
            for w in 0..ast.data.len() as u64 {
                let addr = DATA_BASE + 8 * w;
                assert_eq!(ms.mem_word(addr), mr.mem_word(addr), "seed {seed} word {w}");
            }
        }
    }
}
