//! Seeded adversarial generator of [`FuzzAst`] programs.
//!
//! Compared to the property-test generator in `tp_isa::synth`, this one is
//! tuned to *attack the selective-recovery machinery*: it biases toward
//! the shapes that historically exposed bugs (PR 5's compiler-shaped
//! corpus) — nested hammocks around unpredictable conditions, loops with
//! data-dependent trip counts and second exits, indirect jump tables,
//! call/return ladders, and stores that feed later branches through
//! memory. Every `(config, seed)` pair yields the same AST.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tp_isa::{AluOp, Cond};

use crate::ast::{CondSpec, CondSrc, Func, FuzzAst, Op, Stmt, Trip, MAX_TRIP_MASK, NUM_SCRATCH};

/// Generator configuration.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Number of functions (acyclic call graph).
    pub functions: usize,
    /// Structured items per function body.
    pub items_per_function: usize,
    /// Maximum straight-line ops per block.
    pub max_block_ops: usize,
    /// Maximum nesting depth of hammocks/loops/switches.
    pub max_depth: usize,
    /// Maximum constant loop trip count.
    pub max_trip: u8,
    /// Number of store-addressable data words.
    pub data_words: u16,
    /// Worst-case dynamic instruction budget per function (including its
    /// callees). Without this bound, calls nested inside loop nests
    /// multiply across the call ladder and worst-case program length is
    /// exponential in the number of functions.
    pub max_fn_cost: u64,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            functions: 5,
            items_per_function: 5,
            max_block_ops: 5,
            max_depth: 3,
            max_trip: 6,
            data_words: 48,
            max_fn_cost: 12_000,
        }
    }
}

impl FuzzConfig {
    /// A small configuration for quick smoke tests.
    pub fn small() -> FuzzConfig {
        FuzzConfig {
            functions: 3,
            items_per_function: 3,
            max_block_ops: 3,
            max_depth: 2,
            max_trip: 4,
            data_words: 16,
            max_fn_cost: 3_000,
        }
    }
}

struct Gen<'a> {
    rng: StdRng,
    cfg: &'a FuzzConfig,
    /// Data words stored somewhere earlier in generation order — preferred
    /// sources for later branch conditions and trip counts (store→branch
    /// memory dependences).
    stored_words: Vec<u16>,
}

/// Generates a random, terminating AST. Deterministic per `(config, seed)`.
///
/// # Example
///
/// ```
/// use tp_fuzz::gen::{generate, FuzzConfig};
/// let a = generate(&FuzzConfig::default(), 7);
/// let b = generate(&FuzzConfig::default(), 7);
/// assert_eq!(a, b);
/// ```
pub fn generate(config: &FuzzConfig, seed: u64) -> FuzzAst {
    let mut g = Gen { rng: StdRng::seed_from_u64(seed), cfg: config, stored_words: Vec::new() };
    let functions = config.functions.max(1);
    // Functions are generated leaf-first so every call site knows its
    // callee's worst-case dynamic cost and can be charged for it — this is
    // what keeps whole-program length bounded even with calls nested
    // inside loop nests.
    let mut funcs: Vec<Func> = (0..functions).map(|_| Func { body: Vec::new() }).collect();
    let mut costs = vec![0u64; functions];
    for f in (0..functions).rev() {
        let items = g.cfg.items_per_function.max(1);
        let mut budget = g.cfg.max_fn_cost.max(64);
        let mut body = Vec::new();
        // Call ladder bias: non-terminal functions often start by calling
        // straight down the chain, producing deep call/return nests with
        // work stacked above every return.
        if f + 1 < functions && g.rng.gen_bool(0.4) {
            let cost = CALL_OVERHEAD + costs[f + 1];
            if cost <= budget {
                body.push(Stmt::Call { callee: f + 1 });
                budget -= cost;
            }
        }
        for _ in 0..items {
            let (s, cost) = g.stmt(f, functions, 0, budget, &costs);
            budget = budget.saturating_sub(cost);
            body.push(s);
        }
        // Prologue, epilogue, and the entry-stub call.
        costs[f] = (g.cfg.max_fn_cost.max(64) - budget) + 8;
        funcs[f] = Func { body };
    }
    let data = (0..config.data_words).map(|_| g.rng.gen_range(-1000..1000i64)).collect();
    let scratch_init = (0..NUM_SCRATCH).map(|_| g.rng.gen_range(-64..64i32)).collect();
    FuzzAst { funcs, data, scratch_init }
}

/// Estimated dynamic instructions for a call's prologue/epilogue/linkage
/// (including the callee-saved loop-counter spills).
const CALL_OVERHEAD: u64 = 22;
/// Minimum allowance worth spending on a nested region; below this the
/// generator falls back to straight-line ops.
const MIN_REGION: u64 = 24;

impl Gen<'_> {
    fn scratch(&mut self) -> u8 {
        self.rng.gen_range(0..NUM_SCRATCH)
    }

    fn word(&mut self) -> u16 {
        self.rng.gen_range(0..self.cfg.data_words.max(1))
    }

    /// A data word biased toward ones already stored to (store→branch).
    fn cond_word(&mut self) -> u16 {
        if !self.stored_words.is_empty() && self.rng.gen_bool(0.6) {
            let i = self.rng.gen_range(0..self.stored_words.len());
            self.stored_words[i]
        } else {
            self.word()
        }
    }

    fn cond(&mut self) -> CondSpec {
        let cond = match self.rng.gen_range(0..8) {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Lt,
            3 => Cond::Ge,
            4 => Cond::Le,
            5 => Cond::Gt,
            6 => Cond::Ltu,
            _ => Cond::Geu,
        };
        // Most conditions read memory: unpredictable, and often store-fed.
        let lhs = if self.rng.gen_bool(0.6) {
            CondSrc::Mem(self.cond_word())
        } else {
            CondSrc::Reg(self.scratch())
        };
        let rhs = if self.rng.gen_bool(0.4) { None } else { Some(self.scratch()) };
        CondSpec { cond, lhs, rhs }
    }

    /// Generates one statement whose worst-case dynamic cost fits
    /// `allowance`, returning the statement and its cost estimate.
    fn stmt(
        &mut self,
        func: usize,
        functions: usize,
        depth: usize,
        allowance: u64,
        costs: &[u64],
    ) -> (Stmt, u64) {
        // Depth is clamped to the callee-saved loop-counter register file.
        let max_depth = self.cfg.max_depth.min(crate::emit::NUM_COUNTERS as usize - 1);
        let can_nest = depth < max_depth && allowance >= MIN_REGION;
        let can_call = func + 1 < functions
            && (func + 1..functions).any(|c| CALL_OVERHEAD + costs[c] <= allowance);
        match self.rng.gen_range(0..100) {
            0..=24 => self.ops(),
            25..=49 if can_nest => self.hammock(func, functions, depth, allowance, costs),
            50..=69 if can_nest => self.loop_(func, functions, depth, allowance, costs),
            70..=84 if can_nest => self.switch(func, functions, depth, allowance, costs),
            85..=99 if can_call => {
                let fits: Vec<usize> = (func + 1..functions)
                    .filter(|&c| CALL_OVERHEAD + costs[c] <= allowance)
                    .collect();
                let callee = fits[self.rng.gen_range(0..fits.len())];
                let cost = CALL_OVERHEAD + costs[callee];
                if self.rng.gen_bool(0.35) {
                    (Stmt::CallIndirect { callee }, cost + 2)
                } else {
                    (Stmt::Call { callee }, cost)
                }
            }
            _ => self.ops(),
        }
    }

    /// Generates `1..=max_items` statements within `allowance`, spent
    /// greedily left to right; returns the list and its total cost.
    fn body(
        &mut self,
        func: usize,
        functions: usize,
        depth: usize,
        max_items: usize,
        allowance: u64,
        costs: &[u64],
    ) -> (Vec<Stmt>, u64) {
        let n = self.rng.gen_range(1..=max_items.max(1));
        let mut remaining = allowance;
        let mut total = 0;
        let list = (0..n)
            .map(|_| {
                let (s, cost) = self.stmt(func, functions, depth, remaining, costs);
                remaining = remaining.saturating_sub(cost);
                total += cost;
                s
            })
            .collect();
        (list, total)
    }

    fn ops(&mut self) -> (Stmt, u64) {
        let n = self.rng.gen_range(1..=self.cfg.max_block_ops.max(1));
        let ops = (0..n)
            .map(|_| match self.rng.gen_range(0..100) {
                0..=44 => {
                    let op = match self.rng.gen_range(0..16) {
                        0 => AluOp::Mul,
                        1 => AluOp::Div,
                        2 => AluOp::Rem,
                        3 => AluOp::Xor,
                        4 => AluOp::And,
                        5 => AluOp::Or,
                        6 => AluOp::Slt,
                        7 => AluOp::Sltu,
                        8 => AluOp::Sub,
                        9 => AluOp::Shl,
                        10 => AluOp::Shr,
                        11 => AluOp::Shru,
                        _ => AluOp::Add,
                    };
                    let (rd, rs, rt) = (self.scratch(), self.scratch(), self.scratch());
                    if self.rng.gen_bool(0.5) {
                        Op::Alu { op, rd, rs, rt }
                    } else {
                        Op::AluImm { op, rd, rs, imm: self.rng.gen_range(-32..32) }
                    }
                }
                45..=69 => Op::Load { rd: self.scratch(), word: self.word() },
                _ => {
                    let w = self.word();
                    self.stored_words.push(w);
                    Op::Store { rs: self.scratch(), word: w }
                }
            })
            .collect();
        (Stmt::Ops(ops), n as u64)
    }

    fn hammock(
        &mut self,
        func: usize,
        functions: usize,
        depth: usize,
        allowance: u64,
        costs: &[u64],
    ) -> (Stmt, u64) {
        let cond = self.cond();
        // Both sides charged in full: either may execute on any given run.
        let inner = allowance.saturating_sub(4);
        let (then_b, then_cost) = self.body(func, functions, depth + 1, 2, inner, costs);
        let (else_b, else_cost) = if self.rng.gen_bool(0.5) {
            self.body(func, functions, depth + 1, 2, inner.saturating_sub(then_cost), costs)
        } else {
            (Vec::new(), 0)
        };
        (Stmt::Hammock { cond, then_b, else_b }, 4 + then_cost + else_cost)
    }

    fn loop_(
        &mut self,
        func: usize,
        functions: usize,
        depth: usize,
        allowance: u64,
        costs: &[u64],
    ) -> (Stmt, u64) {
        let mut trip = if self.rng.gen_bool(0.5) {
            Trip::Const(self.rng.gen_range(1..=self.cfg.max_trip.max(1)))
        } else {
            // Mask chosen so deep nests stay tractable: 1..=4 or 1..=8.
            let mask = if self.rng.gen_bool(0.7) { 3 } else { 7 }.min(MAX_TRIP_MASK);
            Trip::Data { word: self.cond_word(), mask }
        };
        // Worst-case trip count; shrink the trip rather than starve the
        // body when the allowance cannot cover the full count.
        let mut t = match trip {
            Trip::Const(n) => n as u64,
            Trip::Data { mask, .. } => mask as u64 + 1,
        };
        if allowance / t < MIN_REGION {
            t = (allowance / MIN_REGION).max(1);
            trip = Trip::Const(t as u8);
        }
        let per_iter = allowance.saturating_sub(4) / t;
        let (body, body_cost) =
            self.body(func, functions, depth + 1, 2, per_iter.saturating_sub(6), costs);
        let brk = if self.rng.gen_bool(0.45) {
            let pos = self.rng.gen_range(0..=body.len());
            Some((self.cond(), pos))
        } else {
            None
        };
        let iter_cost = body_cost + 4 + if brk.is_some() { 3 } else { 0 };
        (Stmt::Loop { trip, body, brk }, 4 + t * iter_cost)
    }

    fn switch(
        &mut self,
        func: usize,
        functions: usize,
        depth: usize,
        allowance: u64,
        costs: &[u64],
    ) -> (Stmt, u64) {
        let mask: u8 = if self.rng.gen_bool(0.5) { 3 } else { 7 };
        // Only one arm executes, so arms share the allowance; the cost is
        // the dispatch overhead plus the most expensive arm.
        let inner = allowance.saturating_sub(8);
        let mut worst = 0;
        let arms = (0..=mask)
            .map(|_| {
                let (arm, cost) = self.body(func, functions, depth + 1, 2, inner, costs);
                worst = worst.max(cost);
                arm
            })
            .collect();
        (Stmt::Switch { word: self.cond_word(), mask, arms }, 8 + worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let cfg = FuzzConfig::default();
        assert_eq!(generate(&cfg, 3), generate(&cfg, 3));
        assert_ne!(generate(&cfg, 3), generate(&cfg, 4));
    }

    #[test]
    fn generates_all_adversarial_shapes_across_seeds() {
        let cfg = FuzzConfig::default();
        let (mut loops, mut switches, mut breaks, mut icalls, mut mem_conds) =
            (false, false, false, false, false);
        for seed in 0..40 {
            let ast = generate(&cfg, seed);
            visit(&ast, &mut |s| match s {
                Stmt::Loop { brk, .. } => {
                    loops = true;
                    breaks |= brk.is_some();
                }
                Stmt::Switch { .. } => switches = true,
                Stmt::CallIndirect { .. } => icalls = true,
                Stmt::Hammock { cond, .. } => {
                    mem_conds |= matches!(cond.lhs, CondSrc::Mem(_));
                }
                _ => {}
            });
        }
        assert!(loops && switches && breaks && icalls && mem_conds);
    }

    fn visit(ast: &FuzzAst, f: &mut impl FnMut(&Stmt)) {
        fn walk(list: &[Stmt], f: &mut impl FnMut(&Stmt)) {
            for s in list {
                f(s);
                match s {
                    Stmt::Hammock { then_b, else_b, .. } => {
                        walk(then_b, f);
                        walk(else_b, f);
                    }
                    Stmt::Loop { body, .. } => walk(body, f),
                    Stmt::Switch { arms, .. } => arms.iter().for_each(|a| walk(a, f)),
                    _ => {}
                }
            }
        }
        for func in &ast.funcs {
            walk(&func.body, f);
        }
    }
}
