//! The structured program AST the fuzzer generates, emits, and shrinks.
//!
//! A [`FuzzAst`] is an abstract, ISA-neutral description of a terminating
//! program: an acyclic call graph of functions whose bodies are trees of
//! structured statements. The same AST is emitted to *both* frontends
//! ([`crate::emit::emit_synth`] for the internal ISA,
//! [`crate::emit::emit_rv`] through the `tp-rv` assembler → encoder →
//! decoder), so one generated control-flow shape exercises both pipelines
//! and one shrinker serves both.
//!
//! Termination is guaranteed by construction:
//!
//! * every loop is counted — the counter strictly decrements each
//!   iteration, and a data-dependent trip count is masked into `1..=16`;
//!   an optional early `break` can only *shorten* the loop;
//! * switches index their jump table with an AND mask, so a store-mutated
//!   index still lands inside the table;
//! * jump tables live in a region disjoint from the store-addressable
//!   data words, so table entries (code addresses) can never be clobbered;
//! * function `i` may only call functions with larger indices;
//! * loop-counter registers are callee-saved (spilled in every function
//!   prologue), so a callee's loop — in particular one exiting early via
//!   `break`, which leaves its counter positive — can never re-arm a
//!   caller's counter.

use tp_isa::{AluOp, Cond};

/// Number of scratch registers the generated code computes in
/// (`x4..x11` / `r4..r11` — fixed points of the rv↔internal register
/// involution, so both emissions use the *same* architectural registers).
pub const NUM_SCRATCH: u8 = 8;

/// Maximum value of a masked data-dependent trip count (`mask <= 15`).
pub const MAX_TRIP_MASK: u8 = 15;

/// A straight-line operation on scratch registers and the data region.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// Three-register ALU op between scratch registers.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination scratch index (`0..NUM_SCRATCH`).
        rd: u8,
        /// Left source scratch index.
        rs: u8,
        /// Right source scratch index.
        rt: u8,
    },
    /// Register-immediate ALU op between scratch registers.
    AluImm {
        /// The operation.
        op: AluOp,
        /// Destination scratch index.
        rd: u8,
        /// Source scratch index.
        rs: u8,
        /// Immediate (kept within ±2047 so it fits an RV I-immediate).
        imm: i32,
    },
    /// Load data word `word` into a scratch register.
    Load {
        /// Destination scratch index.
        rd: u8,
        /// Data-region word index.
        word: u16,
    },
    /// Store a scratch register to data word `word`.
    Store {
        /// Source scratch index.
        rs: u8,
        /// Data-region word index.
        word: u16,
    },
}

/// Where a branch condition's left operand comes from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CondSrc {
    /// A scratch register.
    Reg(u8),
    /// A data word loaded immediately before the compare — when the word
    /// was stored earlier in the program, this is a memory-carried
    /// control dependence (a store feeding a later branch).
    Mem(u16),
}

/// A branch condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CondSpec {
    /// The comparison.
    pub cond: Cond,
    /// Left operand source.
    pub lhs: CondSrc,
    /// Right operand: a scratch register, or `None` for the zero register.
    pub rhs: Option<u8>,
}

/// How a loop's trip count is produced.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Trip {
    /// A constant count (`1..=16`).
    Const(u8),
    /// `(data[word] & mask) + 1` — a data-dependent trip count in
    /// `1..=mask+1`; the load makes the loop-exit branch unpredictable
    /// and, when the word was stored earlier, store-fed.
    Data {
        /// Data-region word index of the count source.
        word: u16,
        /// Mask applied to the loaded value (`<= MAX_TRIP_MASK`).
        mask: u8,
    },
}

/// A structured statement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// Straight-line operations.
    Ops(Vec<Op>),
    /// An if/else region (`else_b` may be empty: a simple forward skip).
    Hammock {
        /// The branch condition.
        cond: CondSpec,
        /// Taken when the condition is *false* (fall-through side).
        then_b: Vec<Stmt>,
        /// Taken when the condition is *true*.
        else_b: Vec<Stmt>,
    },
    /// A counted loop, optionally with a second, data-dependent exit.
    Loop {
        /// Trip-count source.
        trip: Trip,
        /// Loop body.
        body: Vec<Stmt>,
        /// Early exit: `(condition, position)` — after `position` body
        /// statements, branch out of the loop when the condition holds.
        brk: Option<(CondSpec, usize)>,
    },
    /// An indirect jump through a data-resident table of code addresses.
    Switch {
        /// Data-region word index supplying the arm index.
        word: u16,
        /// Index mask; `arms.len() == mask + 1` (power of two).
        mask: u8,
        /// The switch arms; each falls out to the common join point.
        arms: Vec<Vec<Stmt>>,
    },
    /// A direct call to a later function (acyclic by construction).
    Call {
        /// Callee function index (`> ` the containing function's).
        callee: usize,
    },
    /// An indirect call to a later function through a table entry.
    CallIndirect {
        /// Callee function index (`>` the containing function's).
        callee: usize,
    },
}

/// One function: a statement list bracketed by the emitters with a
/// push-RA prologue and pop-RA/return epilogue.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Func {
    /// The body.
    pub body: Vec<Stmt>,
}

/// A complete generated program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FuzzAst {
    /// Functions; index 0 is the root called from the entry stub.
    pub funcs: Vec<Func>,
    /// Initial values of the store-addressable data words.
    pub data: Vec<i64>,
    /// Initial values of the scratch registers.
    pub scratch_init: Vec<i32>,
}

impl FuzzAst {
    /// Number of statements in the whole program (shrinking progress
    /// metric; emitted instruction count is roughly proportional).
    pub fn size(&self) -> usize {
        fn stmts(list: &[Stmt]) -> usize {
            list.iter().map(stmt).sum()
        }
        fn stmt(s: &Stmt) -> usize {
            match s {
                Stmt::Ops(ops) => ops.len().max(1),
                Stmt::Hammock { then_b, else_b, .. } => 1 + stmts(then_b) + stmts(else_b),
                Stmt::Loop { body, .. } => 2 + stmts(body),
                Stmt::Switch { arms, .. } => 2 + arms.iter().map(|a| stmts(a)).sum::<usize>(),
                Stmt::Call { .. } | Stmt::CallIndirect { .. } => 1,
            }
        }
        self.funcs.iter().map(|f| stmts(&f.body)).sum()
    }
}
