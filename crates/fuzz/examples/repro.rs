//! Scratch reproducer runner: generate a seed, shrink it, and print the
//! deadlock window dump for the first diverging model.

use tp_core::{SimError, TraceProcessor};
use tp_fuzz::gen::generate;
use tp_fuzz::harness::{Harness, Isa, Outcome};
use tp_fuzz::{emit_rv, emit_synth, shrink, FuzzConfig};

fn main() {
    let seed: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(386);
    let harness = Harness::default();
    let cfg = FuzzConfig::default();
    let ast = generate(&cfg, seed);
    let Outcome::Diverged(orig) = harness.check_ast(&ast, "repro") else {
        eprintln!("seed {seed} does not diverge");
        return;
    };
    eprintln!("seed {seed}: {orig}");
    let pred = |a: &tp_fuzz::FuzzAst| match harness.check_ast(a, "repro") {
        Outcome::Diverged(d) => d.isa == orig.isa && d.model == orig.model,
        _ => false,
    };
    let (small, _) = shrink(&ast, pred, 4_000);
    let program = match orig.isa {
        Isa::Synth => emit_synth(&small, "repro"),
        Isa::Rv => emit_rv(&small, "repro").expect("rv emission"),
    };
    eprintln!("--- program ---");
    for (i, inst) in program.insts().iter().enumerate() {
        eprintln!("{i:4}: {inst:?}");
    }
    let model = orig.model.expect("model-level divergence");
    let mut sim = TraceProcessor::new(&program, harness.config(model));
    match sim.run(1_000_000) {
        Err(SimError::Deadlock { cycle, detail }) => {
            eprintln!("deadlock at {cycle}\n{detail}");
        }
        Err(e) => eprintln!("error: {e}"),
        Ok(r) => eprintln!("ran: halted={} retired={}", r.halted, r.stats.retired_instrs),
    }
}
