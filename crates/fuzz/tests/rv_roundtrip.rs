//! Frontend round-trip property over *generated* programs: every program
//! the fuzzer emits as RV64 source assembles to 32-bit words in which
//! each word decodes back to an instruction that re-encodes to the exact
//! same word. This runs the full asm → encode → decode chain over the
//! adversarial control-flow shapes (jump tables, call ladders, nested
//! hammocks) rather than hand-written corpus programs.

use tp_fuzz::{emit_rv_source, generate, FuzzConfig};
use tp_rv::{decode, module_to_program, RvAsm};

#[test]
fn generated_programs_roundtrip_word_exactly() {
    let cfg = FuzzConfig::default();
    for seed in 0..25u64 {
        let src = emit_rv_source(&generate(&cfg, seed));
        let mut asm = RvAsm::new(format!("roundtrip-{seed}"));
        asm.source(&src).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let module = asm.assemble().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        for (pc, &word) in module.words.iter().enumerate() {
            let inst = decode(word).unwrap_or_else(|e| panic!("seed {seed} pc {pc}: {e}"));
            assert_eq!(inst.encode(), word, "seed {seed} pc {pc}: {inst}");
        }
        // And the decoded stream lowers into a valid program.
        module_to_program(&module).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
