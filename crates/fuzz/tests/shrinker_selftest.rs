//! Shrinker self-test against a machine that is *known* bad: the fixed
//! CGCI retired-upstream stall bug is re-introduced through the
//! `inject_cgci_stall_bug` config knob, giving the whole
//! divergence-detection → predicate → shrink pipeline a real bug to
//! chew on. This guards the tooling itself — a shrinker that silently
//! stopped reducing (or a harness that stopped detecting) would
//! otherwise only be noticed during the next real campaign.

use tp_core::CiModel;
use tp_fuzz::gen::generate;
use tp_fuzz::harness::{Harness, Isa, Outcome};
use tp_fuzz::{shrink, FuzzConfig};

/// Known-bad seed under the injected bug (small generator config, small
/// machine, synth frontend, `Ret` model).
const BAD_SEED: u64 = 41;

/// The shrink budget the known-bad program must fit: evaluations the
/// shrinker may spend, and the statement count the reproducer must
/// reach. Both are fixed so a shrinker regression (fewer reductions per
/// eval, or none at all) fails loudly instead of just getting slower.
const MAX_EVALS: usize = 600;
const MAX_SHRUNK_SIZE: usize = 12;

#[test]
fn injected_bug_is_found_and_shrinks_within_budget() {
    let buggy = Harness {
        models: vec![CiModel::Ret],
        isas: vec![Isa::Synth],
        small_machine: true,
        inject_cgci_stall_bug: true,
        ..Harness::default()
    };
    let cfg = FuzzConfig::small();
    let ast = generate(&cfg, BAD_SEED);

    // The harness detects the injected bug...
    let Outcome::Diverged(orig) = buggy.check_ast(&ast, "selftest") else {
        panic!("seed {BAD_SEED} no longer diverges under the injected bug");
    };
    assert_eq!(orig.isa, Isa::Synth);
    assert_eq!(orig.model, Some(CiModel::Ret));
    assert!(orig.detail.contains("deadlock"), "{orig}");

    // ...the fixed machine does not trip on the same program...
    let fixed = Harness { inject_cgci_stall_bug: false, ..buggy.clone() };
    let out = fixed.check_ast(&ast, "selftest-fixed");
    assert!(!out.is_divergence(), "fix regressed: {out:?}");

    // ...and the shrinker reduces it to a minimal reproducer within the
    // fixed budget, preserving the failure.
    let pred = |a: &tp_fuzz::FuzzAst| match buggy.check_ast(a, "selftest-shrink") {
        Outcome::Diverged(d) => d.isa == orig.isa && d.model == orig.model,
        _ => false,
    };
    let before = ast.size();
    let (small, stats) = shrink(&ast, pred, MAX_EVALS);
    assert!(
        small.size() <= MAX_SHRUNK_SIZE,
        "shrunk only {before} -> {} statements in {} evals",
        small.size(),
        stats.evals
    );
    assert!(stats.evals <= MAX_EVALS);
    assert!(pred(&small), "shrunk reproducer no longer reproduces");
}
