//! Exactness of the fuzzer's exported re-convergence ground truth.
//!
//! The emitters know, by construction, where every branch they emit
//! re-converges (a hammock's join, a loop's fall-through exit) and which
//! targets every indirect site can reach (the jump-table arms, the called
//! function). `tp-cfg` recovers the same facts from the decoded program
//! alone. This test pins the two against each other over a thousand
//! seeded programs on *both* frontends: every exported branch must have
//! its immediate post-dominator exactly where the emitter put the join,
//! the exported set must cover every conditional branch in the program,
//! and every indirect site must resolve to exactly the emitted target
//! set. A miss on either side is a bug — in the emitter's bookkeeping or
//! in the static analysis.

use std::collections::BTreeSet;

use tp_cfg::CfgAnalysis;
use tp_fuzz::gen::{generate, FuzzConfig};
use tp_fuzz::{emit_rv_with_truth, emit_synth_with_truth, ReconvTruth};
use tp_isa::{Pc, Program};

const SEEDS: u64 = 1000;

fn check(program: &Program, truth: &ReconvTruth, what: &str) {
    let analysis = CfgAnalysis::build(program);
    let mut sites = BTreeSet::new();
    for &(pc, expected) in &truth.branches {
        assert!(sites.insert(pc), "{what}: duplicate truth site at pc {pc}");
        assert_eq!(
            analysis.reconv_point(pc),
            Some(expected),
            "{what}: branch at pc {pc} must re-converge at pc {expected}"
        );
    }
    // ...and the exported set covers every conditional branch in the
    // program: the emitters have no unaccounted-for control flow.
    for (pc, inst) in program.insts().iter().enumerate() {
        if inst.is_cond_branch() {
            assert!(
                sites.contains(&(pc as Pc)),
                "{what}: branch at pc {pc} has no exported ground truth"
            );
        }
    }
    for (pc, expected) in &truth.indirects {
        assert_eq!(
            analysis.resolved_indirect_targets(*pc),
            Some(expected.as_slice()),
            "{what}: indirect site at pc {pc} must resolve to exactly {expected:?}"
        );
    }
}

#[test]
fn exported_truth_matches_static_analysis_on_both_frontends() {
    let config = FuzzConfig::small();
    for seed in 0..SEEDS {
        let ast = generate(&config, seed);
        let (program, truth) = emit_synth_with_truth(&ast, &format!("truth_synth_{seed}"));
        check(&program, &truth, &format!("synth seed {seed}"));
        let (program, truth) =
            emit_rv_with_truth(&ast, &format!("truth_rv_{seed}")).expect("rv emission succeeds");
        check(&program, &truth, &format!("rv seed {seed}"));
    }
}
