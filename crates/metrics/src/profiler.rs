//! Host-side wall-time profiler for the simulator's pipeline-stage
//! modules.
//!
//! This measures *host* cost (where the simulator spends wall-clock time),
//! not simulated cycles. The simulator holds an `Option<Box<StageProfiler>>`
//! — the one cold discriminant test per cycle when disabled — and wraps
//! each stage call in a [`ScopedStageTimer`], which is a no-op when no
//! profiler is attached. Accumulators are [`Cell`]s so the RAII guard only
//! needs a shared borrow, leaving the simulator free to borrow itself
//! mutably for the stage call it is timing.

use std::cell::Cell;
use std::time::Instant;

use tp_stats::Table;

/// The eight pipeline-stage modules of the detailed model, in the order
/// `step_cycle` runs them (re-dispatch runs inside dispatch when a pass is
/// active, but is its own module and its own timer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Execution-completion stage.
    Complete,
    /// Retirement stage.
    Retire,
    /// Misprediction-recovery stage.
    Recovery,
    /// Trace fetch (prediction, cache, construction).
    Fetch,
    /// Trace dispatch (allocation, renaming).
    Dispatch,
    /// Re-dispatch pass over preserved traces.
    Redispatch,
    /// Instruction issue.
    Issue,
    /// Cache/result bus arbitration.
    Buses,
}

impl Stage {
    /// All stages, in `step_cycle` order.
    pub const ALL: [Stage; 8] = [
        Stage::Complete,
        Stage::Retire,
        Stage::Recovery,
        Stage::Fetch,
        Stage::Dispatch,
        Stage::Redispatch,
        Stage::Issue,
        Stage::Buses,
    ];

    /// A short stable label (used in reports and JSON).
    pub fn label(self) -> &'static str {
        match self {
            Stage::Complete => "complete",
            Stage::Retire => "retire",
            Stage::Recovery => "recovery",
            Stage::Fetch => "fetch",
            Stage::Dispatch => "dispatch",
            Stage::Redispatch => "redispatch",
            Stage::Issue => "issue",
            Stage::Buses => "buses",
        }
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// Per-stage host wall-time accumulators.
#[derive(Debug, Default)]
pub struct StageProfiler {
    nanos: [Cell<u64>; 8],
    calls: [Cell<u64>; 8],
}

impl StageProfiler {
    /// A zeroed profiler.
    pub fn new() -> StageProfiler {
        StageProfiler::default()
    }

    /// Accumulated host nanoseconds in `stage`.
    pub fn nanos(&self, stage: Stage) -> u64 {
        self.nanos[stage.index()].get()
    }

    /// Number of timed entries into `stage`.
    pub fn calls(&self, stage: Stage) -> u64 {
        self.calls[stage.index()].get()
    }

    /// Total accumulated nanoseconds across all stages.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().map(Cell::get).sum()
    }

    fn add(&self, stage: Stage, nanos: u64) {
        let i = stage.index();
        self.nanos[i].set(self.nanos[i].get() + nanos);
        self.calls[i].set(self.calls[i].get() + 1);
    }

    /// The per-stage breakdown as a [`Table`]: total milliseconds, share
    /// of the profiled total, and mean nanoseconds per call.
    pub fn table(&self) -> Table {
        let total = self.total_nanos().max(1) as f64;
        let mut t = Table::new("stage", &["ms", "share%", "ns/call"]);
        for s in Stage::ALL {
            let ns = self.nanos(s) as f64;
            let calls = self.calls(s).max(1) as f64;
            t.row(s.label(), &[ns / 1e6, 100.0 * ns / total, ns / calls]);
        }
        t
    }

    /// The breakdown as a JSON object keyed by stage label, each value
    /// `{nanos, calls}`.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = Stage::ALL
            .iter()
            .map(|&s| {
                format!(
                    "\"{}\": {{\"nanos\": {}, \"calls\": {}}}",
                    s.label(),
                    self.nanos(s),
                    self.calls(s)
                )
            })
            .collect();
        format!("{{{}}}", rows.join(", "))
    }
}

/// RAII guard timing one stage entry: starts a host clock on construction
/// when a profiler is present, and folds the elapsed time into the
/// profiler on drop. With `None` both ends are no-ops.
#[must_use = "the timer measures until dropped"]
pub struct ScopedStageTimer<'a> {
    prof: Option<(&'a StageProfiler, Stage, Instant)>,
}

impl<'a> ScopedStageTimer<'a> {
    /// Starts timing `stage` against `prof`, if attached.
    #[inline]
    pub fn new(prof: Option<&'a StageProfiler>, stage: Stage) -> ScopedStageTimer<'a> {
        ScopedStageTimer { prof: prof.map(|p| (p, stage, Instant::now())) }
    }
}

impl Drop for ScopedStageTimer<'_> {
    fn drop(&mut self) {
        if let Some((p, stage, start)) = self.prof.take() {
            p.add(stage, start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timer_records_nothing() {
        let p = StageProfiler::new();
        {
            let _t = ScopedStageTimer::new(None, Stage::Fetch);
        }
        assert_eq!(p.total_nanos(), 0);
        assert_eq!(p.calls(Stage::Fetch), 0);
    }

    #[test]
    fn enabled_timer_accumulates() {
        let p = StageProfiler::new();
        for _ in 0..3 {
            let _t = ScopedStageTimer::new(Some(&p), Stage::Issue);
        }
        assert_eq!(p.calls(Stage::Issue), 3);
        assert_eq!(p.calls(Stage::Fetch), 0);
        // Wall time is monotone, so three timed scopes accumulate >= 0 ns
        // and the total equals the single stage's total.
        assert_eq!(p.total_nanos(), p.nanos(Stage::Issue));
    }

    #[test]
    fn stage_labels_are_unique() {
        let mut seen: Vec<&str> = Stage::ALL.iter().map(|s| s.label()).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), Stage::ALL.len());
    }
}
