//! Scalar instruments: monotone counters and high-watermark gauges.

/// A monotone event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Counter {
        Counter(0)
    }

    /// Adds one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Folds another counter in (merge across shards/intervals).
    pub fn merge(&mut self, other: Counter) {
        self.0 += other.0;
    }
}

/// A sampled level with its high watermark.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Gauge {
    current: u64,
    max: u64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the current level, updating the watermark.
    #[inline]
    pub fn set(&mut self, value: u64) {
        self.current = value;
        self.max = self.max.max(value);
    }

    /// Last level set.
    pub fn current(self) -> u64 {
        self.current
    }

    /// Highest level ever set.
    pub fn max(self) -> u64 {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_and_merges() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        let mut d = Counter::new();
        d.add(10);
        c.merge(d);
        assert_eq!(c.get(), 15);
    }

    #[test]
    fn gauge_tracks_watermark() {
        let mut g = Gauge::new();
        g.set(3);
        g.set(9);
        g.set(2);
        assert_eq!(g.current(), 2);
        assert_eq!(g.max(), 9);
    }
}
