//! Per-interval time-series recorder: a metric observed over fixed-width
//! cycle windows, for trend plots and phase comparison (cold vs steady vs
//! fast-forward legs of a sampled run).

/// One window of a [`SeriesRecorder`]: the mean of the samples that fell
/// inside it, plus the sample count.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeriesPoint {
    /// Window index (`cycle / window_cycles`).
    pub index: u64,
    /// Arithmetic mean of the samples in the window.
    pub mean: f64,
    /// Number of samples in the window.
    pub count: u64,
}

/// Accumulates `(cycle, value)` observations into fixed-width windows.
///
/// Windows with no samples are skipped in the output (sampled runs leave
/// holes where fast-forward legs ran), so each point carries its index.
#[derive(Clone, Debug)]
pub struct SeriesRecorder {
    window_cycles: u64,
    // (window index, sum, count) for the window currently filling.
    open: Option<(u64, u128, u64)>,
    points: Vec<SeriesPoint>,
}

impl SeriesRecorder {
    /// A recorder with the given window width in cycles (minimum 1).
    pub fn new(window_cycles: u64) -> SeriesRecorder {
        SeriesRecorder { window_cycles: window_cycles.max(1), open: None, points: Vec::new() }
    }

    /// Records one observation. Cycles must be non-decreasing; an
    /// observation for an already-flushed window is folded into the
    /// current one rather than lost.
    pub fn record(&mut self, cycle: u64, value: u64) {
        let idx = cycle / self.window_cycles;
        match &mut self.open {
            Some((open_idx, sum, count)) if *open_idx >= idx => {
                *sum += value as u128;
                *count += 1;
            }
            Some(_) => {
                self.flush();
                self.open = Some((idx, value as u128, 1));
            }
            None => self.open = Some((idx, value as u128, 1)),
        }
    }

    fn flush(&mut self) {
        if let Some((index, sum, count)) = self.open.take() {
            self.points.push(SeriesPoint { index, mean: sum as f64 / count as f64, count });
        }
    }

    /// All completed windows plus the one still filling, in order.
    pub fn points(&self) -> Vec<SeriesPoint> {
        let mut out = self.points.clone();
        if let Some((index, sum, count)) = self.open {
            out.push(SeriesPoint { index, mean: sum as f64 / count as f64, count });
        }
        out
    }

    /// Window width in cycles.
    pub fn window_cycles(&self) -> u64 {
        self.window_cycles
    }

    /// The series as a JSON array of `{index, mean, count}` objects.
    pub fn to_json(&self) -> String {
        let rows: Vec<String> = self
            .points()
            .iter()
            .map(|p| {
                format!(
                    "{{\"index\": {}, \"mean\": {:.6}, \"count\": {}}}",
                    p.index, p.mean, p.count
                )
            })
            .collect();
        format!("[{}]", rows.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_partition_samples() {
        let mut s = SeriesRecorder::new(10);
        s.record(0, 4);
        s.record(9, 6);
        s.record(10, 8);
        let p = s.points();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0], SeriesPoint { index: 0, mean: 5.0, count: 2 });
        assert_eq!(p[1], SeriesPoint { index: 1, mean: 8.0, count: 1 });
    }

    #[test]
    fn empty_windows_are_skipped() {
        let mut s = SeriesRecorder::new(10);
        s.record(5, 1);
        s.record(95, 3);
        let p = s.points();
        assert_eq!(p.len(), 2);
        assert_eq!(p[0].index, 0);
        assert_eq!(p[1].index, 9);
    }

    #[test]
    fn zero_width_window_is_clamped() {
        let s = SeriesRecorder::new(0);
        assert_eq!(s.window_cycles(), 1);
    }
}
