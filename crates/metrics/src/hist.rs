//! Fixed-layout log2-bucketed histogram with exact low buckets.
//!
//! The bucket layout is the same for every histogram (no configuration),
//! which makes [`Histogram::merge`] trivially associative and commutative:
//! merging is element-wise addition of bucket counts. Values below
//! [`EXACT_BUCKETS`] each get their own bucket (exact percentiles in the
//! common range — occupancies, trace lengths, short latencies); larger
//! values share one bucket per power of two, so a percentile read from a
//! log bucket reports the bucket's lower bound `b` and the true value `v`
//! satisfies `b <= v < 2*b` (relative error strictly below 2x).

/// Values `0..EXACT_BUCKETS` are counted exactly, one bucket each.
pub const EXACT_BUCKETS: usize = 64;

/// One log2 bucket per `floor(log2(v))` in `6..=63`.
pub const LOG_BUCKETS: usize = 58;

/// A log2-bucketed histogram of `u64` samples.
///
/// Tracks count, sum, min and max exactly alongside the bucket counts, so
/// means are exact even where percentiles are bucketed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    exact: [u64; EXACT_BUCKETS],
    log: [u64; LOG_BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            exact: [0; EXACT_BUCKETS],
            log: [0; LOG_BUCKETS],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples (weighted occupancy accounting).
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        if (value as usize) < EXACT_BUCKETS {
            self.exact[value as usize] += n;
        } else {
            self.log[(63 - value.leading_zeros()) as usize - 6] += n;
        }
        self.count += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Exact arithmetic mean; 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded sample; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `q`-th percentile (`0.0..=100.0`) as a bucket representative.
    ///
    /// Exact for values below [`EXACT_BUCKETS`]; for log buckets reports
    /// the bucket's lower bound `b`, with the true order statistic `v`
    /// satisfying `b <= v < 2*b`. Monotone non-decreasing in `q`.
    /// Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q / 100.0 * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (v, &n) in self.exact.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return v as u64;
            }
        }
        for (i, &n) in self.log.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 1u64 << (i + 6);
            }
        }
        // Unreachable with a consistent count, but degrade gracefully.
        self.max
    }

    /// Median ([`Histogram::percentile`] at 50).
    pub fn p50(&self) -> u64 {
        self.percentile(50.0)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.percentile(90.0)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.percentile(99.0)
    }

    /// Folds `other` into `self` (element-wise bucket addition).
    ///
    /// Because the bucket layout is fixed, merge is associative and
    /// commutative, and merging then reading a percentile equals reading
    /// the percentile of the concatenated sample streams.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.exact.iter_mut().zip(&other.exact) {
            *a += b;
        }
        for (a, b) in self.log.iter_mut().zip(&other.log) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Non-empty buckets as `(lower bound, width, count)`, ascending.
    /// Exact buckets have width 1; log buckets span `[lo, 2*lo)`.
    pub fn buckets(&self) -> Vec<(u64, u64, u64)> {
        let mut out = Vec::new();
        for (v, &n) in self.exact.iter().enumerate() {
            if n != 0 {
                out.push((v as u64, 1, n));
            }
        }
        for (i, &n) in self.log.iter().enumerate() {
            if n != 0 {
                let lo = 1u64 << (i + 6);
                out.push((lo, lo, n));
            }
        }
        out
    }

    /// The histogram summary as a JSON object (schema `tp-bench/metrics/v1`
    /// histogram fragment): count, mean, min/max, p50/p90/p99.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\": {}, \"mean\": {:.6}, \"min\": {}, \"max\": {}, \"p50\": {}, \"p90\": {}, \
             \"p99\": {}}}",
            self.count,
            self.mean(),
            self.min(),
            self.max(),
            self.p50(),
            self.p90(),
            self.p99()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0.0);
        assert!(h.buckets().is_empty());
    }

    #[test]
    fn exact_range_is_exact() {
        let mut h = Histogram::new();
        for v in 0..64u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 64);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 63);
        // Rank k maps straight back to value k-1.
        assert_eq!(h.percentile(100.0), 63);
        assert_eq!(h.p50(), 31);
    }

    #[test]
    fn log_bucket_boundaries() {
        let mut h = Histogram::new();
        h.record(64); // first log bucket [64, 128)
        h.record(127);
        h.record(128); // second [128, 256)
        let b = h.buckets();
        assert_eq!(b, vec![(64, 64, 2), (128, 128, 1)]);
        assert_eq!(h.max(), 128);
    }

    #[test]
    fn extreme_values() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        // Top bucket lower bound is 2^63.
        assert_eq!(h.percentile(100.0), 1u64 << 63);
    }

    #[test]
    fn record_n_weights() {
        let mut h = Histogram::new();
        h.record_n(3, 10);
        h.record_n(5, 0);
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 30);
        assert_eq!(h.max(), 3);
    }
}
