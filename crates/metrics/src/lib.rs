//! Histogram/time-series metrics layer for the trace-processor simulator.
//!
//! Splits observation into a cheap always-on core and analyses layered on
//! top, in two independent pieces:
//!
//! * **Simulated-time metrics** ([`MetricsSink`]): an event-bus sink that
//!   folds the structured event stream into derived distributions
//!   ([`Metrics`]) — recovery latency, trace residency lifetime,
//!   window/issue/bus occupancy, mispredict inter-arrival, and CGCI
//!   re-convergence distance from the static immediate post-dominator.
//!   Attaching one adds no simulator-side instrumentation (the bus already
//!   emits everything) and cannot change simulated behaviour.
//! * **Host-time profiling** ([`StageProfiler`]): RAII scoped wall-clock
//!   timers around each of the eight pipeline-stage modules, behind a
//!   single cold discriminant test per cycle when disabled.
//!
//! The building blocks — fixed-layout log2 [`Histogram`]s with exact low
//! buckets and associative merge, [`Counter`]/[`Gauge`] scalars, and the
//! per-interval [`SeriesRecorder`] — are usable on their own; the
//! `simprof` bin in `tp-bench` renders them as `tp-bench/metrics/v1`
//! reports.

pub mod counter;
pub mod hist;
pub mod profiler;
pub mod series;
pub mod sink;

pub use counter::{Counter, Gauge};
pub use hist::{Histogram, EXACT_BUCKETS, LOG_BUCKETS};
pub use profiler::{ScopedStageTimer, Stage, StageProfiler};
pub use series::{SeriesPoint, SeriesRecorder};
pub use sink::{Metrics, MetricsSink};
