//! [`MetricsSink`]: an [`EventSink`] that folds the structured event
//! stream into derived distributions — no new simulator-side
//! instrumentation, just observation of what the bus already reports.

use std::any::Any;
use std::collections::HashMap;

use tp_events::{BusChannel, CategoryMask, Event, EventSink};
use tp_stats::Table;

use crate::counter::{Counter, Gauge};
use crate::hist::Histogram;

/// The derived distributions and counters a [`MetricsSink`] accumulates.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Cycles from `RecoveryStarted` to `RecoveryApplied`/`Abandoned`.
    pub recovery_latency: Histogram,
    /// Cycles a trace stayed resident in a PE (dispatch to retire/squash;
    /// run-end drained closes are excluded — they measure the run length,
    /// not a residency).
    pub trace_residency: Histogram,
    /// Occupied-PE count per cycle (`WindowSample`).
    pub window_occupancy: Histogram,
    /// Fetch-queue depth per cycle (`WindowSample`).
    pub fetch_queue_depth: Histogram,
    /// Instructions issued per active cycle (`IssueSample`).
    pub issue_width: Histogram,
    /// Cache-bus waiters per contended cycle (`BusSample`).
    pub cache_bus_waiting: Histogram,
    /// Result-bus waiters per contended cycle (`BusSample`).
    pub result_bus_waiting: Histogram,
    /// Cycles between consecutive misprediction detections.
    pub mispredict_interarrival: Histogram,
    /// |detected re-convergence PC − static immediate post-dominator| per
    /// `CgciClosed`, for branches present in the ipdom map.
    pub reconv_distance: Histogram,
    /// `CgciClosed` events whose branch has no mapped static ipdom (e.g.
    /// return-continuation detections with no intra-function
    /// post-dominator). `reconv_distance.count() + reconv_unmapped`
    /// always equals the CGCI close count.
    pub reconv_unmapped: Counter,
    /// Peak window occupancy.
    pub window_peak: Gauge,
    /// Traces dispatched.
    pub traces_dispatched: Counter,
    /// Traces retired.
    pub traces_retired: Counter,
    /// Traces squashed (real squashes, not run-end drains).
    pub traces_squashed: Counter,
    /// Traces repaired in place (FGCI).
    pub traces_repaired: Counter,
    /// Control-independent traces preserved across a recovery.
    pub traces_preserved: Counter,
    /// Preserved traces re-renamed against corrected live-ins.
    pub traces_redispatched: Counter,
    /// Misprediction detections.
    pub mispredicts: Counter,
    /// Recoveries started.
    pub recoveries_started: Counter,
    /// Recoveries that reached their apply point.
    pub recoveries_applied: Counter,
    /// Recoveries abandoned.
    pub recoveries_abandoned: Counter,
    /// CGCI attempts opened.
    pub cgci_opened: Counter,
    /// CGCI attempts closed.
    pub cgci_closed: Counter,
}

impl Metrics {
    /// Folds another interval's metrics in. Histogram merge is exact
    /// (fixed bucket layout), counter merge is addition.
    pub fn merge(&mut self, other: &Metrics) {
        self.recovery_latency.merge(&other.recovery_latency);
        self.trace_residency.merge(&other.trace_residency);
        self.window_occupancy.merge(&other.window_occupancy);
        self.fetch_queue_depth.merge(&other.fetch_queue_depth);
        self.issue_width.merge(&other.issue_width);
        self.cache_bus_waiting.merge(&other.cache_bus_waiting);
        self.result_bus_waiting.merge(&other.result_bus_waiting);
        self.mispredict_interarrival.merge(&other.mispredict_interarrival);
        self.reconv_distance.merge(&other.reconv_distance);
        self.reconv_unmapped.merge(other.reconv_unmapped);
        self.window_peak.set(self.window_peak.max().max(other.window_peak.max()));
        self.traces_dispatched.merge(other.traces_dispatched);
        self.traces_retired.merge(other.traces_retired);
        self.traces_squashed.merge(other.traces_squashed);
        self.traces_repaired.merge(other.traces_repaired);
        self.traces_preserved.merge(other.traces_preserved);
        self.traces_redispatched.merge(other.traces_redispatched);
        self.mispredicts.merge(other.mispredicts);
        self.recoveries_started.merge(other.recoveries_started);
        self.recoveries_applied.merge(other.recoveries_applied);
        self.recoveries_abandoned.merge(other.recoveries_abandoned);
        self.cgci_opened.merge(other.cgci_opened);
        self.cgci_closed.merge(other.cgci_closed);
    }

    /// The distribution catalogue as `(name, histogram)` pairs, in report
    /// order.
    pub fn distributions(&self) -> [(&'static str, &Histogram); 9] {
        [
            ("recovery-latency", &self.recovery_latency),
            ("trace-residency", &self.trace_residency),
            ("window-occupancy", &self.window_occupancy),
            ("fetch-queue-depth", &self.fetch_queue_depth),
            ("issue-width", &self.issue_width),
            ("cache-bus-waiting", &self.cache_bus_waiting),
            ("result-bus-waiting", &self.result_bus_waiting),
            ("mispredict-interarrival", &self.mispredict_interarrival),
            ("reconv-distance", &self.reconv_distance),
        ]
    }

    /// All percentile summaries as one [`Table`] (the shared fixed-width
    /// writer also used by the attribution ledger).
    pub fn table(&self) -> Table {
        let mut t = Table::new("distribution", &["count", "mean", "p50", "p90", "p99", "max"]);
        for (name, h) in self.distributions() {
            t.row(
                name,
                &[
                    h.count() as f64,
                    h.mean(),
                    h.p50() as f64,
                    h.p90() as f64,
                    h.p99() as f64,
                    h.max() as f64,
                ],
            );
        }
        t
    }

    /// The metrics as a JSON object (the `metrics` payload of the
    /// `tp-bench/metrics/v1` document).
    pub fn to_json(&self) -> String {
        let hists: Vec<String> = self
            .distributions()
            .iter()
            .map(|(name, h)| format!("\"{name}\": {}", h.to_json()))
            .collect();
        let counters = [
            ("reconv_unmapped", self.reconv_unmapped.get()),
            ("window_peak", self.window_peak.max()),
            ("traces_dispatched", self.traces_dispatched.get()),
            ("traces_retired", self.traces_retired.get()),
            ("traces_squashed", self.traces_squashed.get()),
            ("traces_repaired", self.traces_repaired.get()),
            ("traces_preserved", self.traces_preserved.get()),
            ("traces_redispatched", self.traces_redispatched.get()),
            ("mispredicts", self.mispredicts.get()),
            ("recoveries_started", self.recoveries_started.get()),
            ("recoveries_applied", self.recoveries_applied.get()),
            ("recoveries_abandoned", self.recoveries_abandoned.get()),
            ("cgci_opened", self.cgci_opened.get()),
            ("cgci_closed", self.cgci_closed.get()),
        ];
        let counts: Vec<String> =
            counters.iter().map(|(name, v)| format!("\"{name}\": {v}")).collect();
        format!(
            "{{\"distributions\": {{{}}}, \"counters\": {{{}}}}}",
            hists.join(", "),
            counts.join(", ")
        )
    }
}

/// An [`EventSink`] deriving [`Metrics`] from the event stream.
///
/// Pure observation: attaching one never changes simulated behaviour
/// (golden statistics stay byte-identical). Open/close pairs (recovery
/// latency, trace residency) are correlated per PE; an open left dangling
/// by the end of the run is simply not counted.
pub struct MetricsSink {
    interests: CategoryMask,
    /// Static `branch_pc -> immediate post-dominator PC` map for the
    /// reconv-distance join (typically from `tp-cfg`). Empty map: every
    /// close counts as unmapped.
    ipdom: HashMap<u32, u32>,
    recovery_open: Vec<Option<u64>>,
    residency_open: Vec<Option<u64>>,
    last_mispredict: Option<u64>,
    metrics: Metrics,
}

impl Default for MetricsSink {
    fn default() -> MetricsSink {
        MetricsSink::new()
    }
}

impl MetricsSink {
    /// A sink subscribed to every category, with no ipdom map.
    pub fn new() -> MetricsSink {
        MetricsSink {
            interests: CategoryMask::ALL,
            ipdom: HashMap::new(),
            recovery_open: Vec::new(),
            residency_open: Vec::new(),
            last_mispredict: None,
            metrics: Metrics::default(),
        }
    }

    /// Supplies the static ipdom map used for the CGCI reconv-distance
    /// join.
    #[must_use]
    pub fn with_ipdom(mut self, ipdom: HashMap<u32, u32>) -> MetricsSink {
        self.ipdom = ipdom;
        self
    }

    /// Restricts the subscription to the given categories.
    #[must_use]
    pub fn with_interests(mut self, interests: CategoryMask) -> MetricsSink {
        self.interests = interests;
        self
    }

    /// The metrics accumulated so far.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Consumes the sink, returning its metrics.
    pub fn into_metrics(self) -> Metrics {
        self.metrics
    }

    fn slot(v: &mut Vec<Option<u64>>, pe: u8) -> &mut Option<u64> {
        let pe = pe as usize;
        if v.len() <= pe {
            v.resize(pe + 1, None);
        }
        &mut v[pe]
    }

    fn close_residency(&mut self, cycle: u64, pe: u8) {
        if let Some(opened) = Self::slot(&mut self.residency_open, pe).take() {
            self.metrics.trace_residency.record(cycle.saturating_sub(opened));
        }
    }
}

impl EventSink for MetricsSink {
    fn interests(&self) -> CategoryMask {
        self.interests
    }

    fn record(&mut self, cycle: u64, event: &Event) {
        let m = &mut self.metrics;
        match *event {
            Event::TraceDispatched { pe, .. } => {
                m.traces_dispatched.incr();
                *Self::slot(&mut self.residency_open, pe) = Some(cycle);
            }
            Event::TraceRetired { pe, .. } => {
                m.traces_retired.incr();
                self.close_residency(cycle, pe);
            }
            Event::TraceSquashed { pe, drained, .. } => {
                if drained {
                    // Run-end synthetic close: drop the span, it measures
                    // where the run stopped, not a residency lifetime.
                    Self::slot(&mut self.residency_open, pe).take();
                } else {
                    m.traces_squashed.incr();
                    self.close_residency(cycle, pe);
                }
            }
            Event::TraceRepaired { .. } => m.traces_repaired.incr(),
            Event::TracePreserved { .. } => m.traces_preserved.incr(),
            Event::TraceRedispatched { .. } => m.traces_redispatched.incr(),
            Event::TraceFetched { .. } => {}
            Event::MispredictDetected { .. } => {
                m.mispredicts.incr();
                if let Some(prev) = self.last_mispredict {
                    m.mispredict_interarrival.record(cycle.saturating_sub(prev));
                }
                self.last_mispredict = Some(cycle);
            }
            Event::RecoveryStarted { pe, .. } => {
                m.recoveries_started.incr();
                *Self::slot(&mut self.recovery_open, pe) = Some(cycle);
            }
            Event::RecoveryApplied { pe, .. } => {
                m.recoveries_applied.incr();
                if let Some(opened) = Self::slot(&mut self.recovery_open, pe).take() {
                    m.recovery_latency.record(cycle.saturating_sub(opened));
                }
            }
            Event::RecoveryAbandoned { pe } => {
                m.recoveries_abandoned.incr();
                if let Some(opened) = Self::slot(&mut self.recovery_open, pe).take() {
                    m.recovery_latency.record(cycle.saturating_sub(opened));
                }
            }
            Event::CgciOpened { .. } => m.cgci_opened.incr(),
            Event::CgciClosed { branch_pc, reconv_pc, .. } => {
                m.cgci_closed.incr();
                match self.ipdom.get(&branch_pc) {
                    Some(&ipdom) => m.reconv_distance.record(u64::from(reconv_pc.abs_diff(ipdom))),
                    None => m.reconv_unmapped.incr(),
                }
            }
            Event::HeadStall { .. } => {}
            Event::WindowSample { occupied, fetch_queue } => {
                m.window_occupancy.record(u64::from(occupied));
                m.fetch_queue_depth.record(u64::from(fetch_queue));
                m.window_peak.set(u64::from(occupied));
            }
            Event::IssueSample { issued, .. } => m.issue_width.record(u64::from(issued)),
            Event::BusSample { bus, waiting, .. } => match bus {
                BusChannel::Cache => m.cache_bus_waiting.record(u64::from(waiting)),
                BusChannel::Result => m.result_bus_waiting.record(u64::from(waiting)),
            },
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_events::{Category, EventBus, MispredictKind};

    #[test]
    fn residency_and_recovery_latency_pairing() {
        let mut bus = EventBus::new();
        bus.attach(Box::new(MetricsSink::new()));
        assert!(bus.wants(Category::Trace));

        bus.emit(10, Event::TraceDispatched { pe: 2, pc: 0, len: 4, cgci_insert: false });
        bus.emit(25, Event::TraceRetired { pe: 2, pc: 0, len: 4 });
        bus.emit(30, Event::TraceDispatched { pe: 2, pc: 8, len: 4, cgci_insert: false });
        bus.emit(34, Event::TraceSquashed { pe: 2, pc: 8, drained: false });
        // Drained close: span dropped.
        bus.emit(40, Event::TraceDispatched { pe: 3, pc: 16, len: 4, cgci_insert: false });
        bus.emit(90, Event::TraceSquashed { pe: 3, pc: 16, drained: true });

        bus.emit(
            50,
            Event::RecoveryStarted { pe: 1, branch_pc: 7, plan: tp_events::RecoveryPlan::Fgci },
        );
        bus.emit(57, Event::RecoveryApplied { pe: 1, branch_pc: 7 });

        let sink = bus.take::<MetricsSink>().expect("attached above");
        let m = sink.metrics();
        assert_eq!(m.trace_residency.count(), 2);
        assert_eq!(m.trace_residency.sum(), (25 - 10) + (34 - 30));
        assert_eq!(m.traces_squashed.get(), 1, "drained close is not a squash");
        assert_eq!(m.recovery_latency.count(), 1);
        assert_eq!(m.recovery_latency.max(), 7);
    }

    #[test]
    fn reconv_distance_joins_against_ipdom_map() {
        let mut sink = MetricsSink::new().with_ipdom(HashMap::from([(100, 140)]));
        let close = |branch_pc, reconv_pc| Event::CgciClosed {
            class: tp_stats::BranchClass::ForwardOther,
            heuristic: tp_stats::Heuristic::Ret,
            outcome: tp_stats::RecoveryOutcome::CgciReconverged,
            squashed: 0,
            preserved: 1,
            branch_pc,
            reconv_pc,
        };
        sink.record(5, &close(100, 140)); // exact: distance 0
        sink.record(9, &close(100, 150)); // overshoot: distance 10
        sink.record(12, &close(999, 10)); // unmapped branch
        let m = sink.metrics();
        assert_eq!(m.reconv_distance.count(), 2);
        assert_eq!(m.reconv_distance.min(), 0);
        assert_eq!(m.reconv_distance.max(), 10);
        assert_eq!(m.reconv_unmapped.get(), 1);
        assert_eq!(m.reconv_distance.count() + m.reconv_unmapped.get(), m.cgci_closed.get());
    }

    #[test]
    fn mispredict_interarrival() {
        let mut sink = MetricsSink::new();
        for cycle in [100u64, 130, 131] {
            sink.record(
                cycle,
                &Event::MispredictDetected {
                    pe: 0,
                    slot: 0,
                    pc: 4,
                    kind: MispredictKind::CondBranch,
                },
            );
        }
        let m = sink.metrics();
        assert_eq!(m.mispredict_interarrival.count(), 2);
        assert_eq!(m.mispredict_interarrival.max(), 30);
        assert_eq!(m.mispredict_interarrival.min(), 1);
    }

    #[test]
    fn merge_matches_single_stream() {
        let mut a = Metrics::default();
        let mut b = Metrics::default();
        let mut whole = Metrics::default();
        for v in 0..100u64 {
            whole.window_occupancy.record(v % 17);
            if v < 40 { &mut a } else { &mut b }.window_occupancy.record(v % 17);
        }
        a.merge(&b);
        assert_eq!(a.window_occupancy, whole.window_occupancy);
        assert_eq!(a.window_occupancy.p99(), whole.window_occupancy.p99());
    }
}
