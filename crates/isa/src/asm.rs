//! A small assembler with labels.
//!
//! [`Asm`] is the builder used throughout the repository (workloads, tests,
//! examples) to write programs: it resolves forward label references, places
//! data words, and can embed resolved instruction addresses into the data
//! image (for jump tables).

use std::collections::HashMap;
use std::fmt;

use crate::{Addr, AluOp, Cond, Inst, Pc, Program, ProgramError, Reg, Word};

/// A branch/jump target: either an already-resolved PC or a named label.
#[derive(Clone, Debug, PartialEq, Eq)]
enum Target {
    /// Kept for future use by programmatic builders; labels are the common case.
    #[allow(dead_code)]
    Pc(Pc),
    Label(String),
}

#[derive(Clone, Debug)]
enum Pending {
    Ready(Inst),
    Branch { cond: Cond, rs: Reg, rt: Reg, target: Target },
    Jump { target: Target },
    Call { target: Target },
}

#[derive(Clone, Debug)]
enum DataWord {
    Value(Word),
    LabelPc(String),
}

/// Error produced by [`Asm::assemble`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AsmError {
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A referenced label was never defined.
    UnknownLabel(String),
    /// The resolved program failed [`Program`] validation.
    Program(ProgramError),
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsmError::DuplicateLabel(l) => write!(f, "label `{l}` defined twice"),
            AsmError::UnknownLabel(l) => write!(f, "label `{l}` referenced but never defined"),
            AsmError::Program(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for AsmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AsmError::Program(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ProgramError> for AsmError {
    fn from(e: ProgramError) -> AsmError {
        AsmError::Program(e)
    }
}

/// An assembler for [`Program`]s.
///
/// # Example
///
/// ```
/// use tp_isa::{asm::Asm, Cond, Reg};
///
/// let mut a = Asm::new("count");
/// let r1 = Reg::new(1);
/// a.li(r1, 3);
/// a.label("top");
/// a.addi(r1, r1, -1);
/// a.branch(Cond::Gt, r1, Reg::ZERO, "top");
/// a.halt();
/// let program = a.assemble()?;
/// assert_eq!(program.len(), 4);
/// # Ok::<(), tp_isa::asm::AsmError>(())
/// ```
#[derive(Clone, Debug, Default)]
pub struct Asm {
    name: String,
    insts: Vec<Pending>,
    labels: HashMap<String, Pc>,
    duplicate: Option<String>,
    data: Vec<(Addr, DataWord)>,
    entry: Option<Target>,
    fresh: u64,
}

impl Asm {
    /// Creates an empty assembler for a program called `name`.
    pub fn new(name: impl Into<String>) -> Asm {
        Asm { name: name.into(), ..Asm::default() }
    }

    /// The PC of the next instruction to be emitted.
    pub fn here(&self) -> Pc {
        self.insts.len() as Pc
    }

    /// Defines `label` at the current position.
    ///
    /// Duplicate definitions are reported by [`Asm::assemble`].
    pub fn label(&mut self, label: impl Into<String>) {
        let label = label.into();
        let here = self.here();
        if self.labels.insert(label.clone(), here).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(label);
        }
    }

    /// Returns a new unique label with the given prefix.
    pub fn fresh_label(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}${}", self.fresh)
    }

    /// The PC a defined label resolves to, or `None` if the label has not
    /// been defined (yet). Useful for exporting ground-truth metadata about
    /// an emitted program after all labels have been placed.
    pub fn resolve_label(&self, label: &str) -> Option<Pc> {
        self.labels.get(label).copied()
    }

    /// Sets the program entry point to `label` (defaults to PC 0).
    pub fn set_entry(&mut self, label: impl Into<String>) {
        self.entry = Some(Target::Label(label.into()));
    }

    /// Emits a raw instruction.
    pub fn inst(&mut self, inst: Inst) {
        self.insts.push(Pending::Ready(inst));
    }

    /// Emits `rd = op(rs, rt)`.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs: Reg, rt: Reg) {
        self.inst(Inst::Alu { op, rd, rs, rt });
    }

    /// Emits `rd = op(rs, imm)`.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs: Reg, imm: i32) {
        self.inst(Inst::AluImm { op, rd, rs, imm });
    }

    /// Emits `rd = rs + rt`.
    pub fn add(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.alu(AluOp::Add, rd, rs, rt);
    }

    /// Emits `rd = rs + imm`.
    pub fn addi(&mut self, rd: Reg, rs: Reg, imm: i32) {
        self.alui(AluOp::Add, rd, rs, imm);
    }

    /// Emits `rd = imm` (load immediate).
    pub fn li(&mut self, rd: Reg, imm: i32) {
        self.alui(AluOp::Add, rd, Reg::ZERO, imm);
    }

    /// Emits a 64-bit load immediate (up to three instructions).
    pub fn li64(&mut self, rd: Reg, value: Word) {
        if let Ok(imm) = i32::try_from(value) {
            self.li(rd, imm);
            return;
        }
        // Build the value 16 bits at a time: OR immediates stay positive and
        // below 2^16, so sign extension of the immediate can never corrupt
        // already-placed high bits.
        let hi = (value >> 32) as i32;
        let lo_hi = ((value >> 16) & 0xffff) as i32;
        let lo_lo = (value & 0xffff) as i32;
        self.li(rd, hi);
        self.alui(AluOp::Shl, rd, rd, 16);
        if lo_hi != 0 {
            self.alui(AluOp::Or, rd, rd, lo_hi);
        }
        self.alui(AluOp::Shl, rd, rd, 16);
        if lo_lo != 0 {
            self.alui(AluOp::Or, rd, rd, lo_lo);
        }
    }

    /// Emits `rd = rs` (register move).
    pub fn mv(&mut self, rd: Reg, rs: Reg) {
        self.alu(AluOp::Add, rd, rs, Reg::ZERO);
    }

    /// Emits `rd = mem[base + offset]`.
    pub fn load(&mut self, rd: Reg, base: Reg, offset: i32) {
        self.inst(Inst::Load { rd, base, offset });
    }

    /// Emits `mem[base + offset] = rs`.
    pub fn store(&mut self, rs: Reg, base: Reg, offset: i32) {
        self.inst(Inst::Store { rs, base, offset });
    }

    /// Emits a conditional branch to `label`.
    pub fn branch(&mut self, cond: Cond, rs: Reg, rt: Reg, label: impl Into<String>) {
        self.insts.push(Pending::Branch { cond, rs, rt, target: Target::Label(label.into()) });
    }

    /// Emits an unconditional jump to `label`.
    pub fn jump(&mut self, label: impl Into<String>) {
        self.insts.push(Pending::Jump { target: Target::Label(label.into()) });
    }

    /// Emits a direct call to `label`.
    pub fn call(&mut self, label: impl Into<String>) {
        self.insts.push(Pending::Call { target: Target::Label(label.into()) });
    }

    /// Emits an indirect jump through `rs`.
    pub fn jump_indirect(&mut self, rs: Reg) {
        self.inst(Inst::JumpIndirect { rs });
    }

    /// Emits an indirect call through `rs`.
    pub fn call_indirect(&mut self, rs: Reg) {
        self.inst(Inst::CallIndirect { rs });
    }

    /// Emits a return.
    pub fn ret(&mut self) {
        self.inst(Inst::Ret);
    }

    /// Emits a halt.
    pub fn halt(&mut self) {
        self.inst(Inst::Halt);
    }

    /// Emits a no-op.
    pub fn nop(&mut self) {
        self.inst(Inst::Nop);
    }

    /// Places `value` at byte address `addr` in the initial data image.
    pub fn data_word(&mut self, addr: Addr, value: Word) {
        self.data.push((addr, DataWord::Value(value)));
    }

    /// Places the resolved PC of `label` (as a plain integer) at byte address
    /// `addr` in the data image. Used to build jump tables for
    /// [`Inst::JumpIndirect`].
    pub fn data_label(&mut self, addr: Addr, label: impl Into<String>) {
        self.data.push((addr, DataWord::LabelPc(label.into())));
    }

    /// Resolves all labels and produces a validated [`Program`].
    ///
    /// # Errors
    ///
    /// Returns an [`AsmError`] for duplicate/unknown labels or if the
    /// resolved program fails validation.
    pub fn assemble(self) -> Result<Program, AsmError> {
        if let Some(dup) = self.duplicate {
            return Err(AsmError::DuplicateLabel(dup));
        }
        let resolve = |t: &Target| -> Result<Pc, AsmError> {
            match t {
                Target::Pc(pc) => Ok(*pc),
                Target::Label(l) => {
                    self.labels.get(l).copied().ok_or_else(|| AsmError::UnknownLabel(l.clone()))
                }
            }
        };
        let mut insts = Vec::with_capacity(self.insts.len());
        for p in &self.insts {
            let inst = match p {
                Pending::Ready(i) => *i,
                Pending::Branch { cond, rs, rt, target } => {
                    Inst::Branch { cond: *cond, rs: *rs, rt: *rt, target: resolve(target)? }
                }
                Pending::Jump { target } => Inst::Jump { target: resolve(target)? },
                Pending::Call { target } => Inst::Call { target: resolve(target)? },
            };
            insts.push(inst);
        }
        let entry = match &self.entry {
            None => 0,
            Some(t) => resolve(t)?,
        };
        let mut data = Vec::with_capacity(self.data.len());
        for (addr, w) in &self.data {
            let value = match w {
                DataWord::Value(v) => *v,
                DataWord::LabelPc(l) => resolve(&Target::Label(l.clone()))? as Word,
            };
            data.push((*addr, value));
        }
        // Slots placed via `data_label` hold resolved instruction PCs; record
        // them as code-pointer metadata so static analysis can bound the
        // targets of indirect jumps and calls.
        let code_ptrs: Vec<Addr> = self
            .data
            .iter()
            .filter(|(_, w)| matches!(w, DataWord::LabelPc(_)))
            .map(|(addr, _)| *addr)
            .collect();
        Ok(Program::new(self.name, insts, entry, data)?.with_code_ptrs(code_ptrs)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Machine;

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut a = Asm::new("t");
        let r1 = Reg::new(1);
        a.li(r1, 2);
        a.label("top");
        a.branch(Cond::Eq, r1, Reg::ZERO, "done"); // forward reference
        a.addi(r1, r1, -1);
        a.jump("top"); // backward reference
        a.label("done");
        a.halt();
        let p = a.assemble().unwrap();
        assert!(matches!(p.insts()[1], Inst::Branch { target: 4, .. }));
        assert!(matches!(p.insts()[3], Inst::Jump { target: 1 }));
    }

    #[test]
    fn duplicate_label_is_reported() {
        let mut a = Asm::new("t");
        a.label("x");
        a.nop();
        a.label("x");
        a.halt();
        assert_eq!(a.assemble().unwrap_err(), AsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn unknown_label_is_reported() {
        let mut a = Asm::new("t");
        a.jump("nowhere");
        a.halt();
        assert_eq!(a.assemble().unwrap_err(), AsmError::UnknownLabel("nowhere".into()));
    }

    #[test]
    fn entry_label_is_used() {
        let mut a = Asm::new("t");
        a.nop();
        a.label("main");
        a.halt();
        a.set_entry("main");
        let p = a.assemble().unwrap();
        assert_eq!(p.entry(), 1);
    }

    #[test]
    fn data_label_embeds_pc() {
        let mut a = Asm::new("t");
        a.nop();
        a.label("tgt");
        a.halt();
        a.data_label(0x100, "tgt");
        a.data_word(0x108, -9);
        let p = a.assemble().unwrap();
        let data: Vec<_> = p.data().collect();
        assert_eq!(data, vec![(0x100, 1), (0x108, -9)]);
        // The jump-table slot is recorded as code-pointer metadata; the plain
        // data word is not.
        assert_eq!(p.code_ptrs().collect::<Vec<_>>(), vec![0x100]);
    }

    #[test]
    fn resolve_label_reads_the_symbol_table() {
        let mut a = Asm::new("t");
        a.nop();
        a.label("tgt");
        a.halt();
        assert_eq!(a.resolve_label("tgt"), Some(1));
        assert_eq!(a.resolve_label("missing"), None);
    }

    #[test]
    fn fresh_labels_are_unique() {
        let mut a = Asm::new("t");
        let l1 = a.fresh_label("x");
        let l2 = a.fresh_label("x");
        assert_ne!(l1, l2);
    }

    #[test]
    fn li64_materializes_large_constants() {
        for value in [0i64, -1, 1, i64::MAX, i64::MIN, 0x1234_5678_9abc_def0, -48] {
            let mut a = Asm::new("t");
            let r1 = Reg::new(1);
            a.li64(r1, value);
            a.halt();
            let p = a.assemble().unwrap();
            let mut m = Machine::new(&p);
            m.run(10).unwrap();
            assert_eq!(m.reg(r1), value, "li64 of {value:#x}");
        }
    }

    #[test]
    fn error_display() {
        assert!(AsmError::DuplicateLabel("a".into()).to_string().contains("twice"));
        assert!(AsmError::UnknownLabel("b".into()).to_string().contains("never defined"));
    }
}
