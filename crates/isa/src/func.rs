//! The functional (architectural) simulator.
//!
//! [`Machine`] executes a [`Program`] one instruction at a time with exact
//! architectural semantics. It is the golden reference: the trace processor
//! in `tp-core` must commit exactly the state this machine produces, no
//! matter how much misspeculation and selective reissue happened along the
//! way. It is also used by the Table 5 profiling harness, which replays the
//! dynamic instruction stream through a branch predictor.

use std::collections::BTreeMap;
use std::fmt;

use crate::fxhash::FxHashMap;
use crate::{Addr, Inst, Pc, Program, Reg, Word};

/// Error produced when execution leaves the program image.
///
/// This can only happen through a dynamically-computed control transfer
/// (indirect jump/call or return) whose register operand does not hold a
/// valid instruction address, or by falling through the last instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PcOutOfRange {
    /// The invalid program counter.
    pub pc: Pc,
}

impl fmt::Display for PcOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution reached invalid pc {}", self.pc)
    }
}

impl std::error::Error for PcOutOfRange {}

/// The record of one executed instruction, as returned by [`Machine::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Step {
    /// PC of the executed instruction.
    pub pc: Pc,
    /// The executed instruction.
    pub inst: Inst,
    /// PC of the next instruction (equal to `pc` for `Halt`).
    pub next_pc: Pc,
    /// For conditional branches, whether the branch was taken.
    pub taken: Option<bool>,
    /// For loads and stores, the effective byte address.
    pub ea: Option<Addr>,
    /// Whether the machine halted on this step.
    pub halted: bool,
}

/// Summary of a [`Machine::run`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Number of instructions retired by this call.
    pub retired: u64,
    /// Whether the program reached `Halt`.
    pub halted: bool,
}

/// A normalized snapshot of architectural state.
///
/// Zero-valued memory words are omitted so that sparse representations from
/// different simulators compare equal (uninitialized memory reads as zero,
/// which makes a stored zero indistinguishable from an untouched word).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArchState {
    /// Register file contents.
    pub regs: [Word; Reg::COUNT],
    /// Non-zero memory words, keyed by word index (`addr >> 3`).
    pub mem: BTreeMap<u64, Word>,
}

/// A complete, resumable machine state, as captured by [`Machine::capture`].
///
/// Unlike [`ArchState`] (a *normalized* snapshot for equality comparison),
/// this is an exact image: the memory map carries every word the machine has
/// touched, including words a store set back to zero. A machine restored
/// from it with [`Machine::from_state`] continues the run bit-exactly —
/// the checkpoint/fast-forward subsystem is built on this guarantee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineState {
    /// Register file contents.
    pub regs: [Word; Reg::COUNT],
    /// Every touched memory word, keyed by word index (`addr >> 3`).
    pub mem: BTreeMap<u64, Word>,
    /// Program counter to resume at.
    pub pc: Pc,
    /// Whether the machine has executed a `Halt`.
    pub halted: bool,
    /// Instructions retired so far.
    pub retired: u64,
}

/// Words per memory page (matches the checkpoint format's dirty-page
/// granularity: page index = word index >> 6).
const PAGE_WORDS: usize = 64;

/// One 64-word memory page with word-granular bookkeeping bitmaps.
///
/// `touched` marks words the machine knows about (initial data image plus
/// every stored word) — the set [`Machine::capture`] must reproduce.
/// `stored` marks words written by a `Store` (or resumed already differing
/// from the initial image): only these can diverge from the program's data
/// image, so a checkpoint delta never has to scan the rest.
#[derive(Clone, Debug)]
struct Page {
    /// Page number (`word index >> 6`).
    no: u64,
    words: [Word; PAGE_WORDS],
    touched: u64,
    stored: u64,
}

impl Page {
    fn empty(no: u64) -> Page {
        Page { no, words: [0; PAGE_WORDS], touched: 0, stored: 0 }
    }
}

/// Sparse paged memory: 64-word zero-initialized pages keyed by
/// `word index >> 6`.
///
/// Pages live in a flat vector; the hash index maps page number → slot and
/// is consulted only when the one-entry lookup cache (the last page
/// touched) misses, so the hot execution loop pays one compare plus one
/// array index per access instead of a hash probe.
#[derive(Clone, Debug)]
struct PagedMem {
    pages: Vec<Page>,
    index: FxHashMap<u64, u32>,
    /// Page number of the cached slot; `u64::MAX` when nothing is cached.
    last_page: u64,
    last_slot: u32,
}

impl Default for PagedMem {
    fn default() -> PagedMem {
        PagedMem {
            pages: Vec::new(),
            index: FxHashMap::default(),
            last_page: u64::MAX,
            last_slot: 0,
        }
    }
}

impl PagedMem {
    /// Slot of `page_no` if the page exists, refreshing the lookup cache.
    #[inline]
    fn slot_of(&mut self, page_no: u64) -> Option<u32> {
        if self.last_page == page_no {
            return Some(self.last_slot);
        }
        let slot = *self.index.get(&page_no)?;
        self.last_page = page_no;
        self.last_slot = slot;
        Some(slot)
    }

    /// Reads a word (0 if untouched). Never allocates.
    #[inline]
    fn load(&mut self, word: u64) -> Word {
        match self.slot_of(word >> 6) {
            Some(s) => self.pages[s as usize].words[(word & 63) as usize],
            None => 0,
        }
    }

    /// Reads a word without refreshing the lookup cache (shared-reference
    /// inspection paths).
    fn peek(&self, word: u64) -> Word {
        let page_no = word >> 6;
        let slot = if self.last_page == page_no {
            Some(self.last_slot)
        } else {
            self.index.get(&page_no).copied()
        };
        match slot {
            Some(s) => self.pages[s as usize].words[(word & 63) as usize],
            None => 0,
        }
    }

    /// Writes a word, marking it touched and (when `stored`) dirty.
    #[inline]
    fn set(&mut self, word: u64, value: Word, stored: bool) {
        let page_no = word >> 6;
        let slot = match self.slot_of(page_no) {
            Some(s) => s,
            None => {
                let s = self.pages.len() as u32;
                self.pages.push(Page::empty(page_no));
                self.index.insert(page_no, s);
                self.last_page = page_no;
                self.last_slot = s;
                s
            }
        };
        let page = &mut self.pages[slot as usize];
        let bit = 1u64 << (word & 63);
        page.words[(word & 63) as usize] = value;
        page.touched |= bit;
        if stored {
            page.stored |= bit;
        }
    }

    /// Whether `word` is touched (in the capture image).
    fn is_touched(&self, word: u64) -> bool {
        self.index
            .get(&(word >> 6))
            .is_some_and(|&s| self.pages[s as usize].touched >> (word & 63) & 1 == 1)
    }

    /// Every touched word as `(word index, value)`, unordered.
    fn iter_touched(&self) -> impl Iterator<Item = (u64, Word)> + '_ {
        self.pages.iter().flat_map(|p| {
            (0..PAGE_WORDS)
                .filter(move |&i| p.touched >> i & 1 == 1)
                .map(move |i| ((p.no << 6) | i as u64, p.words[i]))
        })
    }

    /// Pages holding at least one stored word, ascending by page number.
    fn stored_pages(&self) -> Vec<&Page> {
        let mut pages: Vec<&Page> = self.pages.iter().filter(|p| p.stored != 0).collect();
        pages.sort_unstable_by_key(|p| p.no);
        pages
    }
}

/// The functional simulator.
///
/// # Example
///
/// ```
/// use tp_isa::{asm::Asm, func::Machine, Reg};
/// let mut a = Asm::new("store42");
/// a.li(Reg::new(1), 42);
/// a.li(Reg::new(2), 0x100);
/// a.store(Reg::new(1), Reg::new(2), 0);
/// a.halt();
/// let p = a.assemble()?;
/// let mut m = Machine::new(&p);
/// let summary = m.run(100).expect("in range");
/// assert!(summary.halted);
/// assert_eq!(m.mem_word(0x100), 42);
/// # Ok::<(), tp_isa::asm::AsmError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    regs: [Word; Reg::COUNT],
    mem: PagedMem,
    /// The program's initial data image by word index; the reference the
    /// dirty delta ([`Machine::mem_delta`]) is computed against.
    initial: FxHashMap<u64, Word>,
    pc: Pc,
    halted: bool,
    retired: u64,
}

impl<'p> Machine<'p> {
    /// Creates a machine at the program's entry point with the initial data
    /// image loaded.
    pub fn new(program: &'p Program) -> Machine<'p> {
        let mut mem = PagedMem::default();
        let mut initial = FxHashMap::default();
        for (addr, word) in program.data() {
            mem.set(addr >> 3, word, false);
            initial.insert(addr >> 3, word);
        }
        Machine {
            program,
            regs: [0; Reg::COUNT],
            mem,
            initial,
            pc: program.entry(),
            halted: false,
            retired: 0,
        }
    }

    /// Creates a machine resuming from a captured [`MachineState`].
    ///
    /// The state must have been captured from a machine running the same
    /// program (the caller is responsible for that pairing; the checkpoint
    /// format records a program fingerprint for exactly this check).
    pub fn from_state(program: &'p Program, state: MachineState) -> Machine<'p> {
        let initial: FxHashMap<u64, Word> =
            program.data().map(|(addr, word)| (addr >> 3, word)).collect();
        let mut mem = PagedMem::default();
        for (&word, &value) in &state.mem {
            // Words still holding their initial value cannot contribute to
            // a dirty delta; only resumed words that already diverged need
            // the `stored` mark.
            let stored = initial.get(&word).copied().unwrap_or(0) != value;
            mem.set(word, value, stored);
        }
        Machine {
            program,
            regs: state.regs,
            mem,
            initial,
            pc: state.pc,
            halted: state.halted,
            retired: state.retired,
        }
    }

    /// Captures the complete machine state for later [`Machine::from_state`].
    pub fn capture(&self) -> MachineState {
        MachineState {
            regs: self.regs,
            mem: self.mem.iter_touched().collect(),
            pc: self.pc,
            halted: self.halted,
            retired: self.retired,
        }
    }

    /// Iterates every touched memory word as `(word index, value)`,
    /// including words holding zero (unlike [`Machine::arch_state`]).
    pub fn mem_words(&self) -> impl Iterator<Item = (u64, Word)> + '_ {
        self.mem.iter_touched()
    }

    /// The dirty memory delta against the program's initial data image, as
    /// ascending `(word index, value)` pairs — exactly the word set a
    /// checkpoint records.
    ///
    /// Computed incrementally: only pages holding at least one stored word
    /// are visited, so the cost scales with the store working set, not
    /// with every word the machine has ever touched.
    pub fn mem_delta(&self) -> Vec<(u64, Word)> {
        let mut delta = Vec::new();
        for p in self.mem.stored_pages() {
            let mut bits = p.stored;
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let word = (p.no << 6) | i as u64;
                let value = p.words[i];
                if self.initial.get(&word).copied().unwrap_or(0) != value {
                    delta.push((word, value));
                }
            }
        }
        delta
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Current program counter.
    pub fn pc(&self) -> Pc {
        self.pc
    }

    /// Whether the machine has executed a `Halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Total instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: Reg) -> Word {
        self.regs[r.index()]
    }

    /// The full register file (a cheap copy; no memory materialization).
    pub fn regs(&self) -> [Word; Reg::COUNT] {
        self.regs
    }

    /// Reads the memory word containing byte address `addr` (0 if untouched).
    pub fn mem_word(&self, addr: Addr) -> Word {
        self.mem.peek(addr >> 3)
    }

    /// Whether the word containing byte address `addr` is in the capture
    /// image (initial data or written by a store).
    pub fn mem_touched(&self, addr: Addr) -> bool {
        self.mem.is_touched(addr >> 3)
    }

    /// Takes a normalized snapshot of the architectural state.
    pub fn arch_state(&self) -> ArchState {
        ArchState {
            regs: self.regs,
            mem: self.mem.iter_touched().filter(|&(_, w)| w != 0).collect(),
        }
    }

    /// Executes one instruction.
    ///
    /// Stepping a halted machine returns the same `Halt` record again without
    /// retiring anything.
    ///
    /// # Errors
    ///
    /// Returns [`PcOutOfRange`] if the current PC is outside the program.
    pub fn step(&mut self) -> Result<Step, PcOutOfRange> {
        let pc = self.pc;
        let inst = self.program.fetch(pc).ok_or(PcOutOfRange { pc })?;
        if self.halted {
            return Ok(Step { pc, inst, next_pc: pc, taken: None, ea: None, halted: true });
        }
        Ok(self.exec_decoded(pc, inst))
    }

    /// Executes one *pre-decoded* instruction without re-fetching it from
    /// the program image — the fast path for block-cached execution
    /// engines, with semantics identical to [`Machine::step`].
    ///
    /// The caller owns the fetch contract: `inst` must be the instruction
    /// at `pc`, `pc` must be the machine's current PC, and the machine must
    /// not be halted (all debug-asserted).
    #[inline]
    pub fn exec_decoded(&mut self, pc: Pc, inst: Inst) -> Step {
        debug_assert_eq!(pc, self.pc, "exec_decoded pc diverged from machine pc");
        debug_assert_eq!(self.program.fetch(pc), Some(inst), "exec_decoded inst mismatch");
        debug_assert!(!self.halted, "exec_decoded on a halted machine");
        self.retired += 1;
        let mut taken = None;
        let mut ea = None;
        let mut next_pc = pc.wrapping_add(1);
        match inst {
            Inst::Alu { op, rd, rs, rt } => {
                let v = op.apply(self.read(rs), self.read(rt));
                self.write(rd, v);
            }
            Inst::AluImm { op, rd, rs, imm } => {
                let v = op.apply(self.read(rs), imm as Word);
                self.write(rd, v);
            }
            Inst::Load { rd, base, offset } => {
                let addr = effective_address(self.read(base), offset);
                ea = Some(addr);
                let v = self.mem.load(addr >> 3);
                self.write(rd, v);
            }
            Inst::Store { rs, base, offset } => {
                let addr = effective_address(self.read(base), offset);
                ea = Some(addr);
                let v = self.read(rs);
                self.mem.set(addr >> 3, v, true);
            }
            Inst::Branch { cond, rs, rt, target } => {
                let t = cond.eval(self.read(rs), self.read(rt));
                taken = Some(t);
                if t {
                    next_pc = target;
                }
            }
            Inst::Jump { target } => next_pc = target,
            Inst::Call { target } => {
                self.write(Reg::RA, pc as Word + 1);
                next_pc = target;
            }
            Inst::CallIndirect { rs } => {
                let t = self.read(rs);
                self.write(Reg::RA, pc as Word + 1);
                next_pc = t as Pc;
            }
            Inst::JumpIndirect { rs } => next_pc = self.read(rs) as Pc,
            Inst::Ret => next_pc = self.read(Reg::RA) as Pc,
            Inst::Halt => {
                self.halted = true;
                next_pc = pc;
            }
            Inst::Nop => {}
        }
        self.pc = next_pc;
        Step { pc, inst, next_pc, taken, ea, halted: self.halted }
    }

    /// Runs for at most `budget` instructions or until `Halt`.
    ///
    /// # Errors
    ///
    /// Returns [`PcOutOfRange`] if execution leaves the program image.
    pub fn run(&mut self, budget: u64) -> Result<RunSummary, PcOutOfRange> {
        let start = self.retired;
        while !self.halted && self.retired - start < budget {
            self.step()?;
        }
        Ok(RunSummary { retired: self.retired - start, halted: self.halted })
    }

    #[inline]
    fn read(&self, r: Reg) -> Word {
        self.regs[r.index()]
    }

    #[inline]
    fn write(&mut self, r: Reg, v: Word) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }
}

/// Computes the effective byte address of a memory access.
///
/// Address arithmetic wraps, keeping wrong-path execution total.
#[inline]
pub fn effective_address(base: Word, offset: i32) -> Addr {
    base.wrapping_add(offset as Word) as Addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::{AluOp, Cond};

    fn run_program(build: impl FnOnce(&mut Asm)) -> Machine<'static> {
        let mut a = Asm::new("t");
        build(&mut a);
        let p = Box::leak(Box::new(a.assemble().unwrap()));
        let mut m = Machine::new(p);
        m.run(100_000).unwrap();
        m
    }

    #[test]
    fn r0_reads_zero_and_ignores_writes() {
        let m = run_program(|a| {
            a.li(Reg::ZERO, 55);
            a.alui(AluOp::Add, Reg::new(1), Reg::ZERO, 7);
            a.halt();
        });
        assert_eq!(m.reg(Reg::ZERO), 0);
        assert_eq!(m.reg(Reg::new(1)), 7);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let m = run_program(|a| {
            a.li(Reg::new(1), 0x200);
            a.li(Reg::new(2), -77);
            a.store(Reg::new(2), Reg::new(1), 8);
            a.load(Reg::new(3), Reg::new(1), 8);
            a.halt();
        });
        assert_eq!(m.reg(Reg::new(3)), -77);
        assert_eq!(m.mem_word(0x208), -77);
    }

    #[test]
    fn unaligned_access_hits_containing_word() {
        let m = run_program(|a| {
            a.li(Reg::new(1), 0x203); // not 8-aligned
            a.li(Reg::new(2), 5);
            a.store(Reg::new(2), Reg::new(1), 0);
            a.load(Reg::new(3), Reg::ZERO, 0x200);
            a.halt();
        });
        assert_eq!(m.reg(Reg::new(3)), 5);
    }

    #[test]
    fn call_and_ret() {
        let m = run_program(|a| {
            a.call("f");
            a.li(Reg::new(2), 2);
            a.halt();
            a.label("f");
            a.li(Reg::new(1), 1);
            a.ret();
        });
        assert_eq!(m.reg(Reg::new(1)), 1);
        assert_eq!(m.reg(Reg::new(2)), 2);
    }

    #[test]
    fn indirect_jump_through_data_table() {
        let m = run_program(|a| {
            a.load(Reg::new(1), Reg::ZERO, 0x100);
            a.jump_indirect(Reg::new(1));
            a.li(Reg::new(2), 111); // skipped
            a.label("tgt");
            a.li(Reg::new(3), 7);
            a.halt();
            a.data_label(0x100, "tgt");
        });
        assert_eq!(m.reg(Reg::new(2)), 0);
        assert_eq!(m.reg(Reg::new(3)), 7);
    }

    #[test]
    fn branch_taken_and_not_taken_steps() {
        let mut a = Asm::new("t");
        a.li(Reg::new(1), 1);
        a.branch(Cond::Eq, Reg::new(1), Reg::ZERO, "skip"); // not taken
        a.branch(Cond::Ne, Reg::new(1), Reg::ZERO, "skip"); // taken
        a.nop();
        a.label("skip");
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p);
        m.step().unwrap();
        let s1 = m.step().unwrap();
        assert_eq!(s1.taken, Some(false));
        assert_eq!(s1.next_pc, 2);
        let s2 = m.step().unwrap();
        assert_eq!(s2.taken, Some(true));
        assert_eq!(s2.next_pc, 4);
    }

    #[test]
    fn halt_is_sticky() {
        let mut a = Asm::new("t");
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p);
        let s = m.step().unwrap();
        assert!(s.halted);
        assert_eq!(m.retired(), 1);
        let s2 = m.step().unwrap();
        assert!(s2.halted);
        assert_eq!(m.retired(), 1); // no further retirement
    }

    #[test]
    fn run_budget_stops_infinite_loop() {
        let mut a = Asm::new("t");
        a.label("top");
        a.jump("top");
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p);
        let summary = m.run(500).unwrap();
        assert_eq!(summary.retired, 500);
        assert!(!summary.halted);
    }

    #[test]
    fn bad_indirect_target_reports_out_of_range() {
        let mut a = Asm::new("t");
        a.li(Reg::new(1), 999);
        a.jump_indirect(Reg::new(1));
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p);
        m.step().unwrap();
        m.step().unwrap();
        assert_eq!(m.step(), Err(PcOutOfRange { pc: 999 }));
    }

    #[test]
    fn arch_state_omits_zero_words() {
        let m = run_program(|a| {
            a.li(Reg::new(1), 0x300);
            a.store(Reg::ZERO, Reg::new(1), 0); // stores zero
            a.li(Reg::new(2), 9);
            a.store(Reg::new(2), Reg::new(1), 8);
            a.halt();
        });
        let st = m.arch_state();
        assert!(!st.mem.contains_key(&(0x300 >> 3)));
        assert_eq!(st.mem.get(&(0x308 >> 3)), Some(&9));
    }

    /// Capture mid-run, resume, and the resumed machine finishes in exactly
    /// the state of an uninterrupted run — including a word stored back to
    /// zero, which `arch_state` normalization would hide but `capture` must
    /// preserve.
    #[test]
    fn capture_and_resume_is_bit_exact() {
        let mut a = Asm::new("t");
        a.li(Reg::new(1), 0x200);
        a.li(Reg::new(2), 7);
        a.store(Reg::new(2), Reg::new(1), 0); // mem[0x200] = 7
        a.store(Reg::ZERO, Reg::new(1), 0); // mem[0x200] = 0 (still "touched")
        a.li(Reg::new(3), 11);
        a.store(Reg::new(3), Reg::new(1), 8);
        a.halt();
        a.data_word(0x200, 99); // overwritten by the zero store
        let p = a.assemble().unwrap();

        let mut straight = Machine::new(&p);
        straight.run(u64::MAX).unwrap();

        let mut first = Machine::new(&p);
        first.run(4).unwrap(); // stop right after the zero store
        let state = state_roundtrip(first.capture());
        assert_eq!(state.mem.get(&(0x200 >> 3)), Some(&0), "zeroed word must be captured");
        let mut resumed = Machine::from_state(&p, state);
        assert_eq!(resumed.retired(), 4);
        resumed.run(u64::MAX).unwrap();

        assert_eq!(resumed.arch_state(), straight.arch_state());
        assert_eq!(resumed.pc(), straight.pc());
        assert_eq!(resumed.retired(), straight.retired());
        assert_eq!(resumed.capture(), straight.capture());
    }

    fn state_roundtrip(s: MachineState) -> MachineState {
        // Clone through the public fields to mimic an external serializer.
        MachineState { mem: s.mem.iter().map(|(&a, &w)| (a, w)).collect(), ..s }
    }

    #[test]
    fn mem_words_includes_zeroed_words() {
        let m = run_program(|a| {
            a.li(Reg::new(1), 0x300);
            a.store(Reg::ZERO, Reg::new(1), 0);
            a.halt();
        });
        assert!(m.mem_words().any(|(w, v)| w == 0x300 >> 3 && v == 0));
    }

    #[test]
    fn exec_decoded_matches_step_in_lockstep() {
        let mut a = Asm::new("t");
        a.li(Reg::new(1), 0x200);
        a.li(Reg::new(2), 3);
        a.label("top");
        a.store(Reg::new(2), Reg::new(1), 0);
        a.load(Reg::new(3), Reg::new(1), 0);
        a.addi(Reg::new(2), Reg::new(2), -1);
        a.branch(Cond::Gt, Reg::new(2), Reg::ZERO, "top");
        a.call("f");
        a.halt();
        a.label("f");
        a.ret();
        let p = a.assemble().unwrap();
        let mut by_step = Machine::new(&p);
        let mut by_decoded = Machine::new(&p);
        while !by_step.halted() {
            let pc = by_decoded.pc();
            let inst = p.fetch(pc).unwrap();
            let a = by_step.step().unwrap();
            let b = by_decoded.exec_decoded(pc, inst);
            assert_eq!(a, b);
        }
        assert_eq!(by_step.capture(), by_decoded.capture());
    }

    #[test]
    fn mem_delta_matches_brute_force_recompute() {
        let mut a = Asm::new("t");
        a.li(Reg::new(1), 0x200);
        a.li(Reg::new(2), 7);
        a.store(Reg::new(2), Reg::new(1), 0); // fresh dirty word
        a.store(Reg::ZERO, Reg::new(1), 8); // touched, equals untouched 0: no delta
        a.li(Reg::new(3), 99);
        a.store(Reg::new(3), Reg::ZERO, 0x100); // store initial value back: no delta
        a.li(Reg::new(4), 5);
        a.store(Reg::new(4), Reg::ZERO, 0x108); // overwrite initial data
        a.halt();
        a.data_word(0x100, 99);
        a.data_word(0x108, 1);
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p);
        m.run(u64::MAX).unwrap();

        let initial: BTreeMap<u64, Word> = p.data().map(|(a, w)| (a >> 3, w)).collect();
        let brute: Vec<(u64, Word)> = m
            .capture()
            .mem
            .iter()
            .filter(|(w, v)| initial.get(w).copied().unwrap_or(0) != **v)
            .map(|(&w, &v)| (w, v))
            .collect();
        assert_eq!(m.mem_delta(), brute);
        assert_eq!(m.mem_delta(), vec![(0x108 >> 3, 5), (0x200 >> 3, 7)]);

        // A resume round-trips the delta computation too.
        let resumed = Machine::from_state(&p, m.capture());
        assert_eq!(resumed.mem_delta(), m.mem_delta());
        assert_eq!(resumed.capture(), m.capture());
    }

    #[test]
    fn initial_data_image_is_loaded() {
        let mut a = Asm::new("t");
        a.load(Reg::new(1), Reg::ZERO, 0x100);
        a.halt();
        a.data_word(0x100, 1234);
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p);
        m.run(10).unwrap();
        assert_eq!(m.reg(Reg::new(1)), 1234);
    }
}
