//! The functional (architectural) simulator.
//!
//! [`Machine`] executes a [`Program`] one instruction at a time with exact
//! architectural semantics. It is the golden reference: the trace processor
//! in `tp-core` must commit exactly the state this machine produces, no
//! matter how much misspeculation and selective reissue happened along the
//! way. It is also used by the Table 5 profiling harness, which replays the
//! dynamic instruction stream through a branch predictor.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

use crate::{Addr, Inst, Pc, Program, Reg, Word};

/// Error produced when execution leaves the program image.
///
/// This can only happen through a dynamically-computed control transfer
/// (indirect jump/call or return) whose register operand does not hold a
/// valid instruction address, or by falling through the last instruction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PcOutOfRange {
    /// The invalid program counter.
    pub pc: Pc,
}

impl fmt::Display for PcOutOfRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution reached invalid pc {}", self.pc)
    }
}

impl std::error::Error for PcOutOfRange {}

/// The record of one executed instruction, as returned by [`Machine::step`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Step {
    /// PC of the executed instruction.
    pub pc: Pc,
    /// The executed instruction.
    pub inst: Inst,
    /// PC of the next instruction (equal to `pc` for `Halt`).
    pub next_pc: Pc,
    /// For conditional branches, whether the branch was taken.
    pub taken: Option<bool>,
    /// For loads and stores, the effective byte address.
    pub ea: Option<Addr>,
    /// Whether the machine halted on this step.
    pub halted: bool,
}

/// Summary of a [`Machine::run`] call.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Number of instructions retired by this call.
    pub retired: u64,
    /// Whether the program reached `Halt`.
    pub halted: bool,
}

/// A normalized snapshot of architectural state.
///
/// Zero-valued memory words are omitted so that sparse representations from
/// different simulators compare equal (uninitialized memory reads as zero,
/// which makes a stored zero indistinguishable from an untouched word).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArchState {
    /// Register file contents.
    pub regs: [Word; Reg::COUNT],
    /// Non-zero memory words, keyed by word index (`addr >> 3`).
    pub mem: BTreeMap<u64, Word>,
}

/// A complete, resumable machine state, as captured by [`Machine::capture`].
///
/// Unlike [`ArchState`] (a *normalized* snapshot for equality comparison),
/// this is an exact image: the memory map carries every word the machine has
/// touched, including words a store set back to zero. A machine restored
/// from it with [`Machine::from_state`] continues the run bit-exactly —
/// the checkpoint/fast-forward subsystem is built on this guarantee.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineState {
    /// Register file contents.
    pub regs: [Word; Reg::COUNT],
    /// Every touched memory word, keyed by word index (`addr >> 3`).
    pub mem: BTreeMap<u64, Word>,
    /// Program counter to resume at.
    pub pc: Pc,
    /// Whether the machine has executed a `Halt`.
    pub halted: bool,
    /// Instructions retired so far.
    pub retired: u64,
}

/// The functional simulator.
///
/// # Example
///
/// ```
/// use tp_isa::{asm::Asm, func::Machine, Reg};
/// let mut a = Asm::new("store42");
/// a.li(Reg::new(1), 42);
/// a.li(Reg::new(2), 0x100);
/// a.store(Reg::new(1), Reg::new(2), 0);
/// a.halt();
/// let p = a.assemble()?;
/// let mut m = Machine::new(&p);
/// let summary = m.run(100).expect("in range");
/// assert!(summary.halted);
/// assert_eq!(m.mem_word(0x100), 42);
/// # Ok::<(), tp_isa::asm::AsmError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Machine<'p> {
    program: &'p Program,
    regs: [Word; Reg::COUNT],
    mem: HashMap<u64, Word>,
    pc: Pc,
    halted: bool,
    retired: u64,
}

impl<'p> Machine<'p> {
    /// Creates a machine at the program's entry point with the initial data
    /// image loaded.
    pub fn new(program: &'p Program) -> Machine<'p> {
        let mut mem = HashMap::new();
        for (addr, word) in program.data() {
            mem.insert(addr >> 3, word);
        }
        Machine {
            program,
            regs: [0; Reg::COUNT],
            mem,
            pc: program.entry(),
            halted: false,
            retired: 0,
        }
    }

    /// Creates a machine resuming from a captured [`MachineState`].
    ///
    /// The state must have been captured from a machine running the same
    /// program (the caller is responsible for that pairing; the checkpoint
    /// format records a program fingerprint for exactly this check).
    pub fn from_state(program: &'p Program, state: MachineState) -> Machine<'p> {
        Machine {
            program,
            regs: state.regs,
            mem: state.mem.into_iter().collect(),
            pc: state.pc,
            halted: state.halted,
            retired: state.retired,
        }
    }

    /// Captures the complete machine state for later [`Machine::from_state`].
    pub fn capture(&self) -> MachineState {
        MachineState {
            regs: self.regs,
            mem: self.mem.iter().map(|(&a, &w)| (a, w)).collect(),
            pc: self.pc,
            halted: self.halted,
            retired: self.retired,
        }
    }

    /// Iterates every touched memory word as `(word index, value)`,
    /// including words holding zero (unlike [`Machine::arch_state`]).
    pub fn mem_words(&self) -> impl Iterator<Item = (u64, Word)> + '_ {
        self.mem.iter().map(|(&a, &w)| (a, w))
    }

    /// The program being executed.
    pub fn program(&self) -> &'p Program {
        self.program
    }

    /// Current program counter.
    pub fn pc(&self) -> Pc {
        self.pc
    }

    /// Whether the machine has executed a `Halt`.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Total instructions retired so far.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Reads an architectural register.
    pub fn reg(&self, r: Reg) -> Word {
        self.regs[r.index()]
    }

    /// Reads the memory word containing byte address `addr` (0 if untouched).
    pub fn mem_word(&self, addr: Addr) -> Word {
        self.mem.get(&(addr >> 3)).copied().unwrap_or(0)
    }

    /// Takes a normalized snapshot of the architectural state.
    pub fn arch_state(&self) -> ArchState {
        ArchState {
            regs: self.regs,
            mem: self.mem.iter().filter(|(_, &w)| w != 0).map(|(&a, &w)| (a, w)).collect(),
        }
    }

    /// Executes one instruction.
    ///
    /// Stepping a halted machine returns the same `Halt` record again without
    /// retiring anything.
    ///
    /// # Errors
    ///
    /// Returns [`PcOutOfRange`] if the current PC is outside the program.
    pub fn step(&mut self) -> Result<Step, PcOutOfRange> {
        let pc = self.pc;
        let inst = self.program.fetch(pc).ok_or(PcOutOfRange { pc })?;
        if self.halted {
            return Ok(Step { pc, inst, next_pc: pc, taken: None, ea: None, halted: true });
        }
        self.retired += 1;
        let mut taken = None;
        let mut ea = None;
        let mut next_pc = pc.wrapping_add(1);
        match inst {
            Inst::Alu { op, rd, rs, rt } => {
                let v = op.apply(self.read(rs), self.read(rt));
                self.write(rd, v);
            }
            Inst::AluImm { op, rd, rs, imm } => {
                let v = op.apply(self.read(rs), imm as Word);
                self.write(rd, v);
            }
            Inst::Load { rd, base, offset } => {
                let addr = effective_address(self.read(base), offset);
                ea = Some(addr);
                let v = self.mem.get(&(addr >> 3)).copied().unwrap_or(0);
                self.write(rd, v);
            }
            Inst::Store { rs, base, offset } => {
                let addr = effective_address(self.read(base), offset);
                ea = Some(addr);
                let v = self.read(rs);
                self.mem.insert(addr >> 3, v);
            }
            Inst::Branch { cond, rs, rt, target } => {
                let t = cond.eval(self.read(rs), self.read(rt));
                taken = Some(t);
                if t {
                    next_pc = target;
                }
            }
            Inst::Jump { target } => next_pc = target,
            Inst::Call { target } => {
                self.write(Reg::RA, pc as Word + 1);
                next_pc = target;
            }
            Inst::CallIndirect { rs } => {
                let t = self.read(rs);
                self.write(Reg::RA, pc as Word + 1);
                next_pc = t as Pc;
            }
            Inst::JumpIndirect { rs } => next_pc = self.read(rs) as Pc,
            Inst::Ret => next_pc = self.read(Reg::RA) as Pc,
            Inst::Halt => {
                self.halted = true;
                next_pc = pc;
            }
            Inst::Nop => {}
        }
        self.pc = next_pc;
        Ok(Step { pc, inst, next_pc, taken, ea, halted: self.halted })
    }

    /// Runs for at most `budget` instructions or until `Halt`.
    ///
    /// # Errors
    ///
    /// Returns [`PcOutOfRange`] if execution leaves the program image.
    pub fn run(&mut self, budget: u64) -> Result<RunSummary, PcOutOfRange> {
        let start = self.retired;
        while !self.halted && self.retired - start < budget {
            self.step()?;
        }
        Ok(RunSummary { retired: self.retired - start, halted: self.halted })
    }

    #[inline]
    fn read(&self, r: Reg) -> Word {
        self.regs[r.index()]
    }

    #[inline]
    fn write(&mut self, r: Reg, v: Word) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }
}

/// Computes the effective byte address of a memory access.
///
/// Address arithmetic wraps, keeping wrong-path execution total.
#[inline]
pub fn effective_address(base: Word, offset: i32) -> Addr {
    base.wrapping_add(offset as Word) as Addr
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Asm;
    use crate::{AluOp, Cond};

    fn run_program(build: impl FnOnce(&mut Asm)) -> Machine<'static> {
        let mut a = Asm::new("t");
        build(&mut a);
        let p = Box::leak(Box::new(a.assemble().unwrap()));
        let mut m = Machine::new(p);
        m.run(100_000).unwrap();
        m
    }

    #[test]
    fn r0_reads_zero_and_ignores_writes() {
        let m = run_program(|a| {
            a.li(Reg::ZERO, 55);
            a.alui(AluOp::Add, Reg::new(1), Reg::ZERO, 7);
            a.halt();
        });
        assert_eq!(m.reg(Reg::ZERO), 0);
        assert_eq!(m.reg(Reg::new(1)), 7);
    }

    #[test]
    fn loads_and_stores_roundtrip() {
        let m = run_program(|a| {
            a.li(Reg::new(1), 0x200);
            a.li(Reg::new(2), -77);
            a.store(Reg::new(2), Reg::new(1), 8);
            a.load(Reg::new(3), Reg::new(1), 8);
            a.halt();
        });
        assert_eq!(m.reg(Reg::new(3)), -77);
        assert_eq!(m.mem_word(0x208), -77);
    }

    #[test]
    fn unaligned_access_hits_containing_word() {
        let m = run_program(|a| {
            a.li(Reg::new(1), 0x203); // not 8-aligned
            a.li(Reg::new(2), 5);
            a.store(Reg::new(2), Reg::new(1), 0);
            a.load(Reg::new(3), Reg::ZERO, 0x200);
            a.halt();
        });
        assert_eq!(m.reg(Reg::new(3)), 5);
    }

    #[test]
    fn call_and_ret() {
        let m = run_program(|a| {
            a.call("f");
            a.li(Reg::new(2), 2);
            a.halt();
            a.label("f");
            a.li(Reg::new(1), 1);
            a.ret();
        });
        assert_eq!(m.reg(Reg::new(1)), 1);
        assert_eq!(m.reg(Reg::new(2)), 2);
    }

    #[test]
    fn indirect_jump_through_data_table() {
        let m = run_program(|a| {
            a.load(Reg::new(1), Reg::ZERO, 0x100);
            a.jump_indirect(Reg::new(1));
            a.li(Reg::new(2), 111); // skipped
            a.label("tgt");
            a.li(Reg::new(3), 7);
            a.halt();
            a.data_label(0x100, "tgt");
        });
        assert_eq!(m.reg(Reg::new(2)), 0);
        assert_eq!(m.reg(Reg::new(3)), 7);
    }

    #[test]
    fn branch_taken_and_not_taken_steps() {
        let mut a = Asm::new("t");
        a.li(Reg::new(1), 1);
        a.branch(Cond::Eq, Reg::new(1), Reg::ZERO, "skip"); // not taken
        a.branch(Cond::Ne, Reg::new(1), Reg::ZERO, "skip"); // taken
        a.nop();
        a.label("skip");
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p);
        m.step().unwrap();
        let s1 = m.step().unwrap();
        assert_eq!(s1.taken, Some(false));
        assert_eq!(s1.next_pc, 2);
        let s2 = m.step().unwrap();
        assert_eq!(s2.taken, Some(true));
        assert_eq!(s2.next_pc, 4);
    }

    #[test]
    fn halt_is_sticky() {
        let mut a = Asm::new("t");
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p);
        let s = m.step().unwrap();
        assert!(s.halted);
        assert_eq!(m.retired(), 1);
        let s2 = m.step().unwrap();
        assert!(s2.halted);
        assert_eq!(m.retired(), 1); // no further retirement
    }

    #[test]
    fn run_budget_stops_infinite_loop() {
        let mut a = Asm::new("t");
        a.label("top");
        a.jump("top");
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p);
        let summary = m.run(500).unwrap();
        assert_eq!(summary.retired, 500);
        assert!(!summary.halted);
    }

    #[test]
    fn bad_indirect_target_reports_out_of_range() {
        let mut a = Asm::new("t");
        a.li(Reg::new(1), 999);
        a.jump_indirect(Reg::new(1));
        a.halt();
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p);
        m.step().unwrap();
        m.step().unwrap();
        assert_eq!(m.step(), Err(PcOutOfRange { pc: 999 }));
    }

    #[test]
    fn arch_state_omits_zero_words() {
        let m = run_program(|a| {
            a.li(Reg::new(1), 0x300);
            a.store(Reg::ZERO, Reg::new(1), 0); // stores zero
            a.li(Reg::new(2), 9);
            a.store(Reg::new(2), Reg::new(1), 8);
            a.halt();
        });
        let st = m.arch_state();
        assert!(!st.mem.contains_key(&(0x300 >> 3)));
        assert_eq!(st.mem.get(&(0x308 >> 3)), Some(&9));
    }

    /// Capture mid-run, resume, and the resumed machine finishes in exactly
    /// the state of an uninterrupted run — including a word stored back to
    /// zero, which `arch_state` normalization would hide but `capture` must
    /// preserve.
    #[test]
    fn capture_and_resume_is_bit_exact() {
        let mut a = Asm::new("t");
        a.li(Reg::new(1), 0x200);
        a.li(Reg::new(2), 7);
        a.store(Reg::new(2), Reg::new(1), 0); // mem[0x200] = 7
        a.store(Reg::ZERO, Reg::new(1), 0); // mem[0x200] = 0 (still "touched")
        a.li(Reg::new(3), 11);
        a.store(Reg::new(3), Reg::new(1), 8);
        a.halt();
        a.data_word(0x200, 99); // overwritten by the zero store
        let p = a.assemble().unwrap();

        let mut straight = Machine::new(&p);
        straight.run(u64::MAX).unwrap();

        let mut first = Machine::new(&p);
        first.run(4).unwrap(); // stop right after the zero store
        let state = state_roundtrip(first.capture());
        assert_eq!(state.mem.get(&(0x200 >> 3)), Some(&0), "zeroed word must be captured");
        let mut resumed = Machine::from_state(&p, state);
        assert_eq!(resumed.retired(), 4);
        resumed.run(u64::MAX).unwrap();

        assert_eq!(resumed.arch_state(), straight.arch_state());
        assert_eq!(resumed.pc(), straight.pc());
        assert_eq!(resumed.retired(), straight.retired());
        assert_eq!(resumed.capture(), straight.capture());
    }

    fn state_roundtrip(s: MachineState) -> MachineState {
        // Clone through the public fields to mimic an external serializer.
        MachineState { mem: s.mem.iter().map(|(&a, &w)| (a, w)).collect(), ..s }
    }

    #[test]
    fn mem_words_includes_zeroed_words() {
        let m = run_program(|a| {
            a.li(Reg::new(1), 0x300);
            a.store(Reg::ZERO, Reg::new(1), 0);
            a.halt();
        });
        assert!(m.mem_words().any(|(w, v)| w == 0x300 >> 3 && v == 0));
    }

    #[test]
    fn initial_data_image_is_loaded() {
        let mut a = Asm::new("t");
        a.load(Reg::new(1), Reg::ZERO, 0x100);
        a.halt();
        a.data_word(0x100, 1234);
        let p = a.assemble().unwrap();
        let mut m = Machine::new(&p);
        m.run(10).unwrap();
        assert_eq!(m.reg(Reg::new(1)), 1234);
    }
}
