//! Instruction definitions and static classification helpers.

use std::fmt;

use crate::{Pc, Reg, Word};

/// An integer ALU operation.
///
/// All operations are total: division and remainder by zero produce 0, and
/// shift amounts are masked to the low 6 bits, so wrong-path execution in the
/// timing simulator can never fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication (complex op: 6-cycle latency).
    Mul,
    /// Division; `x / 0 == 0` (complex op: 35-cycle latency).
    Div,
    /// Remainder; `x % 0 == 0` (complex op: 35-cycle latency).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Logical shift left by `rhs & 63`.
    Shl,
    /// Arithmetic shift right by `rhs & 63`.
    Shr,
    /// Set-if-less-than (signed): `(lhs < rhs) as i64`.
    Slt,
    /// Set-if-less-than (unsigned): `((lhs as u64) < (rhs as u64)) as i64`.
    /// Decoded from RV64 `sltu`/`sltiu`; the synthetic workloads never emit
    /// it.
    Sltu,
    /// Logical shift right by `rhs & 63` (zero-filling). Decoded from RV64
    /// `srl`/`srli`; [`AluOp::Shr`] stays arithmetic.
    Shru,
}

impl AluOp {
    /// Applies the operation to two operand values.
    ///
    /// # Example
    ///
    /// ```
    /// use tp_isa::AluOp;
    /// assert_eq!(AluOp::Add.apply(2, 3), 5);
    /// assert_eq!(AluOp::Div.apply(7, 0), 0); // division by zero is defined
    /// assert_eq!(AluOp::Slt.apply(-1, 0), 1);
    /// ```
    #[inline]
    pub fn apply(self, lhs: Word, rhs: Word) -> Word {
        match self {
            AluOp::Add => lhs.wrapping_add(rhs),
            AluOp::Sub => lhs.wrapping_sub(rhs),
            AluOp::Mul => lhs.wrapping_mul(rhs),
            AluOp::Div => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_div(rhs)
                }
            }
            AluOp::Rem => {
                if rhs == 0 {
                    0
                } else {
                    lhs.wrapping_rem(rhs)
                }
            }
            AluOp::And => lhs & rhs,
            AluOp::Or => lhs | rhs,
            AluOp::Xor => lhs ^ rhs,
            AluOp::Shl => lhs.wrapping_shl((rhs & 63) as u32),
            AluOp::Shr => lhs.wrapping_shr((rhs & 63) as u32),
            AluOp::Slt => (lhs < rhs) as Word,
            AluOp::Sltu => ((lhs as u64) < (rhs as u64)) as Word,
            AluOp::Shru => ((lhs as u64).wrapping_shr((rhs & 63) as u32)) as Word,
        }
    }

    /// Execution latency in cycles (MIPS R10000 values for complex ops, as in
    /// the paper's Table 1 configuration).
    #[inline]
    pub fn latency(self) -> u32 {
        match self {
            AluOp::Mul => 6,
            AluOp::Div | AluOp::Rem => 35,
            _ => 1,
        }
    }
}

/// A conditional branch condition comparing two register values.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed greater-or-equal.
    Ge,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Unsigned less-than. Decoded from RV64 `bltu`; the synthetic
    /// workloads never emit it.
    Ltu,
    /// Unsigned greater-or-equal. Decoded from RV64 `bgeu`.
    Geu,
}

impl Cond {
    /// Evaluates the condition on two operand values.
    ///
    /// # Example
    ///
    /// ```
    /// use tp_isa::Cond;
    /// assert!(Cond::Lt.eval(1, 2));
    /// assert!(!Cond::Eq.eval(1, 2));
    /// ```
    #[inline]
    pub fn eval(self, lhs: Word, rhs: Word) -> bool {
        match self {
            Cond::Eq => lhs == rhs,
            Cond::Ne => lhs != rhs,
            Cond::Lt => lhs < rhs,
            Cond::Ge => lhs >= rhs,
            Cond::Le => lhs <= rhs,
            Cond::Gt => lhs > rhs,
            Cond::Ltu => (lhs as u64) < (rhs as u64),
            Cond::Geu => (lhs as u64) >= (rhs as u64),
        }
    }

    /// The condition that is true exactly when `self` is false.
    #[inline]
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ltu => Cond::Geu,
            Cond::Geu => Cond::Ltu,
        }
    }
}

/// A single instruction.
///
/// The ISA is deliberately regular: at most two register sources, at most one
/// register destination, and control transfers that map one-to-one onto the
/// classes the paper's trace selection cares about (conditional branches,
/// direct jumps/calls, and the indirect class `jump indirect` / `call
/// indirect` / `return` at which default trace selection terminates traces).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // variant docs name every operand field
pub enum Inst {
    /// Three-register ALU operation: `rd = op(rs, rt)`.
    Alu { op: AluOp, rd: Reg, rs: Reg, rt: Reg },
    /// Register-immediate ALU operation: `rd = op(rs, imm)`.
    AluImm { op: AluOp, rd: Reg, rs: Reg, imm: i32 },
    /// Load: `rd = mem[rs + offset]` (aligned word).
    Load { rd: Reg, base: Reg, offset: i32 },
    /// Store: `mem[base + offset] = rs` (aligned word).
    Store { rs: Reg, base: Reg, offset: i32 },
    /// Conditional direct branch: `if cond(rs, rt) pc = target else pc += 1`.
    Branch { cond: Cond, rs: Reg, rt: Reg, target: Pc },
    /// Unconditional direct jump.
    Jump { target: Pc },
    /// Direct call: `r31 = pc + 1; pc = target`.
    Call { target: Pc },
    /// Indirect call: `r31 = pc + 1; pc = rs`.
    CallIndirect { rs: Reg },
    /// Indirect jump: `pc = rs` (e.g. a switch through a jump table).
    JumpIndirect { rs: Reg },
    /// Return: `pc = r31`.
    Ret,
    /// Stops the program.
    Halt,
    /// No operation.
    Nop,
}

impl Inst {
    /// Destination register written by this instruction, if any.
    ///
    /// Writes to `r0` are reported as `None` (they are architecturally
    /// discarded).
    pub fn dest(self) -> Option<Reg> {
        let d = match self {
            Inst::Alu { rd, .. } | Inst::AluImm { rd, .. } | Inst::Load { rd, .. } => rd,
            Inst::Call { .. } | Inst::CallIndirect { .. } => Reg::RA,
            _ => return None,
        };
        if d.is_zero() {
            None
        } else {
            Some(d)
        }
    }

    /// Source registers read by this instruction (up to two).
    ///
    /// Reads of `r0` are included; they always observe the value 0.
    pub fn sources(self) -> SourceRegs {
        match self {
            Inst::Alu { rs, rt, .. } => SourceRegs::two(rs, rt),
            Inst::AluImm { rs, .. } => SourceRegs::one(rs),
            Inst::Load { base, .. } => SourceRegs::one(base),
            Inst::Store { rs, base, .. } => SourceRegs::two(base, rs),
            Inst::Branch { rs, rt, .. } => SourceRegs::two(rs, rt),
            Inst::CallIndirect { rs } | Inst::JumpIndirect { rs } => SourceRegs::one(rs),
            Inst::Ret => SourceRegs::one(Reg::RA),
            _ => SourceRegs::none(),
        }
    }

    /// Whether this is a conditional branch.
    #[inline]
    pub fn is_cond_branch(self) -> bool {
        matches!(self, Inst::Branch { .. })
    }

    /// Whether this is a *backward* conditional branch at `pc` (target at or
    /// before the branch), i.e. a loop-type branch in the paper's taxonomy.
    #[inline]
    pub fn is_backward_branch(self, pc: Pc) -> bool {
        matches!(self, Inst::Branch { target, .. } if target <= pc)
    }

    /// Whether this is a *forward* conditional branch at `pc`.
    #[inline]
    pub fn is_forward_branch(self, pc: Pc) -> bool {
        matches!(self, Inst::Branch { target, .. } if target > pc)
    }

    /// Whether this is in the indirect class at which default trace selection
    /// terminates traces: jump indirect, call indirect, or return.
    #[inline]
    pub fn is_indirect(self) -> bool {
        matches!(self, Inst::JumpIndirect { .. } | Inst::CallIndirect { .. } | Inst::Ret)
    }

    /// Whether this is a return instruction.
    #[inline]
    pub fn is_return(self) -> bool {
        matches!(self, Inst::Ret)
    }

    /// Whether this instruction unconditionally redirects control flow
    /// (no fall-through to `pc + 1`).
    #[inline]
    pub fn is_unconditional_transfer(self) -> bool {
        matches!(
            self,
            Inst::Jump { .. }
                | Inst::Call { .. }
                | Inst::CallIndirect { .. }
                | Inst::JumpIndirect { .. }
                | Inst::Ret
                | Inst::Halt
        )
    }

    /// Whether this instruction may redirect control flow at all.
    #[inline]
    pub fn is_control(self) -> bool {
        self.is_cond_branch() || self.is_unconditional_transfer()
    }

    /// Whether this is a memory access (load or store).
    #[inline]
    pub fn is_mem(self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// Execution latency in cycles once issued (excluding address generation
    /// and memory access for loads/stores, which the timing model adds
    /// separately).
    pub fn latency(self) -> u32 {
        match self {
            Inst::Alu { op, .. } | Inst::AluImm { op, .. } => op.latency(),
            _ => 1,
        }
    }
}

/// The source registers of an instruction, as returned by [`Inst::sources`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SourceRegs {
    regs: [Option<Reg>; 2],
}

impl SourceRegs {
    fn none() -> SourceRegs {
        SourceRegs { regs: [None, None] }
    }

    fn one(r: Reg) -> SourceRegs {
        SourceRegs { regs: [Some(r), None] }
    }

    fn two(a: Reg, b: Reg) -> SourceRegs {
        SourceRegs { regs: [Some(a), Some(b)] }
    }

    /// Iterates over the source registers.
    pub fn iter(self) -> impl Iterator<Item = Reg> {
        self.regs.into_iter().flatten()
    }

    /// Number of register sources (0..=2).
    pub fn len(self) -> usize {
        self.regs.iter().flatten().count()
    }

    /// Whether the instruction reads no registers.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }
}

impl IntoIterator for SourceRegs {
    type Item = Reg;
    type IntoIter = std::iter::Flatten<std::array::IntoIter<Option<Reg>, 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.regs.into_iter().flatten()
    }
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Inst::Alu { op, rd, rs, rt } => write!(f, "{op:?} {rd}, {rs}, {rt}"),
            Inst::AluImm { op, rd, rs, imm } => write!(f, "{op:?}i {rd}, {rs}, {imm}"),
            Inst::Load { rd, base, offset } => write!(f, "ld {rd}, {offset}({base})"),
            Inst::Store { rs, base, offset } => write!(f, "st {rs}, {offset}({base})"),
            Inst::Branch { cond, rs, rt, target } => {
                write!(f, "b{cond:?} {rs}, {rt}, @{target}")
            }
            Inst::Jump { target } => write!(f, "j @{target}"),
            Inst::Call { target } => write!(f, "call @{target}"),
            Inst::CallIndirect { rs } => write!(f, "callr {rs}"),
            Inst::JumpIndirect { rs } => write!(f, "jr {rs}"),
            Inst::Ret => write!(f, "ret"),
            Inst::Halt => write!(f, "halt"),
            Inst::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_ops_are_total() {
        assert_eq!(AluOp::Div.apply(5, 0), 0);
        assert_eq!(AluOp::Rem.apply(5, 0), 0);
        assert_eq!(AluOp::Shl.apply(1, 200), 1 << (200 & 63));
        assert_eq!(AluOp::Add.apply(i64::MAX, 1), i64::MIN);
        assert_eq!(AluOp::Shru.apply(-1, 63), 1);
        assert_eq!(AluOp::Shr.apply(-8, 1), -4);
        assert_eq!(AluOp::Shru.apply(-8, 1), (u64::MAX / 2 - 3) as i64);
    }

    #[test]
    fn unsigned_compares_treat_negative_as_large() {
        assert_eq!(AluOp::Sltu.apply(-1, 1), 0); // -1 is u64::MAX
        assert_eq!(AluOp::Sltu.apply(1, -1), 1);
        assert!(Cond::Geu.eval(-1, 1));
        assert!(Cond::Ltu.eval(1, -1));
        assert!(!Cond::Ltu.eval(5, 5));
        assert!(Cond::Geu.eval(5, 5));
    }

    #[test]
    fn div_min_by_minus_one_does_not_panic() {
        // i64::MIN / -1 overflows in Rust; wrapping_div must make it total.
        assert_eq!(AluOp::Div.apply(i64::MIN, -1), i64::MIN);
        assert_eq!(AluOp::Rem.apply(i64::MIN, -1), 0);
    }

    #[test]
    fn cond_negation_is_involutive_and_complementary() {
        let conds =
            [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Le, Cond::Gt, Cond::Ltu, Cond::Geu];
        for c in conds {
            assert_eq!(c.negate().negate(), c);
            for (a, b) in [(0, 0), (1, 2), (2, 1), (-5, 5)] {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b));
            }
        }
    }

    #[test]
    fn dest_hides_writes_to_r0() {
        let i = Inst::AluImm { op: AluOp::Add, rd: Reg::ZERO, rs: Reg::ZERO, imm: 1 };
        assert_eq!(i.dest(), None);
        let i = Inst::AluImm { op: AluOp::Add, rd: Reg::new(4), rs: Reg::ZERO, imm: 1 };
        assert_eq!(i.dest(), Some(Reg::new(4)));
    }

    #[test]
    fn calls_write_link_register() {
        assert_eq!(Inst::Call { target: 3 }.dest(), Some(Reg::RA));
        assert_eq!(Inst::CallIndirect { rs: Reg::new(2) }.dest(), Some(Reg::RA));
    }

    #[test]
    fn ret_reads_link_register() {
        let srcs: Vec<Reg> = Inst::Ret.sources().iter().collect();
        assert_eq!(srcs, vec![Reg::RA]);
    }

    #[test]
    fn branch_direction_classification() {
        let b = Inst::Branch { cond: Cond::Eq, rs: Reg::ZERO, rt: Reg::ZERO, target: 10 };
        assert!(b.is_forward_branch(5));
        assert!(!b.is_backward_branch(5));
        assert!(b.is_backward_branch(10)); // self-loop counts as backward
        assert!(b.is_backward_branch(15));
    }

    #[test]
    fn indirect_class_matches_paper_definition() {
        assert!(Inst::Ret.is_indirect());
        assert!(Inst::JumpIndirect { rs: Reg::new(1) }.is_indirect());
        assert!(Inst::CallIndirect { rs: Reg::new(1) }.is_indirect());
        assert!(!Inst::Jump { target: 0 }.is_indirect());
        assert!(!Inst::Call { target: 0 }.is_indirect());
    }

    #[test]
    fn complex_op_latencies_match_r10000() {
        assert_eq!(
            Inst::Alu { op: AluOp::Mul, rd: Reg::new(1), rs: Reg::new(2), rt: Reg::new(3) }
                .latency(),
            6
        );
        assert_eq!(
            Inst::AluImm { op: AluOp::Div, rd: Reg::new(1), rs: Reg::new(2), imm: 3 }.latency(),
            35
        );
        assert_eq!(Inst::Nop.latency(), 1);
    }

    #[test]
    fn source_regs_iteration() {
        let st = Inst::Store { rs: Reg::new(2), base: Reg::new(3), offset: 8 };
        let srcs: Vec<Reg> = st.sources().into_iter().collect();
        assert_eq!(srcs, vec![Reg::new(3), Reg::new(2)]);
        assert_eq!(st.sources().len(), 2);
        assert!(!st.sources().is_empty());
        assert!(Inst::Nop.sources().is_empty());
    }

    #[test]
    fn display_is_nonempty_for_all_shapes() {
        let insts = [
            Inst::Alu { op: AluOp::Add, rd: Reg::new(1), rs: Reg::new(2), rt: Reg::new(3) },
            Inst::AluImm { op: AluOp::Xor, rd: Reg::new(1), rs: Reg::new(2), imm: -4 },
            Inst::Load { rd: Reg::new(1), base: Reg::new(2), offset: 16 },
            Inst::Store { rs: Reg::new(1), base: Reg::new(2), offset: 16 },
            Inst::Branch { cond: Cond::Ne, rs: Reg::new(1), rt: Reg::new(2), target: 7 },
            Inst::Jump { target: 9 },
            Inst::Call { target: 2 },
            Inst::CallIndirect { rs: Reg::new(5) },
            Inst::JumpIndirect { rs: Reg::new(5) },
            Inst::Ret,
            Inst::Halt,
            Inst::Nop,
        ];
        for i in insts {
            assert!(!i.to_string().is_empty());
        }
    }
}
