//! Instruction set architecture for the trace processor reproduction.
//!
//! The paper evaluated SPEC95 binaries compiled for the SimpleScalar PISA
//! instruction set. This crate provides the equivalent substrate built from
//! scratch: a small, regular RISC ISA together with
//!
//! * an [`asm::Asm`] assembler with labels (used by `tp-workloads` to write
//!   the synthetic benchmark kernels),
//! * a [`func::Machine`] functional (architectural) simulator that serves as
//!   the golden reference for the cycle-level trace processor in `tp-core`,
//! * a [`synth`] structured random-program generator used by property tests.
//!
//! Programs are word-indexed: a [`Pc`] is an index into [`Program::insts`],
//! and every instruction occupies one slot. Memory is an array of 64-bit
//! words addressed by byte addresses; loads and stores access the aligned
//! word containing the effective address, which keeps execution *total* —
//! wrong-path instructions in the timing simulator execute with garbage
//! values and must never fault.
//!
//! # Example
//!
//! ```
//! use tp_isa::{asm::Asm, func::Machine, Cond, Reg};
//!
//! let mut a = Asm::new("double-loop");
//! let (r1, r2) = (Reg::new(1), Reg::new(2));
//! a.li(r1, 0); // accumulator
//! a.li(r2, 5); // trip count
//! a.label("loop");
//! a.addi(r1, r1, 3);
//! a.addi(r2, r2, -1);
//! a.branch(Cond::Gt, r2, Reg::ZERO, "loop");
//! a.halt();
//! let program = a.assemble().expect("valid program");
//!
//! let mut m = Machine::new(&program);
//! m.run(1_000).expect("program runs to completion");
//! assert_eq!(m.reg(r1), 15);
//! ```

pub mod asm;
pub mod func;
pub mod fxhash;
pub mod inst;
pub mod program;
pub mod reg;
pub mod synth;

pub use inst::{AluOp, Cond, Inst};
pub use program::{Program, ProgramError};
pub use reg::Reg;

/// The frontend (source ISA) a [`Program`] was produced by.
///
/// Programs are always *executed* as the internal [`Inst`] stream; the
/// frontend records where that stream came from. The distinction matters
/// wherever a program is looked up or resumed by identity — workload
/// registries keep one namespace per frontend, and checkpoints record the
/// kind so a capture can never boot against the wrong ISA's workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Frontend {
    /// Hand-assembled internal-ISA programs (the synthetic kernels).
    Synth,
    /// Programs decoded from 32-bit RV64 encodings by the `tp-rv` frontend.
    Rv64,
}

impl Frontend {
    /// Short stable label (used in reports and wire formats' error text).
    pub fn name(self) -> &'static str {
        match self {
            Frontend::Synth => "synth",
            Frontend::Rv64 => "rv64",
        }
    }

    /// Stable one-byte wire code.
    pub fn code(self) -> u8 {
        match self {
            Frontend::Synth => 0,
            Frontend::Rv64 => 1,
        }
    }

    /// Decodes a wire code (inverse of [`Frontend::code`]).
    pub fn from_code(code: u8) -> Option<Frontend> {
        match code {
            0 => Some(Frontend::Synth),
            1 => Some(Frontend::Rv64),
            _ => None,
        }
    }
}

impl std::fmt::Display for Frontend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A program counter: an index into [`Program::insts`].
pub type Pc = u32;

/// An architectural 64-bit integer value.
pub type Word = i64;

/// A byte address. Loads/stores access the aligned 8-byte word containing
/// the address (i.e. the word with index `addr >> 3`).
pub type Addr = u64;

/// Base byte address used by convention for workload data segments.
pub const DATA_BASE: Addr = 0x1_0000;

/// Base byte address used by convention for the software stack.
pub const STACK_BASE: Addr = 0x8_0000;
