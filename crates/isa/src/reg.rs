//! Architectural register names.

use std::fmt;

/// An architectural register, `r0`..`r31`.
///
/// `r0` is hardwired to zero (writes are discarded), matching the MIPS
/// convention used by the paper's SimpleScalar substrate. `r31` is the link
/// register written by [`Inst::Call`](crate::Inst::Call) and read by
/// [`Inst::Ret`](crate::Inst::Ret); `r30` is reserved by convention for the
/// software stack pointer.
///
/// # Example
///
/// ```
/// use tp_isa::Reg;
/// let r = Reg::new(5);
/// assert_eq!(r.index(), 5);
/// assert_eq!(r.to_string(), "r5");
/// assert!(Reg::ZERO.is_zero());
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// Number of architectural registers.
    pub const COUNT: usize = 32;

    /// The hardwired-zero register `r0`.
    pub const ZERO: Reg = Reg(0);

    /// The link register `r31`, written by calls and read by returns.
    pub const RA: Reg = Reg(31);

    /// The stack pointer register `r30` (software convention).
    pub const SP: Reg = Reg(30);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[inline]
    pub const fn new(index: u8) -> Reg {
        assert!((index as usize) < Reg::COUNT, "register index out of range");
        Reg(index)
    }

    /// The register's index, `0..32`.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the hardwired-zero register `r0`.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Iterates over all 32 architectural registers.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..Reg::COUNT as u8).map(Reg)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_have_expected_indices() {
        assert_eq!(Reg::ZERO.index(), 0);
        assert_eq!(Reg::RA.index(), 31);
        assert_eq!(Reg::SP.index(), 30);
    }

    #[test]
    fn zero_detection() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::new(1).is_zero());
    }

    #[test]
    fn all_yields_each_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        assert_eq!(regs[0], Reg::ZERO);
        assert_eq!(regs[31], Reg::RA);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = Reg::new(32);
    }

    #[test]
    fn display_formats_with_r_prefix() {
        assert_eq!(Reg::new(17).to_string(), "r17");
        assert_eq!(format!("{:?}", Reg::new(3)), "r3");
    }
}
