//! A minimal Fx-style hasher for hot simulator maps.
//!
//! The cycle-level simulator keys several per-event maps by small dense
//! identifiers (physical register ids, word addresses). `std`'s default
//! SipHash is DoS-resistant but costs tens of cycles per lookup, which is
//! pure overhead for process-internal keys that an adversary never
//! controls. This is the classic multiply-xor "FxHash" used by rustc,
//! reimplemented here because the build is offline (no external crates).
//!
//! Not suitable for attacker-controlled keys; do not use it outside the
//! simulator's internal bookkeeping.
//!
//! # Example
//!
//! ```
//! use tp_isa::fxhash::FxHashMap;
//!
//! let mut m: FxHashMap<u64, &str> = FxHashMap::default();
//! m.insert(0x40, "word");
//! assert_eq!(m.get(&0x40), Some(&"word"));
//! ```

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit multiply-xor hasher (rustc's FxHasher).
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

/// Knuth's multiplicative constant (golden-ratio derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_one<T: Hash>(v: T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_and_distinguishing() {
        assert_eq!(hash_one(42u64), hash_one(42u64));
        assert_ne!(hash_one(42u64), hash_one(43u64));
        assert_ne!(hash_one(0u64), hash_one(1u64));
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, u32> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert(i, i * 3);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&i), Some(&(i * 3)));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn small_keys_spread_across_low_bits() {
        // HashMap uses the low bits of the hash for bucketing; sequential
        // ids must not collapse onto a few buckets.
        let mut low: FxHashSet<u64> = FxHashSet::default();
        for i in 0..64u64 {
            low.insert(hash_one(i) & 63);
        }
        assert!(low.len() > 16, "low bits poorly distributed: {}", low.len());
    }

    #[test]
    fn byte_stream_matches_chunked_words() {
        let mut a = FxHasher::default();
        a.write(&[1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let mut b = FxHasher::default();
        b.write_u64(u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
        b.write_u64(9);
        assert_eq!(a.finish(), b.finish());
    }
}
