//! Structured random program generator.
//!
//! Property tests throughout the workspace compare the trace processor's
//! committed state against the functional simulator on randomly generated
//! programs. The generator only emits *structured*, provably terminating
//! control flow — bounded counted loops, forward hammocks, acyclic calls —
//! yet exercises every ISA feature: data-dependent branches, nested regions,
//! call/return through a software stack, loads/stores with overlapping
//! addresses, and complex-latency arithmetic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::asm::Asm;
use crate::{AluOp, Cond, Program, Reg, DATA_BASE, STACK_BASE};

/// Configuration for the random program generator.
#[derive(Clone, Debug)]
pub struct SynthConfig {
    /// Number of functions (acyclic call graph; function `i` may only call
    /// functions with larger indices).
    pub functions: usize,
    /// Structured items (blocks, hammocks, loops, calls) per function body.
    pub items_per_function: usize,
    /// Maximum straight-line operations per basic block.
    pub max_block_ops: usize,
    /// Maximum nesting depth of hammocks/loops.
    pub max_depth: usize,
    /// Maximum trip count for counted loops.
    pub max_loop_trip: u32,
    /// Number of 64-bit words in the random data region.
    pub data_words: usize,
    /// Whether functions may call other functions.
    pub allow_calls: bool,
    /// Whether loops may be generated.
    pub allow_loops: bool,
}

impl Default for SynthConfig {
    fn default() -> SynthConfig {
        SynthConfig {
            functions: 4,
            items_per_function: 6,
            max_block_ops: 6,
            max_depth: 3,
            max_loop_trip: 6,
            data_words: 64,
            allow_calls: true,
            allow_loops: true,
        }
    }
}

impl SynthConfig {
    /// A small configuration for fast property tests.
    pub fn small() -> SynthConfig {
        SynthConfig {
            functions: 2,
            items_per_function: 4,
            max_block_ops: 4,
            max_depth: 2,
            max_loop_trip: 4,
            data_words: 16,
            ..SynthConfig::default()
        }
    }

    /// A larger configuration producing a few thousand dynamic instructions.
    pub fn large() -> SynthConfig {
        SynthConfig {
            functions: 6,
            items_per_function: 10,
            max_block_ops: 8,
            max_depth: 3,
            max_loop_trip: 8,
            data_words: 128,
            ..SynthConfig::default()
        }
    }
}

// Register conventions used by generated code. Scratch computation uses
// r1..=r9; loop counters use r20 + depth; r16 holds the data-region base.
const SCRATCH_LO: u8 = 1;
const SCRATCH_HI: u8 = 9;
const DATA_PTR: Reg = Reg::new(16);
const LOOP_BASE: u8 = 20;

struct Gen<'a> {
    rng: StdRng,
    cfg: &'a SynthConfig,
    asm: Asm,
}

/// Generates a random, terminating, validated program.
///
/// The same `(config, seed)` pair always yields the same program.
///
/// # Example
///
/// ```
/// use tp_isa::{func::Machine, synth};
/// let p = synth::generate(&synth::SynthConfig::small(), 42);
/// let mut m = Machine::new(&p);
/// let summary = m.run(1_000_000).expect("stays in range");
/// assert!(summary.halted, "generated programs always halt");
/// ```
pub fn generate(config: &SynthConfig, seed: u64) -> Program {
    let mut g = Gen {
        rng: StdRng::seed_from_u64(seed),
        cfg: config,
        asm: Asm::new(format!("synth-{seed}")),
    };
    g.emit_program();
    g.asm.assemble().expect("generated program is always valid")
}

impl Gen<'_> {
    fn scratch(&mut self) -> Reg {
        Reg::new(self.rng.gen_range(SCRATCH_LO..=SCRATCH_HI))
    }

    fn data_offset(&mut self) -> i32 {
        8 * self.rng.gen_range(0..self.cfg.data_words as i32)
    }

    fn emit_program(&mut self) {
        // Entry: set up stack and data pointers, seed scratch registers,
        // call the root function, halt.
        self.asm.li64(Reg::SP, STACK_BASE as i64);
        self.asm.li64(DATA_PTR, DATA_BASE as i64);
        for r in SCRATCH_LO..=SCRATCH_HI {
            let imm = self.rng.gen_range(-64..64);
            self.asm.li(Reg::new(r), imm);
        }
        self.asm.call("fn0");
        self.asm.halt();

        let functions = self.cfg.functions.max(1);
        for f in 0..functions {
            self.emit_function(f, functions);
        }

        // Random data region.
        for i in 0..self.cfg.data_words {
            let w = self.rng.gen_range(-1000..1000);
            self.asm.data_word(DATA_BASE + 8 * i as u64, w);
        }
    }

    fn emit_function(&mut self, index: usize, functions: usize) {
        self.asm.label(format!("fn{index}"));
        // Prologue: push the return address.
        self.asm.addi(Reg::SP, Reg::SP, -8);
        self.asm.store(Reg::RA, Reg::SP, 0);

        let items = self.cfg.items_per_function.max(1);
        for _ in 0..items {
            self.emit_item(index, functions, 0);
        }

        // Epilogue: pop the return address and return.
        self.asm.load(Reg::RA, Reg::SP, 0);
        self.asm.addi(Reg::SP, Reg::SP, 8);
        self.asm.ret();
    }

    fn emit_item(&mut self, func: usize, functions: usize, depth: usize) {
        let can_nest = depth < self.cfg.max_depth;
        let can_call = self.cfg.allow_calls && func + 1 < functions;
        let can_loop = self.cfg.allow_loops && can_nest;
        match self.rng.gen_range(0..100) {
            0..=39 => self.emit_block(),
            40..=69 if can_nest => self.emit_hammock(func, functions, depth),
            70..=89 if can_loop => self.emit_loop(func, functions, depth),
            90..=99 if can_call => {
                let callee = self.rng.gen_range(func + 1..functions);
                self.asm.call(format!("fn{callee}"));
            }
            _ => self.emit_block(),
        }
    }

    fn emit_block(&mut self) {
        let n = self.rng.gen_range(1..=self.cfg.max_block_ops.max(1));
        for _ in 0..n {
            self.emit_op();
        }
    }

    fn emit_op(&mut self) {
        match self.rng.gen_range(0..100) {
            // Plain ALU: weighted toward simple ops; mul/div appear rarely.
            0..=54 => {
                let op = match self.rng.gen_range(0..20) {
                    0 => AluOp::Mul,
                    1 => AluOp::Div,
                    2 => AluOp::Rem,
                    3 | 4 => AluOp::Xor,
                    5 | 6 => AluOp::And,
                    7 | 8 => AluOp::Or,
                    9 => AluOp::Slt,
                    10 => AluOp::Sub,
                    _ => AluOp::Add,
                };
                let (rd, rs, rt) = (self.scratch(), self.scratch(), self.scratch());
                if self.rng.gen_bool(0.5) {
                    self.asm.alu(op, rd, rs, rt);
                } else {
                    let imm = self.rng.gen_range(-32..32);
                    self.asm.alui(op, rd, rs, imm);
                }
            }
            55..=79 => {
                let rd = self.scratch();
                let off = self.data_offset();
                self.asm.load(rd, DATA_PTR, off);
            }
            _ => {
                let rs = self.scratch();
                let off = self.data_offset();
                self.asm.store(rs, DATA_PTR, off);
            }
        }
    }

    fn cond(&mut self) -> (Cond, Reg, Reg) {
        let cond = match self.rng.gen_range(0..6) {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Lt,
            3 => Cond::Ge,
            4 => Cond::Le,
            _ => Cond::Gt,
        };
        let rs = self.scratch();
        let rt = if self.rng.gen_bool(0.3) { Reg::ZERO } else { self.scratch() };
        (cond, rs, rt)
    }

    fn emit_hammock(&mut self, func: usize, functions: usize, depth: usize) {
        let else_l = self.asm.fresh_label("else");
        let end_l = self.asm.fresh_label("end");
        let has_else = self.rng.gen_bool(0.5);
        let (cond, rs, rt) = self.cond();

        // Make roughly half of hammock conditions data-dependent so branch
        // predictors mispredict them.
        if self.rng.gen_bool(0.5) {
            let off = self.data_offset();
            self.asm.load(rs, DATA_PTR, off);
        }

        self.asm.branch(cond, rs, rt, if has_else { else_l.clone() } else { end_l.clone() });
        self.emit_item(func, functions, depth + 1);
        if has_else {
            self.asm.jump(end_l.clone());
            self.asm.label(else_l);
            self.emit_item(func, functions, depth + 1);
        }
        self.asm.label(end_l);
    }

    fn emit_loop(&mut self, func: usize, functions: usize, depth: usize) {
        let counter = Reg::new(LOOP_BASE + depth as u8);
        let top = self.asm.fresh_label("loop");

        if self.rng.gen_bool(0.5) {
            // Constant trip count.
            let trip = self.rng.gen_range(1..=self.cfg.max_loop_trip as i32);
            self.asm.li(counter, trip);
        } else {
            // Data-dependent trip count in 1..=4: unpredictable loop exits,
            // the bread and butter of the MLB heuristic.
            let off = self.data_offset();
            self.asm.load(counter, DATA_PTR, off);
            self.asm.alui(AluOp::And, counter, counter, 3);
            self.asm.addi(counter, counter, 1);
        }

        self.asm.label(top.clone());
        self.emit_item(func, functions, depth + 1);
        self.asm.addi(counter, counter, -1);
        self.asm.branch(Cond::Gt, counter, Reg::ZERO, top);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::Machine;

    #[test]
    fn generation_is_deterministic() {
        let cfg = SynthConfig::default();
        let a = generate(&cfg, 7);
        let b = generate(&cfg, 7);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SynthConfig::default();
        let a = generate(&cfg, 1);
        let b = generate(&cfg, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn generated_programs_halt_under_budget() {
        let cfg = SynthConfig::default();
        for seed in 0..25 {
            let p = generate(&cfg, seed);
            let mut m = Machine::new(&p);
            let summary = m.run(2_000_000).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(summary.halted, "seed {seed} did not halt");
            assert!(summary.retired > 10, "seed {seed} trivially small");
        }
    }

    #[test]
    fn large_config_produces_branches_and_calls() {
        let p = generate(&SynthConfig::large(), 3);
        assert!(p.static_cond_branches() > 5);
        assert!(p.insts().iter().any(|i| i.is_return()));
    }

    #[test]
    fn no_calls_config_has_single_function_reachable() {
        let cfg = SynthConfig { allow_calls: false, ..SynthConfig::small() };
        let p = generate(&cfg, 11);
        let mut m = Machine::new(&p);
        assert!(m.run(1_000_000).unwrap().halted);
    }

    #[test]
    fn no_loops_config_halts_quickly() {
        let cfg = SynthConfig { allow_loops: false, ..SynthConfig::small() };
        let p = generate(&cfg, 13);
        let mut m = Machine::new(&p);
        let s = m.run(100_000).unwrap();
        assert!(s.halted);
    }
}
