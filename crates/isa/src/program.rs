//! Programs: instruction images plus initial data.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::{Addr, Inst, Pc, Word};

/// A complete executable program: an instruction image, an entry point and an
/// initial data image.
///
/// Programs are produced by the [`asm::Asm`](crate::asm::Asm) assembler (or
/// the [`synth`](crate::synth) generator) and consumed by both the functional
/// simulator and the trace processor. [`Program::validate`] checks the static
/// well-formedness invariants that the rest of the system relies on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    name: String,
    insts: Vec<Inst>,
    entry: Pc,
    data: BTreeMap<Addr, Word>,
    /// Data-image addresses whose words are known to hold code pointers
    /// (instruction PCs): jump-table slots and function-pointer slots. Pure
    /// metadata for static analysis — execution and checkpoint fingerprints
    /// ignore it.
    code_ptrs: BTreeSet<Addr>,
}

/// Error returned when a [`Program`] fails validation.
#[derive(Clone, Debug, PartialEq, Eq)]
#[allow(missing_docs)] // variant docs name every field
pub enum ProgramError {
    /// The program contains no instructions.
    Empty,
    /// The entry point is out of range.
    EntryOutOfRange { entry: Pc, len: usize },
    /// A direct control transfer targets a PC outside the program.
    TargetOutOfRange { pc: Pc, target: Pc, len: usize },
    /// The program exceeds the maximum supported size (2^24 instructions).
    TooLarge { len: usize },
    /// A data-image address is not 8-byte aligned.
    UnalignedData { addr: Addr },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::EntryOutOfRange { entry, len } => {
                write!(f, "entry point {entry} out of range for program of {len} instructions")
            }
            ProgramError::TargetOutOfRange { pc, target, len } => {
                write!(
                    f,
                    "instruction at {pc} targets {target}, out of range for {len} instructions"
                )
            }
            ProgramError::TooLarge { len } => {
                write!(f, "program of {len} instructions is too large")
            }
            ProgramError::UnalignedData { addr } => {
                write!(f, "data image address {addr:#x} is not 8-byte aligned")
            }
        }
    }
}

impl std::error::Error for ProgramError {}

impl Program {
    /// Maximum supported program size in instructions.
    pub const MAX_LEN: usize = 1 << 24;

    /// Creates and validates a program.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if the program is empty, too large, has an
    /// out-of-range entry point or direct branch target, or has an unaligned
    /// data-image address.
    pub fn new(
        name: impl Into<String>,
        insts: Vec<Inst>,
        entry: Pc,
        data: impl IntoIterator<Item = (Addr, Word)>,
    ) -> Result<Program, ProgramError> {
        let program = Program {
            name: name.into(),
            insts,
            entry,
            data: data.into_iter().collect(),
            code_ptrs: BTreeSet::new(),
        };
        program.validate()?;
        Ok(program)
    }

    /// Attaches code-pointer metadata: the data-image addresses whose words
    /// are resolved instruction PCs (jump-table and function-pointer slots).
    ///
    /// Both assemblers record these automatically (synth `data_label`, RV64
    /// `.wordpc`); static analysis uses them to bound indirect-transfer
    /// targets. Addresses must name existing data words.
    ///
    /// # Errors
    ///
    /// Returns [`ProgramError::UnalignedData`] if an address is not 8-byte
    /// aligned or does not name a word present in the data image.
    pub fn with_code_ptrs(
        mut self,
        addrs: impl IntoIterator<Item = Addr>,
    ) -> Result<Program, ProgramError> {
        for addr in addrs {
            if addr % 8 != 0 || !self.data.contains_key(&addr) {
                return Err(ProgramError::UnalignedData { addr });
            }
            self.code_ptrs.insert(addr);
        }
        Ok(self)
    }

    fn validate(&self) -> Result<(), ProgramError> {
        let len = self.insts.len();
        if len == 0 {
            return Err(ProgramError::Empty);
        }
        if len > Program::MAX_LEN {
            return Err(ProgramError::TooLarge { len });
        }
        if self.entry as usize >= len {
            return Err(ProgramError::EntryOutOfRange { entry: self.entry, len });
        }
        for (pc, inst) in self.insts.iter().enumerate() {
            let (Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target }) =
                *inst
            else {
                continue;
            };
            if target as usize >= len {
                return Err(ProgramError::TargetOutOfRange { pc: pc as Pc, target, len });
            }
        }
        for &addr in self.data.keys() {
            if addr % 8 != 0 {
                return Err(ProgramError::UnalignedData { addr });
            }
        }
        Ok(())
    }

    /// The program's name (used in reports and error messages).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction image.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program has no instructions (never true for a validated
    /// program).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The entry point.
    pub fn entry(&self) -> Pc {
        self.entry
    }

    /// The initial data image as `(byte address, word)` pairs.
    pub fn data(&self) -> impl Iterator<Item = (Addr, Word)> + '_ {
        self.data.iter().map(|(&a, &w)| (a, w))
    }

    /// Data-image addresses known to hold code pointers (see
    /// [`Program::with_code_ptrs`]), in ascending order.
    pub fn code_ptrs(&self) -> impl Iterator<Item = Addr> + '_ {
        self.code_ptrs.iter().copied()
    }

    /// Fetches the instruction at `pc`, or `None` when out of range.
    ///
    /// The timing simulator treats out-of-range fetches (which can only occur
    /// on mispredicted paths through indirect jumps) as fetch stalls.
    #[inline]
    pub fn fetch(&self, pc: Pc) -> Option<Inst> {
        self.insts.get(pc as usize).copied()
    }

    /// Whether `pc` is a valid instruction address.
    #[inline]
    pub fn contains(&self, pc: Pc) -> bool {
        (pc as usize) < self.insts.len()
    }

    /// Counts the static conditional branches in the program.
    pub fn static_cond_branches(&self) -> usize {
        self.insts.iter().filter(|i| i.is_cond_branch()).count()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "program {} (entry @{}, {} instructions)", self.name, self.entry, self.len())?;
        for (pc, inst) in self.insts.iter().enumerate() {
            writeln!(f, "{pc:6}: {inst}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Cond, Reg};

    fn nop_program(n: usize) -> Vec<Inst> {
        let mut v = vec![Inst::Nop; n];
        if n > 0 {
            v[n - 1] = Inst::Halt;
        }
        v
    }

    #[test]
    fn empty_program_is_rejected() {
        assert_eq!(Program::new("t", vec![], 0, []), Err(ProgramError::Empty));
    }

    #[test]
    fn entry_out_of_range_is_rejected() {
        let err = Program::new("t", nop_program(3), 3, []).unwrap_err();
        assert!(matches!(err, ProgramError::EntryOutOfRange { entry: 3, len: 3 }));
    }

    #[test]
    fn branch_target_out_of_range_is_rejected() {
        let insts = vec![
            Inst::Branch { cond: Cond::Eq, rs: Reg::ZERO, rt: Reg::ZERO, target: 9 },
            Inst::Halt,
        ];
        let err = Program::new("t", insts, 0, []).unwrap_err();
        assert!(matches!(err, ProgramError::TargetOutOfRange { pc: 0, target: 9, .. }));
    }

    #[test]
    fn unaligned_data_is_rejected() {
        let err = Program::new("t", nop_program(1), 0, [(3u64, 7i64)]).unwrap_err();
        assert!(matches!(err, ProgramError::UnalignedData { addr: 3 }));
    }

    #[test]
    fn valid_program_roundtrips_accessors() {
        let insts = vec![
            Inst::AluImm { op: AluOp::Add, rd: Reg::new(1), rs: Reg::ZERO, imm: 7 },
            Inst::Halt,
        ];
        let p = Program::new("t", insts.clone(), 0, [(8u64, 42i64)]).unwrap();
        assert_eq!(p.name(), "t");
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert_eq!(p.entry(), 0);
        assert_eq!(p.insts(), &insts[..]);
        assert_eq!(p.fetch(0), Some(insts[0]));
        assert_eq!(p.fetch(2), None);
        assert!(p.contains(1));
        assert!(!p.contains(2));
        assert_eq!(p.data().collect::<Vec<_>>(), vec![(8, 42)]);
        assert_eq!(p.static_cond_branches(), 0);
    }

    #[test]
    fn code_ptrs_must_name_existing_aligned_words() {
        let p = Program::new("t", nop_program(2), 0, [(8u64, 1i64), (16u64, 0i64)]).unwrap();
        assert_eq!(p.code_ptrs().count(), 0);
        let p = p.with_code_ptrs([16u64, 8u64]).unwrap();
        assert_eq!(p.code_ptrs().collect::<Vec<_>>(), vec![8, 16]);
        // An address with no backing data word is rejected.
        let p2 = Program::new("t", nop_program(2), 0, [(8u64, 1i64)]).unwrap();
        assert!(p2.with_code_ptrs([24u64]).is_err());
    }

    #[test]
    fn display_lists_instructions() {
        let p = Program::new("t", nop_program(2), 0, []).unwrap();
        let s = p.to_string();
        assert!(s.contains("program t"));
        assert!(s.contains("halt"));
    }

    #[test]
    fn error_display_messages() {
        assert!(ProgramError::Empty.to_string().contains("no instructions"));
        assert!(ProgramError::UnalignedData { addr: 3 }.to_string().contains("aligned"));
    }
}
