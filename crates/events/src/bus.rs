//! The event bus: attached sinks plus the cached category mask tested at
//! every emission site.

use std::any::Any;

use crate::event::{Category, CategoryMask, Event};

/// An attachable event observer.
///
/// A sink declares the categories it wants ([`EventSink::interests`]);
/// the bus caches the union across sinks, so an emission site whose
/// category nobody wants costs a single mask test. `record` is only
/// called for events in the sink's own interest set.
pub trait EventSink: Any + Send {
    /// The categories this sink wants to receive.
    fn interests(&self) -> CategoryMask;

    /// Receives one event (already filtered to this sink's interests).
    fn record(&mut self, cycle: u64, event: &Event);

    /// Upcast for post-run retrieval (see [`EventBus::take`]).
    fn as_any(&self) -> &dyn Any;

    /// Owned upcast for post-run retrieval (see [`EventBus::take`]).
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// A sink with an empty interest mask: attaching it exercises the whole
/// attach/dispatch plumbing while keeping every emission site masked off
/// — the measurement vehicle for the disabled-bus overhead guard.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn interests(&self) -> CategoryMask {
        CategoryMask::NONE
    }

    fn record(&mut self, _cycle: u64, _event: &Event) {}

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// The bus itself: a list of sinks and the cached union of their
/// interest masks. `Default` is the unattached bus (mask zero).
#[derive(Default)]
pub struct EventBus {
    sinks: Vec<Box<dyn EventSink>>,
    mask: CategoryMask,
}

impl EventBus {
    /// An empty, unattached bus.
    pub fn new() -> EventBus {
        EventBus::default()
    }

    /// Attaches a sink and folds its interests into the cached mask.
    pub fn attach(&mut self, sink: Box<dyn EventSink>) {
        self.mask = self.mask.union(sink.interests());
        self.sinks.push(sink);
    }

    /// Whether any attached sink wants `cat`. This is the test every
    /// emission site performs before constructing an event.
    #[inline]
    pub fn wants(&self, cat: Category) -> bool {
        self.mask.contains(cat)
    }

    /// Whether any sink is attached at all.
    pub fn is_attached(&self) -> bool {
        !self.sinks.is_empty()
    }

    /// Number of attached sinks.
    pub fn sink_count(&self) -> usize {
        self.sinks.len()
    }

    /// Delivers one event to every sink interested in its category.
    pub fn emit(&mut self, cycle: u64, event: Event) {
        let cat = event.category();
        for sink in &mut self.sinks {
            if sink.interests().contains(cat) {
                sink.record(cycle, &event);
            }
        }
    }

    /// Detaches and returns the first attached sink of concrete type `T`
    /// (the post-run retrieval path: attach, run, release the bus, take
    /// each sink back out). The cached mask is recomputed.
    pub fn take<T: EventSink>(&mut self) -> Option<Box<T>> {
        let at = self.sinks.iter().position(|s| s.as_any().is::<T>())?;
        let sink = self.sinks.remove(at);
        self.mask = self.sinks.iter().fold(CategoryMask::NONE, |m, s| m.union(s.interests()));
        Some(sink.into_any().downcast::<T>().expect("position() matched this type"))
    }
}

impl std::fmt::Debug for EventBus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventBus")
            .field("sinks", &self.sinks.len())
            .field("mask", &self.mask)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ring::RingSink;

    #[test]
    fn unattached_bus_wants_nothing() {
        let bus = EventBus::new();
        assert!(!bus.is_attached());
        for c in Category::ALL {
            assert!(!bus.wants(c));
        }
    }

    #[test]
    fn mask_is_union_of_sinks_and_recomputed_on_take() {
        let mut bus = EventBus::new();
        bus.attach(Box::new(RingSink::with_interests(64, CategoryMask::of(&[Category::Trace]))));
        bus.attach(Box::new(NullSink));
        assert!(bus.wants(Category::Trace));
        assert!(!bus.wants(Category::Bus));
        assert_eq!(bus.sink_count(), 2);

        bus.emit(7, Event::TraceRetired { pe: 3, pc: 40, len: 5 });
        // Filtered: a Bus event reaches nobody.
        bus.emit(8, Event::BusSample { bus: crate::BusChannel::Cache, waiting: 1, granted: 1 });

        let ring = bus.take::<RingSink>().expect("ring sink attached");
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.events()[0], (7, Event::TraceRetired { pe: 3, pc: 40, len: 5 }));
        assert!(!bus.wants(Category::Trace), "mask recomputed after take");
        assert!(bus.take::<RingSink>().is_none());
        assert!(bus.take::<NullSink>().is_some());
        assert!(!bus.is_attached());
    }
}
