//! Attachable structured event bus for the detailed trace-processor model.
//!
//! The bus separates trace *production* from trace *observation*: the
//! simulator emits a full-information stream of structured events
//! ([`Event`]) at fixed sites in every pipeline stage, and observers
//! ([`EventSink`]) attach downstream without rebuilding the simulator.
//! Two properties make this safe to compile into the hot path:
//!
//! * **Near-zero cost unattached.** Every emission site first tests a
//!   cached per-category enabled mask ([`EventBus::wants`], one load and
//!   an AND against a `u32`). With no sink attached the mask is zero and
//!   no event is ever constructed.
//! * **Zero behavioral effect.** The bus is observation-only: nothing the
//!   simulator computes depends on it, so golden statistics rows are
//!   byte-identical whether or not sinks are attached.
//!
//! Three sinks ship with the crate:
//!
//! * [`ChromeTraceSink`] — Chrome trace-event JSON (one pid per PE,
//!   duration events for trace residency, instants for squash/repair,
//!   counter tracks for window pressure) that loads directly in
//!   perfetto / `chrome://tracing`;
//! * [`CounterTimelineSink`] — a compact bucketed counter timeline that
//!   merges into the existing `cistats`/attribution JSON outputs;
//! * [`RingSink`] — an in-memory ring buffer for tests and ad-hoc
//!   analysis.

pub mod bus;
pub mod chrome;
pub mod counters;
pub mod event;
pub mod ring;

pub use bus::{EventBus, EventSink, NullSink};
pub use chrome::ChromeTraceSink;
pub use counters::CounterTimelineSink;
pub use event::{
    BusChannel, Category, CategoryMask, Event, FetchPath, MispredictKind, RecoveryPlan, StallReason,
};
pub use ring::RingSink;
