//! Chrome trace-event JSON sink: loads directly in perfetto or
//! `chrome://tracing`.
//!
//! Mapping (JSON hand-rolled; the build is offline):
//!
//! * one *pid* per processing element (pid = PE index + 1), named
//!   `PE <n>` via process-name metadata;
//! * trace residency as `B`/`E` duration events on the PE's track,
//!   opened by `TraceDispatched` and closed by `TraceRetired` /
//!   `TraceSquashed`;
//! * squash / repair / mispredict / recovery / stall moments as `i`
//!   instant events on the owning PE's track;
//! * CGCI attempts as `B`/`E` spans on a dedicated `cgci` pid;
//! * fetch activity as instants on a dedicated `fetch` pid;
//! * window pressure, issue activity, and bus contention as `C` counter
//!   tracks on a dedicated `counters` pid.
//!
//! Timestamps are simulated cycles reported as microseconds (1 cycle =
//! 1us), so perfetto's time axis reads directly as cycles.

use std::any::Any;

use crate::bus::EventSink;
use crate::event::{CategoryMask, Event};

/// pid hosting fetch-activity instants.
const FETCH_PID: u64 = 100;
/// pid hosting CGCI attempt spans.
const CGCI_PID: u64 = 101;
/// pid hosting the counter tracks.
const COUNTER_PID: u64 = 102;
/// pid hosting sampling-phase markers (detailed-interval stamps).
const SAMPLE_PID: u64 = 103;

/// The Chrome trace-event sink. Collects pre-rendered event objects;
/// [`ChromeTraceSink::to_json`] wraps them into the final document.
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    events: Vec<String>,
    /// Per-PE open residency span: (start cycle, trace start PC).
    open: Vec<Option<(u64, u32)>>,
    /// The open CGCI attempt span, if any (at most one attempt pends).
    cgci_open: bool,
    /// Offset added to every timestamp ([`ChromeTraceSink::set_base`]).
    base: u64,
    /// Whether any interval marker was stamped (adds the sampling pid's
    /// metadata row).
    sampled: bool,
}

impl ChromeTraceSink {
    /// A fresh sink (subscribes to every category).
    pub fn new() -> ChromeTraceSink {
        ChromeTraceSink::default()
    }

    /// Number of trace-event objects collected so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Sets the timeline base: every subsequent timestamp (event cycles
    /// and interval markers) is reported as `base + cycle`. A sampled run
    /// reuses one sink across detailed intervals, each of which restarts
    /// its simulator at cycle 0; advancing the base between intervals
    /// lays them out on one coherent global timeline instead of
    /// overlapping at t=0.
    pub fn set_base(&mut self, base: u64) {
        self.base = base;
    }

    /// The current timeline base.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Stamps a detailed-interval marker at the current base: an instant
    /// on a dedicated `sampling` track carrying the interval index and
    /// the retired-instruction offset where the interval started.
    pub fn mark_interval(&mut self, index: u64, start_retired: u64) {
        self.sampled = true;
        let ts = self.base;
        self.instant(
            ts,
            SAMPLE_PID,
            &format!("interval {index}"),
            &format!("\"interval\":{index},\"start_retired\":{start_retired}"),
        );
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    fn push(&mut self, obj: String) {
        self.events.push(obj);
    }

    fn span_begin(&mut self, ts: u64, pid: u64, name: &str, args: &str) {
        self.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"B\",\"ts\":{ts},\"pid\":{pid},\"tid\":0,\
             \"args\":{{{args}}}}}"
        ));
    }

    fn span_end(&mut self, ts: u64, pid: u64, args: &str) {
        self.push(format!(
            "{{\"ph\":\"E\",\"ts\":{ts},\"pid\":{pid},\"tid\":0,\"args\":{{{args}}}}}"
        ));
    }

    fn instant(&mut self, ts: u64, pid: u64, name: &str, args: &str) {
        self.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{pid},\
             \"tid\":0,\"args\":{{{args}}}}}"
        ));
    }

    fn counter(&mut self, ts: u64, name: &str, args: &str) {
        self.push(format!(
            "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{ts},\"pid\":{COUNTER_PID},\"tid\":0,\
             \"args\":{{{args}}}}}"
        ));
    }

    fn pe_pid(pe: u8) -> u64 {
        pe as u64 + 1
    }

    fn open_slot(&mut self, pe: u8) -> &mut Option<(u64, u32)> {
        let i = pe as usize;
        if self.open.len() <= i {
            self.open.resize(i + 1, None);
        }
        &mut self.open[i]
    }

    /// Renders the collected events as a complete Chrome trace-event
    /// JSON document (object form, `traceEvents` array). Process-name
    /// metadata rows lead the array so every pid is labelled.
    pub fn to_json(&self) -> String {
        let mut rows: Vec<String> = Vec::with_capacity(self.events.len() + self.open.len() + 3);
        let meta = |pid: u64, name: &str| {
            format!(
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"ts\":0,\"pid\":{pid},\"tid\":0,\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            )
        };
        for pe in 0..self.open.len() {
            rows.push(meta(Self::pe_pid(pe as u8), &format!("PE {pe}")));
        }
        rows.push(meta(FETCH_PID, "fetch"));
        rows.push(meta(CGCI_PID, "cgci"));
        rows.push(meta(COUNTER_PID, "counters"));
        if self.sampled {
            rows.push(meta(SAMPLE_PID, "sampling"));
        }
        rows.extend(self.events.iter().cloned());
        let mut s = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
        for (i, row) in rows.iter().enumerate() {
            s.push_str(row);
            s.push_str(if i + 1 == rows.len() { "\n" } else { ",\n" });
        }
        s.push_str("]}\n");
        s
    }
}

impl EventSink for ChromeTraceSink {
    fn interests(&self) -> CategoryMask {
        CategoryMask::ALL
    }

    fn record(&mut self, cycle: u64, event: &Event) {
        // All timestamps are offset by the timeline base (zero unless a
        // sampled capture laid intervals end to end).
        let cycle = self.base + cycle;
        match *event {
            Event::TraceFetched { pc, len, source } => {
                let name = format!("fetch {}", source.label());
                self.instant(cycle, FETCH_PID, &name, &format!("\"pc\":{pc},\"len\":{len}"));
            }
            Event::TraceDispatched { pe, pc, len, cgci_insert } => {
                if self.open_slot(pe).take().is_some() {
                    // A dangling span means a missed close upstream; end
                    // it so the B/E stream stays balanced regardless.
                    self.span_end(cycle, Self::pe_pid(pe), "");
                }
                *self.open_slot(pe) = Some((cycle, pc));
                self.span_begin(
                    cycle,
                    Self::pe_pid(pe),
                    &format!("trace@{pc}"),
                    &format!("\"pc\":{pc},\"len\":{len},\"cgci_insert\":{cgci_insert}"),
                );
            }
            Event::TraceRetired { pe, pc, len } => {
                if self.open_slot(pe).take().is_some() {
                    self.span_end(
                        cycle,
                        Self::pe_pid(pe),
                        &format!("\"end\":\"retired\",\"pc\":{pc},\"len\":{len}"),
                    );
                }
            }
            Event::TraceSquashed { pe, pc, drained } => {
                if self.open_slot(pe).take().is_some() {
                    let kind = if drained { "drained" } else { "squashed" };
                    self.span_end(
                        cycle,
                        Self::pe_pid(pe),
                        &format!("\"end\":\"{kind}\",\"pc\":{pc}"),
                    );
                }
                if !drained {
                    self.instant(cycle, Self::pe_pid(pe), "squash", &format!("\"pc\":{pc}"));
                }
            }
            Event::TraceRepaired { pe, branch_pc } => {
                self.instant(
                    cycle,
                    Self::pe_pid(pe),
                    "repair",
                    &format!("\"branch_pc\":{branch_pc}"),
                );
            }
            Event::TracePreserved { pe, pc } => {
                self.instant(cycle, Self::pe_pid(pe), "preserved", &format!("\"pc\":{pc}"));
            }
            Event::TraceRedispatched { pe, pc } => {
                self.instant(cycle, Self::pe_pid(pe), "redispatch", &format!("\"pc\":{pc}"));
            }
            Event::MispredictDetected { pe, slot, pc, kind } => {
                let name = format!("mispredict {}", kind.label());
                self.instant(
                    cycle,
                    Self::pe_pid(pe),
                    &name,
                    &format!("\"pc\":{pc},\"slot\":{slot}"),
                );
            }
            Event::RecoveryStarted { pe, branch_pc, plan } => {
                let name = format!("recovery {}", plan.label());
                self.instant(cycle, Self::pe_pid(pe), &name, &format!("\"branch_pc\":{branch_pc}"));
            }
            Event::RecoveryApplied { pe, branch_pc } => {
                self.instant(
                    cycle,
                    Self::pe_pid(pe),
                    "recovery apply",
                    &format!("\"branch_pc\":{branch_pc}"),
                );
            }
            Event::RecoveryAbandoned { pe } => {
                self.instant(cycle, Self::pe_pid(pe), "recovery abandoned", "");
            }
            Event::CgciOpened { class, heuristic, branch_pc, reconv_pc } => {
                if self.cgci_open {
                    self.span_end(cycle, CGCI_PID, "");
                }
                self.cgci_open = true;
                let name = format!("cgci {}/{}", class.label(), heuristic.label());
                self.span_begin(
                    cycle,
                    CGCI_PID,
                    &name,
                    &format!("\"branch_pc\":{branch_pc},\"reconv_pc\":{reconv_pc}"),
                );
            }
            Event::CgciClosed { outcome, squashed, preserved, .. } => {
                if self.cgci_open {
                    self.cgci_open = false;
                    self.span_end(
                        cycle,
                        CGCI_PID,
                        &format!(
                            "\"outcome\":\"{}\",\"squashed\":{squashed},\
                             \"preserved\":{preserved}",
                            outcome.label()
                        ),
                    );
                }
            }
            Event::HeadStall { pe, reason } => {
                let name = format!("stall {}", reason.label());
                self.instant(cycle, Self::pe_pid(pe), &name, "");
            }
            Event::WindowSample { occupied, fetch_queue } => {
                self.counter(
                    cycle,
                    "window",
                    &format!("\"occupied\":{occupied},\"fetch_queue\":{fetch_queue}"),
                );
            }
            Event::IssueSample { issued, reissued } => {
                self.counter(
                    cycle,
                    "issue",
                    &format!("\"issued\":{issued},\"reissued\":{reissued}"),
                );
            }
            Event::BusSample { bus, waiting, granted } => {
                let name = format!("bus-{}", bus.label());
                self.counter(cycle, &name, &format!("\"waiting\":{waiting},\"granted\":{granted}"));
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FetchPath;

    #[test]
    fn spans_balance_and_document_is_wellformed() {
        let mut sink = ChromeTraceSink::new();
        sink.record(1, &Event::TraceFetched { pc: 4, len: 6, source: FetchPath::PredictedHit });
        sink.record(2, &Event::TraceDispatched { pe: 0, pc: 4, len: 6, cgci_insert: false });
        sink.record(5, &Event::TraceRetired { pe: 0, pc: 4, len: 6 });
        sink.record(6, &Event::TraceDispatched { pe: 1, pc: 10, len: 3, cgci_insert: true });
        sink.record(9, &Event::TraceSquashed { pe: 1, pc: 10, drained: false });
        sink.record(9, &Event::WindowSample { occupied: 2, fetch_queue: 1 });
        let json = sink.to_json();
        assert_eq!(json.matches("\"ph\":\"B\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 2);
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\":\"PE 1\""));
        assert!(json.contains("\"end\":\"retired\""));
        assert!(json.contains("\"name\":\"squash\""));
        assert!(json.contains("\"name\":\"window\""));
    }

    #[test]
    fn retire_without_open_span_is_dropped_not_unbalanced() {
        let mut sink = ChromeTraceSink::new();
        sink.record(3, &Event::TraceRetired { pe: 2, pc: 8, len: 2 });
        let json = sink.to_json();
        assert_eq!(json.matches("\"ph\":\"E\"").count(), 0);
    }

    #[test]
    fn base_offsets_timestamps_and_interval_marks() {
        let mut sink = ChromeTraceSink::new();
        sink.mark_interval(0, 0);
        sink.record(2, &Event::TraceDispatched { pe: 0, pc: 4, len: 6, cgci_insert: false });
        sink.record(5, &Event::TraceRetired { pe: 0, pc: 4, len: 6 });
        sink.set_base(1_000);
        sink.mark_interval(1, 5_000);
        sink.record(2, &Event::TraceDispatched { pe: 0, pc: 4, len: 6, cgci_insert: false });
        let json = sink.to_json();
        // Second interval's dispatch lands at base + cycle, not back at 2.
        assert!(json.contains("\"ts\":1002"));
        assert!(json.contains("\"interval\":1,\"start_retired\":5000"));
        assert!(json.contains("\"name\":\"sampling\""));
    }
}
