//! The event vocabulary: everything the detailed model reports, as plain
//! `Copy` data, grouped into coarse categories that gate emission.

use std::fmt;

use tp_stats::{BranchClass, Heuristic, RecoveryOutcome};

/// Coarse event category, the unit of emission gating: a sink subscribes
/// to categories, and the bus caches the union so each emission site is a
/// single mask test when nothing is listening.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// Trace lifecycle: fetched, dispatched, retired, squashed, repaired,
    /// preserved, redispatched.
    Trace,
    /// CGCI attempt lifecycle: detection/insertion open, reconverged or
    /// failed close — correlated with the attribution ledger.
    Cgci,
    /// Misprediction detection and selective-recovery progress.
    Recovery,
    /// Per-cycle window pressure: occupancy samples, head stalls, issue
    /// activity.
    Occupancy,
    /// Operand/cache bus arbitration contention samples.
    Bus,
}

impl Category {
    /// All categories, in declaration order.
    pub const ALL: [Category; 5] =
        [Category::Trace, Category::Cgci, Category::Recovery, Category::Occupancy, Category::Bus];

    /// The category's bit in a [`CategoryMask`].
    #[inline]
    pub fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// A short stable label (used in JSON output).
    pub fn label(self) -> &'static str {
        match self {
            Category::Trace => "trace",
            Category::Cgci => "cgci",
            Category::Recovery => "recovery",
            Category::Occupancy => "occupancy",
            Category::Bus => "bus",
        }
    }
}

/// A set of [`Category`] bits; the bus caches the union of all attached
/// sinks' masks.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CategoryMask(u32);

impl CategoryMask {
    /// The empty mask (subscribes to nothing).
    pub const NONE: CategoryMask = CategoryMask(0);

    /// Every category.
    pub const ALL: CategoryMask = CategoryMask(0b1_1111);

    /// A mask of exactly the given categories.
    pub fn of(cats: &[Category]) -> CategoryMask {
        CategoryMask(cats.iter().fold(0, |m, c| m | c.bit()))
    }

    /// Whether `cat`'s bit is set.
    #[inline]
    pub fn contains(self, cat: Category) -> bool {
        self.0 & cat.bit() != 0
    }

    /// Whether no bit is set.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The union of two masks.
    #[inline]
    pub fn union(self, other: CategoryMask) -> CategoryMask {
        CategoryMask(self.0 | other.0)
    }
}

/// How the fetch stage obtained a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchPath {
    /// Predicted trace id hit in the trace cache.
    PredictedHit,
    /// Predicted trace id missed and was constructed.
    PredictedMiss,
    /// No usable prediction; fell back to sequential construction.
    Fallback,
}

impl FetchPath {
    /// A short stable label.
    pub fn label(self) -> &'static str {
        match self {
            FetchPath::PredictedHit => "hit",
            FetchPath::PredictedMiss => "miss",
            FetchPath::Fallback => "fallback",
        }
    }
}

/// What kind of misprediction the execution stage detected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MispredictKind {
    /// A conditional branch resolved against its embedded outcome.
    CondBranch,
    /// An indirect jump/call/return resolved to an unexpected target.
    Indirect,
}

impl MispredictKind {
    /// A short stable label.
    pub fn label(self) -> &'static str {
        match self {
            MispredictKind::CondBranch => "cond",
            MispredictKind::Indirect => "indirect",
        }
    }
}

/// Which recovery plan the recovery stage chose for a misprediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RecoveryPlan {
    /// Squash everything younger than the branch.
    FullSquash,
    /// Fine-grain repair inside the faulting trace.
    Fgci,
    /// Coarse-grain insertion before a detected re-convergent trace.
    Cgci,
}

impl RecoveryPlan {
    /// A short stable label.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryPlan::FullSquash => "full-squash",
            RecoveryPlan::Fgci => "fgci",
            RecoveryPlan::Cgci => "cgci",
        }
    }
}

/// Why the window head could not retire this cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StallReason {
    /// Head slots are not all complete.
    Incomplete,
    /// A recovery is pending against the head.
    Recovery,
    /// A re-dispatch pass owns the rename table.
    Redispatch,
    /// A CGCI insertion is pending immediately before the head.
    CgciInsert,
}

impl StallReason {
    /// A short stable label.
    pub fn label(self) -> &'static str {
        match self {
            StallReason::Incomplete => "incomplete",
            StallReason::Recovery => "recovery",
            StallReason::Redispatch => "redispatch",
            StallReason::CgciInsert => "cgci-insert",
        }
    }
}

/// Which arbitrated bus a contention sample describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BusChannel {
    /// Data-cache / ARB access buses.
    Cache,
    /// Result-distribution buses.
    Result,
}

impl BusChannel {
    /// A short stable label.
    pub fn label(self) -> &'static str {
        match self {
            BusChannel::Cache => "cache",
            BusChannel::Result => "result",
        }
    }
}

/// One structured event from the detailed model. All payloads are plain
/// `Copy` data; the emitting cycle is passed alongside the event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Event {
    /// Fetch obtained a trace (cache hit, constructed miss, or fallback).
    TraceFetched {
        /// Start PC of the trace.
        pc: u32,
        /// Physical instruction count.
        len: u8,
        /// How fetch obtained it.
        source: FetchPath,
    },
    /// A trace entered a processing element. Opens the PE's residency
    /// span; exactly one `TraceRetired` or `TraceSquashed` closes it.
    TraceDispatched {
        /// Processing element index.
        pe: u8,
        /// Start PC of the trace.
        pc: u32,
        /// Physical instruction count.
        len: u8,
        /// Whether this was a CGCI mid-window insertion.
        cgci_insert: bool,
    },
    /// The window head committed and freed its PE.
    TraceRetired {
        /// Processing element index.
        pe: u8,
        /// Start PC of the retired trace.
        pc: u32,
        /// Physical instruction count.
        len: u8,
    },
    /// A resident trace was discarded and its PE freed. `drained` marks
    /// synthetic closes emitted when the bus is released with traces
    /// still resident (end of run), so residency spans always balance.
    TraceSquashed {
        /// Processing element index.
        pe: u8,
        /// Start PC of the squashed trace.
        pc: u32,
        /// True for the run-end synthetic close, false for real squashes.
        drained: bool,
    },
    /// FGCI repaired a mispredicted trace in place (PE kept, control-flow
    /// suffix rebuilt, control-independent work preserved).
    TraceRepaired {
        /// Processing element index.
        pe: u8,
        /// PC of the mispredicted branch that triggered the repair.
        branch_pc: u32,
    },
    /// A control-independent trace survived a recovery (FGCI suffix or a
    /// CGCI-preserved post-re-convergence trace).
    TracePreserved {
        /// Processing element index.
        pe: u8,
        /// Start PC of the preserved trace.
        pc: u32,
    },
    /// A preserved trace was re-renamed against corrected live-ins.
    TraceRedispatched {
        /// Processing element index.
        pe: u8,
        /// Start PC of the re-dispatched trace.
        pc: u32,
    },
    /// Execution detected a misprediction (fault registered; recovery is
    /// scheduled by the recovery stage).
    MispredictDetected {
        /// Processing element index.
        pe: u8,
        /// Slot index inside the PE.
        slot: u8,
        /// PC of the faulting instruction.
        pc: u32,
        /// What kind of misprediction.
        kind: MispredictKind,
    },
    /// The recovery stage committed to a plan for the oldest fault.
    RecoveryStarted {
        /// Processing element holding the fault.
        pe: u8,
        /// PC of the mispredicted branch.
        branch_pc: u32,
        /// The chosen plan.
        plan: RecoveryPlan,
    },
    /// A scheduled selective recovery reached its apply point.
    RecoveryApplied {
        /// Processing element holding the fault.
        pe: u8,
        /// PC of the mispredicted branch.
        branch_pc: u32,
    },
    /// A scheduled recovery was abandoned (its target went stale).
    RecoveryAbandoned {
        /// Processing element that held the fault.
        pe: u8,
    },
    /// A CGCI attempt opened: a re-convergent trace was detected
    /// downstream and an insertion is pending. Exactly one `CgciClosed`
    /// with the same (class, heuristic) resolves it — unless the run ends
    /// first, in which case the attempt stays open (and unattributed in
    /// the ledger too).
    CgciOpened {
        /// Branch class of the mispredicted branch.
        class: BranchClass,
        /// The heuristic that detected re-convergence.
        heuristic: Heuristic,
        /// PC of the mispredicted branch.
        branch_pc: u32,
        /// Start PC of the detected re-convergent trace.
        reconv_pc: u32,
    },
    /// A CGCI attempt closed. Mirrors exactly one `events` increment of
    /// the attribution-ledger cell `(class, heuristic, outcome)`.
    CgciClosed {
        /// Branch class of the mispredicted branch.
        class: BranchClass,
        /// The heuristic that detected re-convergence.
        heuristic: Heuristic,
        /// `CgciReconverged` or `CgciFailed`.
        outcome: RecoveryOutcome,
        /// Traces squashed while the attempt was pending.
        squashed: u32,
        /// Control-independent traces preserved at re-convergence.
        preserved: u32,
        /// PC of the mispredicted branch (matches the opening
        /// `CgciOpened`), for joining closes against static CFG facts.
        branch_pc: u32,
        /// Start PC of the re-convergent trace the attempt targeted.
        reconv_pc: u32,
    },
    /// The window head exists but cannot retire this cycle.
    HeadStall {
        /// Processing element at the window head.
        pe: u8,
        /// Why it is stalled.
        reason: StallReason,
    },
    /// Per-cycle window pressure sample.
    WindowSample {
        /// Occupied processing elements.
        occupied: u8,
        /// Traces waiting in the fetch queue.
        fetch_queue: u8,
    },
    /// Per-cycle issue activity (emitted only on active cycles).
    IssueSample {
        /// Instructions issued this cycle.
        issued: u8,
        /// Of which were re-issues.
        reissued: u8,
    },
    /// Bus arbitration sample for a cycle with waiters.
    BusSample {
        /// Which bus group.
        bus: BusChannel,
        /// Requests waiting at the start of the grant pass.
        waiting: u8,
        /// Grants actually issued this cycle.
        granted: u8,
    },
}

impl Event {
    /// The category that gates this event's emission.
    pub fn category(&self) -> Category {
        match self {
            Event::TraceFetched { .. }
            | Event::TraceDispatched { .. }
            | Event::TraceRetired { .. }
            | Event::TraceSquashed { .. }
            | Event::TraceRepaired { .. }
            | Event::TracePreserved { .. }
            | Event::TraceRedispatched { .. } => Category::Trace,
            Event::CgciOpened { .. } | Event::CgciClosed { .. } => Category::Cgci,
            Event::MispredictDetected { .. }
            | Event::RecoveryStarted { .. }
            | Event::RecoveryApplied { .. }
            | Event::RecoveryAbandoned { .. } => Category::Recovery,
            Event::HeadStall { .. } | Event::WindowSample { .. } | Event::IssueSample { .. } => {
                Category::Occupancy
            }
            Event::BusSample { .. } => Category::Bus,
        }
    }

    /// A short stable name for the event kind (used by sinks).
    pub fn name(&self) -> &'static str {
        match self {
            Event::TraceFetched { .. } => "trace-fetched",
            Event::TraceDispatched { .. } => "trace-dispatched",
            Event::TraceRetired { .. } => "trace-retired",
            Event::TraceSquashed { .. } => "trace-squashed",
            Event::TraceRepaired { .. } => "trace-repaired",
            Event::TracePreserved { .. } => "trace-preserved",
            Event::TraceRedispatched { .. } => "trace-redispatched",
            Event::MispredictDetected { .. } => "mispredict",
            Event::RecoveryStarted { .. } => "recovery-started",
            Event::RecoveryApplied { .. } => "recovery-applied",
            Event::RecoveryAbandoned { .. } => "recovery-abandoned",
            Event::CgciOpened { .. } => "cgci-opened",
            Event::CgciClosed { .. } => "cgci-closed",
            Event::HeadStall { .. } => "head-stall",
            Event::WindowSample { .. } => "window-sample",
            Event::IssueSample { .. } => "issue-sample",
            Event::BusSample { .. } => "bus-sample",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_algebra() {
        assert!(CategoryMask::NONE.is_empty());
        assert!(!CategoryMask::ALL.is_empty());
        for c in Category::ALL {
            assert!(CategoryMask::ALL.contains(c));
            assert!(!CategoryMask::NONE.contains(c));
            assert!(CategoryMask::of(&[c]).contains(c));
        }
        let m = CategoryMask::of(&[Category::Trace, Category::Bus]);
        assert!(m.contains(Category::Trace) && m.contains(Category::Bus));
        assert!(!m.contains(Category::Cgci));
        assert!(m.union(CategoryMask::of(&[Category::Cgci])).contains(Category::Cgci));
    }

    #[test]
    fn every_event_has_a_category_and_name() {
        let events = [
            Event::TraceFetched { pc: 0, len: 1, source: FetchPath::Fallback },
            Event::TraceDispatched { pe: 0, pc: 0, len: 1, cgci_insert: false },
            Event::TraceRetired { pe: 0, pc: 0, len: 1 },
            Event::TraceSquashed { pe: 0, pc: 0, drained: false },
            Event::TraceRepaired { pe: 0, branch_pc: 0 },
            Event::TracePreserved { pe: 0, pc: 0 },
            Event::TraceRedispatched { pe: 0, pc: 0 },
            Event::MispredictDetected { pe: 0, slot: 0, pc: 0, kind: MispredictKind::CondBranch },
            Event::RecoveryStarted { pe: 0, branch_pc: 0, plan: RecoveryPlan::Fgci },
            Event::RecoveryApplied { pe: 0, branch_pc: 0 },
            Event::RecoveryAbandoned { pe: 0 },
            Event::CgciOpened {
                class: BranchClass::Backward,
                heuristic: Heuristic::Ret,
                branch_pc: 0,
                reconv_pc: 0,
            },
            Event::CgciClosed {
                class: BranchClass::Backward,
                heuristic: Heuristic::Ret,
                outcome: RecoveryOutcome::CgciReconverged,
                squashed: 0,
                preserved: 0,
                branch_pc: 0,
                reconv_pc: 0,
            },
            Event::HeadStall { pe: 0, reason: StallReason::Incomplete },
            Event::WindowSample { occupied: 0, fetch_queue: 0 },
            Event::IssueSample { issued: 1, reissued: 0 },
            Event::BusSample { bus: BusChannel::Cache, waiting: 2, granted: 1 },
        ];
        for e in &events {
            assert!(!e.name().is_empty());
            assert!(Category::ALL.contains(&e.category()), "{e}");
        }
    }
}
