//! In-memory ring-buffer sink: keeps the last N events for tests and
//! ad-hoc analysis.

use std::any::Any;
use std::collections::VecDeque;

use crate::bus::EventSink;
use crate::event::{CategoryMask, Event};

/// A bounded in-memory event buffer. When full, the oldest event is
/// dropped (and counted), so the sink holds the *last* `capacity` events.
#[derive(Debug)]
pub struct RingSink {
    interests: CategoryMask,
    capacity: usize,
    buf: VecDeque<(u64, Event)>,
    dropped: u64,
}

impl RingSink {
    /// A ring of `capacity` events subscribed to every category.
    pub fn new(capacity: usize) -> RingSink {
        RingSink::with_interests(capacity, CategoryMask::ALL)
    }

    /// A ring of `capacity` events subscribed to `interests` only.
    pub fn with_interests(capacity: usize, interests: CategoryMask) -> RingSink {
        RingSink { interests, capacity: capacity.max(1), buf: VecDeque::new(), dropped: 0 }
    }

    /// The buffered `(cycle, event)` pairs, oldest first.
    pub fn events(&self) -> &VecDeque<(u64, Event)> {
        &self.buf
    }

    /// Consumes the sink, returning the buffered pairs oldest first.
    pub fn into_events(self) -> Vec<(u64, Event)> {
        self.buf.into_iter().collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl EventSink for RingSink {
    fn interests(&self) -> CategoryMask {
        self.interests
    }

    fn record(&mut self, cycle: u64, event: &Event) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back((cycle, *event));
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_keeps_the_newest_events() {
        let mut ring = RingSink::new(2);
        for i in 0..5u64 {
            ring.record(i, &Event::RecoveryAbandoned { pe: i as u8 });
        }
        assert_eq!(ring.len(), 2);
        assert_eq!(ring.dropped(), 3);
        let v = ring.into_events();
        assert_eq!(v[0], (3, Event::RecoveryAbandoned { pe: 3 }));
        assert_eq!(v[1], (4, Event::RecoveryAbandoned { pe: 4 }));
    }
}
