//! Compact counter-timeline sink: cumulative totals plus a bucketed
//! timeline, rendered as a small JSON document that slots next to the
//! existing `cistats`/attribution outputs.

use std::any::Any;

use crate::bus::EventSink;
use crate::event::{CategoryMask, Event};

/// One accumulator row (totals, and one per touched bucket).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counts {
    /// Traces obtained by fetch.
    pub fetched: u64,
    /// Traces dispatched into PEs.
    pub dispatched: u64,
    /// Traces retired.
    pub retired: u64,
    /// Traces squashed (real squashes; run-end drains excluded).
    pub squashed: u64,
    /// FGCI in-place repairs.
    pub repaired: u64,
    /// Traces preserved across a recovery.
    pub preserved: u64,
    /// Traces re-renamed by a re-dispatch pass.
    pub redispatched: u64,
    /// Mispredictions detected at execute.
    pub mispredicts: u64,
    /// Recoveries started.
    pub recoveries: u64,
    /// CGCI attempts opened.
    pub cgci_opened: u64,
    /// CGCI attempts closed (reconverged or failed).
    pub cgci_closed: u64,
    /// Cycles the window head could not retire.
    pub head_stalls: u64,
    /// Instructions issued.
    pub issued: u64,
    /// Of which re-issues.
    pub reissued: u64,
    /// Sum of per-cycle occupied-PE samples.
    pub occupancy_sum: u64,
    /// Number of occupancy samples.
    pub occupancy_samples: u64,
    /// Sum of bus requests waiting at grant time.
    pub bus_waiting: u64,
    /// Sum of bus grants issued.
    pub bus_granted: u64,
}

impl Counts {
    fn add(&mut self, event: &Event) {
        match *event {
            Event::TraceFetched { .. } => self.fetched += 1,
            Event::TraceDispatched { .. } => self.dispatched += 1,
            Event::TraceRetired { .. } => self.retired += 1,
            Event::TraceSquashed { drained, .. } => self.squashed += u64::from(!drained),
            Event::TraceRepaired { .. } => self.repaired += 1,
            Event::TracePreserved { .. } => self.preserved += 1,
            Event::TraceRedispatched { .. } => self.redispatched += 1,
            Event::MispredictDetected { .. } => self.mispredicts += 1,
            Event::RecoveryStarted { .. } => self.recoveries += 1,
            Event::RecoveryApplied { .. } | Event::RecoveryAbandoned { .. } => {}
            Event::CgciOpened { .. } => self.cgci_opened += 1,
            Event::CgciClosed { .. } => self.cgci_closed += 1,
            Event::HeadStall { .. } => self.head_stalls += 1,
            Event::WindowSample { occupied, .. } => {
                self.occupancy_sum += occupied as u64;
                self.occupancy_samples += 1;
            }
            Event::IssueSample { issued, reissued } => {
                self.issued += issued as u64;
                self.reissued += reissued as u64;
            }
            Event::BusSample { waiting, granted, .. } => {
                self.bus_waiting += waiting as u64;
                self.bus_granted += granted as u64;
            }
        }
    }

    fn fields_json(&self) -> String {
        format!(
            "\"fetched\":{},\"dispatched\":{},\"retired\":{},\"squashed\":{},\
             \"repaired\":{},\"preserved\":{},\"redispatched\":{},\"mispredicts\":{},\
             \"recoveries\":{},\"cgci_opened\":{},\"cgci_closed\":{},\"head_stalls\":{},\
             \"issued\":{},\"reissued\":{},\"occupancy_sum\":{},\"occupancy_samples\":{},\
             \"bus_waiting\":{},\"bus_granted\":{}",
            self.fetched,
            self.dispatched,
            self.retired,
            self.squashed,
            self.repaired,
            self.preserved,
            self.redispatched,
            self.mispredicts,
            self.recoveries,
            self.cgci_opened,
            self.cgci_closed,
            self.head_stalls,
            self.issued,
            self.reissued,
            self.occupancy_sum,
            self.occupancy_samples,
            self.bus_waiting,
            self.bus_granted,
        )
    }
}

/// The counter-timeline sink: totals plus one [`Counts`] row per touched
/// `bucket_cycles`-wide cycle bucket.
#[derive(Debug)]
pub struct CounterTimelineSink {
    bucket_cycles: u64,
    totals: Counts,
    /// Touched buckets, ascending: (bucket start cycle, counts).
    buckets: Vec<(u64, Counts)>,
}

impl CounterTimelineSink {
    /// The default bucket width, in cycles.
    pub const DEFAULT_BUCKET: u64 = 1024;

    /// A sink with the default bucket width.
    pub fn new() -> CounterTimelineSink {
        CounterTimelineSink::with_bucket(Self::DEFAULT_BUCKET)
    }

    /// A sink bucketing the timeline every `bucket_cycles` cycles.
    pub fn with_bucket(bucket_cycles: u64) -> CounterTimelineSink {
        CounterTimelineSink {
            bucket_cycles: bucket_cycles.max(1),
            totals: Counts::default(),
            buckets: Vec::new(),
        }
    }

    /// Cumulative totals over the whole capture.
    pub fn totals(&self) -> &Counts {
        &self.totals
    }

    /// The touched buckets, ascending by start cycle.
    pub fn buckets(&self) -> &[(u64, Counts)] {
        &self.buckets
    }

    /// Renders the `tp-events/counters/v1` JSON document.
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n  \"schema\": \"tp-events/counters/v1\",\n");
        s.push_str(&format!("  \"bucket_cycles\": {},\n", self.bucket_cycles));
        s.push_str(&format!("  \"totals\": {{{}}},\n", self.totals.fields_json()));
        s.push_str("  \"buckets\": [\n");
        for (i, (start, counts)) in self.buckets.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"start_cycle\":{start},{}}}{}\n",
                counts.fields_json(),
                if i + 1 == self.buckets.len() { "" } else { "," }
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

impl Default for CounterTimelineSink {
    fn default() -> CounterTimelineSink {
        CounterTimelineSink::new()
    }
}

impl EventSink for CounterTimelineSink {
    fn interests(&self) -> CategoryMask {
        CategoryMask::ALL
    }

    fn record(&mut self, cycle: u64, event: &Event) {
        self.totals.add(event);
        let start = cycle - cycle % self.bucket_cycles;
        match self.buckets.last_mut() {
            Some((s, counts)) if *s == start => counts.add(event),
            _ => {
                let mut counts = Counts::default();
                counts.add(event);
                self.buckets.push((start, counts));
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_split_on_the_cycle_axis() {
        let mut sink = CounterTimelineSink::with_bucket(10);
        sink.record(3, &Event::TraceDispatched { pe: 0, pc: 0, len: 1, cgci_insert: false });
        sink.record(7, &Event::TraceRetired { pe: 0, pc: 0, len: 1 });
        sink.record(15, &Event::TraceSquashed { pe: 1, pc: 4, drained: false });
        sink.record(16, &Event::TraceSquashed { pe: 2, pc: 8, drained: true });
        assert_eq!(sink.buckets().len(), 2);
        assert_eq!(sink.buckets()[0].0, 0);
        assert_eq!(sink.buckets()[1].0, 10);
        assert_eq!(sink.totals().dispatched, 1);
        assert_eq!(sink.totals().retired, 1);
        // Drained run-end closes are not squashes.
        assert_eq!(sink.totals().squashed, 1);
        let json = sink.to_json();
        assert!(json.contains("\"schema\": \"tp-events/counters/v1\""));
        assert!(json.contains("\"bucket_cycles\": 10"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
