//! A small directed-graph representation for control-flow analysis.
//!
//! Nodes are dense `u32` indices (instruction PCs plus the virtual
//! entry/exit nodes the analysis adds). Degrees are tiny — at most two
//! successors for ordinary instructions, one per table slot for resolved
//! indirect jumps — so adjacency lists with linear-duplicate suppression
//! are both compact and fast.

/// A directed graph over dense `u32` node indices.
#[derive(Clone, Debug, Default)]
pub struct Graph {
    succs: Vec<Vec<u32>>,
    preds: Vec<Vec<u32>>,
}

impl Graph {
    /// An edgeless graph with `n` nodes.
    pub fn new(n: usize) -> Graph {
        Graph { succs: vec![Vec::new(); n], preds: vec![Vec::new(); n] }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Adds the edge `from -> to`, ignoring exact duplicates.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, from: u32, to: u32) {
        assert!((from as usize) < self.len() && (to as usize) < self.len(), "edge out of range");
        if self.succs[from as usize].contains(&to) {
            return;
        }
        self.succs[from as usize].push(to);
        self.preds[to as usize].push(from);
    }

    /// Successors of `v`.
    pub fn succs(&self, v: u32) -> &[u32] {
        &self.succs[v as usize]
    }

    /// Predecessors of `v`.
    pub fn preds(&self, v: u32) -> &[u32] {
        &self.preds[v as usize]
    }

    /// The graph with every edge reversed.
    pub fn reversed(&self) -> Graph {
        Graph { succs: self.preds.clone(), preds: self.succs.clone() }
    }

    /// Reverse post-order of the nodes reachable from `root` (root first).
    ///
    /// Uses an explicit stack so deep chain-shaped CFGs (one node per
    /// instruction) cannot overflow the call stack.
    pub fn rpo(&self, root: u32) -> Vec<u32> {
        let mut seen = vec![false; self.len()];
        let mut post = Vec::new();
        // (node, next-successor-index) pairs emulate the recursion.
        let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
        seen[root as usize] = true;
        while let Some(&mut (v, ref mut i)) = stack.last_mut() {
            if let Some(&s) = self.succs(v).get(*i) {
                *i += 1;
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                post.push(v);
                stack.pop();
            }
        }
        post.reverse();
        post
    }

    /// The set of nodes reachable from `root` (as a membership vector).
    pub fn reachable(&self, root: u32) -> Vec<bool> {
        let mut seen = vec![false; self.len()];
        let mut stack = vec![root];
        seen[root as usize] = true;
        while let Some(v) = stack.pop() {
            for &s in self.succs(v) {
                if !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_deduplicate_and_reverse() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        assert_eq!(g.succs(0), &[1]);
        assert_eq!(g.preds(2), &[1]);
        let r = g.reversed();
        assert_eq!(r.succs(2), &[1]);
        assert_eq!(r.succs(1), &[0]);
    }

    #[test]
    fn rpo_starts_at_root_and_covers_reachable() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(1, 2);
        g.add_edge(2, 1); // cycle
        let order = g.rpo(0);
        assert_eq!(order[0], 0);
        assert_eq!(order.len(), 3); // node 3 unreachable
        let reach = g.reachable(0);
        assert_eq!(reach, vec![true, true, true, false]);
    }

    #[test]
    fn rpo_handles_deep_chains_without_recursion() {
        let n = 200_000;
        let mut g = Graph::new(n);
        for i in 0..n - 1 {
            g.add_edge(i as u32, i as u32 + 1);
        }
        let order = g.rpo(0);
        assert_eq!(order.len(), n);
        assert_eq!(order[0], 0);
        assert_eq!(order[n - 1], n as u32 - 1);
    }
}
