//! Workload lint pass: structural defects the CFG makes visible.
//!
//! Three checks, all zero-cost once the [`CfgAnalysis`] exists:
//!
//! * **Unreachable code** — instructions no interprocedural path from the
//!   entry can execute (dead arms, orphaned functions, padding that was
//!   meant to be data).
//! * **Fall-through off the end** — a reachable final instruction whose
//!   fall-through successor would be past the program (an execution
//!   fault waiting for the right input).
//! * **Escaping code pointers** — jump-table slots whose value is not a
//!   valid PC, and resolved indirect targets outside the program.
//!
//! Clean corpora keep these at zero; the golden fixture in the repo's
//! integration tests pins that.

use std::collections::BTreeMap;

use tp_isa::{Addr, Pc, Program, Word};

use crate::analysis::CfgAnalysis;

/// One lint violation, with enough context to locate it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LintFinding {
    /// Instructions `start..=end` are unreachable from the entry.
    Unreachable {
        /// First PC of the unreachable run.
        start: Pc,
        /// Last PC of the unreachable run (inclusive).
        end: Pc,
    },
    /// The instruction at `pc` (the last in the program) can fall
    /// through past the end.
    FallthroughOffEnd {
        /// The offending PC.
        pc: Pc,
    },
    /// The code-pointer data slot at `addr` holds `value`, which is not
    /// a valid PC.
    EscapingCodePtr {
        /// Data address of the slot.
        addr: Addr,
        /// The out-of-range value it holds.
        value: Word,
    },
    /// The resolved indirect transfer at `pc` can target `target`,
    /// which is outside the program.
    EscapingIndirectTarget {
        /// The indirect-transfer site.
        pc: Pc,
        /// The out-of-range target.
        target: Pc,
    },
}

impl std::fmt::Display for LintFinding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LintFinding::Unreachable { start, end } => {
                write!(f, "unreachable: pcs {start}..={end}")
            }
            LintFinding::FallthroughOffEnd { pc } => {
                write!(f, "fall-through off the end at pc {pc}")
            }
            LintFinding::EscapingCodePtr { addr, value } => {
                write!(f, "code pointer at {addr:#x} escapes the program: {value}")
            }
            LintFinding::EscapingIndirectTarget { pc, target } => {
                write!(f, "indirect transfer at pc {pc} targets {target}, outside the program")
            }
        }
    }
}

/// Runs all lint checks over `program`.
pub fn lint(program: &Program, analysis: &CfgAnalysis) -> Vec<LintFinding> {
    let n = program.len();
    let mut out = Vec::new();

    // Unreachable instructions, coalesced into runs.
    let mut run: Option<(Pc, Pc)> = None;
    for pc in 0..n as Pc {
        if !analysis.is_reachable(pc) {
            run = Some(match run {
                None => (pc, pc),
                Some((s, _)) => (s, pc),
            });
        } else if let Some((s, e)) = run.take() {
            out.push(LintFinding::Unreachable { start: s, end: e });
        }
    }
    if let Some((s, e)) = run {
        out.push(LintFinding::Unreachable { start: s, end: e });
    }

    // Fall-through off the end: the last instruction has a fall-through
    // successor. (A conditional branch falls through on not-taken; a call
    // falls through on return; anything non-transfer always does.)
    if n > 0 {
        let last = (n - 1) as Pc;
        let inst = program.insts()[n - 1];
        // A conditional branch falls through on not-taken; a call's
        // returning callee resumes past the end; anything non-transfer
        // always falls through.
        let falls = inst.is_cond_branch()
            || matches!(inst, tp_isa::Inst::Call { .. } | tp_isa::Inst::CallIndirect { .. })
            || !inst.is_unconditional_transfer();
        if falls && analysis.is_reachable(last) {
            out.push(LintFinding::FallthroughOffEnd { pc: last });
        }
    }

    // Escaping code pointers: declared slots whose value is not a PC.
    let data: BTreeMap<Addr, Word> = program.data().collect();
    for addr in program.code_ptrs() {
        let value = data.get(&addr).copied().unwrap_or(0);
        if value < 0 || value >= n as Word {
            out.push(LintFinding::EscapingCodePtr { addr, value });
        }
    }

    // Escaping resolved indirect targets.
    for (pc, resolved) in analysis.indirect_sites() {
        if resolved {
            for &t in analysis.resolved_indirect_targets(pc).unwrap_or(&[]) {
                if t as usize >= n {
                    out.push(LintFinding::EscapingIndirectTarget { pc, target: t });
                }
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_isa::asm::Asm;
    use tp_isa::{Cond, Reg};

    #[test]
    fn clean_program_has_no_findings() {
        let mut a = Asm::new("t");
        a.li(Reg::new(1), 1);
        a.halt();
        let p = a.assemble().unwrap();
        let c = CfgAnalysis::build(&p);
        assert!(lint(&p, &c).is_empty());
    }

    #[test]
    fn unreachable_runs_are_coalesced() {
        let mut a = Asm::new("t");
        a.halt(); // pc 0
        a.nop(); // pc 1: dead
        a.nop(); // pc 2: dead
        a.label("f");
        a.jump("f"); // pc 3: dead (never called)
        let p = a.assemble().unwrap();
        let c = CfgAnalysis::build(&p);
        assert_eq!(lint(&p, &c), vec![LintFinding::Unreachable { start: 1, end: 3 }]);
    }

    #[test]
    fn fallthrough_off_the_end_is_flagged() {
        let mut a = Asm::new("t");
        let r = Reg::new(1);
        a.branch(Cond::Eq, r, Reg::ZERO, "done"); // pc 0
        a.label("done");
        a.nop(); // pc 1: falls off the end
        let p = a.assemble().unwrap();
        let c = CfgAnalysis::build(&p);
        assert_eq!(lint(&p, &c), vec![LintFinding::FallthroughOffEnd { pc: 1 }]);
    }

    #[test]
    fn escaping_code_pointer_is_flagged() {
        let mut a = Asm::new("t");
        let r = Reg::new(1);
        a.li(r, 0x100);
        a.load(r, r, 0);
        a.jump_indirect(r); // resolves to the single slot value
        a.label("arm");
        a.halt();
        a.data_label(0x100, "arm");
        let p = a.assemble().unwrap();
        // Corrupt the table out-of-band: re-build the program with a raw
        // out-of-range word in the slot instead of the label.
        let p = Program::new(
            p.name().to_string(),
            p.insts().to_vec(),
            p.entry(),
            p.data().map(|(a, _)| (a, 99_i64)),
        )
        .unwrap()
        .with_code_ptrs(p.code_ptrs())
        .unwrap();
        let c = CfgAnalysis::build(&p);
        let findings = lint(&p, &c);
        assert!(
            findings.contains(&LintFinding::EscapingCodePtr { addr: 0x100, value: 99 }),
            "{findings:?}"
        );
    }
}
