//! Static control-independence opportunity report.
//!
//! [`CfgReport::build`] summarizes one program's CFG for the `cfgstats`
//! bench tool: how many branches have a static re-convergent point, how
//! far away it is, how big the control-dependent region in between is,
//! and how deeply nested the loops are. This is the *static ceiling* on
//! what the simulator's CGCI/FGCI heuristics can exploit dynamically.

use tp_isa::{Pc, Program};

use crate::analysis::CfgAnalysis;
use crate::lint::{lint, LintFinding};

/// Static classification of one conditional branch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchKind {
    /// Backward branch whose re-convergent point is its not-taken
    /// successor — the MLB heuristic's single-exit-loop shape.
    SingleExitLoop,
    /// Backward branch with a later (or no) re-convergent point.
    MultiExitLoop,
    /// Forward branch with an intra-function re-convergent point — a
    /// hammock the FGCI/CGCI machinery can in principle bridge.
    ForwardHammock,
    /// Branch that re-converges only at the function exit (both arms
    /// return or halt) — the RET heuristic's territory.
    FunctionExit,
}

impl BranchKind {
    /// All kinds, in reporting order.
    pub const ALL: [BranchKind; 4] = [
        BranchKind::SingleExitLoop,
        BranchKind::MultiExitLoop,
        BranchKind::ForwardHammock,
        BranchKind::FunctionExit,
    ];

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            BranchKind::SingleExitLoop => "single-exit-loop",
            BranchKind::MultiExitLoop => "multi-exit-loop",
            BranchKind::ForwardHammock => "forward-hammock",
            BranchKind::FunctionExit => "function-exit",
        }
    }
}

/// One conditional branch's static re-convergence facts.
#[derive(Clone, Debug)]
pub struct BranchReport {
    /// The branch PC.
    pub pc: Pc,
    /// Static classification.
    pub kind: BranchKind,
    /// The immediate post-dominator, when intra-function.
    pub reconv: Option<Pc>,
    /// Signed PC distance to the re-convergent point.
    pub distance: Option<i64>,
    /// Instructions strictly between the branch and its re-convergent
    /// point.
    pub region_size: Option<usize>,
    /// Natural-loop nesting depth at the branch.
    pub loop_depth: u32,
}

/// The full static report for one program.
#[derive(Clone, Debug)]
pub struct CfgReport {
    /// Program name.
    pub name: String,
    /// Instruction count.
    pub insts: usize,
    /// Function entries (program entry plus call targets).
    pub functions: usize,
    /// Interprocedurally reachable instructions.
    pub reachable_insts: usize,
    /// Natural loops (distinct headers).
    pub loops: usize,
    /// Deepest loop nesting.
    pub max_loop_depth: u32,
    /// Indirect-transfer sites.
    pub indirect_sites: usize,
    /// Sites whose jump table the resolver recovered exactly.
    pub resolved_indirect_sites: usize,
    /// Every conditional branch.
    pub branches: Vec<BranchReport>,
    /// Lint findings (empty for clean workloads).
    pub lint: Vec<LintFinding>,
}

impl CfgReport {
    /// Builds the report (and runs the lint pass) for `program`.
    pub fn build(program: &Program, analysis: &CfgAnalysis) -> CfgReport {
        let mut branches = Vec::new();
        for (pc, inst) in program.insts().iter().enumerate() {
            if !inst.is_cond_branch() {
                continue;
            }
            let pc = pc as Pc;
            let reconv = analysis.reconv_point(pc);
            let backward = inst.is_backward_branch(pc);
            let kind = match (backward, reconv) {
                (true, Some(r)) if r == pc + 1 => BranchKind::SingleExitLoop,
                (true, _) => BranchKind::MultiExitLoop,
                (false, Some(_)) => BranchKind::ForwardHammock,
                (false, None) => BranchKind::FunctionExit,
            };
            branches.push(BranchReport {
                pc,
                kind,
                reconv,
                distance: reconv.map(|r| i64::from(r) - i64::from(pc)),
                region_size: analysis.region_size(pc),
                loop_depth: analysis.loop_depth(pc),
            });
        }
        let n = program.len();
        CfgReport {
            name: program.name().to_string(),
            insts: n,
            functions: analysis.function_entries().len(),
            reachable_insts: (0..n as Pc).filter(|&pc| analysis.is_reachable(pc)).count(),
            loops: analysis.loop_headers().len(),
            max_loop_depth: (0..n as Pc).map(|pc| analysis.loop_depth(pc)).max().unwrap_or(0),
            indirect_sites: analysis.indirect_sites().count(),
            resolved_indirect_sites: analysis.indirect_sites().filter(|&(_, r)| r).count(),
            branches,
            lint: lint(program, analysis),
        }
    }

    /// Branch count for one kind.
    pub fn count(&self, kind: BranchKind) -> usize {
        self.branches.iter().filter(|b| b.kind == kind).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_isa::asm::Asm;
    use tp_isa::{Cond, Reg};

    #[test]
    fn report_classifies_branch_shapes() {
        let mut a = Asm::new("t");
        let r = Reg::new(1);
        // A forward hammock...
        a.branch(Cond::Eq, r, Reg::ZERO, "join"); // pc 0
        a.addi(r, r, 1);
        a.label("join");
        // ...then a single-exit loop.
        a.label("top");
        a.addi(r, r, -1);
        a.branch(Cond::Gt, r, Reg::ZERO, "top"); // pc 3
        a.halt();
        let p = a.assemble().unwrap();
        let report = CfgReport::build(&p, &CfgAnalysis::build(&p));
        assert_eq!(report.insts, 5);
        assert_eq!(report.count(BranchKind::ForwardHammock), 1);
        assert_eq!(report.count(BranchKind::SingleExitLoop), 1);
        assert_eq!(report.loops, 1);
        assert_eq!(report.max_loop_depth, 1);
        assert!(report.lint.is_empty());
        let hammock = &report.branches[0];
        assert_eq!(hammock.reconv, Some(2));
        assert_eq!(hammock.distance, Some(2));
        assert_eq!(hammock.region_size, Some(1));
    }
}
