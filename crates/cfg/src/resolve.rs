//! Static resolution of indirect-transfer targets.
//!
//! Jump tables in both frontends follow the classic dispatch shape —
//! mask an index, scale it by the word size, add a table base held in a
//! single-assignment register, and load the target PC from the data image:
//!
//! ```text
//! and  t, v, MASK        ; t in [0, MASK]
//! shl  t, t, 3
//! add  t, t, TABLE_BASE  ; TABLE_BASE: register written once, by an li
//! ld   t, off(t)
//! jr   t
//! ```
//!
//! [`resolve_indirect`] recovers the exact target set for this family by a
//! backward slice inside the basic block of the indirect transfer,
//! evaluated over a tiny abstract domain (constants, strided index sets,
//! explicit value sets). The slice never crosses a block leader or a call
//! (calls clobber arbitrary registers), so a successful resolution is
//! sound: the run-time target is always a member of the returned set.
//! Anything that doesn't fit the domain returns `None`, and the caller
//! falls back to the conservative set of all code-pointer slots.

use tp_isa::{AluOp, Inst, Pc, Program, Word};

/// Largest `and` mask accepted as an index bound (table index sets beyond
/// this are treated as unresolved rather than enumerated).
const MAX_MASK: i64 = 0xFFFF;
/// Largest strided set the loader will enumerate.
const MAX_COUNT: u32 = 4096;
/// Backward-slice recursion bound (operand chains are short in practice).
const MAX_DEPTH: u32 = 24;

/// An abstract register value.
#[derive(Clone, Debug, PartialEq, Eq)]
enum AbsVal {
    /// The arithmetic progression `{base + k * stride : 0 <= k < count}`.
    /// A constant is `count == 1`.
    Strided { base: i64, stride: i64, count: u32 },
    /// An explicit small set (the result of loading a table slice).
    Values(Vec<i64>),
    /// Unknown.
    Top,
}

impl AbsVal {
    fn constant(c: i64) -> AbsVal {
        AbsVal::Strided { base: c, stride: 0, count: 1 }
    }

    fn as_const(&self) -> Option<i64> {
        match *self {
            AbsVal::Strided { base, count: 1, .. } => Some(base),
            _ => None,
        }
    }

    fn add_const(self, c: i64) -> AbsVal {
        match self {
            AbsVal::Strided { base, stride, count } => {
                AbsVal::Strided { base: base.wrapping_add(c), stride, count }
            }
            AbsVal::Values(vs) => {
                AbsVal::Values(vs.into_iter().map(|v| v.wrapping_add(c)).collect())
            }
            AbsVal::Top => AbsVal::Top,
        }
    }

    fn shl(self, s: i64) -> AbsVal {
        let s = (s & 63) as u32;
        match self {
            AbsVal::Strided { base, stride, count } => AbsVal::Strided {
                base: base.wrapping_shl(s),
                stride: stride.wrapping_shl(s),
                count,
            },
            AbsVal::Values(vs) => {
                AbsVal::Values(vs.into_iter().map(|x| x.wrapping_shl(s)).collect())
            }
            AbsVal::Top => AbsVal::Top,
        }
    }

    fn and(self, m: i64) -> AbsVal {
        if let Some(c) = self.as_const() {
            return AbsVal::constant(c & m);
        }
        if let AbsVal::Values(vs) = self {
            return AbsVal::Values(vs.into_iter().map(|x| x & m).collect());
        }
        // Whatever the operand was, `and` with a small non-negative mask
        // bounds the result to [0, m]. Only exact for all-ones masks
        // (others would leave holes), which is what index masking uses.
        if (0..=MAX_MASK).contains(&m) && (m as u64).wrapping_add(1).is_power_of_two() {
            AbsVal::Strided { base: 0, stride: 1, count: m as u32 + 1 }
        } else {
            AbsVal::Top
        }
    }
}

/// Positions at which control can enter a block from elsewhere: the entry,
/// every direct-transfer target, and every recorded code-pointer value.
/// The backward slice must not scan past one.
pub(crate) fn leaders(program: &Program) -> Vec<bool> {
    let n = program.len();
    let mut l = vec![false; n];
    l[program.entry() as usize] = true;
    for inst in program.insts() {
        if let Inst::Branch { target, .. } | Inst::Jump { target } | Inst::Call { target } = *inst {
            l[target as usize] = true;
        }
    }
    for v in code_ptr_values(program) {
        l[v as usize] = true;
    }
    l
}

/// The values stored in code-pointer data slots, filtered to valid PCs.
pub(crate) fn code_ptr_values(program: &Program) -> Vec<Pc> {
    let data: std::collections::BTreeMap<u64, Word> = program.data().collect();
    let mut out: Vec<Pc> = program
        .code_ptrs()
        .filter_map(|addr| data.get(&addr).copied())
        .filter(|&w| w >= 0 && program.contains(w as Pc))
        .map(|w| w as Pc)
        .collect();
    out.sort_unstable();
    out.dedup();
    out
}

/// Registers that are written exactly once in the whole program, by a
/// plain load-immediate. Their value holds at every use reached after the
/// write — the single-assignment table-base registers both frontends'
/// prologues set up.
pub(crate) fn global_consts(program: &Program) -> [Option<i64>; 32] {
    let mut writes = [0u32; 32];
    let mut value = [None; 32];
    for inst in program.insts() {
        if let Some(rd) = inst.dest() {
            writes[rd.index()] += 1;
            value[rd.index()] = match *inst {
                Inst::AluImm { op: AluOp::Add, rs, imm, .. } if rs.is_zero() => Some(imm as i64),
                _ => None,
            };
        }
    }
    let mut out = [None; 32];
    for r in 0..32 {
        if writes[r] == 1 {
            out[r] = value[r];
        }
    }
    out
}

struct Slicer<'a> {
    program: &'a Program,
    leaders: &'a [bool],
    consts: &'a [Option<i64>; 32],
    data: std::collections::BTreeMap<u64, Word>,
}

impl Slicer<'_> {
    /// The most recent in-block definition of `reg` strictly before `at`,
    /// or `None` if the slice hits a block leader, a call (arbitrary
    /// clobbers), or the start of the program first.
    fn find_def(&self, mut at: usize, reg: tp_isa::Reg) -> Option<usize> {
        while at > 0 {
            if self.leaders[at] {
                return None;
            }
            let i = at - 1;
            let inst = self.program.insts()[i];
            if matches!(inst, Inst::Call { .. } | Inst::CallIndirect { .. })
                || inst.is_unconditional_transfer()
            {
                return None;
            }
            if inst.dest() == Some(reg) {
                return Some(i);
            }
            at = i;
        }
        None
    }

    /// Abstract value of `reg` at position `at` (before `at` executes).
    fn eval(&self, at: usize, reg: tp_isa::Reg, depth: u32) -> AbsVal {
        if reg.is_zero() {
            return AbsVal::constant(0);
        }
        if depth >= MAX_DEPTH {
            return AbsVal::Top;
        }
        let Some(def) = self.find_def(at, reg) else {
            // No in-block definition: a single-assignment constant still
            // holds (its one write is in the prologue, before any use).
            return match self.consts[reg.index()] {
                Some(c) => AbsVal::constant(c),
                None => AbsVal::Top,
            };
        };
        match self.program.insts()[def] {
            Inst::AluImm { op: AluOp::Add, rs, imm, .. } => {
                self.eval(def, rs, depth + 1).add_const(imm as i64)
            }
            Inst::AluImm { op: AluOp::And, rs, imm, .. } => {
                self.eval(def, rs, depth + 1).and(imm as i64)
            }
            Inst::AluImm { op: AluOp::Shl, rs, imm, .. } => {
                self.eval(def, rs, depth + 1).shl(imm as i64)
            }
            Inst::AluImm { op: AluOp::Or, rs, imm, .. } => {
                // li64 materialization chains OR constants into a register.
                match self.eval(def, rs, depth + 1).as_const() {
                    Some(c) => AbsVal::constant(c | imm as i64),
                    None => AbsVal::Top,
                }
            }
            Inst::Alu { op: AluOp::Add, rs, rt, .. } => {
                let a = self.eval(def, rs, depth + 1);
                let b = self.eval(def, rt, depth + 1);
                match (a.as_const(), b.as_const()) {
                    (Some(c), _) => b.add_const(c),
                    (_, Some(c)) => a.add_const(c),
                    _ => AbsVal::Top,
                }
            }
            Inst::Load { base, offset, .. } => {
                self.load(self.eval(def, base, depth + 1), offset as i64)
            }
            _ => AbsVal::Top,
        }
    }

    /// The set of words a load could observe: every address in the strided
    /// set must name a *code-pointer slot* of the initial data image. Only
    /// those slots may be trusted to keep their initial value — ordinary
    /// data words are run-time mutable (stores would silently invalidate a
    /// "resolution" read from their initial contents), so loads from them
    /// evaluate to `Top`. Programs that write their own tables at run time
    /// are outside the supported family.
    fn load(&self, addr: AbsVal, offset: i64) -> AbsVal {
        let addrs: Vec<i64> = match addr.add_const(offset) {
            AbsVal::Strided { base, stride, count } if count <= MAX_COUNT => {
                (0..count as i64).map(|k| base.wrapping_add(k * stride)).collect()
            }
            AbsVal::Values(vs) if vs.len() <= MAX_COUNT as usize => vs,
            _ => return AbsVal::Top,
        };
        let mut words = Vec::with_capacity(addrs.len());
        for a in addrs {
            let Ok(a) = u64::try_from(a) else { return AbsVal::Top };
            match self.data.get(&a) {
                Some(&w) => words.push(w),
                None => return AbsVal::Top,
            }
        }
        AbsVal::Values(words)
    }
}

/// Statically resolves the target set of the indirect transfer at `pc`
/// (a [`Inst::JumpIndirect`] or [`Inst::CallIndirect`]).
///
/// Returns the exact set of possible target PCs, or `None` when the
/// dispatch does not fit the supported pattern family (the caller should
/// fall back to all code-pointer values). A resolved set may legitimately
/// contain out-of-range PCs — the lint pass reports those.
pub fn resolve_indirect(
    program: &Program,
    leaders: &[bool],
    consts: &[Option<i64>; 32],
    pc: Pc,
) -> Option<Vec<Pc>> {
    let Some(Inst::JumpIndirect { rs } | Inst::CallIndirect { rs }) = program.fetch(pc) else {
        return None;
    };
    let table_slots: std::collections::BTreeSet<u64> = program.code_ptrs().collect();
    let data = program.data().filter(|(addr, _)| table_slots.contains(addr)).collect();
    let slicer = Slicer { program, leaders, consts, data };
    match slicer.eval(pc as usize, rs, 0) {
        AbsVal::Values(vs) => {
            let mut out: Vec<Pc> =
                vs.into_iter().map(|w| Pc::try_from(w).unwrap_or(Pc::MAX)).collect();
            out.sort_unstable();
            out.dedup();
            Some(out)
        }
        // A constant register target (computed without a table load).
        v => v.as_const().map(|c| vec![Pc::try_from(c).unwrap_or(Pc::MAX)]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_isa::asm::Asm;
    use tp_isa::{Cond, Reg};

    /// The canonical masked dispatch resolves to exactly the table slice.
    #[test]
    fn masked_dispatch_resolves_to_table_slice() {
        let mut a = Asm::new("t");
        let (idx, t, base) = (Reg::new(1), Reg::new(2), Reg::new(17));
        a.li(base, 0x1000);
        a.load(idx, Reg::new(16), 0); // unknown data
        a.alui(AluOp::And, t, idx, 3);
        a.alui(AluOp::Shl, t, t, 3);
        a.alu(AluOp::Add, t, t, base);
        a.load(t, t, 8); // table slice starts one word in
        a.jump_indirect(t);
        for l in ["a0", "a1", "a2", "a3"] {
            a.label(l);
            a.nop();
        }
        a.halt();
        a.data_word(0x1000, -1); // not part of the slice
        for (i, l) in ["a0", "a1", "a2", "a3"].iter().enumerate() {
            a.data_label(0x1008 + 8 * i as u64, *l);
        }
        let p = a.assemble().unwrap();
        let jr = p.insts().iter().position(|i| matches!(i, Inst::JumpIndirect { .. })).unwrap();
        let l = leaders(&p);
        let c = global_consts(&p);
        let targets = resolve_indirect(&p, &l, &c, jr as Pc).unwrap();
        assert_eq!(targets, vec![7, 8, 9, 10]);
    }

    /// A single-slot load (function-pointer call) resolves to one target.
    #[test]
    fn single_slot_call_resolves() {
        let mut a = Asm::new("t");
        let (t, base) = (Reg::new(2), Reg::new(17));
        a.li(base, 0x1000);
        a.mv(t, base);
        a.load(t, t, 16);
        a.call_indirect(t);
        a.halt();
        a.label("f");
        a.ret();
        a.data_label(0x1010, "f");
        let p = a.assemble().unwrap();
        let ci = p.insts().iter().position(|i| matches!(i, Inst::CallIndirect { .. })).unwrap();
        let targets = resolve_indirect(&p, &leaders(&p), &global_consts(&p), ci as Pc).unwrap();
        assert_eq!(targets, vec![5]);
    }

    /// The slice refuses to cross a call (arbitrary register clobbers).
    #[test]
    fn slice_stops_at_calls_and_leaders() {
        let mut a = Asm::new("t");
        let t = Reg::new(2);
        a.li(t, 5);
        a.call("f");
        a.jump_indirect(t); // value of t is NOT the li above: f clobbers it
        a.label("f");
        a.li(t, 3); // second writer also defeats the global-const fallback
        a.ret();
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(resolve_indirect(&p, &leaders(&p), &global_consts(&p), 2), None);

        // Crossing a join (leader) is refused too.
        let mut a = Asm::new("t");
        a.li(t, 4);
        a.branch(Cond::Eq, Reg::ZERO, Reg::ZERO, "j");
        a.li(t, 5);
        a.label("j");
        a.jump_indirect(t);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(resolve_indirect(&p, &leaders(&p), &global_consts(&p), 3), None);
    }

    /// Non-power-of-two masks do not bound an unknown index exactly.
    #[test]
    fn non_power_of_two_mask_is_unresolved() {
        let mut a = Asm::new("t");
        let (idx, t) = (Reg::new(1), Reg::new(2));
        a.load(idx, Reg::new(16), 0);
        a.alui(AluOp::And, t, idx, 5); // holes: {0,1,4,5}
        a.alui(AluOp::Shl, t, t, 3);
        a.jump_indirect(t);
        a.halt();
        let p = a.assemble().unwrap();
        assert_eq!(resolve_indirect(&p, &leaders(&p), &global_consts(&p), 2), None);
    }

    #[test]
    fn global_consts_require_a_single_li_write() {
        let mut a = Asm::new("t");
        let (once, twice) = (Reg::new(7), Reg::new(8));
        a.li(once, 42);
        a.li(twice, 1);
        a.li(twice, 2);
        a.halt();
        let p = a.assemble().unwrap();
        let c = global_consts(&p);
        assert_eq!(c[7], Some(42));
        assert_eq!(c[8], None);
        assert_eq!(c[0], None); // r0 is never a tracked constant
    }
}
