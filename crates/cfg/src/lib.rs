//! Static CFG recovery and post-dominator analysis for trace-processor
//! workloads — an *independent re-convergence oracle*.
//!
//! The simulator's control-independence machinery (tp-core) detects
//! re-convergent points **dynamically**: the RET and MLB heuristics watch
//! traces retire and guess where a mispredicted branch's control-dependent
//! region ends. Rotenberg & Smith's paper defines the ground truth
//! **statically**: the re-convergent point of a branch is its immediate
//! post-dominator in the control-flow graph.
//!
//! This crate computes that ground truth from nothing but the decoded
//! [`Program`](tp_isa::Program) — shared by both frontends — so it can sit
//! *outside* the simulator and check it:
//!
//! * [`CfgAnalysis`] recovers the whole-program CFG (resolving jump tables
//!   through a small abstract interpreter, summarizing calls), builds
//!   dominator and post-dominator trees with the Cooper–Harvey–Kennedy
//!   algorithm, and derives natural-loop nesting and per-branch static
//!   re-convergence points.
//! * [`CfgAnalysis::classify`] maps any dynamically detected re-convergent
//!   PC onto the static structure ([`ReconvClass`]); the simulator's
//!   differential oracle mode asserts every CGCI attempt lands in a
//!   classified bucket.
//! * [`lint`] flags structural workload defects (unreachable code,
//!   fall-through off the end, escaping code pointers).
//! * [`CfgReport`] summarizes the static control-independence opportunity
//!   a workload offers — the ceiling the dynamic heuristics chase.
//!
//! The crate depends only on `tp-isa`, deliberately: none of the
//! simulator's own machinery is trusted, which is what makes the oracle
//! differential.

pub mod analysis;
pub mod dom;
pub mod graph;
pub mod lint;
pub mod report;
mod resolve;

pub use analysis::{CfgAnalysis, ReconvClass};
pub use dom::DomTree;
pub use graph::Graph;
pub use lint::{lint, LintFinding};
pub use report::{BranchKind, BranchReport, CfgReport};
