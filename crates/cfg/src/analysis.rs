//! Whole-program CFG recovery and re-convergence analysis.
//!
//! [`CfgAnalysis::build`] recovers an instruction-level control-flow graph
//! from a decoded [`Program`] (either frontend — both lower to the same
//! [`Inst`] stream), resolves indirect transfers through their jump tables
//! ([`crate::resolve`]), summarizes calls (so a branch's re-convergence is
//! computed *within its function*, with callees collapsed to their
//! can-return / can-halt behaviour), and computes dominator and
//! post-dominator trees over the result.
//!
//! The paper's *re-convergent point* of a conditional branch is exactly
//! the branch's immediate post-dominator in this graph; the
//! [`CfgAnalysis::classify`] taxonomy maps every PC the simulator's
//! dynamic heuristics can detect onto the static tree (exact ipdom, a
//! higher post-dominator, a loop's not-taken target, a return
//! continuation, or a known indirect target) — anything else is a
//! heuristic bug.

use std::collections::{BTreeMap, BTreeSet};

use tp_isa::{Inst, Pc, Program};

use crate::dom::DomTree;
use crate::graph::Graph;
use crate::resolve::{code_ptr_values, global_consts, leaders, resolve_indirect};

/// How a dynamically detected re-convergent PC relates to the static CFG.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReconvClass {
    /// Exactly the branch's immediate post-dominator.
    Exact,
    /// A (non-immediate) post-dominator of the branch: later than the
    /// earliest re-convergent point, but statically guaranteed to be on
    /// every path — trace boundaries quantize detection to trace starts.
    PostDominator,
    /// The not-taken successor of a backward branch: the MLB heuristic's
    /// assumption. For multi-exit loops this is inside the
    /// control-dependent region rather than a post-dominator.
    LoopNotTaken,
    /// The continuation of some call site: the RET heuristic re-converges
    /// where the enclosing function returns, which is a caller-side PC the
    /// intra-function post-dominator tree cannot name.
    ReturnContinuation,
    /// A known indirect-transfer target (jump-table arm or function
    /// entry).
    IndirectTarget,
    /// Interprocedurally reachable from *both* outcomes of the branch —
    /// the necessary condition for fetch to re-converge there — but none
    /// of the stronger classes above. The RET heuristic matches against
    /// *predicted* downstream traces, so wrong-path trace history can
    /// place its claimed re-convergence at any dynamic join (e.g. inside
    /// the body of a callee invoked on both paths, at a trace boundary
    /// that fell mid-function).
    ReachableJoin,
    /// None of the above — a re-convergence detection the static CFG
    /// cannot justify: the claimed PC is unreachable from at least one
    /// outcome of the branch, so fetch could never re-converge there.
    Unclassified,
}

impl ReconvClass {
    /// All classes, in reporting order.
    pub const ALL: [ReconvClass; 7] = [
        ReconvClass::Exact,
        ReconvClass::PostDominator,
        ReconvClass::LoopNotTaken,
        ReconvClass::ReturnContinuation,
        ReconvClass::IndirectTarget,
        ReconvClass::ReachableJoin,
        ReconvClass::Unclassified,
    ];

    /// Position in [`ReconvClass::ALL`] (for dense counter arrays).
    pub fn index(self) -> usize {
        ReconvClass::ALL.iter().position(|&c| c == self).expect("ALL is exhaustive")
    }

    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ReconvClass::Exact => "exact",
            ReconvClass::PostDominator => "post-dominator",
            ReconvClass::LoopNotTaken => "loop-not-taken",
            ReconvClass::ReturnContinuation => "return-continuation",
            ReconvClass::IndirectTarget => "indirect-target",
            ReconvClass::ReachableJoin => "reachable-join",
            ReconvClass::Unclassified => "unclassified",
        }
    }
}

/// Call-behaviour summary of one function (reachable code from its entry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct FnSummary {
    /// Some path from the entry reaches a `ret`.
    can_return: bool,
    /// Some path reaches a `halt` (directly or through a callee), or runs
    /// off the end of the program.
    can_halt: bool,
}

/// Static control-flow analysis of one program.
///
/// See the [module docs](self) for the graph construction. All queries are
/// O(dominator-tree depth) or better.
#[derive(Clone, Debug)]
pub struct CfgAnalysis {
    insts: Vec<Inst>,
    entry: Pc,
    /// Virtual exit node (index `len`): targets of `ret`/`halt` edges.
    vexit: u32,
    flow: Graph,
    dom: DomTree,
    pdom: DomTree,
    fn_entries: Vec<Pc>,
    summaries: BTreeMap<Pc, FnSummary>,
    /// Per-site resolved indirect targets (`None` = fell back to the
    /// conservative all-code-pointers set).
    indirect: BTreeMap<Pc, Option<Vec<Pc>>>,
    /// All PCs any indirect transfer could target (resolved ∪ fallback).
    indirect_target_set: BTreeSet<Pc>,
    return_continuations: BTreeSet<Pc>,
    code_ptr_pcs: Vec<Pc>,
    /// Interprocedurally reachable instructions (from the program entry).
    reachable: Vec<bool>,
    /// Per conditional branch: instructions interprocedurally reachable
    /// from *both* its outcomes (the candidate dynamic-join set).
    join_reach: BTreeMap<Pc, Vec<bool>>,
    /// Natural-loop nesting depth per instruction.
    loop_depth: Vec<u32>,
    /// Distinct natural-loop headers.
    loop_headers: Vec<Pc>,
}

impl CfgAnalysis {
    /// Builds the analysis for `program`.
    pub fn build(program: &Program) -> CfgAnalysis {
        let n = program.len();
        let vexit = n as u32;
        let ventry = n as u32 + 1;
        let insts: Vec<Inst> = program.insts().to_vec();

        // Per-site indirect-target resolution, with the conservative
        // fallback of every recorded code-pointer slot value.
        let lead = leaders(program);
        let consts = global_consts(program);
        let code_ptr_pcs = code_ptr_values(program);
        let mut indirect: BTreeMap<Pc, Option<Vec<Pc>>> = BTreeMap::new();
        let mut indirect_target_set: BTreeSet<Pc> = BTreeSet::new();
        for (pc, inst) in insts.iter().enumerate() {
            if matches!(inst, Inst::JumpIndirect { .. } | Inst::CallIndirect { .. }) {
                let r = resolve_indirect(program, &lead, &consts, pc as Pc);
                match &r {
                    Some(ts) => indirect_target_set.extend(ts.iter().copied()),
                    None => indirect_target_set.extend(code_ptr_pcs.iter().copied()),
                }
                indirect.insert(pc as Pc, r);
            }
        }

        // Function entries: the program entry plus every (resolved or
        // conservative) call target.
        let mut fn_entries: BTreeSet<Pc> = BTreeSet::new();
        fn_entries.insert(program.entry());
        for (pc, inst) in insts.iter().enumerate() {
            match inst {
                Inst::Call { target } => {
                    fn_entries.insert(*target);
                }
                Inst::CallIndirect { .. } => {
                    for t in Self::site_targets(&indirect, &code_ptr_pcs, pc as Pc) {
                        if (t as usize) < n {
                            fn_entries.insert(t);
                        }
                    }
                }
                _ => {}
            }
        }
        let fn_entries: Vec<Pc> = fn_entries.into_iter().collect();

        // Can-return / can-halt summaries to a fixed point (monotone
        // booleans, so this terminates quickly).
        let mut summaries: BTreeMap<Pc, FnSummary> =
            fn_entries.iter().map(|&f| (f, FnSummary::default())).collect();
        loop {
            let mut changed = false;
            for &f in &fn_entries {
                let s = Self::scan_function(&insts, &indirect, &code_ptr_pcs, &summaries, f);
                if summaries[&f] != s {
                    summaries.insert(f, s);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // The re-convergence flow graph: calls summarized, `ret` and
        // `halt` edged to the virtual exit, the virtual entry fanning out
        // to every function entry so dominators are defined per function.
        let mut flow = Graph::new(n + 2);
        for (pc, inst) in insts.iter().enumerate() {
            let pc32 = pc as u32;
            let fall = |g: &mut Graph| {
                g.add_edge(pc32, if pc + 1 < n { pc32 + 1 } else { vexit });
            };
            match *inst {
                Inst::Branch { target, .. } => {
                    flow.add_edge(pc32, target);
                    fall(&mut flow);
                }
                Inst::Jump { target } => flow.add_edge(pc32, target),
                Inst::Call { target } => {
                    let s = summaries[&target];
                    if s.can_return {
                        fall(&mut flow);
                    }
                    if s.can_halt {
                        flow.add_edge(pc32, vexit);
                    }
                }
                Inst::CallIndirect { .. } => {
                    let mut any_return = false;
                    let mut any_halt = false;
                    for t in Self::site_targets(&indirect, &code_ptr_pcs, pc32) {
                        if let Some(s) = summaries.get(&t) {
                            any_return |= s.can_return;
                            any_halt |= s.can_halt;
                        }
                    }
                    if any_return {
                        fall(&mut flow);
                    }
                    if any_halt {
                        flow.add_edge(pc32, vexit);
                    }
                }
                Inst::JumpIndirect { .. } => {
                    for t in Self::site_targets(&indirect, &code_ptr_pcs, pc32) {
                        flow.add_edge(pc32, if (t as usize) < n { t } else { vexit });
                    }
                }
                Inst::Ret | Inst::Halt => flow.add_edge(pc32, vexit),
                _ => fall(&mut flow),
            }
        }
        for &f in &fn_entries {
            flow.add_edge(ventry, f);
        }

        let dom = DomTree::build(&flow, ventry);
        let pdom = DomTree::build(&flow.reversed(), vexit);

        // Natural loops: back edge u -> v with v dominating u; the loop
        // body is the backward closure of u up to v. Loops sharing a
        // header are merged (standard), and nesting depth counts the
        // distinct headers containing each instruction.
        let mut loops: BTreeMap<Pc, BTreeSet<u32>> = BTreeMap::new();
        for u in 0..n as u32 {
            for &v in flow.succs(u) {
                if v < n as u32 && dom.dominates(v, u) {
                    let body = loops.entry(v).or_default();
                    body.insert(v);
                    let mut stack = vec![u];
                    while let Some(x) = stack.pop() {
                        if body.insert(x) {
                            for &p in flow.preds(x) {
                                if p < n as u32 && p != v && dom.is_reachable(p) {
                                    stack.push(p);
                                }
                            }
                        }
                    }
                }
            }
        }
        let mut loop_depth = vec![0u32; n];
        for body in loops.values() {
            for &x in body {
                loop_depth[x as usize] += 1;
            }
        }
        let loop_headers: Vec<Pc> = loops.keys().copied().collect();

        let return_continuations: BTreeSet<Pc> = insts
            .iter()
            .enumerate()
            .filter(|(_, i)| matches!(i, Inst::Call { .. } | Inst::CallIndirect { .. }))
            .map(|(pc, _)| pc as Pc + 1)
            .filter(|&c| (c as usize) < n)
            .collect();

        let reachable = Self::interproc_reachable(
            &insts,
            &indirect,
            &code_ptr_pcs,
            &summaries,
            program.entry(),
        );

        // Candidate dynamic joins per branch: a PC unreachable from either
        // outcome can never be a re-convergence point, however the
        // heuristics arrived at it.
        let mut join_reach: BTreeMap<Pc, Vec<bool>> = BTreeMap::new();
        for (pc, inst) in insts.iter().enumerate() {
            let Inst::Branch { target, .. } = *inst else { continue };
            let reach = |from: Pc| {
                Self::interproc_reachable(&insts, &indirect, &code_ptr_pcs, &summaries, from)
            };
            let taken = reach(target);
            let joint = if pc + 1 < n {
                let fall = reach(pc as Pc + 1);
                taken.iter().zip(&fall).map(|(&a, &b)| a && b).collect()
            } else {
                vec![false; n] // fall-through off the end: no join exists
            };
            join_reach.insert(pc as Pc, joint);
        }

        CfgAnalysis {
            insts,
            entry: program.entry(),
            vexit,
            flow,
            dom,
            pdom,
            fn_entries,
            summaries,
            indirect,
            indirect_target_set,
            return_continuations,
            code_ptr_pcs,
            reachable,
            join_reach,
            loop_depth,
            loop_headers,
        }
    }

    /// The (resolved or fallback) target set of the indirect site at `pc`.
    fn site_targets<'a>(
        indirect: &'a BTreeMap<Pc, Option<Vec<Pc>>>,
        code_ptr_pcs: &'a [Pc],
        pc: Pc,
    ) -> impl Iterator<Item = Pc> + 'a {
        let (resolved, fallback) = match indirect.get(&pc) {
            Some(Some(ts)) => (Some(ts.as_slice()), None),
            _ => (None, Some(code_ptr_pcs)),
        };
        resolved.into_iter().flatten().chain(fallback.into_iter().flatten()).copied()
    }

    /// One function's can-return / can-halt bits, given current summaries
    /// of every callee (intraprocedural reachability from `f`).
    fn scan_function(
        insts: &[Inst],
        indirect: &BTreeMap<Pc, Option<Vec<Pc>>>,
        code_ptr_pcs: &[Pc],
        summaries: &BTreeMap<Pc, FnSummary>,
        f: Pc,
    ) -> FnSummary {
        let n = insts.len();
        let mut out = FnSummary::default();
        let mut seen = vec![false; n];
        let mut stack = vec![f];
        seen[f as usize] = true;
        let push = |pc: usize, seen: &mut Vec<bool>, stack: &mut Vec<Pc>| {
            if pc < n && !seen[pc] {
                seen[pc] = true;
                stack.push(pc as Pc);
            }
        };
        while let Some(pc) = stack.pop() {
            let i = pc as usize;
            match insts[i] {
                Inst::Branch { target, .. } => {
                    push(target as usize, &mut seen, &mut stack);
                    if i + 1 < n {
                        push(i + 1, &mut seen, &mut stack);
                    } else {
                        out.can_halt = true; // off the end
                    }
                }
                Inst::Jump { target } => push(target as usize, &mut seen, &mut stack),
                Inst::Call { target } => {
                    let s = summaries.get(&target).copied().unwrap_or_default();
                    out.can_halt |= s.can_halt;
                    if s.can_return {
                        push(i + 1, &mut seen, &mut stack);
                    }
                }
                Inst::CallIndirect { .. } => {
                    let mut any_return = false;
                    for t in Self::site_targets(indirect, code_ptr_pcs, pc) {
                        if let Some(s) = summaries.get(&t) {
                            any_return |= s.can_return;
                            out.can_halt |= s.can_halt;
                        }
                    }
                    if any_return {
                        push(i + 1, &mut seen, &mut stack);
                    }
                }
                Inst::JumpIndirect { .. } => {
                    for t in Self::site_targets(indirect, code_ptr_pcs, pc) {
                        push(t as usize, &mut seen, &mut stack);
                    }
                }
                Inst::Ret => out.can_return = true,
                Inst::Halt => out.can_halt = true,
                _ => {
                    if i + 1 < n {
                        push(i + 1, &mut seen, &mut stack);
                    } else {
                        out.can_halt = true; // off the end
                    }
                }
            }
        }
        out
    }

    /// Interprocedural reachability from `entry` (the program entry, or
    /// any PC for per-branch join sets): calls descend into the callee
    /// *and* continue past the site when the callee can return. Returns
    /// stop the walk (the caller is unknown without context), so this
    /// under-approximates across the end of the enclosing function — the
    /// caller-side continuation classes cover those PCs instead.
    fn interproc_reachable(
        insts: &[Inst],
        indirect: &BTreeMap<Pc, Option<Vec<Pc>>>,
        code_ptr_pcs: &[Pc],
        summaries: &BTreeMap<Pc, FnSummary>,
        entry: Pc,
    ) -> Vec<bool> {
        let n = insts.len();
        let mut seen = vec![false; n];
        let mut stack = vec![entry];
        seen[entry as usize] = true;
        let push = |pc: usize, seen: &mut Vec<bool>, stack: &mut Vec<Pc>| {
            if pc < n && !seen[pc] {
                seen[pc] = true;
                stack.push(pc as Pc);
            }
        };
        while let Some(pc) = stack.pop() {
            let i = pc as usize;
            match insts[i] {
                Inst::Branch { target, .. } => {
                    push(target as usize, &mut seen, &mut stack);
                    push(i + 1, &mut seen, &mut stack);
                }
                Inst::Jump { target } => push(target as usize, &mut seen, &mut stack),
                Inst::Call { target } => {
                    push(target as usize, &mut seen, &mut stack);
                    if summaries.get(&target).is_some_and(|s| s.can_return) {
                        push(i + 1, &mut seen, &mut stack);
                    }
                }
                Inst::CallIndirect { .. } => {
                    let mut any_return = false;
                    for t in Self::site_targets(indirect, code_ptr_pcs, pc) {
                        push(t as usize, &mut seen, &mut stack);
                        any_return |= summaries.get(&t).is_some_and(|s| s.can_return);
                    }
                    if any_return {
                        push(i + 1, &mut seen, &mut stack);
                    }
                }
                Inst::JumpIndirect { .. } => {
                    for t in Self::site_targets(indirect, code_ptr_pcs, pc) {
                        push(t as usize, &mut seen, &mut stack);
                    }
                }
                Inst::Ret | Inst::Halt => {}
                _ => push(i + 1, &mut seen, &mut stack),
            }
        }
        seen
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the program is empty (never true for a validated program).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The program entry PC.
    pub fn entry(&self) -> Pc {
        self.entry
    }

    /// Function entries: the program entry plus every call target.
    pub fn function_entries(&self) -> &[Pc] {
        &self.fn_entries
    }

    /// The dominator tree of the re-convergence flow graph (rooted at the
    /// virtual entry; instruction PCs are node indices).
    pub fn dom_tree(&self) -> &DomTree {
        &self.dom
    }

    /// The post-dominator tree (dominators of the reversed flow graph,
    /// rooted at the virtual exit).
    pub fn pdom_tree(&self) -> &DomTree {
        &self.pdom
    }

    /// Whether `pc` is reachable from the entry (interprocedurally).
    pub fn is_reachable(&self, pc: Pc) -> bool {
        self.reachable.get(pc as usize).copied().unwrap_or(false)
    }

    /// Natural-loop nesting depth of `pc` (0 = not in any loop).
    pub fn loop_depth(&self, pc: Pc) -> u32 {
        self.loop_depth.get(pc as usize).copied().unwrap_or(0)
    }

    /// Distinct natural-loop headers.
    pub fn loop_headers(&self) -> &[Pc] {
        &self.loop_headers
    }

    /// The statically resolved target set of the indirect transfer at
    /// `pc`: `Some(targets)` when the dispatch pattern was recovered
    /// exactly, `None` when the site exists but fell back to the
    /// conservative all-code-pointers set (query
    /// [`CfgAnalysis::indirect_fallback_targets`] for that), and `None`
    /// for non-indirect PCs.
    pub fn resolved_indirect_targets(&self, pc: Pc) -> Option<&[Pc]> {
        self.indirect.get(&pc).and_then(|r| r.as_deref())
    }

    /// The conservative indirect-target set: every valid PC recorded in a
    /// code-pointer data slot.
    pub fn indirect_fallback_targets(&self) -> &[Pc] {
        &self.code_ptr_pcs
    }

    /// Indirect-transfer sites, with whether each was exactly resolved.
    pub fn indirect_sites(&self) -> impl Iterator<Item = (Pc, bool)> + '_ {
        self.indirect.iter().map(|(&pc, r)| (pc, r.is_some()))
    }

    /// The branch's static re-convergent point: its immediate
    /// post-dominator. `None` when the branch re-converges only at the
    /// function exit (the RET class) or post-dominance is undefined.
    pub fn reconv_point(&self, branch_pc: Pc) -> Option<Pc> {
        if !matches!(self.insts.get(branch_pc as usize), Some(i) if i.is_cond_branch()) {
            return None;
        }
        match self.pdom.idom(branch_pc) {
            Some(d) if d != self.vexit => Some(d),
            _ => None,
        }
    }

    /// Whether `a` post-dominates `b` in the re-convergence flow graph.
    pub fn post_dominates(&self, a: Pc, b: Pc) -> bool {
        a != self.vexit && b != self.vexit && self.pdom.dominates(a, b)
    }

    /// Classifies a dynamically detected re-convergent PC for the
    /// conditional branch at `branch_pc` (see [`ReconvClass`]).
    pub fn classify(&self, branch_pc: Pc, detected: Pc) -> ReconvClass {
        if self.reconv_point(branch_pc) == Some(detected) {
            return ReconvClass::Exact;
        }
        if detected != branch_pc && self.post_dominates(detected, branch_pc) {
            return ReconvClass::PostDominator;
        }
        let backward =
            self.insts.get(branch_pc as usize).is_some_and(|i| i.is_backward_branch(branch_pc));
        if backward && detected == branch_pc + 1 {
            return ReconvClass::LoopNotTaken;
        }
        if self.return_continuations.contains(&detected) {
            return ReconvClass::ReturnContinuation;
        }
        if self.indirect_target_set.contains(&detected) {
            return ReconvClass::IndirectTarget;
        }
        let joinable = self
            .join_reach
            .get(&branch_pc)
            .is_some_and(|r| r.get(detected as usize).copied().unwrap_or(false));
        if joinable {
            return ReconvClass::ReachableJoin;
        }
        ReconvClass::Unclassified
    }

    /// The size of the branch's control-dependent region: instructions on
    /// paths between the branch and its re-convergent point (exclusive of
    /// both). `None` when the branch has no intra-function re-convergent
    /// point.
    pub fn region_size(&self, branch_pc: Pc) -> Option<usize> {
        let reconv = self.reconv_point(branch_pc)?;
        let mut seen = BTreeSet::new();
        let mut stack: Vec<u32> = self
            .flow
            .succs(branch_pc)
            .iter()
            .copied()
            .filter(|&s| s != reconv && s != self.vexit)
            .collect();
        for &s in &stack {
            seen.insert(s);
        }
        while let Some(v) = stack.pop() {
            for &s in self.flow.succs(v) {
                if s != reconv && s != self.vexit && seen.insert(s) {
                    stack.push(s);
                }
            }
        }
        Some(seen.len())
    }

    /// Whether the function containing nothing but a scan from `f` can
    /// return (used by tests; `f` must be a function entry).
    #[doc(hidden)]
    pub fn fn_can_return(&self, f: Pc) -> Option<bool> {
        self.summaries.get(&f).map(|s| s.can_return)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_isa::asm::Asm;
    use tp_isa::{Cond, Reg};

    fn asm() -> Asm {
        Asm::new("t")
    }

    /// A simple hammock: the branch re-converges exactly at the join.
    #[test]
    fn hammock_reconverges_at_join() {
        let mut a = asm();
        let r = Reg::new(1);
        a.load(r, Reg::new(16), 0);
        a.branch(Cond::Eq, r, Reg::ZERO, "else"); // pc 1
        a.addi(r, r, 1);
        a.jump("end");
        a.label("else");
        a.addi(r, r, 2);
        a.label("end"); // pc 5
        a.halt();
        let c = CfgAnalysis::build(&a.assemble().unwrap());
        assert_eq!(c.reconv_point(1), Some(5));
        assert_eq!(c.classify(1, 5), ReconvClass::Exact);
        assert_eq!(c.region_size(1), Some(3)); // pcs 2, 3, 4
        assert_eq!(c.classify(1, 0), ReconvClass::Unclassified);
    }

    /// A single-exit loop: the backward branch re-converges at its
    /// not-taken successor.
    #[test]
    fn loop_backedge_reconverges_at_exit() {
        let mut a = asm();
        let r = Reg::new(1);
        a.li(r, 5);
        a.label("top");
        a.addi(r, r, -1);
        a.branch(Cond::Gt, r, Reg::ZERO, "top"); // pc 2, backward
        a.halt(); // pc 3
        let c = CfgAnalysis::build(&a.assemble().unwrap());
        assert_eq!(c.reconv_point(2), Some(3));
        assert_eq!(c.classify(2, 3), ReconvClass::Exact);
        assert_eq!(c.loop_depth(1), 1);
        assert_eq!(c.loop_depth(0), 0);
        assert_eq!(c.loop_headers(), &[1]);
    }

    /// A multi-exit loop: the break and the back edge join *after* the
    /// not-taken successor, so MLB's assumption is the LoopNotTaken
    /// exception, not the exact ipdom.
    #[test]
    fn multi_exit_loop_classifies_mlb_as_loop_not_taken() {
        let mut a = asm();
        let (r, s) = (Reg::new(1), Reg::new(2));
        a.li(r, 5);
        a.label("top");
        a.branch(Cond::Eq, s, Reg::ZERO, "out"); // break
        a.addi(r, r, -1);
        a.branch(Cond::Gt, r, Reg::ZERO, "top"); // pc 3, backward
        a.nop(); // pc 4: only on the fall-through path
        a.label("out");
        a.halt(); // pc 5
        let c = CfgAnalysis::build(&a.assemble().unwrap());
        assert_eq!(c.reconv_point(3), Some(5)); // join of break and exit
        assert_eq!(c.classify(3, 4), ReconvClass::LoopNotTaken);
        assert_eq!(c.classify(3, 5), ReconvClass::Exact);
    }

    /// A branch whose arms both return: no intra-function re-convergent
    /// point; the call continuation is the RET class.
    #[test]
    fn function_exit_branch_classifies_return_continuation() {
        let mut a = asm();
        let r = Reg::new(1);
        a.call("f"); // pc 0
        a.halt(); // pc 1: the continuation
        a.label("f");
        a.branch(Cond::Eq, r, Reg::ZERO, "f_else"); // pc 2
        a.ret();
        a.label("f_else");
        a.ret();
        let c = CfgAnalysis::build(&a.assemble().unwrap());
        assert_eq!(c.reconv_point(2), None);
        assert_eq!(c.classify(2, 1), ReconvClass::ReturnContinuation);
        assert_eq!(c.fn_can_return(2), Some(true));
    }

    /// A PC inside a callee invoked on both paths of a branch is a
    /// legitimate (if weak) dynamic join — the RET heuristic lands on such
    /// PCs when wrong-path trace predictions put a mid-function trace
    /// boundary after a return-ending trace. A PC reachable from only one
    /// outcome stays unclassified.
    #[test]
    fn callee_body_classifies_reachable_join() {
        let mut a = asm();
        let r = Reg::new(1);
        a.label("top");
        a.call("f"); // pc 0
        a.addi(r, r, -1);
        a.branch(Cond::Gt, r, Reg::ZERO, "top"); // pc 2, backward
        a.halt(); // pc 3: loop exit
        a.nop(); // pc 4: dead — reachable from neither outcome
        a.label("f");
        a.nop(); // pc 5: inside the callee, reached from both outcomes?
        a.ret(); // (taken re-enters the loop and calls f; fall-through halts)
        let c = CfgAnalysis::build(&a.assemble().unwrap());
        // Fall-through halts without calling f again, so pc 5 is NOT a
        // join of this branch.
        assert_eq!(c.classify(2, 5), ReconvClass::Unclassified);
        assert_eq!(c.classify(2, 4), ReconvClass::Unclassified);

        // Same loop, but the exit path calls f once more before halting:
        // now the callee body is reachable from both outcomes.
        let mut a = asm();
        a.label("top");
        a.call("f"); // pc 0
        a.addi(r, r, -1);
        a.branch(Cond::Gt, r, Reg::ZERO, "top"); // pc 2, backward
        a.call("f");
        a.halt();
        a.label("f");
        a.nop(); // pc 5
        a.ret();
        let c = CfgAnalysis::build(&a.assemble().unwrap());
        assert_eq!(c.classify(2, 5), ReconvClass::ReachableJoin);
    }

    /// Calls are summarized: a branch over a call still re-converges
    /// after it, and a callee that can halt breaks post-dominance.
    #[test]
    fn call_summarization_keeps_reconvergence() {
        let mut a = asm();
        let r = Reg::new(1);
        a.branch(Cond::Eq, r, Reg::ZERO, "end"); // pc 0
        a.call("f");
        a.label("end");
        a.halt(); // pc 2
        a.label("f");
        a.ret();
        let c = CfgAnalysis::build(&a.assemble().unwrap());
        assert_eq!(c.reconv_point(0), Some(2));

        // Same shape, but the callee can halt: the call might never fall
        // through, so the branch's ipdom is pushed to the exit.
        let mut a = asm();
        a.branch(Cond::Eq, r, Reg::ZERO, "end");
        a.call("f");
        a.label("end");
        a.halt();
        a.label("f");
        a.branch(Cond::Eq, r, Reg::ZERO, "h");
        a.ret();
        a.label("h");
        a.halt();
        let c = CfgAnalysis::build(&a.assemble().unwrap());
        assert_eq!(c.reconv_point(0), None);
    }

    /// Resolved switch dispatch: arms re-join, and the hammock branch
    /// over the whole switch still finds its join exactly.
    #[test]
    fn switch_arms_rejoin_through_resolved_dispatch() {
        let mut a = asm();
        let (idx, t, base) = (Reg::new(1), Reg::new(2), Reg::new(17));
        a.li(base, 0x1000);
        a.load(idx, Reg::new(16), 0);
        a.branch(Cond::Eq, idx, Reg::ZERO, "swend"); // pc 2: hammock over switch
        a.alui(tp_isa::AluOp::And, t, idx, 1);
        a.alui(tp_isa::AluOp::Shl, t, t, 3);
        a.alu(tp_isa::AluOp::Add, t, t, base);
        a.load(t, t, 0);
        a.jump_indirect(t); // pc 7
        a.label("arm0");
        a.jump("swend");
        a.label("arm1");
        a.nop();
        a.label("swend");
        a.halt(); // pc 10
        a.data_label(0x1000, "arm0");
        a.data_label(0x1008, "arm1");
        let p = a.assemble().unwrap();
        let c = CfgAnalysis::build(&p);
        assert_eq!(c.resolved_indirect_targets(7), Some(&[8, 9][..]));
        assert_eq!(c.reconv_point(2), Some(10));
        assert_eq!(c.classify(2, 8), ReconvClass::IndirectTarget);
    }

    /// Unreachable code is detected interprocedurally.
    #[test]
    fn reachability_descends_into_callees() {
        let mut a = asm();
        a.call("f");
        a.halt();
        a.label("dead");
        a.nop(); // pc 2: unreachable
        a.label("f");
        a.ret(); // pc 3: reachable through the call
        let c = CfgAnalysis::build(&a.assemble().unwrap());
        assert!(c.is_reachable(0));
        assert!(!c.is_reachable(2));
        assert!(c.is_reachable(3));
        assert_eq!(c.function_entries(), &[0, 3]);
    }
}
