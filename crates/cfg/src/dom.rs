//! Dominator trees via the Cooper–Harvey–Kennedy iterative algorithm.
//!
//! "A Simple, Fast Dominance Algorithm" (Cooper, Harvey & Kennedy, 2001):
//! iterate `idom[b] = intersect(processed preds of b)` over reverse
//! post-order until a fixed point. On the shallow, mostly-reducible graphs
//! of real programs this converges in two or three passes and needs no
//! auxiliary forest, which makes it easy to audit — exactly what an
//! *oracle* component wants.
//!
//! Post-dominators are the dominators of the reversed graph rooted at the
//! (virtual) exit node; [`crate::CfgAnalysis`] builds them that way, and
//! the property tests below check that duality against brute-force
//! dominance computed from first principles.

use crate::graph::Graph;

/// An immediate-dominator tree for the nodes reachable from `root`.
#[derive(Clone, Debug)]
pub struct DomTree {
    root: u32,
    /// `idom[v]` for reachable non-root `v`; `None` for unreachable nodes.
    /// The root's entry is `Some(root)` (it is its own dominator).
    idom: Vec<Option<u32>>,
}

impl DomTree {
    /// Computes the dominator tree of `g` rooted at `root`.
    pub fn build(g: &Graph, root: u32) -> DomTree {
        let order = g.rpo(root);
        // Position of each node in reverse post-order; also serves as the
        // reachability test during intersection.
        let mut pos = vec![u32::MAX; g.len()];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i as u32;
        }
        let mut idom: Vec<Option<u32>> = vec![None; g.len()];
        idom[root as usize] = Some(root);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                let mut new_idom: Option<u32> = None;
                for &p in g.preds(b) {
                    if pos[p as usize] == u32::MAX || idom[p as usize].is_none() {
                        continue; // unreachable or not yet processed
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &pos, p, cur),
                    });
                }
                if new_idom.is_some() && idom[b as usize] != new_idom {
                    idom[b as usize] = new_idom;
                    changed = true;
                }
            }
        }
        DomTree { root, idom }
    }

    /// The tree root.
    pub fn root(&self) -> u32 {
        self.root
    }

    /// The immediate dominator of `v`: `None` for the root itself and for
    /// nodes unreachable from the root.
    pub fn idom(&self, v: u32) -> Option<u32> {
        if v == self.root {
            None
        } else {
            self.idom[v as usize]
        }
    }

    /// Whether `v` is reachable from the root.
    pub fn is_reachable(&self, v: u32) -> bool {
        self.idom[v as usize].is_some()
    }

    /// Whether `a` dominates `b` (reflexively: every node dominates itself).
    ///
    /// Walks the dominator chain of `b`, so cost is the tree depth —
    /// negligible on instruction-level CFGs, and it keeps the tree free of
    /// extra preprocessing.
    pub fn dominates(&self, a: u32, b: u32) -> bool {
        if !self.is_reachable(b) {
            return false;
        }
        let mut v = b;
        loop {
            if v == a {
                return true;
            }
            if v == self.root {
                return false;
            }
            match self.idom(v) {
                Some(d) => v = d,
                None => return false,
            }
        }
    }

    /// The dominator chain of `v`, from `idom(v)` up to the root.
    pub fn chain(&self, v: u32) -> impl Iterator<Item = u32> + '_ {
        let mut cur = self.idom(v);
        std::iter::from_fn(move || {
            let d = cur?;
            cur = self.idom(d);
            Some(d)
        })
    }
}

/// CHK's two-finger chain walk: the nearest common ancestor of `a` and `b`
/// in the (partially built) dominator tree, comparing RPO positions.
fn intersect(idom: &[Option<u32>], pos: &[u32], mut a: u32, mut b: u32) -> u32 {
    while a != b {
        while pos[a as usize] > pos[b as usize] {
            a = idom[a as usize].expect("processed node has idom");
        }
        while pos[b as usize] > pos[a as usize] {
            b = idom[b as usize].expect("processed node has idom");
        }
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn graph(n: usize, edges: &[(u32, u32)]) -> Graph {
        let mut g = Graph::new(n);
        for &(a, b) in edges {
            g.add_edge(a, b);
        }
        g
    }

    /// Brute-force dominance from the definition: `d` dominates `v` iff
    /// removing `d` makes `v` unreachable from `root`.
    fn dominates_brute(g: &Graph, root: u32, d: u32, v: u32) -> bool {
        if d == v {
            return true;
        }
        if root == d {
            return g.reachable(root)[v as usize];
        }
        let mut seen = vec![false; g.len()];
        seen[root as usize] = true;
        let mut stack = vec![root];
        while let Some(x) = stack.pop() {
            for &s in g.succs(x) {
                if s != d && !seen[s as usize] {
                    seen[s as usize] = true;
                    stack.push(s);
                }
            }
        }
        !seen[v as usize] && g.reachable(root)[v as usize]
    }

    /// Checks the computed tree against brute-force dominance for every
    /// node pair.
    fn check_against_brute(g: &Graph, root: u32) {
        let tree = DomTree::build(g, root);
        let reach = g.reachable(root);
        for v in 0..g.len() as u32 {
            if !reach[v as usize] {
                assert!(!tree.is_reachable(v), "node {v} should be unreachable");
                continue;
            }
            for d in 0..g.len() as u32 {
                assert_eq!(
                    tree.dominates(d, v),
                    dominates_brute(g, root, d, v),
                    "dominates({d}, {v}) disagrees with brute force"
                );
            }
            // idom is the unique closest strict dominator: every other
            // strict dominator of v must dominate it.
            if let Some(id) = tree.idom(v) {
                for d in 0..g.len() as u32 {
                    if d != v && dominates_brute(g, root, d, v) {
                        assert!(
                            dominates_brute(g, root, d, id),
                            "strict dominator {d} of {v} does not dominate idom {id}"
                        );
                    }
                }
            }
        }
    }

    /// Diamond: 0 -> {1, 2} -> 3. The join's idom is the fork.
    #[test]
    fn diamond_fixture() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let t = DomTree::build(&g, 0);
        assert_eq!(t.idom(1), Some(0));
        assert_eq!(t.idom(2), Some(0));
        assert_eq!(t.idom(3), Some(0));
        // Post-dominators via the reversed graph rooted at the exit.
        let p = DomTree::build(&g.reversed(), 3);
        assert_eq!(p.idom(1), Some(3));
        assert_eq!(p.idom(2), Some(3));
        assert_eq!(p.idom(0), Some(3)); // the fork re-converges at the join
        check_against_brute(&g, 0);
    }

    /// Nested hammock: an outer diamond whose then-arm is itself a diamond.
    ///
    /// ```text
    ///        0
    ///       / \
    ///      1   5
    ///     / \  |
    ///    2   3 |
    ///     \ /  |
    ///      4   |
    ///       \ /
    ///        6
    /// ```
    #[test]
    fn nested_hammock_fixture() {
        let g = graph(7, &[(0, 1), (0, 5), (1, 2), (1, 3), (2, 4), (3, 4), (4, 6), (5, 6)]);
        let t = DomTree::build(&g, 0);
        assert_eq!(t.idom(4), Some(1)); // inner join is dominated by inner fork
        assert_eq!(t.idom(6), Some(0)); // outer join by outer fork
        let p = DomTree::build(&g.reversed(), 6);
        assert_eq!(p.idom(1), Some(4)); // inner fork re-converges at inner join
        assert_eq!(p.idom(0), Some(6)); // outer fork at outer join
        assert_eq!(p.idom(4), Some(6));
        check_against_brute(&g, 0);
        check_against_brute(&g.reversed(), 6);
    }

    /// Irreducible loop: two entries (1 and 2) into the cycle {1, 2}.
    /// Neither loop node dominates the other, so both idoms fall back to
    /// the fork — the case simple interval-based algorithms get wrong.
    #[test]
    fn irreducible_loop_fixture() {
        let g = graph(4, &[(0, 1), (0, 2), (1, 2), (2, 1), (1, 3), (2, 3)]);
        let t = DomTree::build(&g, 0);
        assert_eq!(t.idom(1), Some(0));
        assert_eq!(t.idom(2), Some(0));
        assert_eq!(t.idom(3), Some(0));
        check_against_brute(&g, 0);
    }

    /// Multi-exit loop: header 1, body 2, a break edge (2 -> 4) and the
    /// normal exit (1 -> 3), joining at 4.
    #[test]
    fn multi_exit_loop_fixture() {
        let g = graph(5, &[(0, 1), (1, 2), (2, 1), (1, 3), (2, 4), (3, 4)]);
        let t = DomTree::build(&g, 0);
        assert_eq!(t.idom(2), Some(1));
        assert_eq!(t.idom(3), Some(1));
        assert_eq!(t.idom(4), Some(1)); // both exits pass through the header
        let p = DomTree::build(&g.reversed(), 4);
        // The loop branch at the header does NOT re-converge at its
        // not-taken successor: the body can break straight to 4.
        assert_eq!(p.idom(1), Some(4));
        check_against_brute(&g, 0);
        check_against_brute(&g.reversed(), 4);
    }

    #[test]
    fn dominates_is_reflexive_and_rooted() {
        let g = graph(3, &[(0, 1), (1, 2)]);
        let t = DomTree::build(&g, 0);
        assert!(t.dominates(1, 1));
        assert!(t.dominates(0, 2));
        assert!(!t.dominates(2, 1));
        assert_eq!(t.idom(0), None);
        assert_eq!(t.chain(2).collect::<Vec<_>>(), vec![1, 0]);
    }

    /// Reverse-graph duality on random graphs: post-dominators computed as
    /// dominators of the reversed graph must satisfy brute-force *post*-
    /// dominance on the forward graph (every path from `v` to the exit
    /// passes through the post-dominator), and vice versa.
    #[test]
    fn duality_property_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(0xD0_117);
        for case in 0..60 {
            let n = rng.gen_range(4..12);
            let mut edges = Vec::new();
            // A spine keeps most nodes reachable; random extra edges add
            // joins, cycles, and irreducible regions.
            for v in 1..n {
                edges.push((rng.gen_range(0..v), v));
            }
            for _ in 0..rng.gen_range(0..2 * n) {
                edges.push((rng.gen_range(0..n), rng.gen_range(0..n)));
            }
            let mut g = Graph::new(n as usize + 1);
            let exit = n;
            for &(a, b) in &edges {
                g.add_edge(a, b);
            }
            // Every sink (and one random node) flows to the virtual exit so
            // post-dominance is defined for most of the graph.
            for v in 0..n {
                if g.succs(v).is_empty() {
                    g.add_edge(v, exit);
                }
            }
            g.add_edge(rng.gen_range(0..n), exit);

            check_against_brute(&g, 0);
            check_against_brute(&g.reversed(), exit);

            // Duality: dominance in the reversed graph == brute-force
            // post-dominance in the forward graph.
            let pdom = DomTree::build(&g.reversed(), exit);
            let rg = g.reversed();
            let exit_reach = rg.reachable(exit);
            for v in (0..=n).filter(|&v| exit_reach[v as usize]) {
                for d in 0..=n {
                    assert_eq!(
                        pdom.dominates(d, v),
                        dominates_brute(&rg, exit, d, v),
                        "case {case}: post-dominance duality failed for ({d}, {v})"
                    );
                }
            }
        }
    }
}
