//! Pipeline stage 1: **completion** — finish in-flight instructions and
//! verify control flow.
//!
//! Implements the execution/completion half of the paper's processing
//! elements (§2, "Trace processor microarchitecture"): slots whose
//! execution latency has elapsed publish their destination value to the
//! physical register file, request a global result bus when the value is a
//! trace live-out, and — because the simulator is execution-driven —
//! re-trigger selective reissue of consumers when a reissued producer's
//! value actually changed (§5's selective recovery model). Completing
//! control instructions are verified here: conditional branches against the
//! outcome embedded in the trace, and trace-ending indirect transfers
//! against the successor trace in the window, registering a
//! [`Fault`](crate::pe::Fault) for the recovery stage when they disagree.
//!
//! **Mutates:** slot state/values, the physical register file, the
//! result-bus request queue, the BTB (indirect target updates), and — for a
//! mispredicted *tail* indirect — the fetch queue/history/expectation.

use super::*;
use crate::pe::Fault;

impl TraceProcessor<'_> {
    pub(super) fn complete_stage(&mut self, ctx: &CycleCtx) {
        let now = ctx.now;
        // Drain every completion event due this cycle from the time-indexed
        // heap instead of rescanning the window. Events are validated at
        // processing time (generation, state, exact `done_at`) so stale
        // entries from squashes/replacements/reissues fall out harmlessly,
        // and are sorted by (pe, slot) to reproduce the legacy physical
        // scan order exactly.
        let mut due = std::mem::take(&mut self.scratch_due);
        due.clear();
        while let Some(&std::cmp::Reverse((t, pe, slot, gen))) = self.wakeup.completions.peek() {
            if t > now {
                break;
            }
            self.wakeup.completions.pop();
            due.push((pe, slot, t, gen));
        }
        due.sort_unstable_by_key(|&(pe, slot, _, _)| (pe, slot));
        for &(pe, slot, t, gen) in &due {
            let p = &self.pes[pe];
            if !p.occupied || p.gen != gen || slot >= p.slots.len() {
                continue;
            }
            let live = match p.slots[slot].state {
                SlotState::Executing { done_at } | SlotState::MemAccess { done_at } => done_at == t,
                _ => false,
            };
            if live {
                self.complete_slot(pe, slot);
            }
        }
        self.scratch_due = due;
    }

    fn complete_slot(&mut self, pe: usize, slot: usize) {
        let now = self.now;
        {
            let s = &mut self.pes[pe].slots[slot];
            if s.pending_reissue {
                // A newer input arrived while in flight: discard and requeue.
                s.pending_reissue = false;
                s.state = SlotState::Waiting;
                self.index_enqueue(pe, slot);
                return;
            }
            s.state = SlotState::Done;
        }
        // Publish the destination value.
        let (dest, value, is_liveout) = {
            let s = &self.pes[pe].slots[slot];
            (s.dest, s.value, s.is_liveout)
        };
        if let Some(d) = dest {
            let (first_production, value_changed) = {
                let r = self.pregs.get_mut(d);
                let first = !r.ready;
                let changed = r.ready && r.value != value;
                r.value = value;
                r.ready = true;
                r.local_ready_at = now;
                // Live-out values re-arm global visibility and (re)request a
                // result bus; local values are never read by other PEs.
                r.global_ready_at = if is_liveout { u64::MAX } else { now };
                (first, changed)
            };
            if is_liveout {
                let gen = self.pes[pe].gen;
                self.push_result_req(BusReq { pe, gen, slot, since: now });
            }
            if first_production {
                // First production: wake consumers subscribed to this
                // register in the wakeup index.
                self.wake_waiters(d);
            } else if value_changed {
                self.propagate_value_change(d, now + 1);
            }
        }
        self.pes[pe].slots[slot].has_value = true;
        // Verify control instructions.
        let inst = self.pes[pe].slots[slot].ti.inst;
        if inst.is_cond_branch() {
            let (pc, faulted) = {
                let s = &mut self.pes[pe].slots[slot];
                let actual = s.outcome.expect("branch executed");
                s.fault = if Some(actual) != s.ti.embedded_taken {
                    Some(Fault::CondBranch { actual })
                } else {
                    None
                };
                (s.ti.pc, s.fault.is_some())
            };
            if faulted && self.events.wants(Category::Recovery) {
                self.events.emit(
                    now,
                    Event::MispredictDetected {
                        pe: pe as u8,
                        slot: slot.min(255) as u8,
                        pc,
                        kind: tp_events::MispredictKind::CondBranch,
                    },
                );
            }
        } else if inst.is_indirect() {
            self.verify_indirect(pe, slot);
        }
    }

    /// Verifies a trace-ending indirect transfer against its successor.
    fn verify_indirect(&mut self, pe: usize, slot: usize) {
        let raw = self.pes[pe].slots[slot].indirect_target.expect("indirect executed");
        let actual: Option<Pc> =
            if raw >= 0 && self.program.contains(raw as Pc) { Some(raw as Pc) } else { None };
        let pc = self.pes[pe].slots[slot].ti.pc;
        if let Some(t) = actual {
            self.btb.update_indirect(pc, t);
        }
        if self.paranoid {
            assert_eq!(slot, self.pes[pe].slots.len() - 1, "indirect must end its trace");
        }
        match self.list.next(pe) {
            Some(succ) => {
                let ok = Some(self.pes[succ].trace.id().start()) == actual;
                self.pes[pe].slots[slot].fault =
                    if ok { None } else { Some(Fault::Indirect { actual }) };
                if !ok && self.events.wants(Category::Recovery) {
                    self.events.emit(
                        self.now,
                        Event::MispredictDetected {
                            pe: pe as u8,
                            slot: slot.min(255) as u8,
                            pc,
                            kind: tp_events::MispredictKind::Indirect,
                        },
                    );
                }
            }
            None => {
                // This PE is the tail: redirect pending fetches if needed.
                self.pes[pe].slots[slot].fault = None;
                let front_start = self.fetch_queue.front().map(|p| p.trace.id().start());
                match (front_start, actual) {
                    (Some(f), Some(t)) if f == t => {}
                    (Some(_), t) => {
                        // Mispredicted successor still in the fetch queue.
                        self.stats.trace_mispredictions += 1;
                        self.fetch_queue.clear();
                        self.fetch_hist = self.rebuild_history();
                        self.expected = match t {
                            Some(t) => ExpectedNext::Known(t),
                            None => ExpectedNext::Stalled,
                        };
                    }
                    (None, Some(t)) => {
                        if self.expected != ExpectedNext::Known(t) {
                            self.expected = ExpectedNext::Known(t);
                        }
                    }
                    (None, None) => self.expected = ExpectedNext::Stalled,
                }
            }
        }
    }
}
