//! Behavioural tests for the whole simulator: oracle-verified runs across
//! every control-independence model on programs engineered to exercise
//! FGCI (hammocks), MLB (unpredictable loop exits), and RET (calls).

use super::*;
use crate::config::CiModel;
use tp_isa::asm::Asm;
use tp_isa::func::Machine;
use tp_isa::synth::{self, SynthConfig};
use tp_isa::{AluOp, Cond};

const ALL_MODELS: [CiModel; 5] =
    [CiModel::None, CiModel::Ret, CiModel::MlbRet, CiModel::Fg, CiModel::FgMlbRet];

fn run_verified(program: &Program, model: CiModel) -> RunResult {
    let cfg = TraceProcessorConfig::paper(model).with_oracle();
    let mut sim = TraceProcessor::new(program, cfg);
    let result = sim.run(5_000_000).unwrap_or_else(|e| panic!("{}: {e}", program.name()));
    assert!(result.halted, "{} did not halt under {model:?}", program.name());
    // Cross-check final architectural state against the oracle.
    let mut oracle = Machine::new(program);
    oracle.run(u64::MAX).expect("oracle runs");
    assert_eq!(sim.arch_state(), oracle.arch_state(), "{} state mismatch", program.name());
    assert_eq!(
        result.stats.retired_instrs,
        oracle.retired(),
        "{} retired-count mismatch",
        program.name()
    );
    result
}

fn straightline_program() -> Program {
    let mut a = Asm::new("straight");
    let (r1, r2, r3) = (Reg::new(1), Reg::new(2), Reg::new(3));
    a.li(r1, 5);
    a.li(r2, 7);
    a.alu(AluOp::Mul, r3, r1, r2);
    a.li(r1, 0x200);
    a.store(r3, r1, 0);
    a.load(r2, r1, 0);
    a.addi(r2, r2, 1);
    a.halt();
    a.assemble().unwrap()
}

fn counted_loop_program(n: i32) -> Program {
    let mut a = Asm::new("loop");
    let (r1, r2) = (Reg::new(1), Reg::new(2));
    a.li(r1, n);
    a.li(r2, 0);
    a.label("top");
    a.addi(r2, r2, 3);
    a.addi(r1, r1, -1);
    a.branch(Cond::Gt, r1, Reg::ZERO, "top");
    a.halt();
    a.assemble().unwrap()
}

/// Data-dependent hammocks inside a loop: heavy FGCI territory.
fn hammock_loop_program() -> Program {
    let mut a = Asm::new("hammocks");
    let (r1, r2, r3, r4, r5) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4), Reg::new(5));
    a.li64(r5, tp_isa::DATA_BASE as i64);
    a.li(r1, 200); // iterations
    a.li(r2, 0);
    a.label("top");
    // Load pseudo-random word and branch on it.
    a.alui(AluOp::And, r3, r1, 63);
    a.alui(AluOp::Shl, r3, r3, 3);
    a.add(r3, r3, r5);
    a.load(r4, r3, 0);
    a.branch(Cond::Lt, r4, Reg::ZERO, "else");
    a.addi(r2, r2, 1);
    a.jump("join");
    a.label("else");
    a.addi(r2, r2, 2);
    a.addi(r2, r2, 3);
    a.label("join");
    a.addi(r1, r1, -1);
    a.branch(Cond::Gt, r1, Reg::ZERO, "top");
    a.store(r2, r5, 0);
    a.halt();
    // Pseudo-random data.
    let mut x: i64 = 0x1234_5678;
    for i in 0..64u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        a.data_word(tp_isa::DATA_BASE + 8 * i, x >> 13);
    }
    a.assemble().unwrap()
}

/// Short loops with data-dependent trip counts inside an outer loop:
/// heavy MLB territory.
fn unpredictable_loops_program() -> Program {
    let mut a = Asm::new("mlb");
    let (r1, r2, r3, r4, r5) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4), Reg::new(5));
    a.li64(r5, tp_isa::DATA_BASE as i64);
    a.li(r1, 150);
    a.li(r2, 0);
    a.label("outer");
    a.alui(AluOp::And, r3, r1, 31);
    a.alui(AluOp::Shl, r3, r3, 3);
    a.add(r3, r3, r5);
    a.load(r4, r3, 0);
    a.alui(AluOp::And, r4, r4, 3);
    a.addi(r4, r4, 1); // inner trip 1..=4
    a.label("inner");
    a.addi(r2, r2, 1);
    a.addi(r4, r4, -1);
    a.branch(Cond::Gt, r4, Reg::ZERO, "inner");
    // Control independent work after the loop exit.
    a.addi(r2, r2, 10);
    a.alui(AluOp::Xor, r2, r2, 5);
    a.addi(r1, r1, -1);
    a.branch(Cond::Gt, r1, Reg::ZERO, "outer");
    a.store(r2, r5, 8);
    a.halt();
    let mut x: i64 = 99;
    for i in 0..32u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        a.data_word(tp_isa::DATA_BASE + 8 * i, (x >> 7).abs());
    }
    a.assemble().unwrap()
}

/// Function calls with a data-dependent branch inside the caller: RET
/// territory (re-convergence at the return target).
fn call_heavy_program() -> Program {
    let mut a = Asm::new("calls");
    let (r1, r2, r3, r4, r5) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4), Reg::new(5));
    a.li64(Reg::SP, tp_isa::STACK_BASE as i64);
    a.li64(r5, tp_isa::DATA_BASE as i64);
    a.li(r1, 120);
    a.li(r2, 0);
    a.label("top");
    a.alui(AluOp::And, r3, r1, 15);
    a.alui(AluOp::Shl, r3, r3, 3);
    a.add(r3, r3, r5);
    a.load(r4, r3, 0);
    a.call("f");
    a.addi(r2, r2, 1);
    a.addi(r1, r1, -1);
    a.branch(Cond::Gt, r1, Reg::ZERO, "top");
    a.store(r2, r5, 16);
    a.halt();
    a.label("f");
    // Unpredictable branch inside the function; both paths return.
    a.branch(Cond::Lt, r4, Reg::ZERO, "neg");
    a.addi(r2, r2, 2);
    a.ret();
    a.label("neg");
    a.addi(r2, r2, 5);
    a.addi(r2, r2, 7);
    a.ret();
    let mut x: i64 = 7;
    for i in 0..16u64 {
        x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        a.data_word(tp_isa::DATA_BASE + 8 * i, x >> 3);
    }
    a.assemble().unwrap()
}

#[test]
fn straightline_commits_correctly() {
    for model in ALL_MODELS {
        let r = run_verified(&straightline_program(), model);
        assert_eq!(r.stats.retired_instrs, 8);
    }
}

#[test]
fn counted_loop_all_models() {
    for model in ALL_MODELS {
        let r = run_verified(&counted_loop_program(300), model);
        assert!(r.stats.ipc() > 0.3, "{model:?} ipc {}", r.stats.ipc());
    }
}

#[test]
fn hammock_loop_all_models() {
    for model in ALL_MODELS {
        run_verified(&hammock_loop_program(), model);
    }
}

#[test]
fn fgci_recoveries_trigger_on_hammocks() {
    let p = hammock_loop_program();
    let cfg = TraceProcessorConfig::paper(CiModel::Fg).with_oracle();
    let mut sim = TraceProcessor::new(&p, cfg);
    sim.run(5_000_000).unwrap();
    assert!(sim.stats().fgci_recoveries > 0, "expected FGCI recoveries: {:?}", sim.stats());
}

#[test]
fn mlb_recoveries_trigger_on_unpredictable_loops() {
    let p = unpredictable_loops_program();
    let cfg = TraceProcessorConfig::paper(CiModel::MlbRet).with_oracle();
    let mut sim = TraceProcessor::new(&p, cfg);
    sim.run(5_000_000).unwrap();
    assert!(sim.stats().cgci_attempts > 0, "expected CGCI attempts: {:?}", sim.stats());
    assert!(sim.stats().cgci_reconverged > 0, "expected reconvergence: {:?}", sim.stats());
}

#[test]
fn unpredictable_loops_all_models() {
    for model in ALL_MODELS {
        run_verified(&unpredictable_loops_program(), model);
    }
}

#[test]
fn ret_recoveries_trigger_on_calls() {
    let p = call_heavy_program();
    let cfg = TraceProcessorConfig::paper(CiModel::Ret).with_oracle();
    let mut sim = TraceProcessor::new(&p, cfg);
    sim.run(5_000_000).unwrap();
    assert!(sim.stats().cgci_attempts > 0, "expected CGCI attempts: {:?}", sim.stats());
}

#[test]
fn call_heavy_all_models() {
    for model in ALL_MODELS {
        run_verified(&call_heavy_program(), model);
    }
}

#[test]
fn synthetic_programs_match_oracle_small() {
    let cfg = SynthConfig::small();
    for seed in 0..6 {
        let p = synth::generate(&cfg, seed);
        for model in ALL_MODELS {
            run_verified(&p, model);
        }
    }
}

#[test]
fn synthetic_programs_match_oracle_default() {
    let cfg = SynthConfig::default();
    for seed in 100..104 {
        let p = synth::generate(&cfg, seed);
        for model in ALL_MODELS {
            run_verified(&p, model);
        }
    }
}

#[test]
fn stats_are_consistent() {
    let p = hammock_loop_program();
    let cfg = TraceProcessorConfig::paper(CiModel::FgMlbRet);
    let mut sim = TraceProcessor::new(&p, cfg);
    let r = sim.run(5_000_000).unwrap();
    let s = r.stats;
    assert!(s.retired_traces > 0);
    assert!(s.avg_trace_len() > 1.0);
    assert!(s.dispatched_traces >= s.retired_traces);
    assert!(s.issue_events >= s.retired_instrs);
    assert!(s.cycles > 0);
    assert!(s.retired_cond_branches > 0);
}

#[test]
fn small_config_works() {
    for model in ALL_MODELS {
        let cfg = TraceProcessorConfig::small(model).with_oracle();
        let p = counted_loop_program(50);
        let mut sim = TraceProcessor::new(&p, cfg);
        let r = sim.run(1_000_000).unwrap();
        assert!(r.halted);
    }
}

/// The wakeup index must agree with a brute-force window rescan after
/// *every* cycle of mispredict-heavy runs — the strongest possible
/// coherence guarantee for the event-driven issue path. Uses the
/// adversarial kernels (hammocks, unpredictable loop exits, calls) plus a
/// synthetic program, under every control-independence model, so squash,
/// FGCI repair, CGCI insertion, selective reissue, and snooping all hit
/// the checker.
#[test]
fn wakeup_index_matches_rescan_every_cycle() {
    let programs = [
        hammock_loop_program(),
        unpredictable_loops_program(),
        call_heavy_program(),
        synth::generate(&SynthConfig::small(), 11),
    ];
    for p in &programs {
        for model in ALL_MODELS {
            let cfg = TraceProcessorConfig::paper(model).with_oracle();
            let mut sim = TraceProcessor::new(p, cfg);
            let mut cycles = 0u64;
            while !sim.halted() && cycles < 200_000 {
                sim.step_cycle().unwrap_or_else(|e| panic!("{} {model:?}: {e}", p.name()));
                sim.assert_event_index_coherent();
                cycles += 1;
            }
            assert!(sim.halted(), "{} {model:?} did not halt", p.name());
        }
    }
}

/// The subscription-map entry counters drive the amortized sweeps; if they
/// drift from the true sizes, collection either thrashes or never fires.
/// After a run heavy enough to trigger all three sweeps, the counters must
/// equal a recount.
#[test]
fn index_footprint_counters_stay_exact() {
    let p = unpredictable_loops_program();
    for model in [CiModel::None, CiModel::FgMlbRet] {
        let cfg = TraceProcessorConfig::paper(model);
        let mut sim = TraceProcessor::new(&p, cfg);
        sim.run(5_000_000).unwrap();
        let (waiters, _, _, loads) = sim.index_footprint();
        assert_eq!(waiters, sim.waiter_count, "{model:?} waiter count drifted");
        assert_eq!(loads, sim.load_count, "{model:?} load count drifted");
        let readers: usize = sim.readers.values().map(Vec::len).sum();
        assert_eq!(readers, sim.reader_count, "{model:?} reader count drifted");
    }
}

/// A mid-run wakeup-index sweep must not change behaviour: compare a run
/// against one whose GC thresholds are forced to fire constantly.
#[test]
fn gc_sweeps_are_behaviour_invisible() {
    let p = hammock_loop_program();
    let cfg = TraceProcessorConfig::paper(CiModel::FgMlbRet);
    let mut base = TraceProcessor::new(&p, cfg.clone());
    let base_r = base.run(5_000_000).unwrap();
    let mut swept = TraceProcessor::new(&p, cfg);
    while !swept.halted() {
        // Force every sweep to run each cycle.
        swept.waiters_gc_at = 0;
        swept.readers_gc_at = 0;
        swept.loads_gc_at = 0;
        swept.step_cycle().unwrap();
        swept.assert_event_index_coherent();
    }
    assert_eq!(base_r.stats, *swept.stats(), "sweeps changed observable behaviour");
}
