//! Pipeline stage 4: **fetch** — trace prediction, the trace cache, and
//! the construction engine.
//!
//! Implements the trace-processor frontend (§2): the path-based next-trace
//! predictor proposes a trace id, the trace cache is probed for it, and on
//! a miss the trace is constructed through the instruction cache (one basic
//! block per cycle, modelled by `construction_cycles`) using the predicted
//! outcomes — or the BTB/RAS alone when the predictor has no opinion.
//! Statically-certain successor PCs override contradicting predictions.
//! During CGCI insertion (§4) this stage also performs re-convergence
//! detection: when the next predicted trace matches the preserved
//! control-independent trace, insertion ends and the re-dispatch pass over
//! the preserved suffix begins.
//!
//! **Mutates:** the fetch queue/history/expectation/mode, the RAS
//! (speculative call/return walk), the trace cache and BIT (construction
//! fills), the construction-engine busy horizon, and — at re-convergence —
//! the re-dispatch pass and rename-map chain.

use super::*;
use tp_isa::Inst;
use tp_trace::{OutcomeSource, TraceId};

impl TraceProcessor<'_> {
    pub(super) fn fetch_stage(&mut self, ctx: &CycleCtx) {
        // Fetch stalls only while a recovery redirect is in flight; a
        // re-dispatch pass owns the dispatch bus, not the frontend (fetch
        // state is restored eagerly when the pass starts).
        if self.halted || self.recovery.is_some() {
            return;
        }
        if self.fetch_queue.len() >= self.cfg.num_pes {
            return;
        }
        // Validate CGCI insertion mode.
        if let FetchMode::CgciInsert { before, before_gen, .. } = self.mode {
            if !self.pes[before].occupied
                || self.pes[before].gen != before_gen
                || !self.list.contains(before)
            {
                self.set_mode(FetchMode::Normal);
                self.fetch_hist = self.rebuild_history();
                self.expected = self.expected_after_tail();
            }
        }
        // A stalled fetch re-derives its expectation from the window every
        // cycle: an indirect transfer at the effective tail may have
        // resolved since the stall began (this also lets CGCI re-convergence
        // be detected when the last control-dependent trace ends in an
        // indirect transfer).
        if self.expected == ExpectedNext::Stalled && self.fetch_queue.is_empty() {
            let effective_tail = match self.mode {
                FetchMode::CgciInsert { before, .. } => self.list.prev(before),
                FetchMode::Normal => self.list.tail(),
            };
            match effective_tail {
                Some(t) => self.expected = self.expected_after_pe(t),
                // The effective predecessor window is empty: everything
                // upstream committed (during insertion, the whole
                // control-dependent path can retire before its final
                // indirect resolves to fetch). The committed frontier is
                // the next fetch PC — without this the stall never clears
                // and the processor deadlocks with the preserved trace
                // pinned at the head (the behaviour `inject_cgci_stall_bug`
                // re-introduces for the shrinker self-test).
                None if !self.cfg.inject_cgci_stall_bug => {
                    self.expected = ExpectedNext::Known(self.retired_next_pc);
                }
                None => {}
            }
        }
        // Resolve the expected PC.
        let (expected_pc, expected_certain) = match self.expected {
            ExpectedNext::Known(pc) => (Some(pc), true),
            ExpectedNext::Predicted(pc) => (Some(pc), false),
            ExpectedNext::Stalled => (None, false),
        };
        let hist_before = self.fetch_hist.clone();
        let prediction = self.predictor.predict(&self.fetch_hist);
        // Enforce statically-certain boundaries: a prediction contradicting
        // the known fall-through PC is discarded in favour of sequencing.
        // After an unresolved indirect the next-trace predictor wins.
        let prediction = match (prediction, expected_pc) {
            (Some(id), Some(e)) if expected_certain && id.start() != e => None,
            (p, _) => p,
        };
        let start = match prediction.map(TraceId::start).or(expected_pc) {
            Some(s) if self.program.contains(s) => s,
            _ => return, // fetch stalled
        };
        // CGCI re-convergence detection: the next trace prediction matches
        // the preserved control-independent trace.
        if let FetchMode::CgciInsert { before, reconv_start, .. } = self.mode {
            if start == reconv_start {
                self.stats.cgci_reconverged += 1;
                let preserved: Vec<usize> = {
                    let mut v = vec![before];
                    v.extend(self.list.iter_after(before));
                    v
                };
                self.stats.preserved_traces += preserved.len() as u64;
                // Resolve the pending attempt as re-converged *before*
                // leaving insertion mode (set_mode treats any still-pending
                // teardown as a failure).
                if self.events.wants(Category::Trace) {
                    for &pe in &preserved {
                        let pc = self.pes[pe].trace.id().start();
                        self.events.emit(ctx.now, Event::TracePreserved { pe: pe as u8, pc });
                    }
                }
                let attr = self.cgci_pending.take().map(|p| {
                    self.resolve_cgci(p, RecoveryOutcome::CgciReconverged, preserved.len() as u64)
                });
                // The predecessor is usually the repaired faulting trace,
                // but the entire control-dependent path may already have
                // retired — then the pass chains from retired state.
                let repaired_pred = self.list.prev(before);
                self.begin_redispatch_from_map(preserved, repaired_pred, attr);
                self.set_mode(FetchMode::Normal);
                return;
            }
        }
        // During CGCI insertion the frontend knows the re-convergent PC;
        // control-dependent traces end just before it so the path cannot
        // overshoot the preserved trace mid-trace (which would make
        // re-convergence detection miss and the attempt fail).
        let stop = match self.mode {
            FetchMode::CgciInsert { reconv_start, .. } => Some(reconv_start),
            FetchMode::Normal => None,
        };
        // Obtain the trace: trace cache, or construction.
        let now = ctx.now;
        let (trace, ready_at, source) = match prediction {
            Some(id) => {
                self.stats.tcache_lookups += 1;
                let looked = self.tcache.lookup(id);
                if looked.is_none() {
                    self.stats.tcache_misses += 1;
                }
                // A cached trace that crosses the re-convergent PC
                // mid-trace is unusable during insertion: construct a
                // bounded one instead.
                let usable = looked.filter(|t| match stop {
                    None => true,
                    Some(sp) => !t.insts()[1..].iter().any(|ti| ti.pc == sp),
                });
                match usable {
                    Some(t) => (t, now + self.cfg.frontend_latency, FetchSource::PredictedHit),
                    None => {
                        let (t, cycles) = self.construct_trace(start, Some(id), stop);
                        let ready = now.max(self.construction_busy_until)
                            + cycles as u64
                            + self.cfg.frontend_latency;
                        self.construction_busy_until = ready;
                        (t, ready, FetchSource::PredictedMiss)
                    }
                }
            }
            None => {
                let (t, cycles) = self.construct_trace(start, None, stop);
                let ready = now.max(self.construction_busy_until)
                    + cycles as u64
                    + self.cfg.frontend_latency;
                self.construction_busy_until = ready;
                (t, ready, FetchSource::Fallback)
            }
        };
        if self.events.wants(Category::Trace) {
            let path = match source {
                FetchSource::PredictedHit => tp_events::FetchPath::PredictedHit,
                FetchSource::PredictedMiss => tp_events::FetchPath::PredictedMiss,
                FetchSource::Fallback => tp_events::FetchPath::Fallback,
            };
            self.events.emit(
                ctx.now,
                Event::TraceFetched {
                    pc: trace.id().start(),
                    len: trace.len().min(255) as u8,
                    source: path,
                },
            );
        }
        // Speculatively maintain the RAS and compute the next expected PC.
        self.expected = self.advance_ras_and_expected(&trace);
        self.fetch_hist.push(trace.id());
        self.fetch_queue.push_back(Pending { trace, ready_at, hist_before, source });
    }

    /// Constructs a trace at `start` through the instruction cache, driven
    /// by the predicted id's outcomes (falling back to the BTB) or by the
    /// BTB alone; `stop_before` bounds the trace at a re-convergent PC
    /// during CGCI insertion. Returns the trace and the construction
    /// latency.
    fn construct_trace(
        &mut self,
        start: Pc,
        id: Option<TraceId>,
        stop_before: Option<Pc>,
    ) -> (Arc<Trace>, u32) {
        struct ConstructOutcomes<'a> {
            id: Option<TraceId>,
            btb: &'a Btb,
            ras_top: Option<Pc>,
            ntb: bool,
        }
        impl OutcomeSource for ConstructOutcomes<'_> {
            fn cond_outcome(&mut self, index: u8, pc: Pc, inst: Inst) -> bool {
                match self.id {
                    Some(id) if index < id.branches() => id.outcome(index),
                    // Beyond the prediction's depth. Under `ntb` selection a
                    // loop-exit counter hovers between its weak states (it
                    // is retrained on every exit), making its guesses near
                    // coin flips that both terminate traces spuriously and
                    // embed wrong exits; static backward-taken beats a
                    // hovering counter, while a *saturated* counter is
                    // trusted (the next-trace predictor, when it has an
                    // opinion, still decides the exits).
                    _ if self.ntb && inst.is_backward_branch(pc) && self.btb.cond_is_weak(pc) => {
                        true
                    }
                    _ => self.btb.predict_cond(pc),
                }
            }
            fn indirect_target(&mut self, pc: Pc, inst: Inst) -> Option<Pc> {
                if inst.is_return() {
                    self.ras_top
                } else {
                    self.btb.predict_indirect(pc)
                }
            }
        }
        let selector = self.selector;
        let (program, bit, btb) = (self.program, &mut self.bit, &self.btb);
        let ntb = self.cfg.selection.ntb;
        let mut outcomes = ConstructOutcomes { id, btb, ras_top: self.ras.top(), ntb };
        let sel = selector.select_bounded(
            program,
            start,
            bit,
            &mut outcomes,
            stop_before.map(|p| (p, 1)),
        );
        self.stats.bit_miss_handlers += sel.stats.bit_misses as u64;
        self.stats.bit_miss_cycles += sel.stats.bit_miss_cycles as u64;
        let trace = Arc::new(sel.trace);
        let cycles = self.construction_cycles(&trace, 0) + sel.stats.bit_miss_cycles;
        // Bounded (insertion-mode) constructions are not cached: a trace
        // truncated at the re-convergent PC can share its id with the
        // full-length trace normal selection would build from the same
        // start, and serving the truncated one outside insertion would
        // permanently fragment that path.
        if stop_before.is_none() {
            self.tcache.fill(trace.clone());
        }
        (trace, cycles)
    }

    /// Construction-engine latency to (re)build `trace` starting at
    /// `from_slot`: one cycle per basic block plus instruction cache miss
    /// penalties. (Also used by recovery to time trace repair.)
    pub(super) fn construction_cycles(&mut self, trace: &Trace, from_slot: usize) -> u32 {
        self.construction_cycles_span(trace, from_slot, trace.len())
    }

    /// [`Self::construction_cycles`] bounded to `end_slot` (exclusive):
    /// recovery charges only the slots a repair actually refetches — a
    /// preserved common suffix costs nothing to rebuild.
    pub(super) fn construction_cycles_span(
        &mut self,
        trace: &Trace,
        from_slot: usize,
        end_slot: usize,
    ) -> u32 {
        let end = end_slot.min(trace.len());
        let insts = &trace.insts()[from_slot.min(end.saturating_sub(1))..end];
        if insts.is_empty() {
            return 1;
        }
        let mut cycles = 0u32;
        let mut seg_start = insts[0].pc;
        let mut prev = insts[0].pc;
        for ti in &insts[1..] {
            if ti.pc != prev + 1 {
                cycles += 1 + self.icache.access_range(seg_start, prev);
                seg_start = ti.pc;
            }
            prev = ti.pc;
        }
        cycles += 1 + self.icache.access_range(seg_start, prev);
        cycles
    }

    /// Walks a fetched trace's calls/returns through the RAS and returns the
    /// expected next fetch PC.
    fn advance_ras_and_expected(&mut self, trace: &Trace) -> ExpectedNext {
        let mut ret_target = None;
        for ti in trace.insts() {
            match ti.inst {
                Inst::Call { .. } | Inst::CallIndirect { .. } => self.ras.push(ti.pc + 1),
                Inst::Ret => ret_target = self.ras.pop(),
                _ => {}
            }
        }
        match trace.end() {
            EndReason::MaxLen | EndReason::Ntb => {
                ExpectedNext::Known(trace.next_pc().expect("static end has next"))
            }
            EndReason::Indirect => {
                let last = trace.insts().last().expect("non-empty");
                let target = if last.inst.is_return() { ret_target } else { trace.next_pc() };
                match target {
                    Some(t) if self.program.contains(t) => ExpectedNext::Predicted(t),
                    _ => ExpectedNext::Stalled,
                }
            }
            EndReason::Halt | EndReason::OutOfProgram => ExpectedNext::Stalled,
        }
    }
}
