//! The cycle-level trace processor simulator.
//!
//! See the crate-level docs for the big picture. The simulator advances one
//! cycle at a time through seven phases, each implemented in its own
//! submodule (one file per pipeline stage):
//!
//! 1. [`complete`] — finish in-flight instructions, publish values, verify
//!    branch outcomes and indirect targets (registering faults);
//! 2. [`retire`] — commit the head trace when every slot has completed;
//! 3. [`recovery`] — start/apply misprediction recoveries (oldest first),
//!    including FGCI/CGCI preservation decisions and squashes;
//! 4. [`fetch`] — predict the next trace, probe the trace cache, construct
//!    missing traces through the instruction cache;
//! 5. [`dispatch`] — rename and allocate one trace per cycle to a PE (or run
//!    one step of a re-dispatch pass — the dispatch bus is shared; the pass
//!    itself lives in [`redispatch`]);
//! 6. [`issue`] — select up to four ready instructions per PE and begin
//!    execution (values are computed here: the simulator is
//!    execution-driven, wrong paths execute for real);
//! 7. [`buses`] — arbitrate the shared cache buses (ARB/data cache access,
//!    store snooping) and global result buses (inter-PE value bypass).
//!
//! This module owns [`TraceProcessor`], its public API ([`RunResult`],
//! [`SimError`]), all cross-stage bookkeeping state, and the per-cycle
//! [`CycleCtx`] handed to each stage by [`TraceProcessor::step_cycle`].

mod buses;
mod complete;
mod dispatch;
mod fetch;
mod issue;
mod recovery;
mod redispatch;
mod retire;

#[cfg(test)]
mod tests;

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;
use std::sync::Arc;

use tp_cache::{Arb, DCache, ICache, SeqHandle, TraceCache};
use tp_cfg::{CfgAnalysis, ReconvClass};
use tp_events::{Category, Event, EventBus, EventSink};
use tp_isa::func::{ArchState, Machine, MachineState};
use tp_isa::fxhash::FxHashMap;
use tp_isa::{Addr, Pc, Program, Reg, Word};
use tp_metrics::{ScopedStageTimer, Stage, StageProfiler};
use tp_predict::{Btb, NextTracePredictor, Ras, TraceHistory, TracePredictorStats};
use tp_stats::attr::{AttrKey, RecoveryAttribution, RecoveryOutcome};
use tp_trace::{Bit, EndReason, Selector, Trace};

use crate::boot::{BootError, BootImage, WarmBoot};
use crate::config::TraceProcessorConfig;
use crate::pe::{FetchSource, Pe, SlotState};
use crate::pe_list::PeList;
use crate::physreg::{PhysRegFile, PhysRegId, RenameMap};
use crate::stats::SimStats;

/// Errors terminating a simulation abnormally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// No instruction retired for the configured number of cycles.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Human-readable window dump.
        detail: String,
    },
    /// Committed state diverged from the functional oracle
    /// (only with [`TraceProcessorConfig::verify_with_oracle`]).
    OracleMismatch {
        /// Cycle of the divergence.
        cycle: u64,
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, detail } => {
                write!(f, "deadlock at cycle {cycle}: {detail}")
            }
            SimError::OracleMismatch { cycle, detail } => {
                write!(f, "oracle mismatch at cycle {cycle}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of [`TraceProcessor::run`].
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Whether the program executed its `Halt`.
    pub halted: bool,
    /// Statistics at the end of the run.
    pub stats: SimStats,
    /// The misprediction outcome-attribution ledger (observation-only).
    pub attribution: RecoveryAttribution,
    /// Next-trace predictor statistics (component hits, index pollution).
    pub predictor: TracePredictorStats,
}

/// Per-cycle context handed to every pipeline stage by
/// [`TraceProcessor::step_cycle`]. The simulated clock only advances
/// between cycles, so stages read the cycle number from here rather than
/// re-deriving it from mutable simulator state.
#[derive(Clone, Copy, Debug)]
struct CycleCtx {
    /// The current cycle.
    now: u64,
}

/// What PC the frontend expects to fetch next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ExpectedNext {
    /// Certain: a static fall-through or a resolved indirect target. A
    /// next-trace prediction that contradicts it is discarded.
    Known(Pc),
    /// A RAS/BTB guess after an unresolved indirect transfer. Used as the
    /// fallback sequencing point, but the next-trace predictor wins when it
    /// has an opinion (predicting through returns is its whole point).
    Predicted(Pc),
    /// Unknown until recovery or an indirect resolution redirects fetch.
    Stalled,
}

/// Frontend mode: normal tail dispatch, or CGCI insertion before a
/// preserved control-independent trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FetchMode {
    Normal,
    CgciInsert { before: usize, before_gen: u64, reconv_start: Pc, inserted: usize },
}

/// A trace fetched but not yet dispatched (an outstanding trace buffer).
#[derive(Clone, Debug)]
struct Pending {
    trace: Arc<Trace>,
    ready_at: u64,
    hist_before: TraceHistory,
    source: FetchSource,
}

/// Recovery plan decided at fault detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RecoveryPlan {
    Fgci,
    Cgci,
    Full,
}

/// An in-progress branch-misprediction recovery.
#[derive(Clone, Debug)]
struct Recovery {
    pe: usize,
    gen: u64,
    slot: usize,
    repaired: Arc<Trace>,
    ready_at: u64,
    plan: RecoveryPlan,
    /// Ledger coordinate of the triggering misprediction.
    attr: AttrKey,
    /// Detection cycle (ledger occupancy accounting).
    started_at: u64,
}

/// An unresolved CGCI attempt awaiting its ledger outcome: resolved as
/// `CgciReconverged` when fetch detects re-convergence, or as `CgciFailed`
/// whenever the insertion mode is torn down any other way (window
/// pressure, preserved trace lost, preemption by another recovery).
#[derive(Clone, Copy, Debug)]
struct CgciPending {
    /// Ledger coordinate; its outcome field is provisional.
    attr: AttrKey,
    /// `(pe, slot, pc)` of the faulting branch, to back-annotate the
    /// slot's attribution when the attempt resolves.
    fault: (usize, usize, Pc),
    /// Dispatch cycle of the faulting trace: generations are bumped by
    /// every repair, but `(pe, dispatched_at)` uniquely identifies the
    /// trace *instance* — without it, a freed-and-refilled PE holding the
    /// same trace shape would be mis-annotated.
    fault_dispatched_at: u64,
    /// Cycle the attempt started (occupancy accounting).
    started_at: u64,
    /// Start PC of the detected re-convergent trace, reported in the
    /// closing event so observers can judge the detection against static
    /// CFG facts.
    reconv_pc: Pc,
    /// Traces squashed on behalf of this attempt so far.
    squashed: u64,
    /// The faulting branch already retired and was counted under the
    /// provisional outcome; resolution must migrate that count if the
    /// final outcome differs.
    retired_provisionally: bool,
}

/// A re-dispatch pass over preserved (control independent) traces.
#[derive(Clone, Debug)]
struct RedispatchPass {
    queue: VecDeque<usize>,
    rolling: TraceHistory,
    origin: &'static str,
    /// Ledger coordinate charged for each re-dispatched trace.
    attr: Option<AttrKey>,
}

#[derive(Clone, Copy, Debug)]
struct BusReq {
    pe: usize,
    gen: u64,
    slot: usize,
    since: u64,
}

/// A `(pe, gen, slot)` reference into the window, validated against the
/// PE's generation counter before use (stale entries are dropped lazily).
type SlotRef = (usize, u64, usize);

/// Event-driven wakeup/issue index.
///
/// The paper's hardware evaluates every instruction slot of every PE each
/// cycle; simulating that literally (rescanning 16 PEs x 32 slots) makes
/// the simulator's wall-clock grow with window size even when almost
/// nothing can make progress. This index inverts control: producers *push*
/// events to the consumers that care, so each per-cycle stage touches only
/// the slots that can actually act this cycle.
///
/// # Invariants
///
/// Kept coherent by the slot-lifecycle hooks ([`TraceProcessor::index_enqueue`],
/// [`TraceProcessor::wake_waiters`], [`TraceProcessor::note_inflight`],
/// [`TraceProcessor::note_load_sampled`], [`TraceProcessor::mark_reissue_slot`])
/// and checked wholesale against a brute-force window rescan by
/// [`TraceProcessor::assert_event_index_coherent`]:
///
/// 1. **Ready bits.** `ready[pe]` has bit `slot` set *iff* the slot is in
///    state [`SlotState::Waiting`] and every source physical register has
///    been produced (`PhysReg::ready`). Time gating (`not_before`,
///    local/global visibility cycles) is deliberately *not* part of the
///    bit: the issue stage re-polls those cheap comparisons, because
///    global visibility can move (result-bus re-arm sets it to `u64::MAX`
///    until a bus is granted). Bits for unoccupied PEs are zero.
/// 2. **Waiters.** A `Waiting` slot whose bit is clear is registered in
///    `waiters[p]` (under its PE's current generation) for *every* source
///    `p` that is not yet produced. Production is monotone within a run,
///    so firing `p` can only shrink the unproduced set; the entry for `p`
///    is consumed at fire time while registrations on the remaining
///    unproduced sources keep the slot reachable. Stale entries (gen
///    mismatch, slot no longer `Waiting`) are dropped at fire time; the
///    transition back into `Waiting` always re-enqueues.
/// 3. **Completions.** Every slot in `Executing`/`MemAccess { done_at }`
///    has a `(done_at, pe, slot, gen)` entry in `completions`. Entries are
///    popped when due and validated (generation *and* exact `done_at`)
///    before completing; `replace_trace` re-enqueues surviving in-flight
///    prefix slots under the bumped generation.
/// 4. **Sampled loads.** Every load slot with `mem_addr = Some(a)` has an
///    entry in `loads_by_word[a >> 3]` under its current generation, so
///    store/undo snooping visits only loads on the snooped word instead of
///    rescanning the window. A reissued load that moved words re-registers
///    under the new word; the old entry dies on the word check.
///
/// All structures tolerate stale entries (validation is cheap and local);
/// what they must never do is *lose* a live slot — that turns into a
/// deadlock, which the invariant checker and the golden corpus guard.
struct WakeupIndex {
    /// Per-PE bitmask of issue candidates (invariant 1). Trace length is
    /// bounded at 32 by selection, so a `u64` per PE always suffices.
    ready: Vec<u64>,
    /// Per-physical-register wait lists (invariant 2).
    waiters: FxHashMap<PhysRegId, Vec<SlotRef>>,
    /// Min-heap of `(done_at, pe, slot, gen)` completion events
    /// (invariant 3). Ties pop in `(pe, slot)` order, matching the legacy
    /// physical-index scan order.
    completions: BinaryHeap<Reverse<(u64, usize, usize, u64)>>,
    /// Loads that sampled memory, indexed by word address (invariant 4).
    loads_by_word: FxHashMap<Addr, Vec<SlotRef>>,
}

/// Minimum subscription-map size before an amortized sweep is considered
/// (comfortably above the live window's worst case of
/// `16 PEs x 32 slots x 2 sources`).
const GC_FLOOR: usize = 4096;

impl WakeupIndex {
    fn new(num_pes: usize) -> WakeupIndex {
        WakeupIndex {
            ready: vec![0; num_pes],
            waiters: FxHashMap::default(),
            completions: BinaryHeap::new(),
            loads_by_word: FxHashMap::default(),
        }
    }
}

/// The trace processor simulator.
///
/// See the [crate-level example](crate) for typical use.
pub struct TraceProcessor<'p> {
    program: &'p Program,
    cfg: TraceProcessorConfig,
    // Substrates.
    selector: Selector,
    bit: Bit,
    btb: Btb,
    ras: Ras,
    predictor: NextTracePredictor,
    tcache: TraceCache,
    icache: ICache,
    dcache: DCache,
    arb: Arb,
    // Window.
    pes: Vec<Pe>,
    list: PeList,
    pregs: PhysRegFile,
    readers: FxHashMap<PhysRegId, Vec<(usize, u64, usize)>>,
    current_map: RenameMap,
    /// Architectural rename map of *retired* state: the physical register
    /// holding each architectural register's committed value.
    retired_map: RenameMap,
    // Frontend.
    fetch_hist: TraceHistory,
    retire_hist: TraceHistory,
    fetch_queue: VecDeque<Pending>,
    expected: ExpectedNext,
    mode: FetchMode,
    construction_busy_until: u64,
    recovery: Option<Recovery>,
    /// The unresolved CGCI attempt backing the current `CgciInsert` mode.
    cgci_pending: Option<CgciPending>,
    redispatch: Option<RedispatchPass>,
    // Buses.
    cache_bus_queue: VecDeque<BusReq>,
    result_bus_queue: VecDeque<BusReq>,
    /// Earliest cycle at which any queued cache-bus request could be
    /// granted; the arbiter pass is skipped entirely while `now` is below
    /// it. Maintained by [`Self::push_cache_req`] and the grant pass.
    cache_bus_next_due: u64,
    /// Same, for the global result buses.
    result_bus_next_due: u64,
    // Event-driven wakeup/issue index (see [`WakeupIndex`]).
    wakeup: WakeupIndex,
    /// Live entry counts and doubling thresholds for the amortized sweeps
    /// of the three subscription maps (`waiters`, `readers`,
    /// `loads_by_word`). Wrong-path consumers subscribe to producers that
    /// are squashed before ever producing, so without collection the maps
    /// grow with *dispatched* (not retired) instructions and the hot-path
    /// hash operations thrash the cache. Each sweep drops exactly the
    /// entries validation would ignore anyway, so collection is
    /// behaviour-invisible; thresholds double after each sweep for O(1)
    /// amortized cost.
    waiter_count: usize,
    waiters_gc_at: usize,
    reader_count: usize,
    readers_gc_at: usize,
    load_count: usize,
    loads_gc_at: usize,
    // Reusable per-cycle scratch buffers (avoid steady-state allocation).
    scratch_order: Vec<usize>,
    scratch_due: Vec<(usize, usize, u64, u64)>,
    scratch_grants: Vec<u32>,
    /// Cached `TP_PARANOID` environment flag (reading the environment once
    /// per stage per cycle is measurable on the hot path).
    paranoid: bool,
    // Architectural state.
    arch_regs: [Word; Reg::COUNT],
    oracle: Option<Machine<'p>>,
    /// Static post-dominator re-convergence oracle
    /// ([`TraceProcessorConfig::cfg_oracle`] or `TP_CFG_ORACLE`).
    /// Read-only with respect to model behaviour: it observes CGCI
    /// attempts, it never steers them.
    reconv_oracle: Option<Box<CfgAnalysis>>,
    /// First unclassifiable detection, surfaced from `step_cycle` as
    /// [`SimError::OracleMismatch`] (stages themselves return `()`).
    reconv_oracle_violation: Option<String>,
    /// CGCI detections per [`ReconvClass`] (index order of
    /// [`ReconvClass::ALL`]). Kept out of [`SimStats`] so golden
    /// statistics rows are byte-identical with the oracle on or off.
    reconv_oracle_counts: [u64; ReconvClass::ALL.len()],
    // Time.
    now: u64,
    last_retire_cycle: u64,
    halted: bool,
    /// The PC following the last retired instruction — the architectural
    /// frontier a functional machine would resume from (checkpoint capture
    /// between sampled intervals).
    retired_next_pc: Pc,
    stats: SimStats,
    /// The misprediction outcome-attribution ledger. Observation-only:
    /// nothing in the simulator reads it back.
    attribution: RecoveryAttribution,
    /// Retired mispredicted branches with provenance
    /// ([`TraceProcessorConfig::log_mispredicts`]).
    misp_log: Vec<MispredictRecord>,
    /// The structured event bus ([`TraceProcessor::attach_event_sink`]).
    /// Strictly observation-only: every emission site is gated on the
    /// bus's cached category mask and nothing in the simulator reads the
    /// bus back, so runs with and without sinks are cycle-identical.
    events: EventBus,
    /// Host wall-time profiler for the pipeline-stage modules
    /// ([`TraceProcessor::attach_stage_profiler`]). `None` (the default)
    /// costs one discriminant test per cycle; attached, each stage call
    /// is wrapped in a scoped timer. Host-side only — simulated behaviour
    /// is identical either way.
    profiler: Option<Box<StageProfiler>>,
}

/// One retired mispredicted branch, with the provenance of its (wrong)
/// embedded prediction ([`TraceProcessor::mispredict_log`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MispredictRecord {
    /// The branch's PC.
    pub pc: Pc,
    /// Index of the branch among its trace's conditional branches.
    pub branch_idx: u8,
    /// Number of branches the trace's id embeds (a `branch_idx` at or
    /// beyond this depth was predicted by the construction fallback, not
    /// the next-trace prediction).
    pub id_branches: u8,
    /// How the trace entered the window.
    pub source: FetchSource,
}

impl<'p> TraceProcessor<'p> {
    /// Creates a simulator for `program`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`TraceProcessorConfig::validate`]).
    pub fn new(program: &'p Program, cfg: TraceProcessorConfig) -> TraceProcessor<'p> {
        cfg.validate().unwrap_or_else(|e| panic!("invalid configuration: {e}"));
        Self::construct(program, cfg, BootImage::fresh(program))
    }

    /// Boots a simulator from a mid-run checkpoint: architectural state
    /// (PC, registers, memory) from the image, optionally with functionally
    /// warmed predictor/cache structures (see [`BootImage`]). The booted
    /// processor's statistics and cycle count start at zero, so a
    /// subsequent [`TraceProcessor::run`] measures the interval alone.
    ///
    /// # Errors
    ///
    /// Returns [`BootError`] when the configuration is invalid, the boot PC
    /// is outside the program, or a warm structure's geometry does not
    /// match the configuration.
    pub fn from_checkpoint(
        program: &'p Program,
        cfg: TraceProcessorConfig,
        boot: BootImage,
    ) -> Result<TraceProcessor<'p>, BootError> {
        cfg.validate()?;
        if !boot.halted && !program.contains(boot.pc) {
            return Err(BootError::PcOutOfRange { pc: boot.pc });
        }
        if let Some(w) = &boot.warm {
            let mismatch = |what: &str, got: String, want: String| {
                Err(BootError::WarmGeometry(format!("{what}: checkpoint {got}, config {want}")))
            };
            if w.btb.entries() != cfg.btb_entries {
                return mismatch("btb", w.btb.entries().to_string(), cfg.btb_entries.to_string());
            }
            if w.ras.capacity() != cfg.ras_depth {
                return mismatch("ras", w.ras.capacity().to_string(), cfg.ras_depth.to_string());
            }
            if w.predictor.config() != cfg.predictor {
                return mismatch(
                    "next-trace predictor",
                    format!("{:?}", w.predictor.config()),
                    format!("{:?}", cfg.predictor),
                );
            }
            if w.tcache.geometry() != (cfg.tcache_sets, cfg.tcache_ways) {
                return mismatch(
                    "trace cache",
                    format!("{:?}", w.tcache.geometry()),
                    format!("{:?}", (cfg.tcache_sets, cfg.tcache_ways)),
                );
            }
            if w.history.depth() != cfg.predictor.path_depth {
                return mismatch(
                    "trace history",
                    w.history.depth().to_string(),
                    cfg.predictor.path_depth.to_string(),
                );
            }
        }
        Ok(Self::construct(program, cfg, boot))
    }

    /// Shared constructor behind [`TraceProcessor::new`] (a fresh boot
    /// image) and [`TraceProcessor::from_checkpoint`] (a validated one).
    fn construct(
        program: &'p Program,
        cfg: TraceProcessorConfig,
        boot: BootImage,
    ) -> TraceProcessor<'p> {
        let mut pregs = PhysRegFile::new();
        // Architectural registers start as ready physical registers holding
        // the boot image's values (all zero for a fresh run).
        let mut arch_map = [PhysRegId::ZERO; Reg::COUNT];
        for r in Reg::all().skip(1) {
            arch_map[r.index()] = pregs.alloc_ready(boot.regs[r.index()]);
        }
        let (btb, ras, predictor, tcache, bit, icache, dcache, hist) = match boot.warm {
            Some(w) => (w.btb, w.ras, w.predictor, w.tcache, w.bit, w.icache, w.dcache, w.history),
            None => (
                Btb::new(cfg.btb_entries),
                Ras::new(cfg.ras_depth),
                NextTracePredictor::new(cfg.predictor),
                TraceCache::new(cfg.tcache_sets, cfg.tcache_ways),
                Bit::new(cfg.bit_entries, cfg.bit_ways),
                ICache::paper(),
                DCache::paper(),
                TraceHistory::new(cfg.predictor.path_depth),
            ),
        };
        let pes = (0..cfg.num_pes).map(|_| Pe::empty(hist.clone())).collect();
        let oracle = cfg.verify_with_oracle.then(|| {
            Machine::from_state(
                program,
                MachineState {
                    regs: boot.regs,
                    mem: boot.mem.iter().copied().collect(),
                    pc: boot.pc,
                    halted: boot.halted,
                    retired: boot.retired,
                },
            )
        });
        TraceProcessor {
            program,
            selector: Selector::new(cfg.selection),
            bit,
            btb,
            ras,
            predictor,
            tcache,
            icache,
            dcache,
            arb: Arb::new(boot.mem.iter().map(|&(w, v)| (w << 3, v))),
            pes,
            list: PeList::new(cfg.num_pes),
            pregs,
            readers: FxHashMap::default(),
            current_map: arch_map,
            retired_map: arch_map,
            fetch_hist: hist.clone(),
            retire_hist: hist,
            fetch_queue: VecDeque::new(),
            expected: if boot.halted {
                ExpectedNext::Stalled
            } else {
                ExpectedNext::Known(boot.pc)
            },
            mode: FetchMode::Normal,
            construction_busy_until: 0,
            recovery: None,
            cgci_pending: None,
            redispatch: None,
            cache_bus_queue: VecDeque::new(),
            result_bus_queue: VecDeque::new(),
            cache_bus_next_due: u64::MAX,
            result_bus_next_due: u64::MAX,
            wakeup: WakeupIndex::new(cfg.num_pes),
            waiter_count: 0,
            waiters_gc_at: GC_FLOOR,
            reader_count: 0,
            readers_gc_at: GC_FLOOR,
            load_count: 0,
            loads_gc_at: GC_FLOOR,
            scratch_order: Vec::new(),
            scratch_due: Vec::new(),
            scratch_grants: Vec::new(),
            paranoid: std::env::var("TP_PARANOID").is_ok(),
            arch_regs: boot.regs,
            oracle,
            reconv_oracle: (cfg.cfg_oracle || std::env::var("TP_CFG_ORACLE").is_ok())
                .then(|| Box::new(CfgAnalysis::build(program))),
            reconv_oracle_violation: None,
            reconv_oracle_counts: [0; ReconvClass::ALL.len()],
            now: 0,
            last_retire_cycle: 0,
            halted: boot.halted,
            retired_next_pc: boot.pc,
            stats: SimStats::default(),
            attribution: RecoveryAttribution::new(),
            misp_log: Vec::new(),
            events: EventBus::new(),
            profiler: None,
            cfg,
        }
    }

    /// Attaches a structured-event sink to the simulator's event bus.
    /// Sinks observe only: attaching one has zero effect on simulated
    /// behaviour (golden statistics rows stay byte-identical).
    pub fn attach_event_sink(&mut self, sink: Box<dyn EventSink>) {
        self.events.attach(sink);
    }

    /// Whether any event sink is currently attached.
    pub fn events_attached(&self) -> bool {
        self.events.is_attached()
    }

    /// Detaches and returns the event bus (with its sinks) so captured
    /// data can be rendered. Before handing it back, a synthetic
    /// `TraceSquashed { drained: true }` close is emitted for every trace
    /// still resident in a PE, so each `TraceDispatched` is matched by
    /// exactly one close even when the run ends mid-flight.
    pub fn release_event_bus(&mut self) -> EventBus {
        if self.events.wants(Category::Trace) {
            let resident: Vec<(u8, u32)> = self
                .list
                .iter()
                .filter(|&pe| self.pes[pe].occupied)
                .map(|pe| (pe as u8, self.pes[pe].trace.id().start()))
                .collect();
            for (pe, pc) in resident {
                self.events.emit(self.now, Event::TraceSquashed { pe, pc, drained: true });
            }
        }
        std::mem::take(&mut self.events)
    }

    /// Attaches a host wall-time stage profiler: from the next cycle on,
    /// each pipeline-stage call is timed with a scoped host clock.
    /// Host-side observation only — simulated behaviour and statistics
    /// are identical with or without it. Idempotent: an already-attached
    /// profiler keeps accumulating.
    pub fn attach_stage_profiler(&mut self) {
        if self.profiler.is_none() {
            self.profiler = Some(Box::new(StageProfiler::new()));
        }
    }

    /// The attached stage profiler, if any.
    pub fn stage_profiler(&self) -> Option<&StageProfiler> {
        self.profiler.as_deref()
    }

    /// Detaches and returns the stage profiler (subsequent cycles run
    /// unprofiled).
    pub fn take_stage_profiler(&mut self) -> Option<Box<StageProfiler>> {
        self.profiler.take()
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &TraceProcessorConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// The misprediction outcome-attribution ledger accumulated so far.
    pub fn attribution(&self) -> &RecoveryAttribution {
        &self.attribution
    }

    /// Next-trace predictor statistics (component hits, index pollution).
    pub fn predictor_stats(&self) -> TracePredictorStats {
        self.predictor.stats()
    }

    /// Retired mispredicted conditional branches, in retirement order
    /// (empty unless [`TraceProcessorConfig::log_mispredicts`]).
    pub fn mispredict_log(&self) -> &[MispredictRecord] {
        &self.misp_log
    }

    /// CGCI re-convergence detections by static classification (all zero
    /// unless the `tp-cfg` oracle is enabled; see
    /// [`TraceProcessorConfig::cfg_oracle`]).
    pub fn cfg_oracle_counts(&self) -> [(ReconvClass, u64); ReconvClass::ALL.len()] {
        let mut out = [(ReconvClass::Exact, 0); ReconvClass::ALL.len()];
        for (i, &c) in ReconvClass::ALL.iter().enumerate() {
            out[i] = (c, self.reconv_oracle_counts[i]);
        }
        out
    }

    /// Committed architectural state (registers plus memory), normalized for
    /// comparison with [`Machine::arch_state`].
    pub fn arch_state(&self) -> ArchState {
        ArchState { regs: self.arch_regs, mem: self.arb.arch_mem() }
    }

    /// The full committed memory image as `(word index, value)` pairs,
    /// including words holding zero (unlike the normalized
    /// [`TraceProcessor::arch_state`]). This is what a resumed functional
    /// machine must be seeded with: a committed zero over non-zero initial
    /// data is real state.
    pub fn committed_mem_words(&self) -> Vec<(u64, Word)> {
        self.arb.backing_words().collect()
    }

    /// Whether the program's `Halt` has retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// The retired architectural frontier: the PC following the last
    /// retired instruction and the number of instructions retired since
    /// boot. Together with [`TraceProcessor::arch_state`] this is exactly
    /// the state a functional machine needs to continue the program from
    /// where the detailed interval left off.
    pub fn retired_frontier(&self) -> (Pc, u64) {
        (self.retired_next_pc, self.stats.retired_instrs)
    }

    /// Consumes the processor and hands back its trained frontend
    /// structures, so a fast-forward engine can keep warming where the
    /// detailed interval finished (the inverse of booting with
    /// [`BootImage::warm`]).
    pub fn into_warm(self) -> WarmBoot {
        WarmBoot {
            btb: self.btb,
            ras: self.ras,
            predictor: self.predictor,
            tcache: self.tcache,
            bit: self.bit,
            icache: self.icache,
            dcache: self.dcache,
            history: self.retire_hist,
        }
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Runs until the program halts or `max_instrs` instructions retire.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if no instruction retires for the
    /// configured watchdog window, or [`SimError::OracleMismatch`] when
    /// oracle verification is enabled and committed state diverges.
    pub fn run(&mut self, max_instrs: u64) -> Result<RunResult, SimError> {
        while !self.halted && self.stats.retired_instrs < max_instrs {
            self.step_cycle()?;
            if self.now - self.last_retire_cycle > self.cfg.deadlock_cycles {
                return Err(SimError::Deadlock { cycle: self.now, detail: self.dump_window() });
            }
        }
        Ok(RunResult {
            halted: self.halted,
            stats: self.stats,
            attribution: self.attribution.clone(),
            predictor: self.predictor.stats(),
        })
    }

    /// Runs until `n` *more* instructions retire (or the program halts):
    /// the run-for-N-retired-instructions interval primitive of sampled
    /// execution. Retirement is trace-at-a-time, so the interval may
    /// overshoot by up to one trace; the returned statistics report the
    /// actual count.
    ///
    /// # Errors
    ///
    /// As [`TraceProcessor::run`].
    pub fn run_interval(&mut self, n: u64) -> Result<RunResult, SimError> {
        let target = self.stats.retired_instrs.saturating_add(n);
        self.run(target)
    }

    /// Advances the simulation by one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OracleMismatch`] under oracle verification.
    pub fn step_cycle(&mut self) -> Result<(), SimError> {
        // Amortized collection of the subscription maps (behaviour-
        // invisible: only entries that validation would skip are dropped).
        if self.waiter_count > self.waiters_gc_at {
            self.gc_waiters();
        }
        if self.reader_count > self.readers_gc_at {
            self.gc_readers();
        }
        if self.load_count > self.loads_gc_at {
            self.gc_loads();
        }
        // The profiler is taken out for the duration of the stage calls so
        // the scoped timers can hold a shared borrow while the stages
        // borrow the processor mutably; restored on every path out.
        let prof = self.profiler.take();
        let result = self.run_stages(prof.as_deref());
        self.profiler = prof;
        result
    }

    /// The eight pipeline-stage modules of one cycle, each wrapped in a
    /// host stage timer (no-ops when `prof` is `None`).
    fn run_stages(&mut self, prof: Option<&StageProfiler>) -> Result<(), SimError> {
        let ctx = CycleCtx { now: self.now };
        {
            let _t = ScopedStageTimer::new(prof, Stage::Complete);
            self.complete_stage(&ctx);
        }
        self.paranoid_check("complete");
        {
            let _t = ScopedStageTimer::new(prof, Stage::Retire);
            self.retire_stage(&ctx)?;
        }
        self.paranoid_check("retire");
        {
            let _t = ScopedStageTimer::new(prof, Stage::Recovery);
            self.recovery_stage(&ctx);
        }
        self.paranoid_check("recovery");
        if let Some(detail) = self.reconv_oracle_violation.take() {
            return Err(SimError::OracleMismatch { cycle: self.now, detail });
        }
        {
            let _t = ScopedStageTimer::new(prof, Stage::Fetch);
            self.fetch_stage(&ctx);
        }
        self.paranoid_check("fetch");
        self.dispatch_stage(&ctx, prof);
        self.paranoid_check("dispatch");
        {
            let _t = ScopedStageTimer::new(prof, Stage::Issue);
            self.issue_stage(&ctx);
        }
        {
            let _t = ScopedStageTimer::new(prof, Stage::Buses);
            self.bus_stage(&ctx);
        }
        if self.events.wants(Category::Occupancy) {
            self.events.emit(
                ctx.now,
                Event::WindowSample {
                    occupied: self.list.len().min(255) as u8,
                    fetch_queue: self.fetch_queue.len().min(255) as u8,
                },
            );
        }
        self.now += 1;
        self.stats.cycles = self.now;
        Ok(())
    }

    /// Window-wide rename invariant: a trace's `map_before` must never
    /// reference a physical register produced by that trace or any younger
    /// trace. Gated behind `TP_PARANOID` (read once at construction)
    /// because it is O(window^2). Also cross-checks the wakeup index
    /// against a brute-force rescan after every stage.
    fn paranoid_check(&self, stage: &str) {
        if !self.paranoid {
            return;
        }
        self.assert_event_index_coherent();
        // ARB coherence: every speculative version must belong to a live,
        // in-window store slot that performed at that word. An orphaned
        // version is a use-after-free of memory state: the forwarding key
        // function can only order versions whose owners are still in the
        // window.
        for (word, h) in self.arb.all_versions() {
            let (pe, slot) = ((h.0 >> 8) as usize, (h.0 & 0xff) as usize);
            let owner_ok = self.list.contains(pe)
                && self.pes[pe].occupied
                && slot < self.pes[pe].slots.len()
                && self.pes[pe].slots[slot].store_performed
                && self.pes[pe].slots[slot].mem_addr.map(|a| a >> 3) == Some(word);
            assert!(
                owner_ok,
                "cycle {} after {stage}: ARB version at word {word:#x} owned by pe{pe} slot \
                 {slot} has no live performed store\n{}",
                self.now,
                self.dump_window()
            );
        }
        let order: Vec<usize> = self.list.iter().collect();
        for (qi, &q) in order.iter().enumerate() {
            for r in Reg::all().skip(1) {
                let preg = self.pes[q].map_before[r.index()];
                for &younger in &order[qi..] {
                    for (si, sl) in self.pes[younger].slots.iter().enumerate() {
                        if sl.dest == Some(preg) {
                            panic!(
                                "cycle {} after {stage}: pe{q} map_before[{r}] = {preg:?} \
                                 is produced by pe{younger} slot {si} (not older)\n{}",
                                self.now,
                                self.dump_window()
                            );
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Helpers shared by multiple stages.

    /// Changes the frontend fetch mode. This is the single chokepoint for
    /// leaving (or restarting) `CgciInsert`: any teardown that is not the
    /// explicit success path in fetch re-convergence detection resolves
    /// the pending CGCI attempt as failed in the attribution ledger.
    /// Ledger-only — the mode change itself is exactly `self.mode = mode`.
    fn set_mode(&mut self, mode: FetchMode) {
        if matches!(self.mode, FetchMode::CgciInsert { .. }) {
            if let Some(p) = self.cgci_pending.take() {
                self.resolve_cgci(p, RecoveryOutcome::CgciFailed, 0);
            }
        }
        self.mode = mode;
    }

    /// Resolves a CGCI attempt in the ledger: flushes its accumulated
    /// costs into the `(class, heuristic, outcome)` cell and back-annotates
    /// the faulting slot's attribution when it is still identifiable (the
    /// slot may have been replaced or retired while the attempt ran; the
    /// stored PC validates it). Returns the resolved ledger key.
    fn resolve_cgci(
        &mut self,
        p: CgciPending,
        outcome: RecoveryOutcome,
        preserved: u64,
    ) -> AttrKey {
        let key = (p.attr.0, p.attr.1, outcome);
        // The faulting branch may have retired mid-attempt; its retirement
        // was counted under the provisional outcome and migrates with the
        // resolution.
        if p.retired_provisionally && key != p.attr {
            self.attribution.cell_mut(p.attr).retired -= 1;
            self.attribution.cell_mut(key).retired += 1;
        }
        let cell = self.attribution.cell_mut(key);
        cell.events += 1;
        cell.traces_squashed += p.squashed;
        cell.traces_preserved += preserved;
        cell.recovery_cycles += self.now.saturating_sub(p.started_at);
        // This is the single site charging a CGCI attempt to the ledger,
        // so emitting the close here makes the event-vs-ledger balance
        // exact by construction: closes per (class, heuristic, outcome)
        // equal that cell's `events`.
        if self.events.wants(Category::Cgci) {
            self.events.emit(
                self.now,
                Event::CgciClosed {
                    class: key.0,
                    heuristic: key.1,
                    outcome,
                    squashed: p.squashed as u32,
                    preserved: preserved as u32,
                    branch_pc: p.fault.2,
                    reconv_pc: p.reconv_pc,
                },
            );
        }
        let (pe, slot, pc) = p.fault;
        if self.pes[pe].occupied && self.pes[pe].dispatched_at == p.fault_dispatched_at {
            if let Some(s) = self.pes[pe].slots.get_mut(slot) {
                if s.ti.pc == pc && s.was_mispredicted {
                    s.attr = Some(key);
                }
            }
        }
        key
    }

    /// Emits a head-stall sample when an occupancy sink is listening
    /// (shared by retirement's early-return gates).
    fn emit_head_stall(&mut self, now: u64, pe: usize, reason: tp_events::StallReason) {
        if self.events.wants(Category::Occupancy) {
            self.events.emit(now, Event::HeadStall { pe: pe as u8, reason });
        }
    }

    fn handle(pe: usize, slot: usize) -> SeqHandle {
        SeqHandle(((pe as u64) << 8) | slot as u64)
    }

    /// Logical memory-order key of a sequence handle, derived from the PE
    /// linked list (the paper's physical-to-logical translation). Handles
    /// whose PE has left the window (a retired store that supplied a load's
    /// data, or a squashed store whose undo-triggered reissue has not run
    /// yet) rank as architectural memory — older than everything live.
    fn seq_key(&self, h: SeqHandle) -> u64 {
        let pe = (h.0 >> 8) as usize;
        let slot = h.0 & 0xff;
        if !self.list.contains(pe) {
            return 0;
        }
        // +1 so that key 0 is reserved for "architectural memory".
        ((self.list.logical(pe) + 1) << 8) | slot
    }

    fn dump_window(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "mode={:?} recovery={:?} expected={:?} queue={} ",
            self.mode,
            self.recovery.as_ref().map(|r| (r.pe, r.slot, r.ready_at)),
            self.expected,
            self.fetch_queue.len()
        );
        for pe in self.list.iter() {
            let p = &self.pes[pe];
            let waiting = p.slots.iter().filter(|s| s.state == SlotState::Waiting).count();
            let done = p.slots.iter().filter(|s| s.state == SlotState::Done).count();
            let _ = write!(
                s,
                "| pe{pe} {} len={} done={done} waiting={waiting} fault={:?} ",
                p.trace.id(),
                p.slots.len(),
                p.first_fault()
            );
            for (i, sl) in p.slots.iter().enumerate() {
                if sl.state != SlotState::Done || sl.pending_reissue {
                    let vals: Vec<(u32, Word, bool)> = sl
                        .srcs
                        .iter()
                        .flatten()
                        .map(|&pp| {
                            let r = self.pregs.get(pp);
                            (pp.0, r.value, r.ready)
                        })
                        .collect();
                    let _ = write!(
                        s,
                        "[slot {i} {:?} state={:?} pr={} nb={} iss={} srcs={vals:?}] ",
                        sl.ti.inst, sl.state, sl.pending_reissue, sl.not_before, sl.issues
                    );
                }
            }
        }
        s
    }

    fn register_reader(&mut self, preg: PhysRegId, pe: usize, slot: usize) {
        if preg == PhysRegId::ZERO {
            return;
        }
        let gen = self.pes[pe].gen;
        self.readers.entry(preg).or_default().push((pe, gen, slot));
        self.reader_count += 1;
    }

    /// Marks every live consumer of `preg` for selective reissue.
    fn propagate_value_change(&mut self, preg: PhysRegId, not_before: u64) {
        let Some(list) = self.readers.get_mut(&preg) else { return };
        let entries = std::mem::take(list);
        let total = entries.len();
        let mut kept = Vec::with_capacity(entries.len());
        for (pe, gen, slot) in entries {
            let p = &mut self.pes[pe];
            if p.occupied && p.gen == gen && slot < p.slots.len() {
                // Only reissue if this slot still actually reads the preg.
                if p.slots[slot].srcs.iter().flatten().any(|&s| s == preg) {
                    kept.push((pe, gen, slot));
                }
            }
        }
        self.stats.value_change_marks += kept.len() as u64;
        for &(pe, _, slot) in &kept {
            self.mark_reissue_slot(pe, slot, not_before);
        }
        self.reader_count -= total - kept.len();
        *self.readers.entry(preg).or_default() = kept;
    }

    // ------------------------------------------------------------------
    // Wakeup-index slot-lifecycle hooks (see [`WakeupIndex`] invariants).

    /// Marks a slot for selective reissue *and* keeps the wakeup index
    /// coherent: a slot that *transitioned* into `Waiting` is re-enqueued
    /// so it can be woken (or issued) again. Use this for value-change
    /// reissues whose sources did not move; a reissue caused by a source
    /// *rebind* must use [`Self::rebind_reissue_slot`] instead, because an
    /// already-`Waiting` slot's index membership is keyed on its old
    /// sources. Never call [`Slot::mark_reissue`] directly from the core.
    fn mark_reissue_slot(&mut self, pe: usize, slot: usize, not_before: u64) {
        if self.pes[pe].slots[slot].mark_reissue(not_before) {
            self.index_enqueue(pe, slot);
        }
    }

    /// Rebind-aware reissue hook: marks the slot and *unconditionally*
    /// re-enqueues it while it is `Waiting` — required whenever the slot's
    /// source registers were just rebound (re-dispatch, head re-ground),
    /// since the wait-list subscriptions of an already-`Waiting` slot
    /// cover its old sources only. Slots left in flight (pending reissue)
    /// re-enqueue when their discarded completion arrives.
    fn rebind_reissue_slot(&mut self, pe: usize, slot: usize, not_before: u64) {
        self.stats.rebind_marks += 1;
        let _ = self.pes[pe].slots[slot].mark_reissue(not_before);
        if self.pes[pe].slots[slot].state == SlotState::Waiting {
            self.index_enqueue(pe, slot);
        }
    }

    /// Registers a `Waiting` slot with the wakeup index: sets its ready
    /// bit when every source has been produced, otherwise subscribes it to
    /// each unproduced source's wait list (invariants 1 and 2). Must be
    /// called on every transition into `Waiting` and after every source
    /// rebind of a `Waiting` slot.
    fn index_enqueue(&mut self, pe: usize, slot: usize) {
        if self.paranoid {
            assert_eq!(self.pes[pe].slots[slot].state, SlotState::Waiting);
            assert!(slot < 64, "trace longer than the ready bitmask");
        }
        let gen = self.pes[pe].gen;
        let srcs = self.pes[pe].slots[slot].srcs;
        let mut all_produced = true;
        for &p in srcs.iter().flatten() {
            if !self.pregs.get(p).ready {
                all_produced = false;
                self.wakeup.waiters.entry(p).or_default().push((pe, gen, slot));
                self.waiter_count += 1;
            }
        }
        if all_produced {
            self.wakeup.ready[pe] |= 1 << slot;
        } else {
            // A rebind can move a previously all-produced slot onto an
            // unproduced source; the stale bit must not survive it.
            self.wakeup.ready[pe] &= !(1u64 << slot);
        }
    }

    /// Fires the wait list of a just-produced physical register: every
    /// still-`Waiting` subscriber whose sources are now all produced gets
    /// its ready bit set. Called exactly once per register, on its first
    /// production (value *changes* go through selective reissue instead).
    fn wake_waiters(&mut self, preg: PhysRegId) {
        let Some(entries) = self.wakeup.waiters.remove(&preg) else { return };
        self.waiter_count -= entries.len();
        for (pe, gen, slot) in entries {
            let p = &self.pes[pe];
            if !p.occupied || p.gen != gen || slot >= p.slots.len() {
                continue; // stale: squashed or replaced
            }
            if p.slots[slot].state != SlotState::Waiting {
                continue; // re-enqueued on its next transition into Waiting
            }
            if p.slots[slot].srcs.iter().flatten().all(|&q| self.pregs.get(q).ready) {
                self.wakeup.ready[pe] |= 1 << slot;
            }
            // else: still subscribed to the remaining unproduced source(s).
        }
    }

    /// Schedules the completion event for a slot that just entered
    /// `Executing`/`MemAccess` with the given `done_at` (invariant 3).
    fn note_inflight(&mut self, pe: usize, slot: usize, done_at: u64) {
        let gen = self.pes[pe].gen;
        self.wakeup.completions.push(Reverse((done_at, pe, slot, gen)));
    }

    /// Indexes a load that sampled memory at `addr` so store/undo snoops
    /// can find it without rescanning the window (invariant 4).
    fn note_load_sampled(&mut self, pe: usize, slot: usize, addr: Addr) {
        let gen = self.pes[pe].gen;
        let bucket = self.wakeup.loads_by_word.entry(addr >> 3).or_default();
        // A reissued load may sample the same word twice under one
        // generation; keep at most one entry so a snoop reissues (and
        // counts) it exactly once.
        let before = bucket.len();
        bucket.retain(|&(p, _, s)| !(p == pe && s == slot));
        self.load_count -= before - bucket.len();
        bucket.push((pe, gen, slot));
        self.load_count += 1;
    }

    /// Clears the per-PE ready bits when the PE's slots are discarded
    /// (squash, retire, or re-dispatch of a fresh trace). Generation bumps
    /// invalidate the PE's entries in every other index structure.
    fn index_reset_pe(&mut self, pe: usize) {
        self.wakeup.ready[pe] = 0;
    }

    /// Queues a cache-bus request, keeping the arbiter's fast-path
    /// horizon coherent.
    fn push_cache_req(&mut self, req: BusReq) {
        self.cache_bus_next_due = self.cache_bus_next_due.min(req.since);
        self.cache_bus_queue.push_back(req);
    }

    /// Queues a result-bus request, keeping the arbiter's fast-path
    /// horizon coherent.
    fn push_result_req(&mut self, req: BusReq) {
        self.result_bus_next_due = self.result_bus_next_due.min(req.since);
        self.result_bus_queue.push_back(req);
    }

    /// Sweeps stale wait-list subscriptions: entries whose generation died
    /// (squash/replace), whose slot left `Waiting`, or whose slot no
    /// longer reads the key register. Exactly the entries
    /// [`Self::wake_waiters`] would drop on sight, so dropping them early
    /// never changes behaviour — the invariant only requires live
    /// `Waiting` slots to stay subscribed to their unproduced sources,
    /// and those entries are kept.
    fn gc_waiters(&mut self) {
        let pes = &self.pes;
        self.wakeup.waiters.retain(|&preg, entries| {
            entries.retain(|&(pe, gen, slot)| {
                let p = &pes[pe];
                p.occupied
                    && p.gen == gen
                    && slot < p.slots.len()
                    && p.slots[slot].state == SlotState::Waiting
                    && p.slots[slot].srcs.iter().flatten().any(|&q| q == preg)
            });
            !entries.is_empty()
        });
        self.waiter_count = self.wakeup.waiters.values().map(Vec::len).sum();
        self.waiters_gc_at = GC_FLOOR.max(self.waiter_count * 2);
    }

    /// Sweeps stale reader registrations, mirroring the keep condition of
    /// [`Self::propagate_value_change`].
    fn gc_readers(&mut self) {
        let pes = &self.pes;
        self.readers.retain(|&preg, entries| {
            entries.retain(|&(pe, gen, slot)| {
                let p = &pes[pe];
                p.occupied
                    && p.gen == gen
                    && slot < p.slots.len()
                    && p.slots[slot].srcs.iter().flatten().any(|&q| q == preg)
            });
            !entries.is_empty()
        });
        self.reader_count = self.readers.values().map(Vec::len).sum();
        self.readers_gc_at = GC_FLOOR.max(self.reader_count * 2);
    }

    /// Sweeps stale load-registry entries (dead generations and loads
    /// whose reissue moved them to another word).
    fn gc_loads(&mut self) {
        let pes = &self.pes;
        let list = &self.list;
        self.wakeup.loads_by_word.retain(|&word, entries| {
            entries.retain(|&(pe, gen, slot)| {
                let p = &pes[pe];
                p.occupied
                    && p.gen == gen
                    && slot < p.slots.len()
                    && list.contains(pe)
                    && p.slots[slot].mem_addr.is_some_and(|a| a >> 3 == word)
            });
            !entries.is_empty()
        });
        self.load_count = self.wakeup.loads_by_word.values().map(Vec::len).sum();
        self.loads_gc_at = GC_FLOOR.max(self.load_count * 2);
    }

    /// Footprint of the wakeup index, for leak diagnostics and tests:
    /// `(waiter entries, waiter keys, completion events, load entries)`.
    #[doc(hidden)]
    pub fn index_footprint(&self) -> (usize, usize, usize, usize) {
        (
            self.wakeup.waiters.values().map(Vec::len).sum(),
            self.wakeup.waiters.len(),
            self.wakeup.completions.len(),
            self.wakeup.loads_by_word.values().map(Vec::len).sum(),
        )
    }

    /// Brute-force cross-check of the wakeup index against the window
    /// (the [`WakeupIndex`] invariants, verbatim). O(window x slots); used
    /// by tests after every cycle of adversarial runs and by `TP_PARANOID`
    /// runs after every stage. Not part of the public API.
    ///
    /// # Panics
    ///
    /// Panics if any invariant is violated.
    #[doc(hidden)]
    pub fn assert_event_index_coherent(&self) {
        for (pe, p) in self.pes.iter().enumerate() {
            if !p.occupied {
                assert_eq!(
                    self.wakeup.ready[pe], 0,
                    "cycle {}: ready bits set on unoccupied pe{pe}",
                    self.now
                );
                continue;
            }
            let gen = p.gen;
            for (i, s) in p.slots.iter().enumerate() {
                let bit = self.wakeup.ready[pe] >> i & 1 == 1;
                match s.state {
                    SlotState::Waiting => {
                        let unproduced: Vec<PhysRegId> = s
                            .srcs
                            .iter()
                            .flatten()
                            .copied()
                            .filter(|&q| !self.pregs.get(q).ready)
                            .collect();
                        if unproduced.is_empty() {
                            assert!(
                                bit,
                                "cycle {}: pe{pe} slot {i} is issuable but not in the ready \
                                 index\n{}",
                                self.now,
                                self.dump_window()
                            );
                        } else {
                            assert!(
                                !bit,
                                "cycle {}: pe{pe} slot {i} has unproduced sources but its \
                                 ready bit is set",
                                self.now
                            );
                            for q in unproduced {
                                assert!(
                                    self.wakeup
                                        .waiters
                                        .get(&q)
                                        .is_some_and(|w| w.contains(&(pe, gen, i))),
                                    "cycle {}: pe{pe} slot {i} waits on {q:?} but is not \
                                     subscribed to it",
                                    self.now
                                );
                            }
                        }
                    }
                    SlotState::Executing { done_at } | SlotState::MemAccess { done_at } => {
                        assert!(
                            self.wakeup
                                .completions
                                .iter()
                                .any(|&Reverse(e)| e == (done_at, pe, i, gen)),
                            "cycle {}: pe{pe} slot {i} in flight (done_at={done_at}) without \
                             a completion event",
                            self.now
                        );
                        assert!(
                            !bit,
                            "cycle {}: in-flight pe{pe} slot {i} has a ready bit",
                            self.now
                        );
                    }
                    _ => {
                        assert!(
                            !bit,
                            "cycle {}: pe{pe} slot {i} is {:?} with a ready bit set",
                            self.now, s.state
                        );
                    }
                }
                if matches!(s.ti.inst, tp_isa::Inst::Load { .. }) {
                    if let Some(a) = s.mem_addr {
                        assert!(
                            self.wakeup
                                .loads_by_word
                                .get(&(a >> 3))
                                .is_some_and(|w| w.contains(&(pe, gen, i))),
                            "cycle {}: pe{pe} slot {i} sampled word {:#x} but is not in the \
                             load snoop index",
                            self.now,
                            a >> 3
                        );
                    }
                }
            }
        }
        // Bus fast-path horizons: a pass may only be skipped while nothing
        // could be granted, so every request must be covered either by its
        // own due time or by the "blocked last pass, retry next cycle"
        // horizon.
        for (queue, next_due) in [
            (&self.cache_bus_queue, self.cache_bus_next_due),
            (&self.result_bus_queue, self.result_bus_next_due),
        ] {
            for req in queue {
                assert!(
                    next_due <= req.since || next_due <= self.now + 1,
                    "cycle {}: queued bus request due at {} not covered by horizon {}",
                    self.now,
                    req.since,
                    next_due
                );
            }
        }
    }

    /// Rebuilds the speculative fetch history as of the end of the current
    /// window: the tail trace's checkpointed history plus the tail itself.
    /// (Using the checkpoints keeps histories at full path depth — a
    /// history built from the surviving window alone would be shorter than
    /// the retirement-side training contexts, and the path-based predictor
    /// would tag-miss after every squash.)
    fn rebuild_history(&self) -> TraceHistory {
        match self.list.tail() {
            Some(t) => {
                let mut h = self.pes[t].hist_before.clone();
                h.push(self.pes[t].trace.id());
                h
            }
            None => self.retire_hist.clone(),
        }
    }

    /// Expected fetch PC following the trace in `pe`.
    fn expected_after_pe(&self, pe: usize) -> ExpectedNext {
        let trace = &self.pes[pe].trace;
        match trace.end() {
            EndReason::MaxLen | EndReason::Ntb => {
                ExpectedNext::Known(trace.next_pc().expect("static end has next"))
            }
            EndReason::Indirect => {
                let last = self.pes[pe].slots.len() - 1;
                let s = &self.pes[pe].slots[last];
                if s.state == SlotState::Done {
                    match s.indirect_target {
                        Some(t) if t >= 0 && self.program.contains(t as Pc) => {
                            ExpectedNext::Known(t as Pc)
                        }
                        _ => ExpectedNext::Stalled,
                    }
                } else {
                    match trace.next_pc() {
                        Some(t) => ExpectedNext::Predicted(t),
                        None => ExpectedNext::Stalled,
                    }
                }
            }
            EndReason::Halt | EndReason::OutOfProgram => ExpectedNext::Stalled,
        }
    }

    fn expected_after_tail(&self) -> ExpectedNext {
        match self.list.tail() {
            Some(t) => self.expected_after_pe(t),
            // An empty window means everything committed: the next fetch is
            // the retired frontier, exactly. (Returning `Stalled` here
            // wedges fetch permanently — nothing is left in flight to
            // resolve a stall.)
            None => ExpectedNext::Known(self.retired_next_pc),
        }
    }
}

impl fmt::Debug for TraceProcessor<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceProcessor")
            .field("cycle", &self.now)
            .field("halted", &self.halted)
            .field("window", &self.list.len())
            .field("retired", &self.stats.retired_instrs)
            .finish()
    }
}
