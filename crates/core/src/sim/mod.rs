//! The cycle-level trace processor simulator.
//!
//! See the crate-level docs for the big picture. The simulator advances one
//! cycle at a time through seven phases, each implemented in its own
//! submodule (one file per pipeline stage):
//!
//! 1. [`complete`] — finish in-flight instructions, publish values, verify
//!    branch outcomes and indirect targets (registering faults);
//! 2. [`retire`] — commit the head trace when every slot has completed;
//! 3. [`recovery`] — start/apply misprediction recoveries (oldest first),
//!    including FGCI/CGCI preservation decisions and squashes;
//! 4. [`fetch`] — predict the next trace, probe the trace cache, construct
//!    missing traces through the instruction cache;
//! 5. [`dispatch`] — rename and allocate one trace per cycle to a PE (or run
//!    one step of a re-dispatch pass — the dispatch bus is shared; the pass
//!    itself lives in [`redispatch`]);
//! 6. [`issue`] — select up to four ready instructions per PE and begin
//!    execution (values are computed here: the simulator is
//!    execution-driven, wrong paths execute for real);
//! 7. [`buses`] — arbitrate the shared cache buses (ARB/data cache access,
//!    store snooping) and global result buses (inter-PE value bypass).
//!
//! This module owns [`TraceProcessor`], its public API ([`RunResult`],
//! [`SimError`]), all cross-stage bookkeeping state, and the per-cycle
//! [`CycleCtx`] handed to each stage by [`TraceProcessor::step_cycle`].

mod buses;
mod complete;
mod dispatch;
mod fetch;
mod issue;
mod recovery;
mod redispatch;
mod retire;

#[cfg(test)]
mod tests;

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use tp_cache::{Arb, DCache, ICache, SeqHandle, TraceCache};
use tp_isa::func::{ArchState, Machine};
use tp_isa::{Pc, Program, Reg, Word};
use tp_predict::{Btb, NextTracePredictor, Ras, TraceHistory};
use tp_trace::{Bit, EndReason, Selector, Trace};

use crate::config::TraceProcessorConfig;
use crate::pe::{FetchSource, Pe, SlotState};
use crate::pe_list::PeList;
use crate::physreg::{PhysRegFile, PhysRegId, RenameMap};
use crate::stats::SimStats;

/// Errors terminating a simulation abnormally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// No instruction retired for the configured number of cycles.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Human-readable window dump.
        detail: String,
    },
    /// Committed state diverged from the functional oracle
    /// (only with [`TraceProcessorConfig::verify_with_oracle`]).
    OracleMismatch {
        /// Cycle of the divergence.
        cycle: u64,
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, detail } => {
                write!(f, "deadlock at cycle {cycle}: {detail}")
            }
            SimError::OracleMismatch { cycle, detail } => {
                write!(f, "oracle mismatch at cycle {cycle}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of [`TraceProcessor::run`].
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Whether the program executed its `Halt`.
    pub halted: bool,
    /// Statistics at the end of the run.
    pub stats: SimStats,
}

/// Per-cycle context handed to every pipeline stage by
/// [`TraceProcessor::step_cycle`]. The simulated clock only advances
/// between cycles, so stages read the cycle number from here rather than
/// re-deriving it from mutable simulator state.
#[derive(Clone, Copy, Debug)]
struct CycleCtx {
    /// The current cycle.
    now: u64,
}

/// What PC the frontend expects to fetch next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ExpectedNext {
    /// Certain: a static fall-through or a resolved indirect target. A
    /// next-trace prediction that contradicts it is discarded.
    Known(Pc),
    /// A RAS/BTB guess after an unresolved indirect transfer. Used as the
    /// fallback sequencing point, but the next-trace predictor wins when it
    /// has an opinion (predicting through returns is its whole point).
    Predicted(Pc),
    /// Unknown until recovery or an indirect resolution redirects fetch.
    Stalled,
}

/// Frontend mode: normal tail dispatch, or CGCI insertion before a
/// preserved control-independent trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FetchMode {
    Normal,
    CgciInsert { before: usize, before_gen: u64, reconv_start: Pc, inserted: usize },
}

/// A trace fetched but not yet dispatched (an outstanding trace buffer).
#[derive(Clone, Debug)]
struct Pending {
    trace: Arc<Trace>,
    ready_at: u64,
    hist_before: TraceHistory,
    source: FetchSource,
}

/// Recovery plan decided at fault detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RecoveryPlan {
    Fgci,
    Cgci,
    Full,
}

/// An in-progress branch-misprediction recovery.
#[derive(Clone, Debug)]
struct Recovery {
    pe: usize,
    gen: u64,
    slot: usize,
    repaired: Arc<Trace>,
    ready_at: u64,
    plan: RecoveryPlan,
}

/// A re-dispatch pass over preserved (control independent) traces.
#[derive(Clone, Debug)]
struct RedispatchPass {
    queue: VecDeque<usize>,
    rolling: TraceHistory,
    origin: &'static str,
}

#[derive(Clone, Copy, Debug)]
struct BusReq {
    pe: usize,
    gen: u64,
    slot: usize,
    since: u64,
}

/// The trace processor simulator.
///
/// See the [crate-level example](crate) for typical use.
pub struct TraceProcessor<'p> {
    program: &'p Program,
    cfg: TraceProcessorConfig,
    // Substrates.
    selector: Selector,
    bit: Bit,
    btb: Btb,
    ras: Ras,
    predictor: NextTracePredictor,
    tcache: TraceCache,
    icache: ICache,
    dcache: DCache,
    arb: Arb,
    // Window.
    pes: Vec<Pe>,
    list: PeList,
    pregs: PhysRegFile,
    readers: HashMap<PhysRegId, Vec<(usize, u64, usize)>>,
    current_map: RenameMap,
    /// Architectural rename map of *retired* state: the physical register
    /// holding each architectural register's committed value.
    retired_map: RenameMap,
    // Frontend.
    fetch_hist: TraceHistory,
    retire_hist: TraceHistory,
    fetch_queue: VecDeque<Pending>,
    expected: ExpectedNext,
    mode: FetchMode,
    construction_busy_until: u64,
    recovery: Option<Recovery>,
    redispatch: Option<RedispatchPass>,
    // Buses.
    cache_bus_queue: VecDeque<BusReq>,
    result_bus_queue: VecDeque<BusReq>,
    // Architectural state.
    arch_regs: [Word; Reg::COUNT],
    oracle: Option<Machine<'p>>,
    // Time.
    now: u64,
    last_retire_cycle: u64,
    halted: bool,
    stats: SimStats,
}

impl<'p> TraceProcessor<'p> {
    /// Creates a simulator for `program`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`TraceProcessorConfig::validate`]).
    pub fn new(program: &'p Program, cfg: TraceProcessorConfig) -> TraceProcessor<'p> {
        cfg.validate();
        let mut pregs = PhysRegFile::new();
        // Architectural registers start as ready physical registers.
        let mut arch_map = [PhysRegId::ZERO; Reg::COUNT];
        for r in Reg::all().skip(1) {
            arch_map[r.index()] = pregs.alloc_ready(0);
        }
        let hist = TraceHistory::new(cfg.predictor.path_depth);
        let pes = (0..cfg.num_pes).map(|_| Pe::empty(hist.clone())).collect();
        let oracle = cfg.verify_with_oracle.then(|| Machine::new(program));
        TraceProcessor {
            program,
            selector: Selector::new(cfg.selection),
            bit: Bit::new(cfg.bit_entries, cfg.bit_ways),
            btb: Btb::new(cfg.btb_entries),
            ras: Ras::new(cfg.ras_depth),
            predictor: NextTracePredictor::new(cfg.predictor),
            tcache: TraceCache::new(cfg.tcache_sets, cfg.tcache_ways),
            icache: ICache::paper(),
            dcache: DCache::paper(),
            arb: Arb::new(program.data()),
            pes,
            list: PeList::new(cfg.num_pes),
            pregs,
            readers: HashMap::new(),
            current_map: arch_map,
            retired_map: arch_map,
            fetch_hist: hist.clone(),
            retire_hist: hist,
            fetch_queue: VecDeque::new(),
            expected: ExpectedNext::Known(program.entry()),
            mode: FetchMode::Normal,
            construction_busy_until: 0,
            recovery: None,
            redispatch: None,
            cache_bus_queue: VecDeque::new(),
            result_bus_queue: VecDeque::new(),
            arch_regs: [0; Reg::COUNT],
            oracle,
            now: 0,
            last_retire_cycle: 0,
            halted: false,
            stats: SimStats::default(),
            cfg,
        }
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &TraceProcessorConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Committed architectural state (registers plus memory), normalized for
    /// comparison with [`Machine::arch_state`].
    pub fn arch_state(&self) -> ArchState {
        ArchState { regs: self.arch_regs, mem: self.arb.arch_mem() }
    }

    /// Whether the program's `Halt` has retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Runs until the program halts or `max_instrs` instructions retire.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if no instruction retires for the
    /// configured watchdog window, or [`SimError::OracleMismatch`] when
    /// oracle verification is enabled and committed state diverges.
    pub fn run(&mut self, max_instrs: u64) -> Result<RunResult, SimError> {
        while !self.halted && self.stats.retired_instrs < max_instrs {
            self.step_cycle()?;
            if self.now - self.last_retire_cycle > self.cfg.deadlock_cycles {
                return Err(SimError::Deadlock { cycle: self.now, detail: self.dump_window() });
            }
        }
        Ok(RunResult { halted: self.halted, stats: self.stats })
    }

    /// Advances the simulation by one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OracleMismatch`] under oracle verification.
    pub fn step_cycle(&mut self) -> Result<(), SimError> {
        let ctx = CycleCtx { now: self.now };
        self.complete_stage(&ctx);
        self.paranoid_check("complete");
        self.retire_stage(&ctx)?;
        self.paranoid_check("retire");
        self.recovery_stage(&ctx);
        self.paranoid_check("recovery");
        self.fetch_stage(&ctx);
        self.paranoid_check("fetch");
        self.dispatch_stage(&ctx);
        self.paranoid_check("dispatch");
        self.issue_stage(&ctx);
        self.bus_stage(&ctx);
        self.now += 1;
        self.stats.cycles = self.now;
        Ok(())
    }

    /// Window-wide rename invariant: a trace's `map_before` must never
    /// reference a physical register produced by that trace or any younger
    /// trace. Gated behind `TP_PARANOID` because it is O(window^2).
    fn paranoid_check(&self, stage: &str) {
        if std::env::var("TP_PARANOID").is_err() {
            return;
        }
        let order: Vec<usize> = self.list.iter().collect();
        for (qi, &q) in order.iter().enumerate() {
            for r in Reg::all().skip(1) {
                let preg = self.pes[q].map_before[r.index()];
                for &younger in &order[qi..] {
                    for (si, sl) in self.pes[younger].slots.iter().enumerate() {
                        if sl.dest == Some(preg) {
                            panic!(
                                "cycle {} after {stage}: pe{q} map_before[{r}] = {preg:?} \
                                 is produced by pe{younger} slot {si} (not older)\n{}",
                                self.now,
                                self.dump_window()
                            );
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Helpers shared by multiple stages.

    fn handle(pe: usize, slot: usize) -> SeqHandle {
        SeqHandle(((pe as u64) << 8) | slot as u64)
    }

    /// Logical memory-order key of a sequence handle, derived from the PE
    /// linked list (the paper's physical-to-logical translation). Handles
    /// whose PE has left the window (a retired store that supplied a load's
    /// data, or a squashed store whose undo-triggered reissue has not run
    /// yet) rank as architectural memory — older than everything live.
    fn seq_key(&self, h: SeqHandle) -> u64 {
        let pe = (h.0 >> 8) as usize;
        let slot = h.0 & 0xff;
        if !self.list.contains(pe) {
            return 0;
        }
        // +1 so that key 0 is reserved for "architectural memory".
        ((self.list.logical(pe) + 1) << 8) | slot
    }

    fn dump_window(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "mode={:?} recovery={:?} expected={:?} queue={} ",
            self.mode,
            self.recovery.as_ref().map(|r| (r.pe, r.slot, r.ready_at)),
            self.expected,
            self.fetch_queue.len()
        );
        for pe in self.list.iter() {
            let p = &self.pes[pe];
            let waiting = p.slots.iter().filter(|s| s.state == SlotState::Waiting).count();
            let done = p.slots.iter().filter(|s| s.state == SlotState::Done).count();
            let _ = write!(
                s,
                "| pe{pe} {} len={} done={done} waiting={waiting} fault={:?} ",
                p.trace.id(),
                p.slots.len(),
                p.first_fault()
            );
            for (i, sl) in p.slots.iter().enumerate() {
                if sl.state != SlotState::Done || sl.pending_reissue {
                    let vals: Vec<(u32, Word, bool)> = sl
                        .srcs
                        .iter()
                        .flatten()
                        .map(|&pp| {
                            let r = self.pregs.get(pp);
                            (pp.0, r.value, r.ready)
                        })
                        .collect();
                    let _ = write!(
                        s,
                        "[slot {i} {:?} state={:?} pr={} nb={} iss={} srcs={vals:?}] ",
                        sl.ti.inst, sl.state, sl.pending_reissue, sl.not_before, sl.issues
                    );
                }
            }
        }
        s
    }

    fn register_reader(&mut self, preg: PhysRegId, pe: usize, slot: usize) {
        if preg == PhysRegId::ZERO {
            return;
        }
        let gen = self.pes[pe].gen;
        self.readers.entry(preg).or_default().push((pe, gen, slot));
    }

    /// Marks every live consumer of `preg` for selective reissue.
    fn propagate_value_change(&mut self, preg: PhysRegId, not_before: u64) {
        let Some(list) = self.readers.get_mut(&preg) else { return };
        let entries = std::mem::take(list);
        let mut kept = Vec::with_capacity(entries.len());
        for (pe, gen, slot) in entries {
            let p = &mut self.pes[pe];
            if p.occupied && p.gen == gen && slot < p.slots.len() {
                // Only reissue if this slot still actually reads the preg.
                if p.slots[slot].srcs.iter().flatten().any(|&s| s == preg) {
                    p.slots[slot].mark_reissue(not_before);
                    kept.push((pe, gen, slot));
                }
            }
        }
        *self.readers.entry(preg).or_default() = kept;
    }

    /// Rebuilds the speculative fetch history as of the end of the current
    /// window: the tail trace's checkpointed history plus the tail itself.
    /// (Using the checkpoints keeps histories at full path depth — a
    /// history built from the surviving window alone would be shorter than
    /// the retirement-side training contexts, and the path-based predictor
    /// would tag-miss after every squash.)
    fn rebuild_history(&self) -> TraceHistory {
        match self.list.tail() {
            Some(t) => {
                let mut h = self.pes[t].hist_before.clone();
                h.push(self.pes[t].trace.id());
                h
            }
            None => self.retire_hist.clone(),
        }
    }

    /// Expected fetch PC following the trace in `pe`.
    fn expected_after_pe(&self, pe: usize) -> ExpectedNext {
        let trace = &self.pes[pe].trace;
        match trace.end() {
            EndReason::MaxLen | EndReason::Ntb => {
                ExpectedNext::Known(trace.next_pc().expect("static end has next"))
            }
            EndReason::Indirect => {
                let last = self.pes[pe].slots.len() - 1;
                let s = &self.pes[pe].slots[last];
                if s.state == SlotState::Done {
                    match s.indirect_target {
                        Some(t) if t >= 0 && self.program.contains(t as Pc) => {
                            ExpectedNext::Known(t as Pc)
                        }
                        _ => ExpectedNext::Stalled,
                    }
                } else {
                    match trace.next_pc() {
                        Some(t) => ExpectedNext::Predicted(t),
                        None => ExpectedNext::Stalled,
                    }
                }
            }
            EndReason::Halt | EndReason::OutOfProgram => ExpectedNext::Stalled,
        }
    }

    fn expected_after_tail(&self) -> ExpectedNext {
        match self.list.tail() {
            Some(t) => self.expected_after_pe(t),
            None => ExpectedNext::Stalled,
        }
    }
}

impl fmt::Debug for TraceProcessor<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceProcessor")
            .field("cycle", &self.now)
            .field("halted", &self.halted)
            .field("window", &self.list.len())
            .field("retired", &self.stats.retired_instrs)
            .finish()
    }
}
