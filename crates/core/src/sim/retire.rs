//! Pipeline stage 2: **retirement** — commit the head trace.
//!
//! Implements trace-at-a-time commit (§2): when every slot of the head
//! trace has completed, its register results are written to architectural
//! state, its stores are committed through the ARB, the conditional-branch
//! predictor is trained, and the trace-level predictor/trace cache are
//! updated with the *actual* trace. Under
//! [`TraceProcessorConfig::verify_with_oracle`] every retiring instruction
//! is checked against the functional oracle — per-instruction PC,
//! committed store address/value against the oracle's memory, and
//! per-trace register state. The stage also contains the repair safety
//! nets for recovery corner cases (§3/§4): re-grounding the head's
//! live-ins to retired state, squashing a head that does not continue the
//! committed frontier, and squashing an inconsistent tail left behind by
//! an abandoned CGCI insertion.
//!
//! **Mutates:** architectural registers and the retired rename map, the
//! ARB (store commit), predictors and trace cache (training/fill), the PE
//! list and the freed PE, statistics, and — through the safety nets — the
//! fetch queue/history/mode and slot rename state.

use super::*;
use tp_isa::Inst;
use tp_trace::OperandRef;

impl TraceProcessor<'_> {
    pub(super) fn retire_stage(&mut self, ctx: &CycleCtx) -> Result<(), SimError> {
        let Some(head) = self.list.head() else { return Ok(()) };
        self.reground_head(head, ctx);
        let p = &self.pes[head];
        if !p.occupied {
            return Ok(());
        }
        if !p.all_complete() {
            self.emit_head_stall(ctx.now, head, tp_events::StallReason::Incomplete);
            return Ok(());
        }
        // A head targeted by an in-flight recovery cannot retire.
        if let Some(rec) = &self.recovery {
            if rec.pe == head {
                self.emit_head_stall(ctx.now, head, tp_events::StallReason::Recovery);
                return Ok(());
            }
        }
        // A head awaiting a re-dispatch pass cannot retire.
        if let Some(pass) = &self.redispatch {
            if pass.queue.contains(&head) {
                self.emit_head_stall(ctx.now, head, tp_events::StallReason::Redispatch);
                return Ok(());
            }
        }
        // The preserved CI trace cannot retire while CGCI insertion is
        // still placing control-dependent traces before it.
        if let FetchMode::CgciInsert { before, .. } = self.mode {
            if before == head {
                self.emit_head_stall(ctx.now, head, tp_events::StallReason::CgciInsert);
                return Ok(());
            }
        }
        // Safety net: the head must continue the committed path. A
        // recovery-corner sequence (e.g. an indirect fault whose correct
        // successor was later squashed by an abandoned CGCI attempt) can
        // promote stale wrong-path residue to the head position; its
        // predecessors retired, so no successor check upstream can see it
        // any more. Committing it would teleport the architectural
        // frontier — squash the whole window and refetch from the frontier
        // instead.
        if !self.halted && self.pes[head].trace.id().start() != self.retired_next_pc {
            self.stats.full_squashes += 1;
            let victims: Vec<usize> = self.list.iter().collect();
            for v in victims {
                self.squash_pe(v);
            }
            self.fetch_queue.clear();
            self.redispatch = None;
            self.recovery = None;
            self.set_mode(FetchMode::Normal);
            self.fetch_hist = self.rebuild_history();
            self.current_map = self.retired_map;
            self.expected = ExpectedNext::Known(self.retired_next_pc);
            return Ok(());
        }
        // Safety net: the head must be followed by a consistent successor.
        // An abandoned CGCI insertion (e.g. preempted by a younger recovery)
        // can leave a stale boundary in the window; discovering it here
        // squashes the inconsistent tail and refetches.
        if let Some(next) = self.list.next(head) {
            let start = self.pes[next].trace.id().start();
            if !self.successor_consistent(head, start) {
                self.stats.full_squashes += 1;
                let victims: Vec<usize> = self.list.iter_after(head).collect();
                for v in victims {
                    self.squash_pe(v);
                }
                self.fetch_queue.clear();
                self.redispatch = None;
                self.set_mode(FetchMode::Normal);
                self.fetch_hist = self.rebuild_history();
                self.current_map = self.pes[head].map_after;
                self.expected = self.expected_after_pe(head);
                return Ok(());
            }
        }
        self.retire_pe(head)
    }

    /// The head trace has nothing older than retired state: every live-in
    /// must be bound to the retired architectural registers. Recovery corner
    /// cases (e.g. a CGCI insertion abandoned after its control-dependent
    /// traces were squashed) can leave stale bindings; re-grounding the head
    /// restores them and selectively reissues affected instructions —
    /// without it the head could wait forever on a squashed producer.
    fn reground_head(&mut self, head: usize, ctx: &CycleCtx) {
        if !self.pes[head].occupied {
            return;
        }
        let retired_map = self.retired_map;
        let gen = self.pes[head].gen;
        let now = ctx.now;
        let mut rebound: Vec<(PhysRegId, usize)> = Vec::new();
        let mut requeue: Vec<usize> = Vec::new();
        {
            let slots = &mut self.pes[head].slots;
            for (i, slot) in slots.iter_mut().enumerate() {
                let tis = slot.ti.srcs;
                let mut changed = false;
                for (k, &(_, oref)) in tis.iter().flatten().enumerate() {
                    if let OperandRef::LiveIn(r) = oref {
                        if r.is_zero() {
                            continue;
                        }
                        let want = retired_map[r.index()];
                        if slot.srcs[k] != Some(want) {
                            slot.srcs[k] = Some(want);
                            changed = true;
                            rebound.push((want, i));
                        }
                    }
                }
                if changed {
                    requeue.push(i);
                }
            }
        }
        if rebound.is_empty() {
            return;
        }
        self.stats.head_rebinds += rebound.len() as u64;
        for (preg, i) in rebound {
            self.readers.entry(preg).or_default().push((head, gen, i));
            self.reader_count += 1;
        }
        // Rebound live-ins re-enter the wakeup index (retired registers
        // are always produced, so these become issue candidates at once).
        for i in requeue {
            self.rebind_reissue_slot(head, i, now + 1);
        }
        // The map chain after the head starts from its (possibly corrected)
        // map; recompute map_before/map_after so later re-dispatch passes
        // chain correctly.
        let trace = self.pes[head].trace.clone();
        let mut map_before = self.pes[head].map_before;
        for r in trace.live_ins() {
            map_before[r.index()] = retired_map[r.index()];
        }
        self.pes[head].map_before = map_before;
        let mut map_after = map_before;
        for r in trace.live_outs() {
            let w = trace.last_writer(*r).expect("live-out has a writer");
            map_after[r.index()] = self.pes[head].slots[w].dest.expect("writer has a destination");
        }
        self.pes[head].map_after = map_after;
    }

    fn retire_pe(&mut self, pe: usize) -> Result<(), SimError> {
        let trace = self.pes[pe].trace.clone();
        // Commit in slot order: registers then stores.
        for slot in 0..self.pes[pe].slots.len() {
            let (dest_arch, value, is_store, addr, outcome, pc, inst) = {
                let s = &self.pes[pe].slots[slot];
                (
                    s.ti.dest,
                    s.value,
                    matches!(s.ti.inst, Inst::Store { .. }),
                    s.mem_addr,
                    s.outcome,
                    s.ti.pc,
                    s.ti.inst,
                )
            };
            if let Some(r) = dest_arch {
                self.arch_regs[r.index()] = value;
                let preg = self.pes[pe].slots[slot].dest.expect("dest register allocated");
                self.retired_map[r.index()] = preg;
            }
            if is_store {
                let addr = addr.expect("completed store has an address");
                let h = Self::handle(pe, slot);
                self.arb.commit(addr, h);
                self.demote_committed_source(addr, h);
            }
            if inst.is_cond_branch() {
                let taken = outcome.expect("completed branch has an outcome");
                self.btb.update_cond(pc, taken);
                self.stats.retired_cond_branches += 1;
                if self.pes[pe].slots[slot].was_mispredicted {
                    self.stats.retired_cond_mispredicts += 1;
                    // Retirement-side attribution: the per-class `retired`
                    // counts sum to `retired_cond_mispredicts` exactly.
                    let s = &self.pes[pe].slots[slot];
                    let key = s.attr.unwrap_or((
                        s.ti.ci_branch_class().expect("mispredicted slot is a cond branch"),
                        tp_stats::attr::Heuristic::None,
                        tp_stats::attr::RecoveryOutcome::FullSquash,
                    ));
                    self.attribution.cell_mut(key).retired += 1;
                    // Retiring under a still-pending CGCI attempt: the
                    // count above used the provisional outcome; flag it so
                    // resolution can migrate it if the attempt fails.
                    let dispatched_at = self.pes[pe].dispatched_at;
                    if let Some(p) = self.cgci_pending.as_mut() {
                        if p.fault == (pe, slot, pc) && p.fault_dispatched_at == dispatched_at {
                            p.retired_provisionally = true;
                        }
                    }
                }
            }
            // Oracle verification, one instruction at a time.
            if let Some(oracle) = &mut self.oracle {
                let step = oracle.step().map_err(|e| SimError::OracleMismatch {
                    cycle: self.now,
                    detail: format!("oracle left program: {e}"),
                })?;
                if step.pc != pc {
                    return Err(SimError::OracleMismatch {
                        cycle: self.now,
                        detail: format!(
                            "retired pc {pc} but oracle executed pc {} (trace {})",
                            step.pc,
                            trace.id()
                        ),
                    });
                }
                // Memory commits are verified here, store by store — a
                // wrong committed store would otherwise stay silent until
                // an arbitrarily-later load reads it back (the per-trace
                // register check cannot see it).
                if is_store {
                    let committed = addr.expect("completed store has an address");
                    let oracle_ea = step.ea.unwrap_or(u64::MAX);
                    if committed >> 3 != oracle_ea >> 3 {
                        return Err(SimError::OracleMismatch {
                            cycle: self.now,
                            detail: format!(
                                "store at pc {pc} committed word {:#x} but oracle wrote {:#x} \
                                 (trace {})",
                                committed >> 3,
                                oracle_ea >> 3,
                                trace.id()
                            ),
                        });
                    }
                    let oracle_val = oracle.mem_word(oracle_ea);
                    if oracle_val != value {
                        return Err(SimError::OracleMismatch {
                            cycle: self.now,
                            detail: format!(
                                "store at pc {pc} committed value {value} but oracle wrote \
                                 {oracle_val} (trace {})",
                                trace.id()
                            ),
                        });
                    }
                }
            }
        }
        if let Some(oracle) = &self.oracle {
            for r in Reg::all() {
                if oracle.reg(r) != self.arch_regs[r.index()] {
                    return Err(SimError::OracleMismatch {
                        cycle: self.now,
                        detail: format!(
                            "after trace {}: {r} committed {} but oracle has {} (oracle retired \
                             {} halted {}, sim retired {})",
                            trace.id(),
                            self.arch_regs[r.index()],
                            oracle.reg(r),
                            oracle.retired(),
                            oracle.halted(),
                            self.stats.retired_instrs
                        ),
                    });
                }
            }
        }
        // Advance the retired architectural frontier — the PC a functional
        // machine resuming after this trace would fetch next. Retired
        // traces are on the committed path, so an indirect ending has a
        // resolved target and a static ending a known fall-out PC
        // (`OutOfProgram` traces exist only on wrong paths and never
        // retire).
        self.retired_next_pc = match trace.end() {
            EndReason::Halt => self.retired_next_pc,
            EndReason::Indirect => {
                let last = self.pes[pe].slots.last().expect("trace is non-empty");
                last.indirect_target.expect("retired indirect transfer has a target") as Pc
            }
            _ => trace.next_pc().expect("static end has next"),
        };
        // Train the trace-level predictor with the canonical (actual) trace.
        self.predictor.train(&self.retire_hist, trace.id());
        self.retire_hist.push(trace.id());
        self.tcache.fill(trace.clone());
        // Statistics.
        self.stats.retired_traces += 1;
        self.stats.retired_instrs += self.pes[pe].slots.len() as u64;
        if self.events.wants(Category::Trace) {
            self.events.emit(
                self.now,
                Event::TraceRetired {
                    pe: pe as u8,
                    pc: trace.id().start(),
                    len: self.pes[pe].slots.len().min(255) as u8,
                },
            );
        }
        if self.pes[pe].source != FetchSource::Fallback {
            self.stats.predicted_traces += 1;
        }
        if self.pes[pe].repairs > 0 {
            self.stats.trace_mispredictions += 1;
        }
        self.last_retire_cycle = self.now;
        if trace.end() == EndReason::Halt {
            self.halted = true;
        }
        // Retirement writes values back to the global register file: they
        // become visible to every PE even if a result-bus grant was still
        // pending (the grant request dies with the generation bump below).
        for slot in 0..self.pes[pe].slots.len() {
            if let Some(d) = self.pes[pe].slots[slot].dest {
                let now = self.now;
                let r = self.pregs.get_mut(d);
                r.global_ready_at = r.global_ready_at.min(now);
                r.local_ready_at = r.local_ready_at.min(now);
            }
        }
        // Free the PE. The gen bump invalidates its wakeup-index entries;
        // a fully-complete trace holds no ready bits to clear, but reset
        // defensively to keep the positional mask invariant unconditional.
        if self.paranoid {
            assert_eq!(self.wakeup.ready[pe], 0, "retiring pe{pe} with ready bits set");
        }
        self.index_reset_pe(pe);
        self.list.remove(pe);
        self.pes[pe].occupied = false;
        self.pes[pe].gen += 1;
        Ok(())
    }
}
