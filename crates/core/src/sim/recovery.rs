//! Pipeline stage 3: **misprediction recovery** — FGCI/CGCI repair and
//! squashing.
//!
//! Implements the paper's selective recovery machinery: fine-grain control
//! independence (§3, FGCI — the mispredicted branch's alternate path is
//! already embedded in the trace, so repair happens entirely within one PE
//! and *all* younger traces are preserved) and coarse-grain control
//! independence (§4, CGCI — the `RET`/`MLB-RET` heuristics locate a
//! re-convergent trace in the window; control-dependent traces between the
//! branch and that trace are squashed and re-fetched while the
//! control-independent suffix is preserved). Recovery is always oldest
//! fault first; an older fault preempts an in-flight repair. Trace repair
//! re-selects the faulting trace with the branch's actual outcome and
//! models the construction-engine latency of refetching the new suffix.
//! Data-side repair (undoing speculative stores, selective reissue of
//! rebound consumers) rides along via `replace_trace`/`squash_pe`.
//!
//! **Mutates:** the in-flight [`Recovery`], PE slots/traces/rename maps of
//! the repaired PE, squashed PEs and the PE list, the ARB (store undo), the
//! BIT (re-selection), the fetch queue/history/mode/expectation, reader
//! registrations, bus request queues, and statistics.

use super::*;
use crate::config::CgciHeuristic;
use crate::pe::{Fault, Slot};
use tp_isa::Inst;
use tp_stats::attr::{BranchClass, Heuristic};
use tp_trace::{OperandRef, OutcomeSource, TraceId};

impl TraceProcessor<'_> {
    /// `(a_pe, a_slot)` strictly older than `(b_pe, b_slot)` in program
    /// order?
    fn older(&self, a: (usize, usize), b: (usize, usize)) -> bool {
        if a.0 == b.0 {
            return a.1 < b.1;
        }
        self.list.logical(a.0) < self.list.logical(b.0)
    }

    /// The oldest *actionable* fault in the window.
    ///
    /// Under a CI model, recovery preserves completed work near the
    /// mispredicted branch, so value changes ripple through preserved
    /// slots and can make a branch resolve transiently wrong on
    /// mixed stale/fresh operands. Acting on such a fault starts a bogus
    /// repair (occupying the construction engine) and counts a phantom
    /// misprediction. The debounce: a fault is actionable only once the
    /// branch and its transitive *intra-trace* producers have settled
    /// (completed with no pending reissue) — i.e. the outcome was computed
    /// from its final local inputs. The base machine squashes everything
    /// younger than a fault, has no preserved-value ripple, and keeps the
    /// paper's act-at-detection behaviour.
    fn oldest_fault(&self) -> Option<(usize, usize)> {
        let debounce = self.cfg.fgci || self.cfg.cgci.is_some();
        for pe in self.list.iter() {
            if let Some(slot) = self.pes[pe].first_fault() {
                if !debounce || self.fault_inputs_settled(pe, slot) {
                    return Some((pe, slot));
                }
                // Not settled: skip this PE's fault for now (it re-raises
                // or clears when the ripple finishes) but keep scanning —
                // an already-settled younger fault must not starve.
            }
        }
        None
    }

    /// Whether a faulting slot and every intra-trace producer it
    /// (transitively) reads have settled: completed, with no reissue
    /// pending. `OperandRef::Local` references point strictly backward, so
    /// one reverse pass over a slot-index bitmask closes the set.
    fn fault_inputs_settled(&self, pe: usize, slot: usize) -> bool {
        let slots = &self.pes[pe].slots;
        let settled = |s: &Slot| s.state == SlotState::Done && !s.pending_reissue;
        if !settled(&slots[slot]) {
            return false;
        }
        let locals = |s: &Slot| {
            s.ti.srcs
                .iter()
                .flatten()
                .filter_map(
                    |&(_, oref)| {
                        if let OperandRef::Local(j) = oref {
                            Some(j as u64)
                        } else {
                            None
                        }
                    },
                )
                .fold(0u64, |m, j| m | 1 << j)
        };
        let mut need = locals(&slots[slot]);
        for i in (0..slot).rev() {
            if need >> i & 1 == 1 {
                if !settled(&slots[i]) {
                    return false;
                }
                need |= locals(&slots[i]);
            }
        }
        true
    }

    pub(super) fn recovery_stage(&mut self, ctx: &CycleCtx) {
        // Validate the active recovery (its PE may have been squashed by an
        // older recovery preempting it).
        if let Some(rec) = &self.recovery {
            let p = &self.pes[rec.pe];
            if !p.occupied || p.gen != rec.gen || !self.list.contains(rec.pe) {
                self.recovery = None;
            }
        }
        let oldest = self.oldest_fault();
        match (&self.recovery, oldest) {
            (Some(rec), Some(f)) if self.older(f, (rec.pe, rec.slot)) => {
                // An older fault preempts the in-flight recovery.
                self.recovery = None;
                self.start_recovery(f.0, f.1);
            }
            (Some(_), _) => {
                let rec = self.recovery.clone().expect("checked above");
                if ctx.now >= rec.ready_at {
                    self.recovery = None;
                    self.apply_recovery(rec);
                }
            }
            (None, Some(f)) => self.start_recovery(f.0, f.1),
            (None, None) => {}
        }
    }

    fn start_recovery(&mut self, pe: usize, slot: usize) {
        let fault = self.pes[pe].slots[slot].fault.expect("fault present");
        match fault {
            Fault::Indirect { actual } => {
                // The trace itself is correct; its successors are not.
                // Squash everything younger and redirect fetch.
                self.stats.trace_mispredictions += 1;
                self.stats.full_squashes += 1;
                if self.events.wants(Category::Recovery) {
                    let branch_pc = self.pes[pe].slots[slot].ti.pc;
                    self.events.emit(
                        self.now,
                        Event::RecoveryStarted {
                            pe: pe as u8,
                            branch_pc,
                            plan: tp_events::RecoveryPlan::FullSquash,
                        },
                    );
                }
                let victims: Vec<usize> = self.list.iter_after(pe).collect();
                for v in victims {
                    self.squash_pe(v);
                }
                self.fetch_queue.clear();
                // An in-flight re-dispatch pass may still owe rename walks
                // to surviving traces at or before this one; carry that
                // debt instead of dropping it (see `resume_walk_debt`).
                if !self.resume_walk_debt(pe, Vec::new(), "repair-debt", None) {
                    self.redispatch = None;
                    self.current_map = self.pes[pe].map_after;
                }
                self.set_mode(FetchMode::Normal);
                self.pes[pe].slots[slot].fault = None;
                self.fetch_hist = self.rebuild_history();
                self.expected = match actual {
                    Some(t) => ExpectedNext::Known(t),
                    None => ExpectedNext::Stalled,
                };
            }
            Fault::CondBranch { actual } => {
                let ti = self.pes[pe].slots[slot].ti;
                let class = ti.ci_branch_class().expect("cond-branch fault classifies");
                let repaired = self.repair_trace(pe, slot, actual);
                // Construction timing: refetch the repaired *middle*
                // through the instruction cache, one basic block per
                // cycle. A common suffix preserved by a CI model's repair
                // (see `replace_trace`) is never rebuilt, so it is not
                // charged.
                let prefix_len = (slot + 1).min(repaired.len());
                let suffix = self.common_suffix_len(pe, prefix_len, &repaired);
                let cycles =
                    self.construction_cycles_span(&repaired, slot, repaired.len() - suffix);
                let ready_at = self.now.max(self.construction_busy_until) + cycles as u64;
                self.construction_busy_until = ready_at;
                // Decide the recovery plan now; squash at detection.
                let covered = self.cfg.fgci && ti.fgci_covered;
                let (plan, attr) = if covered {
                    // Event and occupancy are recorded at apply time, when
                    // the fault is confirmed still standing (a transient
                    // fault's abandoned repair is not an FGCI recovery).
                    let key = (class, Heuristic::Fgci, RecoveryOutcome::FgciRepair);
                    (RecoveryPlan::Fgci, key)
                } else if let Some((reconv, matched, victims)) = self.viable_reconv(pe, slot) {
                    self.stats.cgci_attempts += 1;
                    self.check_reconv_oracle(ti.pc, matched, self.pes[reconv].trace.id().start());
                    // Squash strictly between the faulting PE and the first
                    // control independent trace.
                    let squashed = victims.len() as u64;
                    for v in victims {
                        self.squash_pe(v);
                    }
                    self.fetch_queue.clear();
                    self.redispatch = None;
                    let gen = self.pes[reconv].gen;
                    // The attempt's outcome is provisional until fetch
                    // detects re-convergence or the insertion is torn down.
                    let key = (class, matched, RecoveryOutcome::CgciReconverged);
                    self.set_mode(FetchMode::CgciInsert {
                        before: reconv,
                        before_gen: gen,
                        reconv_start: self.pes[reconv].trace.id().start(),
                        inserted: 0,
                    });
                    self.cgci_pending = Some(CgciPending {
                        attr: key,
                        fault: (pe, slot, ti.pc),
                        fault_dispatched_at: self.pes[pe].dispatched_at,
                        started_at: self.now,
                        reconv_pc: self.pes[reconv].trace.id().start(),
                        squashed,
                        retired_provisionally: false,
                    });
                    // The attempt is charged to the ledger at resolution
                    // (`resolve_cgci`, which emits the matching close).
                    if self.events.wants(Category::Cgci) {
                        let reconv_pc = self.pes[reconv].trace.id().start();
                        self.events.emit(
                            self.now,
                            Event::CgciOpened {
                                class,
                                heuristic: matched,
                                branch_pc: ti.pc,
                                reconv_pc,
                            },
                        );
                    }
                    (RecoveryPlan::Cgci, key)
                } else {
                    self.stats.full_squashes += 1;
                    let victims: Vec<usize> = self.list.iter_after(pe).collect();
                    let key = (class, self.consulted_heuristic(class), RecoveryOutcome::FullSquash);
                    let cell = self.attribution.cell_mut(key);
                    cell.events += 1;
                    cell.traces_squashed += victims.len() as u64;
                    cell.recovery_cycles += ready_at - self.now;
                    for v in victims {
                        self.squash_pe(v);
                    }
                    self.fetch_queue.clear();
                    self.redispatch = None;
                    self.set_mode(FetchMode::Normal);
                    (RecoveryPlan::Full, key)
                };
                if plan == RecoveryPlan::Fgci {
                    // FGCI leaves the window untouched, but pending fetches
                    // were predicted under a stale history.
                    self.fetch_queue.clear();
                }
                if self.events.wants(Category::Recovery) {
                    let event_plan = match plan {
                        RecoveryPlan::Fgci => tp_events::RecoveryPlan::Fgci,
                        RecoveryPlan::Cgci => tp_events::RecoveryPlan::Cgci,
                        RecoveryPlan::Full => tp_events::RecoveryPlan::FullSquash,
                    };
                    self.events.emit(
                        self.now,
                        Event::RecoveryStarted { pe: pe as u8, branch_pc: ti.pc, plan: event_plan },
                    );
                }
                let gen = self.pes[pe].gen;
                let started_at = self.now;
                self.recovery =
                    Some(Recovery { pe, gen, slot, repaired, ready_at, plan, attr, started_at });
            }
        }
    }

    /// The CGCI heuristic primarily consulted for a misprediction of
    /// `class` under the current configuration (ledger labelling for
    /// recoveries where no re-convergent trace was found).
    fn consulted_heuristic(&self, class: BranchClass) -> Heuristic {
        match self.cfg.cgci {
            None => Heuristic::None,
            Some(CgciHeuristic::MlbRet) if class == BranchClass::Backward => Heuristic::Mlb,
            Some(_) => Heuristic::Ret,
        }
    }

    /// Checks one CGCI re-convergence detection against the static
    /// post-dominator oracle (no-op unless
    /// [`TraceProcessorConfig::cfg_oracle`] is on). Every detection must
    /// land in a classified bucket of [`ReconvClass`]; the first
    /// unclassifiable one is recorded and surfaced from `step_cycle` as
    /// [`SimError::OracleMismatch`]. Observation-only: the attempt
    /// proceeds unchanged either way, so enabling the oracle can never
    /// alter simulated behaviour.
    fn check_reconv_oracle(&mut self, branch_pc: Pc, matched: Heuristic, detected: Pc) {
        let Some(oracle) = &self.reconv_oracle else { return };
        let class = oracle.classify(branch_pc, detected);
        self.reconv_oracle_counts[class.index()] += 1;
        if class == ReconvClass::Unclassified && self.reconv_oracle_violation.is_none() {
            self.reconv_oracle_violation = Some(format!(
                "cfg-oracle: CGCI attempt at branch pc {branch_pc} ({} heuristic) detected \
                 re-convergence at pc {detected}, which the static CFG cannot justify \
                 (static ipdom: {:?})",
                matched.label(),
                oracle.reconv_point(branch_pc),
            ));
        }
    }

    /// [`Self::find_reconv`] plus the attempt's profitability bound: the
    /// control-dependent traces to squash, rejected (full squash instead)
    /// when they outnumber [`TraceProcessorConfig::cgci_max_dependent`].
    fn viable_reconv(&self, pe: usize, slot: usize) -> Option<(usize, Heuristic, Vec<usize>)> {
        let (reconv, matched) = self.find_reconv(pe, slot)?;
        let victims: Vec<usize> = self.list.iter_after(pe).take_while(|&q| q != reconv).collect();
        (victims.len() <= self.cfg.cgci_max_dependent).then_some((reconv, matched, victims))
    }

    /// Locates the first assumed control-independent trace after `pe` using
    /// the configured CGCI heuristic, reporting which heuristic matched.
    fn find_reconv(&self, pe: usize, slot: usize) -> Option<(usize, Heuristic)> {
        let heuristic = self.cfg.cgci?;
        let ti = &self.pes[pe].slots[slot].ti;
        if heuristic == CgciHeuristic::MlbRet && ti.inst.is_backward_branch(ti.pc) {
            // MLB: nearest trace starting at the branch's not-taken target.
            let target = ti.pc + 1;
            if let Some(q) =
                self.list.iter_after(pe).find(|&q| self.pes[q].trace.id().start() == target)
            {
                return Some((q, Heuristic::Mlb));
            }
        }
        // RET: the trace following the nearest return-ending trace.
        let ret_pe = self.list.iter_after(pe).find(|&q| self.pes[q].trace.ends_in_return())?;
        self.list.next(ret_pe).map(|q| (q, Heuristic::Ret))
    }

    /// Re-selects the faulting trace with the branch's actual outcome
    /// (prefix outcomes embedded, suffix outcomes from the BTB).
    ///
    /// Under a control-independence model the suffix does better than the
    /// BTB: the selective-recovery hardware (§5) still holds the faulting
    /// trace's suffix slots, so branches the old trace already *resolved*
    /// reuse their resolved outcomes and unresolved ones keep their
    /// original (trace-predictor) embedded predictions. Re-predicting them
    /// with the BTB — as the base machine must, since a full squash
    /// discards the slots — manufactures fresh mispredictions on exactly
    /// the paths control independence is trying to preserve. Outcomes are
    /// matched to the re-selected path by PC with a forward cursor, so
    /// reuse survives the control-flow divergence between the old and new
    /// suffix (e.g. extra loop iterations after a loop-exit flip).
    fn repair_trace(&mut self, pe: usize, slot: usize, actual: bool) -> Arc<Trace> {
        let trace = self.pes[pe].trace.clone();
        let fault_branch_idx =
            trace.insts()[..slot].iter().filter(|ti| ti.inst.is_cond_branch()).count() as u8;
        let id = trace.id();
        let reuse_suffix = self.cfg.fgci || self.cfg.cgci.is_some();
        let suffix_outcomes: Vec<(Pc, bool)> = if reuse_suffix {
            self.pes[pe].slots[slot + 1..]
                .iter()
                .filter_map(|s| {
                    if !s.ti.inst.is_cond_branch() {
                        return None;
                    }
                    match (s.state == SlotState::Done, s.outcome, s.ti.embedded_taken) {
                        (true, Some(resolved), _) => Some((s.ti.pc, resolved)),
                        (_, _, Some(embedded)) => Some((s.ti.pc, embedded)),
                        _ => None,
                    }
                })
                .collect()
        } else {
            Vec::new()
        };
        struct RepairOutcomes<'a> {
            id: TraceId,
            fault_idx: u8,
            actual: bool,
            btb: &'a Btb,
            suffix: &'a [(Pc, bool)],
            cursor: usize,
            ntb: bool,
        }
        impl OutcomeSource for RepairOutcomes<'_> {
            fn cond_outcome(&mut self, index: u8, pc: Pc, inst: Inst) -> bool {
                match index.cmp(&self.fault_idx) {
                    std::cmp::Ordering::Less => self.id.outcome(index),
                    std::cmp::Ordering::Equal => self.actual,
                    std::cmp::Ordering::Greater => {
                        if let Some(hit) =
                            self.suffix[self.cursor..].iter().position(|&(p, _)| p == pc)
                        {
                            let (_, outcome) = self.suffix[self.cursor + hit];
                            self.cursor += hit + 1;
                            outcome
                        } else if self.ntb
                            && inst.is_backward_branch(pc)
                            && self.btb.cond_is_weak(pc)
                        {
                            // Same static backward-taken fallback as trace
                            // construction under `ntb` selection (a
                            // hovering loop-exit counter is a coin flip; a
                            // saturated one is trusted).
                            true
                        } else {
                            self.btb.predict_cond(pc)
                        }
                    }
                }
            }
            fn indirect_target(&mut self, pc: Pc, _inst: Inst) -> Option<Pc> {
                self.btb.predict_indirect(pc)
            }
        }
        // Split field borrows: the selector reads the BTB while mutating
        // the BIT.
        let selector = self.selector;
        let (program, bit, btb) = (self.program, &mut self.bit, &self.btb);
        let mut outcomes = RepairOutcomes {
            id,
            fault_idx: fault_branch_idx,
            actual,
            btb,
            suffix: &suffix_outcomes,
            cursor: 0,
            ntb: self.cfg.selection.ntb,
        };
        let sel = selector.select(program, id.start(), bit, &mut outcomes);
        self.stats.bit_miss_handlers += sel.stats.bit_misses as u64;
        self.stats.bit_miss_cycles += sel.stats.bit_miss_cycles as u64;
        Arc::new(sel.trace)
    }

    fn apply_recovery(&mut self, rec: Recovery) {
        let pe = rec.pe;
        // Abandon if the fault has vanished (outcome flipped back by a
        // selective reissue before the repair finished) or — under a CI
        // model — if the faulting slot went back in flight (its inputs
        // changed, so the repair was built from a transient outcome):
        // re-verification at the slot's next completion decides what
        // happens next. The squashes performed at detection stand — refetch
        // proceeds normally.
        let debounce = self.cfg.fgci || self.cfg.cgci.is_some();
        let stale = self.pes[pe].slots.get(rec.slot).is_none_or(|s| {
            s.fault.is_none() || (debounce && (s.state != SlotState::Done || s.pending_reissue))
        });
        if stale {
            if self.events.wants(Category::Recovery) {
                self.events.emit(self.now, Event::RecoveryAbandoned { pe: pe as u8 });
            }
            if let FetchMode::CgciInsert { .. } = self.mode {
                self.set_mode(FetchMode::Normal);
            }
            // An in-flight re-dispatch pass owns the map/history chain; it
            // restores fetch state itself when it completes.
            if self.redispatch.is_none() {
                self.fetch_hist = self.rebuild_history();
                self.current_map = self.pes[self.list.tail().expect("window non-empty")].map_after;
                self.expected = self.expected_after_tail();
            }
            return;
        }
        // The fault stands: the branch's embedded prediction really was
        // wrong. Record the misprediction and its ledger coordinate here —
        // not at detection — so transient faults never count.
        self.pes[pe].slots[rec.slot].was_mispredicted = true;
        self.pes[pe].slots[rec.slot].attr = Some(rec.attr);
        if self.cfg.log_mispredicts {
            let branch_idx = self.pes[pe].slots[..rec.slot]
                .iter()
                .filter(|s| s.ti.inst.is_cond_branch())
                .count() as u8;
            self.misp_log.push(MispredictRecord {
                pc: self.pes[pe].slots[rec.slot].ti.pc,
                branch_idx,
                id_branches: self.pes[pe].trace.id().branches(),
                source: self.pes[pe].source,
            });
        }
        let branch_pc = self.pes[pe].slots[rec.slot].ti.pc;
        if self.events.wants(Category::Recovery) {
            self.events.emit(self.now, Event::RecoveryApplied { pe: pe as u8, branch_pc });
        }
        if self.events.wants(Category::Trace) {
            self.events.emit(self.now, Event::TraceRepaired { pe: pe as u8, branch_pc });
        }
        // Replace the faulting PE's trace with the repaired one (prefix
        // slots keep their state; suffix slots are squashed and replaced).
        self.pes[pe].repairs += 1;
        self.replace_trace(pe, rec.slot, rec.repaired.clone());
        match rec.plan {
            RecoveryPlan::Fgci => {
                self.stats.fgci_recoveries += 1;
                let preserved: Vec<usize> = self.list.iter_after(pe).collect();
                self.stats.preserved_traces += preserved.len() as u64;
                let cell = self.attribution.cell_mut(rec.attr);
                cell.events += 1;
                cell.recovery_cycles += rec.ready_at - rec.started_at;
                cell.traces_preserved += preserved.len() as u64;
                self.begin_redispatch(pe, preserved, Some(rec.attr));
            }
            RecoveryPlan::Cgci | RecoveryPlan::Full => {
                // Under CGCI, fetch will insert correct control-dependent
                // traces before the preserved trace (re-dispatch happens at
                // re-convergence); under a full squash nothing younger
                // survives. Either way the fetch frontier restarts after
                // the repaired trace — but an in-flight re-dispatch pass
                // may still owe rename walks to *older* surviving traces,
                // and that debt must be paid, not dropped (a preempted
                // walk leaves committed-path live-ins renamed through a
                // stale map chain).
                let mut h = self.pes[pe].hist_before.clone();
                h.push(rec.repaired.id());
                self.fetch_hist = h;
                self.expected = self.expected_after_pe(pe);
                if !self.resume_walk_debt(pe, Vec::new(), "repair-debt", None) {
                    self.redispatch = None;
                    self.current_map = self.pes[pe].map_after;
                }
            }
        }
    }

    /// Length of the common instruction suffix shared by the live trace in
    /// `pe` (beyond its preserved prefix of `prefix_len` slots) and the
    /// `repaired` trace — the intra-trace control-independent tail that a
    /// CI model's repair preserves in place. Always 0 when neither CI model
    /// is enabled: the base machine squashes the whole suffix.
    pub(super) fn common_suffix_len(
        &self,
        pe: usize,
        prefix_len: usize,
        repaired: &Trace,
    ) -> usize {
        if !(self.cfg.fgci || self.cfg.cgci.is_some()) {
            return 0;
        }
        let old = &self.pes[pe].slots;
        let new = repaired.insts();
        let max = old.len().saturating_sub(prefix_len).min(new.len().saturating_sub(prefix_len));
        let mut common = 0;
        while common < max {
            let o = &old[old.len() - 1 - common].ti;
            let n = &new[new.len() - 1 - common];
            if o.pc == n.pc && o.inst == n.inst {
                common += 1;
            } else {
                break;
            }
        }
        common
    }

    /// Replaces the trace in `pe` from `keep_upto` (inclusive prefix bound)
    /// with `repaired`: prefix slots keep state, squashed middle slots are
    /// freshly renamed, and — under a CI model — the common instruction
    /// suffix after the re-convergent point keeps its execution state too
    /// (§3's fine-grain repair: only the incorrect control-dependent
    /// instructions are replaced). Re-registers readers under a new
    /// generation.
    fn replace_trace(&mut self, pe: usize, fault_slot: usize, repaired: Arc<Trace>) {
        let old_len = self.pes[pe].slots.len();
        let new_len = repaired.len();
        let prefix_len = (fault_slot + 1).min(new_len);
        if self.paranoid {
            assert!(fault_slot < old_len);
        }
        let common = self.common_suffix_len(pe, prefix_len, &repaired);
        let middle_end = new_len - common;
        // Undo stores in the squashed middle. Unlike a full-suffix squash,
        // the preserved common suffix survives in the same PE and may hold
        // loads fed by these dying stores, so the undo snoop must not skip
        // same-PE victims.
        for slot in prefix_len..old_len - common {
            self.undo_store_snooping(pe, slot, usize::MAX);
        }
        // Preserved suffix slots shift indices when the repaired middle has
        // a different physical length. Sequence handles encode the slot
        // index, so a performed store cannot keep its ARB version across
        // the move: undo it under the *old* handle (reissuing every load
        // that sourced it, same-PE included) and let the store re-perform
        // under its new handle.
        let shift = old_len != new_len;
        if shift {
            for slot in old_len - common..old_len {
                if self.undo_store_snooping(pe, slot, usize::MAX) {
                    let _ = self.pes[pe].slots[slot].mark_reissue(self.now + 1);
                }
            }
        }
        self.pes[pe].gen += 1;
        let map_before = self.pes[pe].map_before;
        let mut old_slots = std::mem::take(&mut self.pes[pe].slots);
        let suffix: Vec<Slot> = old_slots.drain(old_len - common..).collect();
        old_slots.truncate(prefix_len);
        let mut slots = old_slots;
        // Refresh prefix metadata from the repaired trace (same
        // instructions; embedded outcomes/coverage may differ).
        for (i, s) in slots.iter_mut().enumerate() {
            let new_ti = repaired.insts()[i];
            if self.paranoid {
                assert_eq!(s.ti.inst, new_ti.inst, "repair changed a prefix instruction");
            }
            s.ti = new_ti;
            // Re-verify the (former) fault branch against its new embedded
            // outcome.
            if new_ti.inst.is_cond_branch() && s.state == SlotState::Done {
                s.fault = match s.outcome {
                    Some(actual) if Some(actual) != new_ti.embedded_taken => {
                        Some(Fault::CondBranch { actual })
                    }
                    _ => None,
                };
            }
        }
        // Fresh middle slots.
        for i in prefix_len..middle_end {
            slots.push(Slot::new(repaired.insts()[i]));
        }
        // Preserved suffix slots: keep execution state and refresh
        // metadata. Branch re-verification happens below, once source
        // rebinding has decided which slots reissue — a resolved outcome is
        // only meaningful while the slot's inputs still stand.
        for (k, mut s) in suffix.into_iter().enumerate() {
            let new_ti = repaired.insts()[middle_end + k];
            if self.paranoid {
                assert_eq!(s.ti.inst, new_ti.inst, "suffix match changed an instruction");
            }
            s.ti = new_ti;
            slots.push(s);
        }
        // Rebind all sources and allocate fresh middle destinations;
        // prefix and preserved suffix keep their physical registers.
        for i in 0..slots.len() {
            let ti = slots[i].ti;
            let old_srcs = slots[i].srcs;
            let mut srcs = [None; 2];
            for (k, &(r, oref)) in ti.srcs.iter().flatten().enumerate() {
                let preg = match oref {
                    OperandRef::LiveIn(lr) if lr.is_zero() => PhysRegId::ZERO,
                    OperandRef::LiveIn(lr) => map_before[lr.index()],
                    OperandRef::Local(j) => {
                        let _ = r;
                        slots[j as usize].dest.expect("local producer has a destination")
                    }
                };
                srcs[k] = Some(preg);
            }
            slots[i].srcs = srcs;
            if i >= prefix_len && i < middle_end {
                slots[i].dest = ti.dest.map(|_| self.pregs.alloc(Some(pe as u8)));
            }
            // A preserved suffix slot whose source names moved (its value
            // now comes from the repaired middle) selectively reissues —
            // the same rule the re-dispatch pass applies across traces.
            // Its stale outcome proves nothing, so any fault it carried is
            // dropped: re-execution re-verifies against the repaired
            // trace's embedded outcome at completion. Only a slot whose
            // inputs still stand re-verifies its resolved outcome here.
            if i >= middle_end {
                if srcs != old_srcs {
                    slots[i].fault = None;
                    let _ = slots[i].mark_reissue(self.now + 1);
                } else if slots[i].ti.inst.is_cond_branch() && slots[i].state == SlotState::Done {
                    slots[i].fault = match slots[i].outcome {
                        Some(actual) if Some(actual) != slots[i].ti.embedded_taken => {
                            Some(Fault::CondBranch { actual })
                        }
                        _ => None,
                    };
                }
            }
            let is_liveout = match ti.dest {
                Some(d) => repaired.last_writer(d) == Some(i),
                None => false,
            };
            let was_liveout = slots[i].is_liveout;
            slots[i].is_liveout = is_liveout;
            // A preserved slot promoted to live-out after completion must
            // still broadcast its value to other PEs.
            if (i < prefix_len || i >= middle_end)
                && is_liveout
                && !was_liveout
                && slots[i].state == SlotState::Done
                && slots[i].dest.is_some()
            {
                let d = slots[i].dest.expect("checked");
                self.pregs.get_mut(d).global_ready_at = u64::MAX;
            }
        }
        self.pes[pe].slots = slots;
        self.pes[pe].trace = repaired.clone();
        // Recompute map_after.
        let mut map_after = map_before;
        for r in repaired.live_outs() {
            let w = repaired.last_writer(*r).expect("live-out has a writer");
            map_after[r.index()] = self.pes[pe].slots[w].dest.expect("writer has a destination");
        }
        self.pes[pe].map_after = map_after;
        // Re-register readers and re-request buses under the new generation.
        for i in 0..self.pes[pe].slots.len() {
            for k in 0..2 {
                if let Some(preg) = self.pes[pe].slots[i].srcs[k] {
                    self.register_reader(preg, pe, i);
                }
            }
            let s = &self.pes[pe].slots[i];
            if s.is_liveout && s.state == SlotState::Done {
                if let Some(d) = s.dest {
                    if self.pregs.get(d).global_ready_at == u64::MAX {
                        let gen = self.pes[pe].gen;
                        self.push_result_req(BusReq { pe, gen, slot: i, since: self.now });
                    }
                }
            }
        }
        // In-flight preserved mem operations (prefix and common suffix)
        // keep their bus requests (now stale-generation): requeue any that
        // were pending, under their possibly-shifted indices. Fresh middle
        // slots are `Waiting` and cannot be in `WaitingBus`.
        for i in 0..self.pes[pe].slots.len() {
            if let SlotState::WaitingBus { since } = self.pes[pe].slots[i].state {
                let gen = self.pes[pe].gen;
                self.push_cache_req(BusReq { pe, gen, slot: i, since });
            }
        }
        // Reindex the PE in the wakeup index under the bumped generation:
        // the gen bump invalidated every entry the old trace held, but the
        // surviving prefix keeps live state the index must still cover —
        // waiting slots re-enqueue, in-flight slots reschedule their
        // completions, and sampled loads re-enter the snoop registry.
        self.index_reset_pe(pe);
        for i in 0..self.pes[pe].slots.len() {
            match self.pes[pe].slots[i].state {
                SlotState::Waiting => self.index_enqueue(pe, i),
                SlotState::Executing { done_at } | SlotState::MemAccess { done_at } => {
                    self.note_inflight(pe, i, done_at);
                }
                _ => {}
            }
            if matches!(self.pes[pe].slots[i].ti.inst, Inst::Load { .. }) {
                if let Some(a) = self.pes[pe].slots[i].mem_addr {
                    self.note_load_sampled(pe, i, a);
                }
            }
        }
        // Fill the (possibly wrong-path) repaired trace into the trace cache
        // speculatively, as trace buffers do.
        self.tcache.fill(repaired);
    }

    /// Undoes the slot's ARB store version, if one was performed, snooping
    /// victim loads except those in `snoop_skip` (`usize::MAX` skips
    /// nothing — required whenever same-PE slots survive the undo, e.g.
    /// the preserved common suffix of a trace repair). Returns whether a
    /// version was undone.
    fn undo_store_snooping(&mut self, pe: usize, slot: usize, snoop_skip: usize) -> bool {
        let (performed, addr) = {
            let s = &self.pes[pe].slots[slot];
            (s.store_performed, s.mem_addr)
        };
        if !performed {
            return false;
        }
        let addr = addr.expect("performed store has an address");
        let h = Self::handle(pe, slot);
        self.arb.undo(addr, h);
        self.pes[pe].slots[slot].store_performed = false;
        self.snoop_undo(addr, h, snoop_skip);
        true
    }

    /// Store undo for paths where every same-PE slot dies with the store
    /// (squash): same-PE loads need no snoop.
    pub(super) fn undo_store_if_performed(&mut self, pe: usize, slot: usize) {
        self.undo_store_snooping(pe, slot, pe);
    }

    pub(super) fn squash_pe(&mut self, pe: usize) {
        if self.events.wants(Category::Trace) {
            let pc = self.pes[pe].trace.id().start();
            self.events.emit(self.now, Event::TraceSquashed { pe: pe as u8, pc, drained: false });
        }
        for slot in 0..self.pes[pe].slots.len() {
            self.undo_store_if_performed(pe, slot);
        }
        self.pes[pe].occupied = false;
        self.pes[pe].gen += 1;
        self.pes[pe].slots.clear();
        // The gen bump invalidates the PE's waiter/completion/load-registry
        // entries; the ready bits are positional and must clear eagerly.
        self.index_reset_pe(pe);
        self.list.remove(pe);
        self.stats.squashed_traces += 1;
    }
}
