//! Pipeline stage 3: **misprediction recovery** — FGCI/CGCI repair and
//! squashing.
//!
//! Implements the paper's selective recovery machinery: fine-grain control
//! independence (§3, FGCI — the mispredicted branch's alternate path is
//! already embedded in the trace, so repair happens entirely within one PE
//! and *all* younger traces are preserved) and coarse-grain control
//! independence (§4, CGCI — the `RET`/`MLB-RET` heuristics locate a
//! re-convergent trace in the window; control-dependent traces between the
//! branch and that trace are squashed and re-fetched while the
//! control-independent suffix is preserved). Recovery is always oldest
//! fault first; an older fault preempts an in-flight repair. Trace repair
//! re-selects the faulting trace with the branch's actual outcome and
//! models the construction-engine latency of refetching the new suffix.
//! Data-side repair (undoing speculative stores, selective reissue of
//! rebound consumers) rides along via `replace_trace`/`squash_pe`.
//!
//! **Mutates:** the in-flight [`Recovery`], PE slots/traces/rename maps of
//! the repaired PE, squashed PEs and the PE list, the ARB (store undo), the
//! BIT (re-selection), the fetch queue/history/mode/expectation, reader
//! registrations, bus request queues, and statistics.

use super::*;
use crate::config::CgciHeuristic;
use crate::pe::{Fault, Slot};
use tp_isa::Inst;
use tp_trace::{OperandRef, OutcomeSource, TraceId};

impl TraceProcessor<'_> {
    /// `(a_pe, a_slot)` strictly older than `(b_pe, b_slot)` in program
    /// order?
    fn older(&self, a: (usize, usize), b: (usize, usize)) -> bool {
        if a.0 == b.0 {
            return a.1 < b.1;
        }
        self.list.logical(a.0) < self.list.logical(b.0)
    }

    fn oldest_fault(&self) -> Option<(usize, usize)> {
        for pe in self.list.iter() {
            if let Some(slot) = self.pes[pe].first_fault() {
                return Some((pe, slot));
            }
        }
        None
    }

    pub(super) fn recovery_stage(&mut self, ctx: &CycleCtx) {
        // Validate the active recovery (its PE may have been squashed by an
        // older recovery preempting it).
        if let Some(rec) = &self.recovery {
            let p = &self.pes[rec.pe];
            if !p.occupied || p.gen != rec.gen || !self.list.contains(rec.pe) {
                self.recovery = None;
            }
        }
        let oldest = self.oldest_fault();
        match (&self.recovery, oldest) {
            (Some(rec), Some(f)) if self.older(f, (rec.pe, rec.slot)) => {
                // An older fault preempts the in-flight recovery.
                self.recovery = None;
                self.start_recovery(f.0, f.1);
            }
            (Some(_), _) => {
                let rec = self.recovery.clone().expect("checked above");
                if ctx.now >= rec.ready_at {
                    self.recovery = None;
                    self.apply_recovery(rec);
                }
            }
            (None, Some(f)) => self.start_recovery(f.0, f.1),
            (None, None) => {}
        }
    }

    fn start_recovery(&mut self, pe: usize, slot: usize) {
        let fault = self.pes[pe].slots[slot].fault.expect("fault present");
        match fault {
            Fault::Indirect { actual } => {
                // The trace itself is correct; its successors are not.
                // Squash everything younger and redirect fetch.
                self.stats.trace_mispredictions += 1;
                self.stats.full_squashes += 1;
                let victims: Vec<usize> = self.list.iter_after(pe).collect();
                for v in victims {
                    self.squash_pe(v);
                }
                self.fetch_queue.clear();
                self.redispatch = None;
                self.mode = FetchMode::Normal;
                self.pes[pe].slots[slot].fault = None;
                self.fetch_hist = self.rebuild_history();
                self.current_map = self.pes[pe].map_after;
                self.expected = match actual {
                    Some(t) => ExpectedNext::Known(t),
                    None => ExpectedNext::Stalled,
                };
            }
            Fault::CondBranch { actual } => {
                self.pes[pe].slots[slot].was_mispredicted = true;
                let repaired = self.repair_trace(pe, slot, actual);
                // Construction timing: refetch the repaired suffix through
                // the instruction cache, one basic block per cycle.
                let cycles = self.construction_cycles(&repaired, slot);
                let ready_at = self.now.max(self.construction_busy_until) + cycles as u64;
                self.construction_busy_until = ready_at;
                // Decide the recovery plan now; squash at detection.
                let covered = self.cfg.fgci && self.pes[pe].slots[slot].ti.fgci_covered;
                let plan = if covered {
                    RecoveryPlan::Fgci
                } else if let Some(reconv) = self.find_reconv(pe, slot) {
                    self.stats.cgci_attempts += 1;
                    // Squash strictly between the faulting PE and the first
                    // control independent trace.
                    let victims: Vec<usize> =
                        self.list.iter_after(pe).take_while(|&q| q != reconv).collect();
                    for v in victims {
                        self.squash_pe(v);
                    }
                    self.fetch_queue.clear();
                    self.redispatch = None;
                    let gen = self.pes[reconv].gen;
                    self.mode = FetchMode::CgciInsert {
                        before: reconv,
                        before_gen: gen,
                        reconv_start: self.pes[reconv].trace.id().start(),
                        inserted: 0,
                    };
                    RecoveryPlan::Cgci
                } else {
                    self.stats.full_squashes += 1;
                    let victims: Vec<usize> = self.list.iter_after(pe).collect();
                    for v in victims {
                        self.squash_pe(v);
                    }
                    self.fetch_queue.clear();
                    self.redispatch = None;
                    self.mode = FetchMode::Normal;
                    RecoveryPlan::Full
                };
                if plan == RecoveryPlan::Fgci {
                    // FGCI leaves the window untouched, but pending fetches
                    // were predicted under a stale history.
                    self.fetch_queue.clear();
                }
                let gen = self.pes[pe].gen;
                self.recovery = Some(Recovery { pe, gen, slot, repaired, ready_at, plan });
            }
        }
    }

    /// Locates the first assumed control-independent trace after `pe` using
    /// the configured CGCI heuristic.
    fn find_reconv(&self, pe: usize, slot: usize) -> Option<usize> {
        let heuristic = self.cfg.cgci?;
        let ti = &self.pes[pe].slots[slot].ti;
        if heuristic == CgciHeuristic::MlbRet && ti.inst.is_backward_branch(ti.pc) {
            // MLB: nearest trace starting at the branch's not-taken target.
            let target = ti.pc + 1;
            if let Some(q) =
                self.list.iter_after(pe).find(|&q| self.pes[q].trace.id().start() == target)
            {
                return Some(q);
            }
        }
        // RET: the trace following the nearest return-ending trace.
        let ret_pe = self.list.iter_after(pe).find(|&q| self.pes[q].trace.ends_in_return())?;
        self.list.next(ret_pe)
    }

    /// Re-selects the faulting trace with the branch's actual outcome
    /// (prefix outcomes embedded, suffix outcomes from the BTB).
    fn repair_trace(&mut self, pe: usize, slot: usize, actual: bool) -> Arc<Trace> {
        let trace = self.pes[pe].trace.clone();
        let fault_branch_idx =
            trace.insts()[..slot].iter().filter(|ti| ti.inst.is_cond_branch()).count() as u8;
        let id = trace.id();
        struct RepairOutcomes<'a> {
            id: TraceId,
            fault_idx: u8,
            actual: bool,
            btb: &'a Btb,
        }
        impl OutcomeSource for RepairOutcomes<'_> {
            fn cond_outcome(&mut self, index: u8, pc: Pc, _inst: Inst) -> bool {
                match index.cmp(&self.fault_idx) {
                    std::cmp::Ordering::Less => self.id.outcome(index),
                    std::cmp::Ordering::Equal => self.actual,
                    std::cmp::Ordering::Greater => self.btb.predict_cond(pc),
                }
            }
            fn indirect_target(&mut self, pc: Pc, _inst: Inst) -> Option<Pc> {
                self.btb.predict_indirect(pc)
            }
        }
        // Split field borrows: the selector reads the BTB while mutating
        // the BIT.
        let selector = self.selector;
        let (program, bit, btb) = (self.program, &mut self.bit, &self.btb);
        let mut outcomes = RepairOutcomes { id, fault_idx: fault_branch_idx, actual, btb };
        let sel = selector.select(program, id.start(), bit, &mut outcomes);
        self.stats.bit_miss_handlers += sel.stats.bit_misses as u64;
        self.stats.bit_miss_cycles += sel.stats.bit_miss_cycles as u64;
        Arc::new(sel.trace)
    }

    fn apply_recovery(&mut self, rec: Recovery) {
        let pe = rec.pe;
        // Abandon if the fault has vanished (outcome flipped back by a
        // selective reissue before the repair finished): re-verification at
        // the slot's next completion decides what happens next. The squashes
        // performed at detection stand — refetch proceeds normally.
        if self.pes[pe].slots.get(rec.slot).is_none_or(|s| s.fault.is_none()) {
            if let FetchMode::CgciInsert { .. } = self.mode {
                self.mode = FetchMode::Normal;
            }
            // An in-flight re-dispatch pass owns the map/history chain; it
            // restores fetch state itself when it completes.
            if self.redispatch.is_none() {
                self.fetch_hist = self.rebuild_history();
                self.current_map = self.pes[self.list.tail().expect("window non-empty")].map_after;
                self.expected = self.expected_after_tail();
            }
            return;
        }
        // Replace the faulting PE's trace with the repaired one (prefix
        // slots keep their state; suffix slots are squashed and replaced).
        self.pes[pe].repairs += 1;
        self.replace_trace(pe, rec.slot, rec.repaired.clone());
        match rec.plan {
            RecoveryPlan::Fgci => {
                self.stats.fgci_recoveries += 1;
                let preserved: Vec<usize> = self.list.iter_after(pe).collect();
                self.stats.preserved_traces += preserved.len() as u64;
                self.begin_redispatch(pe, preserved);
            }
            RecoveryPlan::Cgci => {
                // Fetch will insert correct control-dependent traces before
                // the preserved trace; re-dispatch happens at re-convergence.
                let mut h = self.pes[pe].hist_before.clone();
                h.push(rec.repaired.id());
                self.redispatch = None;
                self.fetch_hist = h;
                self.current_map = self.pes[pe].map_after;
                self.expected = self.expected_after_pe(pe);
            }
            RecoveryPlan::Full => {
                let mut h = self.pes[pe].hist_before.clone();
                h.push(rec.repaired.id());
                self.redispatch = None;
                self.fetch_hist = h;
                self.current_map = self.pes[pe].map_after;
                self.expected = self.expected_after_pe(pe);
            }
        }
    }

    /// Replaces the trace in `pe` from `keep_upto` (inclusive prefix bound)
    /// with `repaired`: prefix slots keep state, suffix slots are squashed
    /// and freshly renamed. Re-registers readers under a new generation.
    fn replace_trace(&mut self, pe: usize, fault_slot: usize, repaired: Arc<Trace>) {
        let old_len = self.pes[pe].slots.len();
        let prefix_len = (fault_slot + 1).min(repaired.len());
        debug_assert!(fault_slot < old_len);
        // Undo stores in the squashed suffix.
        for slot in prefix_len..old_len {
            self.undo_store_if_performed(pe, slot);
        }
        self.pes[pe].gen += 1;
        let map_before = self.pes[pe].map_before;
        let mut slots = std::mem::take(&mut self.pes[pe].slots);
        slots.truncate(prefix_len);
        // Refresh prefix metadata from the repaired trace (same
        // instructions; embedded outcomes/coverage may differ).
        for (i, s) in slots.iter_mut().enumerate() {
            let new_ti = repaired.insts()[i];
            debug_assert_eq!(s.ti.inst, new_ti.inst, "repair changed a prefix instruction");
            let was_misp = s.was_mispredicted;
            s.ti = new_ti;
            s.was_mispredicted = was_misp;
            // Re-verify the (former) fault branch against its new embedded
            // outcome.
            if new_ti.inst.is_cond_branch() && s.state == SlotState::Done {
                s.fault = match s.outcome {
                    Some(actual) if Some(actual) != new_ti.embedded_taken => {
                        Some(Fault::CondBranch { actual })
                    }
                    _ => None,
                };
            }
        }
        // Fresh suffix slots.
        for i in prefix_len..repaired.len() {
            slots.push(Slot::new(repaired.insts()[i]));
        }
        // Rebind all sources and (re)allocate suffix destinations.
        for i in 0..slots.len() {
            let ti = slots[i].ti;
            let mut srcs = [None; 2];
            for (k, &(r, oref)) in ti.srcs.iter().flatten().enumerate() {
                let preg = match oref {
                    OperandRef::LiveIn(lr) if lr.is_zero() => PhysRegId::ZERO,
                    OperandRef::LiveIn(lr) => map_before[lr.index()],
                    OperandRef::Local(j) => {
                        let _ = r;
                        slots[j as usize].dest.expect("local producer has a destination")
                    }
                };
                srcs[k] = Some(preg);
            }
            slots[i].srcs = srcs;
            if i >= prefix_len {
                slots[i].dest = ti.dest.map(|_| self.pregs.alloc(Some(pe as u8)));
            }
            let is_liveout = match ti.dest {
                Some(d) => repaired.last_writer(d) == Some(i),
                None => false,
            };
            let was_liveout = slots[i].is_liveout;
            slots[i].is_liveout = is_liveout;
            // A prefix slot promoted to live-out after completion must still
            // broadcast its value to other PEs.
            if i < prefix_len
                && is_liveout
                && !was_liveout
                && slots[i].state == SlotState::Done
                && slots[i].dest.is_some()
            {
                let d = slots[i].dest.expect("checked");
                self.pregs.get_mut(d).global_ready_at = u64::MAX;
            }
        }
        self.pes[pe].slots = slots;
        self.pes[pe].trace = repaired.clone();
        // Recompute map_after.
        let mut map_after = map_before;
        for r in repaired.live_outs() {
            let w = repaired.last_writer(*r).expect("live-out has a writer");
            map_after[r.index()] = self.pes[pe].slots[w].dest.expect("writer has a destination");
        }
        self.pes[pe].map_after = map_after;
        // Re-register readers and re-request buses under the new generation.
        for i in 0..self.pes[pe].slots.len() {
            for k in 0..2 {
                if let Some(preg) = self.pes[pe].slots[i].srcs[k] {
                    self.register_reader(preg, pe, i);
                }
            }
            let s = &self.pes[pe].slots[i];
            if s.is_liveout && s.state == SlotState::Done {
                if let Some(d) = s.dest {
                    if self.pregs.get(d).global_ready_at == u64::MAX {
                        let gen = self.pes[pe].gen;
                        self.push_result_req(BusReq { pe, gen, slot: i, since: self.now });
                    }
                }
            }
        }
        // In-flight prefix mem operations keep their bus requests (now
        // stale-generation): requeue any that were pending.
        for i in 0..prefix_len.min(self.pes[pe].slots.len()) {
            if let SlotState::WaitingBus { since } = self.pes[pe].slots[i].state {
                let gen = self.pes[pe].gen;
                self.push_cache_req(BusReq { pe, gen, slot: i, since });
            }
        }
        // Reindex the PE in the wakeup index under the bumped generation:
        // the gen bump invalidated every entry the old trace held, but the
        // surviving prefix keeps live state the index must still cover —
        // waiting slots re-enqueue, in-flight slots reschedule their
        // completions, and sampled loads re-enter the snoop registry.
        self.index_reset_pe(pe);
        for i in 0..self.pes[pe].slots.len() {
            match self.pes[pe].slots[i].state {
                SlotState::Waiting => self.index_enqueue(pe, i),
                SlotState::Executing { done_at } | SlotState::MemAccess { done_at } => {
                    self.note_inflight(pe, i, done_at);
                }
                _ => {}
            }
            if matches!(self.pes[pe].slots[i].ti.inst, Inst::Load { .. }) {
                if let Some(a) = self.pes[pe].slots[i].mem_addr {
                    self.note_load_sampled(pe, i, a);
                }
            }
        }
        // Fill the (possibly wrong-path) repaired trace into the trace cache
        // speculatively, as trace buffers do.
        self.tcache.fill(repaired);
    }

    pub(super) fn undo_store_if_performed(&mut self, pe: usize, slot: usize) {
        let (performed, addr) = {
            let s = &self.pes[pe].slots[slot];
            (s.store_performed, s.mem_addr)
        };
        if !performed {
            return;
        }
        let addr = addr.expect("performed store has an address");
        let h = Self::handle(pe, slot);
        self.arb.undo(addr, h);
        self.pes[pe].slots[slot].store_performed = false;
        self.snoop_undo(addr, h, pe);
    }

    pub(super) fn squash_pe(&mut self, pe: usize) {
        for slot in 0..self.pes[pe].slots.len() {
            self.undo_store_if_performed(pe, slot);
        }
        self.pes[pe].occupied = false;
        self.pes[pe].gen += 1;
        self.pes[pe].slots.clear();
        // The gen bump invalidates the PE's waiter/completion/load-registry
        // entries; the ready bits are positional and must clear eagerly.
        self.index_reset_pe(pe);
        self.list.remove(pe);
        self.stats.squashed_traces += 1;
    }
}
