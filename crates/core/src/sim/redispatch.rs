//! The **re-dispatch pass** over preserved control-independent traces.
//!
//! Implements the register-dependence repair half of control independence
//! (§3/§4): after an FGCI repair, or after CGCI insertion re-converges,
//! the preserved traces' live-in renames are walked forward through the
//! corrected rename-map chain — one trace per cycle, sharing the dispatch
//! bus with normal dispatch ([`dispatch`](super::dispatch)). Only
//! instructions whose source names actually changed are marked for
//! selective reissue (the paper's key cost saving: preserved instructions
//! with unchanged names keep their results). Live-outs keep their physical
//! registers, so the chained map can only ever bind strictly older
//! producers.
//!
//! The pass owns the *dispatch bus* only: fetch keeps running while it
//! drains. The speculative fetch history and expectation are restored
//! eagerly at pass start (the preserved traces' ids are already known), so
//! the frontend predicts and constructs the post-window stream concurrently
//! with the register repair instead of stalling for one cycle per preserved
//! trace — fetched traces simply queue until the pass releases the bus.
//!
//! **Mutates:** the active [`RedispatchPass`], preserved PEs' slot sources
//! and rename maps, the speculative rename-map chain and fetch
//! history/expectation (at pass start), reader registrations, and
//! statistics.

use super::*;
use tp_trace::OperandRef;

impl TraceProcessor<'_> {
    /// What an in-flight re-dispatch pass still owes when a new recovery at
    /// `pivot` wants to replace it: the pending PEs at or before `pivot` in
    /// logical order, plus the old pass's walk position (its rolling
    /// history; `self.current_map` *is* the walk map at that position).
    ///
    /// A replacement pass that walks only from `pivot` forward would
    /// silently drop these — the older traces would commit live-in values
    /// renamed through a map chain that a previous repair already
    /// invalidated. `None` means the old pass (if any) owes nothing older:
    /// plain replacement is safe.
    pub(super) fn stale_walk_prefix(&self, pivot: usize) -> Option<(TraceHistory, Vec<usize>)> {
        let old = self.redispatch.as_ref()?;
        let pl = self.list.logical(pivot);
        let prefix: Vec<usize> = old
            .queue
            .iter()
            .copied()
            .filter(|&pe| {
                self.list.contains(pe) && self.pes[pe].occupied && self.list.logical(pe) <= pl
            })
            .collect();
        if prefix.is_empty() {
            return None;
        }
        Some((old.rolling.clone(), prefix))
    }

    /// If an in-flight pass owes rename walks at or before `pivot`
    /// ([`Self::stale_walk_prefix`]), installs a replacement pass that
    /// resumes from the old walk position and covers the debt, then
    /// `pivot` itself, then `suffix` — and returns `true`.
    /// `self.current_map` is left untouched in that case: the pass owns it
    /// while in flight, so the chain re-derives every map from the old
    /// position, including `pivot`'s own (whose `map_before` predates the
    /// older repair). Returns `false` when nothing is owed; the caller
    /// then starts its walk fresh from `pivot`'s map.
    pub(super) fn resume_walk_debt(
        &mut self,
        pivot: usize,
        suffix: Vec<usize>,
        origin: &'static str,
        attr: Option<AttrKey>,
    ) -> bool {
        let Some((rolling, mut queue)) = self.stale_walk_prefix(pivot) else { return false };
        if queue.last() != Some(&pivot) {
            queue.push(pivot);
        }
        queue.extend(suffix);
        self.redispatch = Some(RedispatchPass { queue: queue.into(), rolling, origin, attr });
        true
    }

    /// Restores the speculative fetch past to cover everything the active
    /// pass will walk (its rolling history plus every queued trace).
    fn restore_fetch_from_pass(&mut self) {
        let Some(pass) = &self.redispatch else { return };
        let rolling = pass.rolling.clone();
        let queue: Vec<usize> = pass.queue.iter().copied().collect();
        self.restore_fetch_past(&rolling, &queue);
    }

    /// Starts a re-dispatch pass over the given preserved traces (in logical
    /// order), which updates their live-in renames one trace per cycle.
    /// Replaces any pass already in flight, but never drops its debt: if
    /// the old pass still had pending traces at or before the repair
    /// point, the new pass resumes from the old walk position and covers
    /// them (and the repaired trace itself) before the preserved suffix.
    pub(super) fn begin_redispatch(
        &mut self,
        repaired_pe: usize,
        preserved: Vec<usize>,
        attr: Option<AttrKey>,
    ) {
        if self.resume_walk_debt(repaired_pe, preserved.clone(), "fgci", attr) {
            self.restore_fetch_from_pass();
            self.set_mode(FetchMode::Normal);
            return;
        }
        let mut rolling = self.pes[repaired_pe].hist_before.clone();
        rolling.push(self.pes[repaired_pe].trace.id());
        self.current_map = self.pes[repaired_pe].map_after;
        if preserved.is_empty() {
            self.redispatch = None;
            self.fetch_hist = rolling;
            self.expected = self.expected_after_pe(repaired_pe);
            self.set_mode(FetchMode::Normal);
            return;
        }
        self.restore_fetch_past(&rolling, &preserved);
        self.redispatch =
            Some(RedispatchPass { queue: preserved.into(), rolling, origin: "fgci", attr });
        self.set_mode(FetchMode::Normal);
    }

    /// Starts the CGCI re-dispatch pass: `preserved` traces re-rename from
    /// the map after `pred` (the last inserted control-dependent trace or
    /// the repaired trace itself), or from *retired* state when the whole
    /// control-dependent path committed before re-convergence was observed
    /// (`pred == None` — the preserved trace is then the window head).
    /// Like [`begin_redispatch`], an in-flight pass's pending older traces
    /// are carried over, not dropped.
    pub(super) fn begin_redispatch_from_map(
        &mut self,
        preserved: Vec<usize>,
        pred: Option<usize>,
        attr: Option<AttrKey>,
    ) {
        let Some(pred) = pred else {
            // No live predecessor: the pass chains from the committed
            // frontier. The preserved list spans the entire remaining
            // window, so any in-flight pass's unwalked traces are re-walked
            // from scratch here — no debt can be dropped.
            let rolling = self.retire_hist.clone();
            self.current_map = self.retired_map;
            self.restore_fetch_past(&rolling, &preserved);
            self.redispatch =
                Some(RedispatchPass { queue: preserved.into(), rolling, origin: "cgci", attr });
            return;
        };
        if self.resume_walk_debt(pred, preserved.clone(), "cgci", attr) {
            self.restore_fetch_from_pass();
            return;
        }
        let mut rolling = self.pes[pred].hist_before.clone();
        rolling.push(self.pes[pred].trace.id());
        self.current_map = self.pes[pred].map_after;
        self.restore_fetch_past(&rolling, &preserved);
        self.redispatch =
            Some(RedispatchPass { queue: preserved.into(), rolling, origin: "cgci", attr });
    }

    /// Restores the speculative fetch history and expectation to the end of
    /// the preserved suffix so fetch can run concurrently with the pass:
    /// `rolling` is the history up to (excluding) the first preserved
    /// trace; the preserved ids extend it to the window tail.
    fn restore_fetch_past(&mut self, rolling: &TraceHistory, preserved: &[usize]) {
        let mut h = rolling.clone();
        for &pe in preserved {
            h.push(self.pes[pe].trace.id());
        }
        self.fetch_hist = h;
        self.expected = self.expected_after_tail();
    }

    /// One step of a re-dispatch pass: update one preserved trace's live-in
    /// renames; only instructions with changed source names reissue.
    pub(super) fn redispatch_step(&mut self, ctx: &CycleCtx) {
        let (pe, mut rolling, empty_after, origin, attr) = {
            let Some(pass) = &mut self.redispatch else { return };
            let Some(pe) = pass.queue.pop_front() else {
                self.redispatch = None;
                return;
            };
            (pe, pass.rolling.clone(), pass.queue.is_empty(), pass.origin, pass.attr)
        };
        if !self.pes[pe].occupied || !self.list.contains(pe) {
            // Squashed while queued (e.g. tail reclamation): skip.
            if empty_after {
                self.redispatch = None;
            }
            return;
        }
        let map_before = self.current_map;
        let gen = self.pes[pe].gen;
        let now = ctx.now;
        let trace = self.pes[pe].trace.clone();
        let mut new_readers: Vec<(PhysRegId, usize)> = Vec::new();
        let mut requeue: Vec<usize> = Vec::new();
        {
            let slots = &mut self.pes[pe].slots;
            for (i, slot) in slots.iter_mut().enumerate() {
                let mut changed = false;
                for (k, &(_, oref)) in slot.ti.srcs.iter().flatten().enumerate() {
                    if let OperandRef::LiveIn(r) = oref {
                        if r.is_zero() {
                            continue;
                        }
                        let new_preg = map_before[r.index()];
                        // A re-dispatch must never bind a slot to its own
                        // destination: live-outs keep their mappings, so the
                        // chain map can only hold strictly older registers.
                        assert!(
                            slot.dest != Some(new_preg),
                            "redispatch({origin}) bound slot {i} of pe {pe} to its own destination"
                        );
                        if slot.srcs[k] != Some(new_preg) {
                            slot.srcs[k] = Some(new_preg);
                            changed = true;
                            new_readers.push((new_preg, i));
                        }
                    }
                }
                if changed {
                    requeue.push(i);
                }
            }
        }
        for (preg, i) in new_readers {
            self.readers.entry(preg).or_default().push((pe, gen, i));
            self.reader_count += 1;
        }
        // Selective reissue re-enqueues exactly the re-dispatched consumers
        // whose source names changed — nothing else moved in this PE.
        for i in requeue {
            self.rebind_reissue_slot(pe, i, now + 1);
        }
        // Live-outs keep their physical registers; the map is re-asserted.
        self.pes[pe].map_before = map_before;
        let mut map_after = map_before;
        for r in trace.live_outs() {
            let w = trace.last_writer(*r).expect("live-out has a writer");
            map_after[r.index()] = self.pes[pe].slots[w].dest.expect("writer has a destination");
        }
        self.pes[pe].map_after = map_after;
        self.current_map = map_after;
        self.pes[pe].hist_before = rolling.clone();
        rolling.push(trace.id());
        self.stats.redispatched_traces += 1;
        if self.events.wants(Category::Trace) {
            self.events
                .emit(now, Event::TraceRedispatched { pe: pe as u8, pc: trace.id().start() });
        }
        if let Some(key) = attr {
            self.attribution.cell_mut(key).traces_redispatched += 1;
        }
        if empty_after {
            // Fetch state was restored at pass start (and fetch may have
            // advanced past it since); the pass just releases the bus.
            self.redispatch = None;
        } else if let Some(pass) = self.redispatch.as_mut() {
            pass.rolling = rolling;
        }
    }
}
