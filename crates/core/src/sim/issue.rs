//! Pipeline stage 6: **issue** — select ready instructions and execute
//! them.
//!
//! Implements the per-PE issue logic (§2): each PE independently selects up
//! to `pe_issue_width` waiting instructions whose source physical registers
//! are readable (locally bypassed within the producing PE, or globally
//! visible after a result-bus broadcast) and begins execution. Because the
//! simulator is execution-driven, values are computed *here*, with
//! whatever operand values are currently visible — wrong-path and
//! stale-input execution happen for real and are corrected by selective
//! reissue. Memory operations perform address generation and then queue for
//! a shared cache bus ([`buses`](super::buses)) rather than completing
//! directly.
//!
//! **Mutates:** slot state/values/outcomes, the cache-bus request queue,
//! and issue/reissue statistics.

use super::*;
use tp_isa::func::effective_address;
use tp_isa::Inst;

impl TraceProcessor<'_> {
    pub(super) fn issue_stage(&mut self, ctx: &CycleCtx) {
        let now = ctx.now;
        let pes: Vec<usize> = self.list.iter().collect();
        for pe in pes {
            let mut issued = 0;
            for slot in 0..self.pes[pe].slots.len() {
                if issued >= self.cfg.pe_issue_width {
                    break;
                }
                let ready = {
                    let s = &self.pes[pe].slots[slot];
                    s.state == SlotState::Waiting
                        && s.not_before <= now
                        && s.srcs
                            .iter()
                            .flatten()
                            .all(|&p| self.pregs.readable_by(p, pe as u8, now))
                };
                if !ready {
                    continue;
                }
                self.issue_slot(pe, slot);
                issued += 1;
            }
        }
    }

    fn issue_slot(&mut self, pe: usize, slot: usize) {
        let now = self.now;
        let gen = self.pes[pe].gen;
        let (inst, src_vals) = {
            let s = &self.pes[pe].slots[slot];
            let vals: Vec<Word> =
                s.srcs.iter().flatten().map(|&p| self.pregs.get(p).value).collect();
            (s.ti.inst, vals)
        };
        let a = src_vals.first().copied().unwrap_or(0);
        let b = src_vals.get(1).copied().unwrap_or(0);
        let s = &mut self.pes[pe].slots[slot];
        s.issues += 1;
        self.stats.issue_events += 1;
        if s.issues > 1 {
            self.stats.reissue_events += 1;
        }
        match inst {
            Inst::Alu { op, .. } => {
                s.value = op.apply(a, b);
                s.state = SlotState::Executing { done_at: now + op.latency() as u64 };
            }
            Inst::AluImm { op, imm, .. } => {
                s.value = op.apply(a, imm as Word);
                s.state = SlotState::Executing { done_at: now + op.latency() as u64 };
            }
            Inst::Load { offset, .. } => {
                s.value = 0;
                s.state = SlotState::WaitingBus { since: now + self.cfg.agen_latency };
                let ea = effective_address(a, offset);
                s.indirect_target = Some(ea as Word); // staging for bus grant
                self.cache_bus_queue.push_back(BusReq {
                    pe,
                    gen,
                    slot,
                    since: now + self.cfg.agen_latency,
                });
            }
            Inst::Store { offset, .. } => {
                // srcs order is [base, data].
                let ea = effective_address(a, offset);
                s.value = b;
                s.indirect_target = Some(ea as Word);
                s.state = SlotState::WaitingBus { since: now + self.cfg.agen_latency };
                self.cache_bus_queue.push_back(BusReq {
                    pe,
                    gen,
                    slot,
                    since: now + self.cfg.agen_latency,
                });
            }
            Inst::Branch { cond, .. } => {
                s.outcome = Some(cond.eval(a, b));
                s.state = SlotState::Executing { done_at: now + 1 };
            }
            Inst::Jump { .. } | Inst::Nop | Inst::Halt => {
                s.state = SlotState::Executing { done_at: now + 1 };
            }
            Inst::Call { .. } => {
                s.value = s.ti.pc as Word + 1;
                s.state = SlotState::Executing { done_at: now + 1 };
            }
            Inst::CallIndirect { .. } => {
                s.value = s.ti.pc as Word + 1;
                s.indirect_target = Some(a);
                s.state = SlotState::Executing { done_at: now + 1 };
            }
            Inst::JumpIndirect { .. } | Inst::Ret => {
                s.indirect_target = Some(a);
                s.state = SlotState::Executing { done_at: now + 1 };
            }
        }
    }
}
