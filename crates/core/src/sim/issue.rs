//! Pipeline stage 6: **issue** — select ready instructions and execute
//! them.
//!
//! Implements the per-PE issue logic (§2): each PE independently selects up
//! to `pe_issue_width` waiting instructions whose source physical registers
//! are readable (locally bypassed within the producing PE, or globally
//! visible after a result-bus broadcast) and begins execution. Because the
//! simulator is execution-driven, values are computed *here*, with
//! whatever operand values are currently visible — wrong-path and
//! stale-input execution happen for real and are corrected by selective
//! reissue. Memory operations perform address generation and then queue for
//! a shared cache bus ([`buses`](super::buses)) rather than completing
//! directly.
//!
//! Selection is event-driven: instead of rescanning every slot of every PE
//! each cycle, the stage walks only the candidate bits of the per-PE ready
//! masks (see [`WakeupIndex`](super::WakeupIndex)). The bits encode the
//! *dataflow* condition (all sources produced); the cheap *timing*
//! conditions (`not_before`, local/global visibility cycles) are re-polled
//! here because they move with bus grants. Candidates are visited in slot
//! order, PEs in logical window order — exactly the legacy scan order, so
//! cycle-level behaviour is unchanged.
//!
//! **Mutates:** slot state/values/outcomes, the cache-bus request queue,
//! the wakeup index (ready bits consumed, completion events scheduled),
//! and issue/reissue statistics.

use super::*;
use tp_isa::func::effective_address;
use tp_isa::Inst;

impl TraceProcessor<'_> {
    pub(super) fn issue_stage(&mut self, ctx: &CycleCtx) {
        let now = ctx.now;
        let issued_before = self.stats.issue_events;
        let reissued_before = self.stats.reissue_events;
        let mut order = std::mem::take(&mut self.scratch_order);
        order.clear();
        order.extend(self.list.iter());
        for &pe in &order {
            let mut issued = 0;
            // Snapshot the candidate mask; bits are consumed from the live
            // mask as slots issue (issuing never adds candidates).
            let mut mask = self.wakeup.ready[pe];
            while mask != 0 && issued < self.cfg.pe_issue_width {
                let slot = mask.trailing_zeros() as usize;
                mask &= mask - 1;
                let ready = {
                    let s = &self.pes[pe].slots[slot];
                    s.state == SlotState::Waiting
                        && s.not_before <= now
                        && s.srcs
                            .iter()
                            .flatten()
                            .all(|&p| self.pregs.readable_by(p, pe as u8, now))
                };
                if !ready {
                    // Time-gated (visibility or penalty): poll again next
                    // cycle; the dataflow condition already holds.
                    continue;
                }
                self.wakeup.ready[pe] &= !(1u64 << slot);
                self.issue_slot(pe, slot);
                issued += 1;
            }
        }
        self.scratch_order = order;
        if self.events.wants(Category::Occupancy) {
            let issued = self.stats.issue_events - issued_before;
            if issued > 0 {
                let reissued = self.stats.reissue_events - reissued_before;
                self.events.emit(
                    now,
                    Event::IssueSample {
                        issued: issued.min(255) as u8,
                        reissued: reissued.min(255) as u8,
                    },
                );
            }
        }
    }

    fn issue_slot(&mut self, pe: usize, slot: usize) {
        let now = self.now;
        let gen = self.pes[pe].gen;
        let (inst, a, b) = {
            let s = &self.pes[pe].slots[slot];
            let mut it = s.srcs.iter().flatten();
            let a = it.next().map_or(0, |&p| self.pregs.get(p).value);
            let b = it.next().map_or(0, |&p| self.pregs.get(p).value);
            (s.ti.inst, a, b)
        };
        // `done_at` for directly-executing slots; memory operations go to
        // the cache-bus queue instead and complete after their grant.
        let mut done_at = None;
        let mut agen = false;
        {
            let s = &mut self.pes[pe].slots[slot];
            s.issues += 1;
            match inst {
                Inst::Alu { op, .. } => {
                    s.value = op.apply(a, b);
                    done_at = Some(now + op.latency() as u64);
                }
                Inst::AluImm { op, imm, .. } => {
                    s.value = op.apply(a, imm as Word);
                    done_at = Some(now + op.latency() as u64);
                }
                Inst::Load { offset, .. } => {
                    s.value = 0;
                    s.state = SlotState::WaitingBus { since: now + self.cfg.agen_latency };
                    let ea = effective_address(a, offset);
                    s.indirect_target = Some(ea as Word); // staging for bus grant
                    agen = true;
                }
                Inst::Store { offset, .. } => {
                    // srcs order is [base, data].
                    let ea = effective_address(a, offset);
                    s.value = b;
                    s.indirect_target = Some(ea as Word);
                    s.state = SlotState::WaitingBus { since: now + self.cfg.agen_latency };
                    agen = true;
                }
                Inst::Branch { cond, .. } => {
                    s.outcome = Some(cond.eval(a, b));
                    done_at = Some(now + 1);
                }
                Inst::Jump { .. } | Inst::Nop | Inst::Halt => {
                    done_at = Some(now + 1);
                }
                Inst::Call { .. } => {
                    s.value = s.ti.pc as Word + 1;
                    done_at = Some(now + 1);
                }
                Inst::CallIndirect { .. } => {
                    s.value = s.ti.pc as Word + 1;
                    s.indirect_target = Some(a);
                    done_at = Some(now + 1);
                }
                Inst::JumpIndirect { .. } | Inst::Ret => {
                    s.indirect_target = Some(a);
                    done_at = Some(now + 1);
                }
            }
            if let Some(done_at) = done_at {
                s.state = SlotState::Executing { done_at };
            }
        }
        self.stats.issue_events += 1;
        if self.pes[pe].slots[slot].issues > 1 {
            self.stats.reissue_events += 1;
        }
        if let Some(done_at) = done_at {
            self.note_inflight(pe, slot, done_at);
        }
        if agen {
            self.push_cache_req(BusReq { pe, gen, slot, since: now + self.cfg.agen_latency });
        }
    }
}
