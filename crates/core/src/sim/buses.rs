//! Pipeline stage 7: **buses** — shared cache buses, the ARB, and global
//! result buses.
//!
//! Implements the shared interconnect (§2) and the data-speculation side of
//! selective recovery (§5): cache-bus grants perform the actual memory
//! accesses — loads read the youngest older version from the address
//! resolution buffer (using the PE list's physical-to-logical translation
//! for memory ordering), stores insert speculative versions and *snoop*
//! every live load on the same word so that memory-order violations trigger
//! selective reissue rather than a squash. Result-bus grants make live-out
//! values globally visible to other PEs after the bypass latency. Both
//! arbiters are bounded per cycle and per PE, preserving request order.
//!
//! **Mutates:** the bus request queues, slot state/values, the ARB and data
//! cache, physical-register global visibility, and snoop-reissue
//! statistics.

use super::*;
use tp_isa::{Addr, Inst};

impl TraceProcessor<'_> {
    pub(super) fn bus_stage(&mut self, ctx: &CycleCtx) {
        self.grant_cache_buses(ctx);
        self.grant_result_buses(ctx);
    }

    fn grant_cache_buses(&mut self, ctx: &CycleCtx) {
        let now = ctx.now;
        let mut granted_total = 0;
        let mut granted_per_pe = vec![0usize; self.cfg.num_pes];
        let mut requeue: VecDeque<BusReq> = VecDeque::new();
        while let Some(req) = self.cache_bus_queue.pop_front() {
            if granted_total >= self.cfg.cache_buses {
                requeue.push_back(req);
                // Keep draining to preserve order of the remaining queue.
                while let Some(r) = self.cache_bus_queue.pop_front() {
                    requeue.push_back(r);
                }
                break;
            }
            // Validate.
            let valid = {
                let p = &self.pes[req.pe];
                p.occupied
                    && p.gen == req.gen
                    && req.slot < p.slots.len()
                    && matches!(p.slots[req.slot].state, SlotState::WaitingBus { .. })
                    && self.list.contains(req.pe)
            };
            if !valid {
                continue; // dropped (squashed or replaced)
            }
            if req.since > now {
                requeue.push_back(req);
                continue;
            }
            if granted_per_pe[req.pe] >= self.cfg.cache_buses_per_pe {
                requeue.push_back(req);
                continue;
            }
            granted_total += 1;
            granted_per_pe[req.pe] += 1;
            self.perform_mem_access(req.pe, req.slot);
        }
        self.cache_bus_queue = requeue;
    }

    fn perform_mem_access(&mut self, pe: usize, slot: usize) {
        let now = self.now;
        let h = Self::handle(pe, slot);
        let (inst, ea, data) = {
            let s = &self.pes[pe].slots[slot];
            let ea = s.indirect_target.expect("agen ran") as Addr;
            (s.ti.inst, ea, s.value)
        };
        match inst {
            Inst::Load { .. } => {
                let latency = self.dcache.access(ea);
                // Split field borrows: the ARB is mutated while the logical
                // order comes from the PE list.
                let list = &self.list;
                let result = self.arb.load(ea, h, |sh: SeqHandle| {
                    let pe = (sh.0 >> 8) as usize;
                    if !list.contains(pe) {
                        return 0;
                    }
                    ((list.logical(pe) + 1) << 8) | (sh.0 & 0xff)
                });
                let s = &mut self.pes[pe].slots[slot];
                s.value = result.value;
                s.load_src = result.source.map(|sh| sh.0);
                s.mem_addr = Some(ea);
                s.state = SlotState::MemAccess { done_at: now + latency as u64 };
            }
            Inst::Store { .. } => {
                let _ = self.dcache.access(ea);
                let (old_performed, old_addr, old_value) = {
                    let s = &self.pes[pe].slots[slot];
                    (s.store_performed, s.mem_addr, s.has_value.then_some(s.value))
                };
                let _ = old_value;
                // A reissued store that moved must undo its old version.
                if old_performed {
                    if let Some(old) = old_addr {
                        if old >> 3 != ea >> 3 {
                            self.arb.undo(old, h);
                            self.snoop_undo(old, h, pe);
                        }
                    }
                }
                self.arb.store(ea, h, data);
                {
                    let s = &mut self.pes[pe].slots[slot];
                    s.store_performed = true;
                    s.mem_addr = Some(ea);
                    s.state = SlotState::MemAccess { done_at: now + 1 };
                }
                self.snoop_store(ea, h, data, pe);
            }
            _ => unreachable!("only memory ops use cache buses"),
        }
    }

    /// Loads snoop store traffic: a load must reissue if the store is
    /// program-order earlier than the load but later than the load's data
    /// source, or if it *is* the load's data source and the value changed.
    fn snoop_store(&mut self, addr: Addr, store_h: SeqHandle, value: Word, store_pe: usize) {
        let word = addr >> 3;
        let store_key = self.seq_key(store_h);
        let penalty = self.cfg.load_reissue_penalty;
        let now = self.now;
        let mut reissues: Vec<(usize, usize)> = Vec::new();
        for pe in self.list.iter() {
            for (i, s) in self.pes[pe].slots.iter().enumerate() {
                if !matches!(s.ti.inst, Inst::Load { .. }) {
                    continue;
                }
                let Some(la) = s.mem_addr else { continue };
                if la >> 3 != word {
                    continue;
                }
                // Only loads that already sampled memory can be victims.
                if !matches!(s.state, SlotState::MemAccess { .. } | SlotState::Done) {
                    continue;
                }
                let load_key = self.seq_key(Self::handle(pe, i));
                if store_key >= load_key {
                    continue; // store is later in program order
                }
                let must_reissue = match s.load_src {
                    Some(src) if src == store_h.0 => {
                        // Same source store re-executed: reissue if the value
                        // it previously supplied could differ. (The ARB has
                        // already been updated; conservatively reissue.)
                        let _ = value;
                        true
                    }
                    Some(src) => self.seq_key(SeqHandle(src)) < store_key,
                    None => true, // loaded from architectural memory
                };
                if must_reissue {
                    reissues.push((pe, i));
                }
            }
        }
        let _ = store_pe;
        for (pe, i) in reissues {
            self.stats.load_snoop_reissues += 1;
            self.pes[pe].slots[i].mark_reissue(now + penalty);
        }
    }

    /// Loads snoop store-undo traffic: any load whose data came from the
    /// undone store must reissue.
    pub(super) fn snoop_undo(&mut self, addr: Addr, store_h: SeqHandle, skip_pe: usize) {
        let word = addr >> 3;
        let penalty = self.cfg.load_reissue_penalty;
        let now = self.now;
        let mut reissues: Vec<(usize, usize)> = Vec::new();
        for pe in self.list.iter() {
            if pe == skip_pe {
                continue;
            }
            for (i, s) in self.pes[pe].slots.iter().enumerate() {
                if !matches!(s.ti.inst, Inst::Load { .. }) {
                    continue;
                }
                if s.mem_addr.map(|a| a >> 3) != Some(word) {
                    continue;
                }
                if s.load_src == Some(store_h.0) {
                    reissues.push((pe, i));
                }
            }
        }
        for (pe, i) in reissues {
            self.stats.load_snoop_reissues += 1;
            self.pes[pe].slots[i].mark_reissue(now + penalty);
        }
    }

    fn grant_result_buses(&mut self, ctx: &CycleCtx) {
        let now = ctx.now;
        let mut granted_total = 0;
        let mut granted_per_pe = vec![0usize; self.cfg.num_pes];
        let mut requeue: VecDeque<BusReq> = VecDeque::new();
        while let Some(req) = self.result_bus_queue.pop_front() {
            if granted_total >= self.cfg.result_buses {
                requeue.push_back(req);
                while let Some(r) = self.result_bus_queue.pop_front() {
                    requeue.push_back(r);
                }
                break;
            }
            let valid = {
                let p = &self.pes[req.pe];
                p.occupied
                    && p.gen == req.gen
                    && req.slot < p.slots.len()
                    && p.slots[req.slot].is_liveout
                    && p.slots[req.slot].dest.is_some()
            };
            if !valid {
                continue;
            }
            if req.since > now {
                requeue.push_back(req);
                continue;
            }
            if granted_per_pe[req.pe] >= self.cfg.result_buses_per_pe {
                requeue.push_back(req);
                continue;
            }
            granted_total += 1;
            granted_per_pe[req.pe] += 1;
            let dest = self.pes[req.pe].slots[req.slot].dest.expect("validated");
            let r = self.pregs.get_mut(dest);
            if r.ready && r.global_ready_at == u64::MAX {
                r.global_ready_at = now + self.cfg.bypass_latency;
            }
        }
        self.result_bus_queue = requeue;
    }
}
