//! Pipeline stage 7: **buses** — shared cache buses, the ARB, and global
//! result buses.
//!
//! Implements the shared interconnect (§2) and the data-speculation side of
//! selective recovery (§5): cache-bus grants perform the actual memory
//! accesses — loads read the youngest older version from the address
//! resolution buffer (using the PE list's physical-to-logical translation
//! for memory ordering), stores insert speculative versions and *snoop*
//! every live load on the same word so that memory-order violations trigger
//! selective reissue rather than a squash. Result-bus grants make live-out
//! values globally visible to other PEs after the bypass latency. Both
//! arbiters are bounded per cycle and per PE, preserving request order.
//!
//! Both arbiters are event-driven: each queue carries a `next_due` horizon
//! (the earliest cycle anything in it could be granted), so idle cycles
//! skip the pass entirely, and a granting pass is a single in-place
//! `retain` sweep instead of a drain-and-requeue of the whole queue.
//! Store/undo snooping consults the wakeup index's per-word load registry
//! ([`WakeupIndex`](super::WakeupIndex) invariant 4) instead of rescanning
//! every slot of every PE.
//!
//! **Mutates:** the bus request queues and their horizons, slot state and
//! values, the ARB and data cache, physical-register global visibility,
//! the wakeup index (completion events, load registry, reissue wakeups),
//! and snoop-reissue statistics.

use super::*;
use tp_isa::{Addr, Inst};

/// Which shared interconnect an arbiter pass serves. The two buses share
/// one grant skeleton ([`TraceProcessor::grant_buses`]); only the limits,
/// the request-validity predicate, and the grant action differ.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BusKind {
    /// ARB/data-cache buses: grants perform the memory access.
    Cache,
    /// Global result buses: grants make a live-out globally visible.
    Result,
}

impl TraceProcessor<'_> {
    pub(super) fn bus_stage(&mut self, ctx: &CycleCtx) {
        self.grant_buses(ctx, BusKind::Cache);
        self.grant_buses(ctx, BusKind::Result);
    }

    /// One arbiter pass: a single in-place `retain` sweep over the queue,
    /// granting in request order up to the total and per-PE limits,
    /// dropping requests whose generation died, and recomputing the
    /// `next_due` horizon that lets idle cycles skip the pass entirely
    /// (`now + 1` whenever a grantable request was blocked by a limit).
    fn grant_buses(&mut self, ctx: &CycleCtx, kind: BusKind) {
        let now = ctx.now;
        let horizon = match kind {
            BusKind::Cache => self.cache_bus_next_due,
            BusKind::Result => self.result_bus_next_due,
        };
        if horizon > now {
            return; // nothing could be granted this cycle
        }
        let (total_limit, per_pe_limit) = match kind {
            BusKind::Cache => (self.cfg.cache_buses, self.cfg.cache_buses_per_pe),
            BusKind::Result => (self.cfg.result_buses, self.cfg.result_buses_per_pe),
        };
        let mut granted_total = 0;
        let mut granted_per_pe = std::mem::take(&mut self.scratch_grants);
        granted_per_pe.clear();
        granted_per_pe.resize(self.cfg.num_pes, 0);
        let mut queue = match kind {
            BusKind::Cache => std::mem::take(&mut self.cache_bus_queue),
            BusKind::Result => std::mem::take(&mut self.result_bus_queue),
        };
        let waiting_at_start = queue.len();
        // Grant actions may (now or in the future) push *new* requests via
        // push_cache_req/push_result_req while the queue is taken out;
        // resetting the live horizon here and merging it back below keeps
        // such pushes — and their horizon updates — from being lost when
        // the swept queue is restored.
        match kind {
            BusKind::Cache => self.cache_bus_next_due = u64::MAX,
            BusKind::Result => self.result_bus_next_due = u64::MAX,
        }
        let mut next_due = u64::MAX;
        queue.retain(|&req| {
            if granted_total >= total_limit {
                // Buses exhausted: keep the tail untouched, retry next cycle.
                next_due = next_due.min(now + 1);
                return true;
            }
            let valid = {
                let p = &self.pes[req.pe];
                let live = p.occupied && p.gen == req.gen && req.slot < p.slots.len();
                live && match kind {
                    BusKind::Cache => {
                        matches!(p.slots[req.slot].state, SlotState::WaitingBus { .. })
                            && self.list.contains(req.pe)
                    }
                    BusKind::Result => {
                        p.slots[req.slot].is_liveout && p.slots[req.slot].dest.is_some()
                    }
                }
            };
            if !valid {
                return false; // dropped (squashed or replaced)
            }
            if req.since > now {
                next_due = next_due.min(req.since);
                return true;
            }
            if granted_per_pe[req.pe] >= per_pe_limit as u32 {
                next_due = next_due.min(now + 1);
                return true;
            }
            granted_total += 1;
            granted_per_pe[req.pe] += 1;
            match kind {
                BusKind::Cache => self.perform_mem_access(req.pe, req.slot),
                BusKind::Result => {
                    let dest = self.pes[req.pe].slots[req.slot].dest.expect("validated");
                    let r = self.pregs.get_mut(dest);
                    if r.ready && r.global_ready_at == u64::MAX {
                        r.global_ready_at = now + self.cfg.bypass_latency;
                    }
                }
            }
            false
        });
        match kind {
            BusKind::Cache => {
                queue.append(&mut self.cache_bus_queue); // mid-pass pushes, if any
                self.cache_bus_queue = queue;
                self.cache_bus_next_due = self.cache_bus_next_due.min(next_due);
            }
            BusKind::Result => {
                queue.append(&mut self.result_bus_queue);
                self.result_bus_queue = queue;
                self.result_bus_next_due = self.result_bus_next_due.min(next_due);
            }
        }
        self.scratch_grants = granted_per_pe;
        if waiting_at_start > 0 && self.events.wants(Category::Bus) {
            let bus = match kind {
                BusKind::Cache => tp_events::BusChannel::Cache,
                BusKind::Result => tp_events::BusChannel::Result,
            };
            self.events.emit(
                now,
                Event::BusSample {
                    bus,
                    waiting: waiting_at_start.min(255) as u8,
                    granted: granted_total.min(255usize) as u8,
                },
            );
        }
    }

    fn perform_mem_access(&mut self, pe: usize, slot: usize) {
        let now = self.now;
        let h = Self::handle(pe, slot);
        let (inst, ea, data) = {
            let s = &self.pes[pe].slots[slot];
            let ea = s.indirect_target.expect("agen ran") as Addr;
            (s.ti.inst, ea, s.value)
        };
        match inst {
            Inst::Load { .. } => {
                let latency = self.dcache.access(ea);
                // Split field borrows: the ARB is mutated while the logical
                // order comes from the PE list.
                let list = &self.list;
                let result = self.arb.load(ea, h, |sh: SeqHandle| {
                    let pe = (sh.0 >> 8) as usize;
                    if !list.contains(pe) {
                        // A version whose owner left the window cannot be
                        // architectural (commit removes versions), so it
                        // must never win forwarding: rank it younger than
                        // every live access. The paranoid ARB sweep proves
                        // this is unreachable; keep it safe, not oldest.
                        return u64::MAX;
                    }
                    ((list.logical(pe) + 1) << 8) | (sh.0 & 0xff)
                });
                let done_at = now + latency as u64;
                {
                    let s = &mut self.pes[pe].slots[slot];
                    s.value = result.value;
                    s.load_src = result.source.map(|sh| sh.0);
                    s.mem_addr = Some(ea);
                    s.state = SlotState::MemAccess { done_at };
                }
                self.note_inflight(pe, slot, done_at);
                self.note_load_sampled(pe, slot, ea);
            }
            Inst::Store { .. } => {
                let _ = self.dcache.access(ea);
                let (old_performed, old_addr, old_value) = {
                    let s = &self.pes[pe].slots[slot];
                    (s.store_performed, s.mem_addr, s.has_value.then_some(s.value))
                };
                let _ = old_value;
                // A reissued store that moved must undo its old version.
                // The undo snoop must NOT skip this store's own PE: the PE
                // is alive, and a program-order-later load in the same
                // trace may have forwarded from the dying version (same-PE
                // skipping is only sound on squash paths, where every
                // same-PE slot dies with the store).
                if old_performed {
                    if let Some(old) = old_addr {
                        if old >> 3 != ea >> 3 {
                            self.arb.undo(old, h);
                            self.snoop_undo(old, h, usize::MAX);
                        }
                    }
                }
                self.arb.store(ea, h, data);
                let done_at = now + 1;
                {
                    let s = &mut self.pes[pe].slots[slot];
                    s.store_performed = true;
                    s.mem_addr = Some(ea);
                    s.state = SlotState::MemAccess { done_at };
                }
                self.note_inflight(pe, slot, done_at);
                self.snoop_store(ea, h, data, pe);
            }
            _ => unreachable!("only memory ops use cache buses"),
        }
    }

    /// A committed store *is* architectural memory: every live load that
    /// recorded it as its forwarding source must stop naming it. The
    /// sequence handle encodes only `(pe, slot)`, so once the store's PE is
    /// recycled by a younger trace the handle starts ranking as *young* in
    /// `seq_key` — and a later snoop by a genuinely-older store would
    /// conclude the load's source is younger and wrongly skip the reissue
    /// (committed-path loads then retire stale forwarded values).
    pub(super) fn demote_committed_source(&mut self, addr: Addr, store_h: SeqHandle) {
        let word = addr >> 3;
        let Some(entries) = self.wakeup.loads_by_word.get(&word) else { return };
        let victims: Vec<(usize, usize)> = entries
            .iter()
            .filter(|&&(pe, gen, slot)| {
                let p = &self.pes[pe];
                p.occupied
                    && p.gen == gen
                    && slot < p.slots.len()
                    && p.slots[slot].load_src == Some(store_h.0)
            })
            .map(|&(pe, _, slot)| (pe, slot))
            .collect();
        for (pe, slot) in victims {
            self.pes[pe].slots[slot].load_src = None;
        }
    }

    /// Loads snoop store traffic: a load must reissue if the store is
    /// program-order earlier than the load but later than the load's data
    /// source, or if it *is* the load's data source and the value changed.
    /// Victims come from the per-word load registry, not a window rescan.
    fn snoop_store(&mut self, addr: Addr, store_h: SeqHandle, value: Word, store_pe: usize) {
        let word = addr >> 3;
        let Some(mut entries) = self.wakeup.loads_by_word.remove(&word) else { return };
        let store_key = self.seq_key(store_h);
        let penalty = self.cfg.load_reissue_penalty;
        let now = self.now;
        let mut reissues: Vec<(usize, usize)> = Vec::new();
        let before = entries.len();
        entries.retain(|&(pe, gen, i)| {
            let Some(s) = self.live_load(pe, gen, i, word) else { return false };
            // Only loads that already sampled memory can be victims.
            if !matches!(s.state, SlotState::MemAccess { .. } | SlotState::Done) {
                return true;
            }
            let load_key = self.seq_key(Self::handle(pe, i));
            if store_key >= load_key {
                return true; // store is later in program order
            }
            let must_reissue = match s.load_src {
                Some(src) if src == store_h.0 => {
                    // Same source store re-executed: reissue if the value
                    // it previously supplied could differ. (The ARB has
                    // already been updated; conservatively reissue.)
                    let _ = value;
                    true
                }
                Some(src) => self.seq_key(SeqHandle(src)) < store_key,
                None => true, // loaded from architectural memory
            };
            if must_reissue {
                reissues.push((pe, i));
            }
            true
        });
        self.load_count -= before - entries.len();
        if !entries.is_empty() {
            self.wakeup.loads_by_word.insert(word, entries);
        }
        let _ = store_pe;
        for (pe, i) in reissues {
            self.stats.load_snoop_reissues += 1;
            self.mark_reissue_slot(pe, i, now + penalty);
        }
    }

    /// Loads snoop store-undo traffic: any load whose data came from the
    /// undone store must reissue.
    pub(super) fn snoop_undo(&mut self, addr: Addr, store_h: SeqHandle, skip_pe: usize) {
        let word = addr >> 3;
        let Some(mut entries) = self.wakeup.loads_by_word.remove(&word) else { return };
        let penalty = self.cfg.load_reissue_penalty;
        let now = self.now;
        let mut reissues: Vec<(usize, usize)> = Vec::new();
        let before = entries.len();
        entries.retain(|&(pe, gen, i)| {
            let Some(s) = self.live_load(pe, gen, i, word) else { return false };
            if pe != skip_pe && s.load_src == Some(store_h.0) {
                reissues.push((pe, i));
            }
            true
        });
        self.load_count -= before - entries.len();
        if !entries.is_empty() {
            self.wakeup.loads_by_word.insert(word, entries);
        }
        for (pe, i) in reissues {
            self.stats.load_snoop_reissues += 1;
            self.mark_reissue_slot(pe, i, now + penalty);
        }
    }

    /// Validates a load-registry entry: the slot must still be a live load
    /// of the registered generation whose sampled address maps to `word`.
    /// Returns the slot, or `None` for stale entries (which the caller
    /// garbage-collects from the registry).
    fn live_load(&self, pe: usize, gen: u64, slot: usize, word: Addr) -> Option<&crate::pe::Slot> {
        let p = &self.pes[pe];
        if !p.occupied || p.gen != gen || slot >= p.slots.len() || !self.list.contains(pe) {
            return None;
        }
        let s = &p.slots[slot];
        if !matches!(s.ti.inst, Inst::Load { .. }) {
            return None;
        }
        (s.mem_addr? >> 3 == word).then_some(s)
    }
}
