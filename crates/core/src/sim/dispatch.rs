//! Pipeline stage 5: **dispatch** — rename a fetched trace and allocate it
//! to a processing element.
//!
//! Implements trace dispatch (§2): one trace per cycle leaves the fetch
//! queue, its live-ins are renamed through the current speculative map, its
//! live-outs are allocated fresh physical registers, and it is appended at
//! the tail of the PE list — or, during CGCI insertion (§4), linked into
//! the *middle* of the window immediately before the preserved
//! control-independent trace. When the window is full during insertion,
//! the most speculative tail PE is reclaimed (squashed) to make room. The
//! dispatch bus is shared with re-dispatch passes
//! ([`redispatch`](super::redispatch)), which take priority.
//!
//! **Mutates:** the fetch queue/mode, the target PE (slots, rename maps,
//! generation), the PE list, the speculative rename-map chain, reader
//! registrations, the physical register file (allocations), and statistics.

use super::*;
use crate::pe::Slot;
use tp_trace::OperandRef;

impl TraceProcessor<'_> {
    pub(super) fn dispatch_stage(&mut self, ctx: &CycleCtx, prof: Option<&StageProfiler>) {
        if self.halted {
            return;
        }
        // Re-dispatch passes own the dispatch bus (and their own timer:
        // re-dispatch is its own stage module, merely sharing the slot).
        if self.redispatch.is_some() {
            let _t = ScopedStageTimer::new(prof, Stage::Redispatch);
            self.redispatch_step(ctx);
            return;
        }
        let _t = ScopedStageTimer::new(prof, Stage::Dispatch);
        let Some(front_ready_at) = self.fetch_queue.front().map(|p| p.ready_at) else { return };
        if ctx.now < front_ready_at {
            return;
        }
        // Pick the PE: insertion point (CGCI) or tail.
        let insert_before = match self.mode {
            FetchMode::CgciInsert { before, before_gen, .. } => {
                if !self.pes[before].occupied
                    || self.pes[before].gen != before_gen
                    || !self.list.contains(before)
                {
                    self.set_mode(FetchMode::Normal);
                    None
                } else {
                    Some(before)
                }
            }
            FetchMode::Normal => None,
        };
        // Consistency: the front trace must follow the current predecessor.
        let pred = match insert_before {
            Some(b) => self.list.prev(b),
            None => self.list.tail(),
        };
        if let Some(pred) = pred {
            let front_start = self.fetch_queue.front().expect("checked above").trace.id().start();
            if !self.successor_consistent(pred, front_start) {
                // The window changed under the queue (recovery): refetch.
                self.fetch_queue.clear();
                self.fetch_hist = self.rebuild_history();
                self.expected = self.expected_after_tail();
                return;
            }
        }
        // Find a free PE.
        let free = (0..self.cfg.num_pes).find(|&i| !self.pes[i].occupied);
        let Some(pe) = free else {
            match self.mode {
                FetchMode::CgciInsert { before, .. } => {
                    // The window filled before re-convergence: the
                    // correct control-dependent path needs more room
                    // than the squash freed, so the attempt cannot pay
                    // off. Abandon it outright — squash the preserved
                    // suffix and resume normal fetch — rather than
                    // reclaiming the suffix one tail per cycle, which
                    // made a failed attempt cost strictly more than
                    // the full squash it degenerates to.
                    let victims: Vec<usize> = {
                        let mut v = vec![before];
                        v.extend(self.list.iter_after(before));
                        v
                    };
                    if let Some(p) = self.cgci_pending.as_mut() {
                        p.squashed += victims.len() as u64;
                    }
                    for v in victims {
                        self.squash_pe(v);
                        self.stats.tail_reclaims += 1;
                    }
                    self.set_mode(FetchMode::Normal);
                    // The fetch queue holds correct-path (post-branch)
                    // traces and the fetch history tracks them; both
                    // stay — dispatch simply continues at the tail.
                    return; // dispatch resumes next cycle
                }
                FetchMode::Normal => return, // window full: stall
            }
        };
        let pending = self.fetch_queue.pop_front().expect("checked front");
        if let FetchMode::CgciInsert { ref mut inserted, .. } = self.mode {
            *inserted += 1;
        }
        self.dispatch_trace(pe, pending, insert_before, ctx);
    }

    /// Whether a trace starting at `start` is a consistent successor of the
    /// trace in `pred`. (Also used by retirement's stale-boundary safety
    /// net.)
    pub(super) fn successor_consistent(&self, pred: usize, start: Pc) -> bool {
        let t = &self.pes[pred].trace;
        match t.end() {
            EndReason::MaxLen | EndReason::Ntb => t.next_pc() == Some(start),
            EndReason::Indirect => {
                let last = self.pes[pred].slots.len() - 1;
                let s = &self.pes[pred].slots[last];
                if s.state == SlotState::Done && !s.pending_reissue {
                    s.indirect_target == Some(start as Word)
                } else {
                    true // unresolved: dispatch speculatively
                }
            }
            EndReason::Halt | EndReason::OutOfProgram => false,
        }
    }

    fn dispatch_trace(
        &mut self,
        pe: usize,
        pending: Pending,
        insert_before: Option<usize>,
        ctx: &CycleCtx,
    ) {
        let trace = pending.trace;
        let map_before = self.current_map;
        self.pes[pe].gen += 1;
        let gen = self.pes[pe].gen;
        let mut slots: Vec<Slot> = Vec::with_capacity(trace.len());
        for (i, ti) in trace.insts().iter().enumerate() {
            let mut slot = Slot::new(*ti);
            for (k, &(_, oref)) in ti.srcs.iter().flatten().enumerate() {
                let preg = match oref {
                    OperandRef::LiveIn(r) if r.is_zero() => PhysRegId::ZERO,
                    OperandRef::LiveIn(r) => map_before[r.index()],
                    OperandRef::Local(j) => {
                        slots[j as usize].dest.expect("local producer has a destination")
                    }
                };
                slot.srcs[k] = Some(preg);
            }
            if ti.dest.is_some() {
                slot.dest = Some(self.pregs.alloc(Some(pe as u8)));
            }
            slot.is_liveout = match ti.dest {
                Some(d) => trace.last_writer(d) == Some(i),
                None => false,
            };
            slots.push(slot);
        }
        let mut map_after = map_before;
        for r in trace.live_outs() {
            let w = trace.last_writer(*r).expect("live-out has a writer");
            map_after[r.index()] = slots[w].dest.expect("writer has a destination");
        }
        // Register readers.
        for (i, slot) in slots.iter().enumerate() {
            for preg in slot.srcs.iter().flatten() {
                if *preg != PhysRegId::ZERO {
                    self.readers.entry(*preg).or_default().push((pe, gen, i));
                    self.reader_count += 1;
                }
            }
        }
        let num_slots = slots.len();
        let p = &mut self.pes[pe];
        p.occupied = true;
        p.trace = trace;
        p.slots = slots;
        p.map_before = map_before;
        p.map_after = map_after;
        p.hist_before = pending.hist_before;
        p.source = pending.source;
        p.repairs = 0;
        p.dispatched_at = ctx.now;
        self.current_map = map_after;
        match insert_before {
            Some(b) => self.list.insert_before(pe, b),
            None => self.list.push_tail(pe),
        }
        // Seed the wakeup index: every slot starts Waiting; slots with
        // unproduced sources subscribe to their producers' wait lists.
        self.index_reset_pe(pe);
        for i in 0..num_slots {
            self.index_enqueue(pe, i);
        }
        self.stats.dispatched_traces += 1;
        if self.events.wants(Category::Trace) {
            let pc = self.pes[pe].trace.id().start();
            self.events.emit(
                ctx.now,
                Event::TraceDispatched {
                    pe: pe as u8,
                    pc,
                    len: num_slots.min(255) as u8,
                    cgci_insert: insert_before.is_some(),
                },
            );
        }
    }
}
