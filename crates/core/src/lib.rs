//! The trace processor: a cycle-level, execution-driven simulator of the
//! microarchitecture of *Control Independence in Trace Processors*
//! (Rotenberg & Smith, MICRO 1999).
//!
//! The processor is organized entirely around traces:
//!
//! * the **frontend** predicts the next trace with a hybrid path-based
//!   next-trace predictor, fetches it from the trace cache (constructing it
//!   through the instruction cache on a miss), renames its live-ins and
//!   live-outs, and dispatches it to a processing element (PE) — one trace
//!   per PE;
//! * **processing elements** issue up to four instructions per cycle from
//!   their trace-sized windows, bypassing intra-trace values locally and
//!   communicating inter-trace values over shared global result buses;
//! * **memory** runs through an ARB that buffers speculative store versions
//!   by sequence number so loads can issue speculatively and be selectively
//!   reissued on a violation;
//! * on a **branch misprediction** the trace is repaired in its trace
//!   buffer while younger traces keep executing. With control independence
//!   enabled, recovery preserves control-independent traces:
//!   **FGCI** (fine-grain) repairs entirely within one PE when the branch's
//!   embeddable region was padded into the trace, and **CGCI**
//!   (coarse-grain) manages the PEs as a linked list, squashing and
//!   inserting control-dependent traces in the *middle* of the window using
//!   the `RET`/`MLB-RET` heuristics to locate a global re-convergent point.
//!   A trace *re-dispatch pass* then repairs register dependences of the
//!   preserved traces, and only instructions with changed source names (or
//!   loads caught by ARB snooping) selectively reissue.
//!
//! The simulator is execution-driven: wrong-path instructions execute with
//! real (possibly wrong) values. Committed architectural state is optionally
//! verified against the [`tp_isa::func::Machine`] oracle every trace
//! ([`TraceProcessorConfig::verify_with_oracle`]).
//!
//! # Example
//!
//! ```
//! use tp_core::{CiModel, TraceProcessor, TraceProcessorConfig};
//! use tp_isa::{asm::Asm, Cond, Reg};
//!
//! let mut a = Asm::new("count");
//! let r1 = Reg::new(1);
//! a.li(r1, 100);
//! a.label("top");
//! a.addi(r1, r1, -1);
//! a.branch(Cond::Gt, r1, Reg::ZERO, "top");
//! a.halt();
//! let program = a.assemble()?;
//!
//! let config = TraceProcessorConfig::paper(CiModel::FgMlbRet);
//! let mut sim = TraceProcessor::new(&program, config);
//! let result = sim.run(1_000_000).expect("no deadlock");
//! assert!(result.halted);
//! assert!(result.stats.ipc() > 0.5);
//! # Ok::<(), tp_isa::asm::AsmError>(())
//! ```

pub mod boot;
pub mod config;
pub mod pe;
pub mod pe_list;
pub mod physreg;
pub mod sim;
pub mod stats;

pub use boot::{BootError, BootImage, WarmBoot};
pub use config::{CgciHeuristic, CiModel, ConfigError, TraceProcessorConfig};
pub use sim::{MispredictRecord, RunResult, SimError, TraceProcessor};
pub use stats::SimStats;
