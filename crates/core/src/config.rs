//! Trace processor configuration (the paper's Table 1).

use std::fmt;

use tp_predict::TracePredictorConfig;
use tp_trace::SelectionConfig;

/// An invalid parameter combination, naming the offending field so CLI
/// frontends can report it without a panic backtrace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// `num_pes` below the minimum of two.
    TooFewPes {
        /// The configured value.
        num_pes: usize,
    },
    /// `pe_issue_width` of zero.
    ZeroIssueWidth,
    /// `fgci` enabled without `fg` trace selection.
    FgciWithoutFgSelection,
    /// The `MLB-RET` heuristic without `ntb` trace selection.
    MlbWithoutNtbSelection,
    /// `result_buses_per_pe` exceeding `result_buses`.
    ResultBusesPerPe {
        /// The configured per-PE value.
        per_pe: usize,
        /// The configured total.
        total: usize,
    },
    /// `cache_buses_per_pe` exceeding `cache_buses`.
    CacheBusesPerPe {
        /// The configured per-PE value.
        per_pe: usize,
        /// The configured total.
        total: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ConfigError::TooFewPes { num_pes } => {
                write!(f, "num_pes = {num_pes}: need at least two PEs")
            }
            ConfigError::ZeroIssueWidth => {
                write!(f, "pe_issue_width = 0: issue width must be non-zero")
            }
            ConfigError::FgciWithoutFgSelection => {
                write!(f, "fgci = true: FGCI recovery requires fg trace selection")
            }
            ConfigError::MlbWithoutNtbSelection => {
                write!(f, "cgci = MLB-RET: requires ntb trace selection to expose loop exits")
            }
            ConfigError::ResultBusesPerPe { per_pe, total } => {
                write!(f, "result_buses_per_pe = {per_pe}: exceeds result_buses = {total}")
            }
            ConfigError::CacheBusesPerPe { per_pe, total } => {
                write!(f, "cache_buses_per_pe = {per_pe}: exceeds cache_buses = {total}")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Which coarse-grain control independence heuristic the frontend uses to
/// locate a trace-level re-convergent point (paper Section 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CgciHeuristic {
    /// `RET`: the trace following the nearest return-ending trace is assumed
    /// control independent.
    Ret,
    /// `MLB-RET`: for mispredicted backward branches, the nearest trace
    /// starting at the branch's not-taken target; otherwise `RET`.
    MlbRet,
}

/// The control-independence models evaluated in the paper's Section 6.2,
/// plus the selection-only baselines of Section 6.1.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CiModel {
    /// No control independence: every misprediction squashes all younger
    /// traces (`base` family).
    None,
    /// Coarse-grain only, `RET` heuristic (default trace selection).
    Ret,
    /// Coarse-grain only, `MLB-RET` heuristic (requires `ntb` selection).
    MlbRet,
    /// Fine-grain only (requires `fg` selection).
    Fg,
    /// Fine-grain plus coarse-grain `MLB-RET` (requires `fg` + `ntb`).
    FgMlbRet,
}

impl CiModel {
    /// The paper's name for this model.
    pub fn name(self) -> &'static str {
        match self {
            CiModel::None => "base",
            CiModel::Ret => "RET",
            CiModel::MlbRet => "MLB-RET",
            CiModel::Fg => "FG",
            CiModel::FgMlbRet => "FG+MLB-RET",
        }
    }

    /// The trace selection each model uses (Section 6.2 pairs each CI model
    /// with the selection constraints that expose its re-convergent points).
    pub fn selection(self) -> SelectionConfig {
        match self {
            CiModel::None | CiModel::Ret => SelectionConfig::base(),
            CiModel::MlbRet => SelectionConfig::with_ntb(),
            CiModel::Fg => SelectionConfig::with_fg(),
            CiModel::FgMlbRet => SelectionConfig::with_fg_ntb(),
        }
    }
}

/// Full configuration of the trace processor (defaults follow Table 1).
#[derive(Clone, Debug)]
pub struct TraceProcessorConfig {
    /// Number of processing elements (16).
    pub num_pes: usize,
    /// Issue width per PE (4).
    pub pe_issue_width: usize,
    /// Trace selection configuration (max trace length 32 plus the
    /// `ntb`/`fg` constraints).
    pub selection: SelectionConfig,
    /// Enable fine-grain control independence recovery.
    pub fgci: bool,
    /// Enable coarse-grain control independence recovery with a heuristic.
    pub cgci: Option<CgciHeuristic>,
    /// Maximum control-dependent traces a CGCI attempt may squash between
    /// the mispredicted branch and the assumed re-convergent trace. A
    /// longer gap means the frontend must refill that many traces before
    /// re-convergence can even be detected, while the preserved suffix sits
    /// on mostly-invalidated data — at that distance a full squash is
    /// cheaper. The heuristics target *near* re-convergent points (§4.2:
    /// loop exits, return continuations), so a small bound keeps their
    /// profitable firings.
    pub cgci_max_dependent: usize,
    /// Frontend latency in cycles from prediction to dispatch (2).
    pub frontend_latency: u64,
    /// Global result buses per cycle (8).
    pub result_buses: usize,
    /// Result buses usable by one PE per cycle (4).
    pub result_buses_per_pe: usize,
    /// Cache buses per cycle (8).
    pub cache_buses: usize,
    /// Cache buses usable by one PE per cycle (4).
    pub cache_buses_per_pe: usize,
    /// Extra bypass latency for inter-PE (global) values (1).
    pub bypass_latency: u64,
    /// Address generation latency for loads/stores (1).
    pub agen_latency: u64,
    /// Penalty when a load reissues due to a snoop hit (1).
    pub load_reissue_penalty: u64,
    /// Next-trace predictor configuration.
    pub predictor: TracePredictorConfig,
    /// BTB entries (16K, tagless).
    pub btb_entries: usize,
    /// Return address stack depth.
    pub ras_depth: usize,
    /// BIT entries (8K) and associativity (4).
    pub bit_entries: usize,
    /// BIT associativity.
    pub bit_ways: usize,
    /// Trace cache sets (256) and ways (4).
    pub tcache_sets: usize,
    /// Trace cache ways.
    pub tcache_ways: usize,
    /// Verify committed state against the functional oracle at every trace
    /// retirement (slow; intended for tests).
    pub verify_with_oracle: bool,
    /// Record the PC of every retired mispredicted conditional branch
    /// (diagnostics; off by default — the log grows with mispredictions).
    pub log_mispredicts: bool,
    /// Check every CGCI re-convergence detection against the static
    /// post-dominator analysis (`tp-cfg`) and abort with
    /// [`SimError::OracleMismatch`](crate::SimError::OracleMismatch) on an
    /// unclassifiable detection. Read-only: the check never alters model
    /// behaviour. Also enabled by the `TP_CFG_ORACLE` environment
    /// variable (read once at construction).
    ///
    /// [`SimError::OracleMismatch`]: crate::SimError::OracleMismatch
    pub cfg_oracle: bool,
    /// Abort the run if no instruction retires for this many cycles.
    pub deadlock_cycles: u64,
    /// Re-introduces a fixed recovery bug — during CGCI insertion, a
    /// stalled fetch whose entire control-dependent upstream has retired
    /// keeps stalling instead of falling back to the committed frontier,
    /// wedging the machine. Exists solely so the differential fuzzer's
    /// shrinker can be self-tested against a known-bad machine
    /// (`tp-fuzz`); never set this outside tests.
    #[doc(hidden)]
    pub inject_cgci_stall_bug: bool,
}

impl TraceProcessorConfig {
    /// The paper's Table 1 configuration with the given control-independence
    /// model (which also fixes the trace selection constraints).
    pub fn paper(model: CiModel) -> TraceProcessorConfig {
        let (fgci, cgci) = match model {
            CiModel::None => (false, None),
            CiModel::Ret => (false, Some(CgciHeuristic::Ret)),
            CiModel::MlbRet => (false, Some(CgciHeuristic::MlbRet)),
            CiModel::Fg => (true, None),
            CiModel::FgMlbRet => (true, Some(CgciHeuristic::MlbRet)),
        };
        TraceProcessorConfig {
            num_pes: 16,
            pe_issue_width: 4,
            selection: model.selection(),
            fgci,
            cgci,
            cgci_max_dependent: 2,
            frontend_latency: 2,
            result_buses: 8,
            result_buses_per_pe: 4,
            cache_buses: 8,
            cache_buses_per_pe: 4,
            bypass_latency: 1,
            agen_latency: 1,
            load_reissue_penalty: 1,
            predictor: TracePredictorConfig::paper(),
            btb_entries: 16 * 1024,
            ras_depth: 64,
            bit_entries: 8192,
            bit_ways: 4,
            tcache_sets: 256,
            tcache_ways: 4,
            verify_with_oracle: false,
            log_mispredicts: false,
            cfg_oracle: false,
            deadlock_cycles: 50_000,
            inject_cgci_stall_bug: false,
        }
    }

    /// A selection-only baseline (`base`, `base(ntb)`, `base(fg)`,
    /// `base(fg,ntb)`): no control independence, custom selection.
    pub fn baseline(selection: SelectionConfig) -> TraceProcessorConfig {
        TraceProcessorConfig { selection, ..TraceProcessorConfig::paper(CiModel::None) }
    }

    /// A small configuration (4 PEs, length-8 traces, tiny predictor) for
    /// fast unit tests.
    pub fn small(model: CiModel) -> TraceProcessorConfig {
        let mut c = TraceProcessorConfig::paper(model);
        c.num_pes = 4;
        c.selection.max_len = 8;
        c.predictor = TracePredictorConfig::tiny();
        c.btb_entries = 256;
        c.tcache_sets = 16;
        c.deadlock_cycles = 20_000;
        c
    }

    /// Enables per-trace verification against the functional oracle.
    pub fn with_oracle(mut self) -> TraceProcessorConfig {
        self.verify_with_oracle = true;
        self
    }

    /// Enables the static-CFG re-convergence oracle
    /// (see [`TraceProcessorConfig::cfg_oracle`]).
    pub fn with_cfg_oracle(mut self) -> TraceProcessorConfig {
        self.cfg_oracle = true;
        self
    }

    /// Checks internal consistency, reporting the offending field.
    ///
    /// # Errors
    ///
    /// Returns a [`ConfigError`] if the model's requirements are violated
    /// (e.g. FGCI without `fg` selection, MLB-RET without `ntb` selection,
    /// zero sizes).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_pes < 2 {
            return Err(ConfigError::TooFewPes { num_pes: self.num_pes });
        }
        if self.pe_issue_width < 1 {
            return Err(ConfigError::ZeroIssueWidth);
        }
        if self.fgci && !self.selection.fg {
            return Err(ConfigError::FgciWithoutFgSelection);
        }
        if self.cgci == Some(CgciHeuristic::MlbRet) && !self.selection.ntb {
            return Err(ConfigError::MlbWithoutNtbSelection);
        }
        if self.result_buses_per_pe > self.result_buses {
            return Err(ConfigError::ResultBusesPerPe {
                per_pe: self.result_buses_per_pe,
                total: self.result_buses,
            });
        }
        if self.cache_buses_per_pe > self.cache_buses {
            return Err(ConfigError::CacheBusesPerPe {
                per_pe: self.cache_buses_per_pe,
                total: self.cache_buses,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_models_pick_matching_selection() {
        assert!(!TraceProcessorConfig::paper(CiModel::Ret).selection.ntb);
        assert!(TraceProcessorConfig::paper(CiModel::MlbRet).selection.ntb);
        assert!(TraceProcessorConfig::paper(CiModel::Fg).selection.fg);
        let c = TraceProcessorConfig::paper(CiModel::FgMlbRet);
        assert!(c.selection.fg && c.selection.ntb);
        c.validate().unwrap();
    }

    #[test]
    fn model_names_match_paper() {
        assert_eq!(CiModel::None.name(), "base");
        assert_eq!(CiModel::Ret.name(), "RET");
        assert_eq!(CiModel::MlbRet.name(), "MLB-RET");
        assert_eq!(CiModel::Fg.name(), "FG");
        assert_eq!(CiModel::FgMlbRet.name(), "FG+MLB-RET");
    }

    #[test]
    fn fgci_without_fg_selection_is_invalid() {
        let mut c = TraceProcessorConfig::paper(CiModel::Fg);
        c.selection.fg = false;
        let err = c.validate().unwrap_err();
        assert_eq!(err, ConfigError::FgciWithoutFgSelection);
        assert!(err.to_string().contains("requires fg"), "{err}");
    }

    #[test]
    fn mlb_without_ntb_selection_is_invalid() {
        let mut c = TraceProcessorConfig::paper(CiModel::MlbRet);
        c.selection.ntb = false;
        let err = c.validate().unwrap_err();
        assert_eq!(err, ConfigError::MlbWithoutNtbSelection);
        assert!(err.to_string().contains("requires ntb"), "{err}");
    }

    #[test]
    fn errors_name_the_offending_field() {
        let mut c = TraceProcessorConfig::paper(CiModel::None);
        c.num_pes = 1;
        assert!(c.validate().unwrap_err().to_string().contains("num_pes = 1"));
        let mut c = TraceProcessorConfig::paper(CiModel::None);
        c.result_buses_per_pe = 99;
        assert!(c.validate().unwrap_err().to_string().contains("result_buses_per_pe = 99"));
        let mut c = TraceProcessorConfig::paper(CiModel::None);
        c.cache_buses_per_pe = 9;
        c.cache_buses = 8;
        assert!(c.validate().unwrap_err().to_string().contains("cache_buses_per_pe = 9"));
        let mut c = TraceProcessorConfig::paper(CiModel::None);
        c.pe_issue_width = 0;
        assert!(c.validate().unwrap_err().to_string().contains("pe_issue_width"));
    }

    #[test]
    fn baseline_has_no_ci() {
        let c = TraceProcessorConfig::baseline(SelectionConfig::with_fg_ntb());
        assert!(!c.fgci);
        assert!(c.cgci.is_none());
        c.validate().unwrap();
    }
}
