//! Processing elements and their instruction slots.

use std::sync::Arc;

use tp_isa::{Addr, Pc, Word};
use tp_predict::TraceHistory;
use tp_stats::attr::AttrKey;
use tp_trace::{Trace, TraceInst};

use crate::physreg::{PhysRegId, RenameMap};

/// Execution state of one instruction slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlotState {
    /// Not issued (or selectively reissued): waiting for operands and an
    /// issue port.
    Waiting,
    /// Issued; completes at the contained cycle.
    Executing {
        /// Cycle at which execution completes.
        done_at: u64,
    },
    /// Load/store after address generation, waiting for a cache bus.
    WaitingBus {
        /// Cycle at which the wait began (for occupancy accounting).
        since: u64,
    },
    /// Load/store granted a bus, accessing memory.
    MemAccess {
        /// Cycle at which the access completes.
        done_at: u64,
    },
    /// Completed (may still reissue if an input value changes).
    Done,
}

/// A misprediction discovered by executing a slot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Conditional branch resolved against its embedded outcome.
    CondBranch {
        /// The actual outcome.
        actual: bool,
    },
    /// Trace-ending indirect transfer resolved to a different target than
    /// the dispatched/predicted successor.
    Indirect {
        /// The actual target (`None` when it leaves the program image —
        /// possible only on wrong paths).
        actual: Option<Pc>,
    },
}

/// One instruction slot in a PE.
#[derive(Clone, Debug)]
pub struct Slot {
    /// The trace instruction occupying the slot.
    pub ti: TraceInst,
    /// Resolved source physical registers.
    pub srcs: [Option<PhysRegId>; 2],
    /// Destination physical register.
    pub dest: Option<PhysRegId>,
    /// Whether the destination is a trace live-out (its value crosses PEs
    /// via a global result bus).
    pub is_liveout: bool,
    /// Execution state.
    pub state: SlotState,
    /// A new input arrived while in flight / after completion: reissue.
    pub pending_reissue: bool,
    /// The slot must not issue before this cycle (load snoop penalty).
    pub not_before: u64,
    /// Latest computed destination value.
    pub value: Word,
    /// Whether `value` has been produced at least once.
    pub has_value: bool,
    /// Latest computed branch outcome.
    pub outcome: Option<bool>,
    /// Latest computed indirect target.
    pub indirect_target: Option<Word>,
    /// Effective address currently held in the ARB for a performed store, or
    /// the address the last load read from.
    pub mem_addr: Option<Addr>,
    /// For loads: the sequence handle of the store that supplied the data
    /// (`None` = architectural memory).
    pub load_src: Option<u64>,
    /// For stores: whether a version is currently in the ARB.
    pub store_performed: bool,
    /// Unresolved misprediction discovered by this slot.
    pub fault: Option<Fault>,
    /// How many times the slot issued (statistics).
    pub issues: u32,
    /// Set when a repair replaced this slot's embedded outcome (the slot's
    /// original prediction was wrong); counted at retirement.
    pub was_mispredicted: bool,
    /// Attribution-ledger coordinate of the last recovery this slot's
    /// misprediction went through (class, heuristic, outcome); `None` until
    /// the slot faults. Observation-only.
    pub attr: Option<AttrKey>,
}

impl Slot {
    /// Creates a fresh slot for `ti` (operands bound later by rename).
    pub fn new(ti: TraceInst) -> Slot {
        Slot {
            ti,
            srcs: [None; 2],
            dest: None,
            is_liveout: false,
            state: SlotState::Waiting,
            pending_reissue: false,
            not_before: 0,
            value: 0,
            has_value: false,
            outcome: None,
            indirect_target: None,
            mem_addr: None,
            load_src: None,
            store_performed: false,
            fault: None,
            issues: 0,
            was_mispredicted: false,
            attr: None,
        }
    }

    /// Whether the slot has finished (and no reissue is pending).
    pub fn is_complete(&self) -> bool {
        self.state == SlotState::Done && !self.pending_reissue && self.fault.is_none()
    }

    /// Marks the slot for selective reissue: back to `Waiting` if it already
    /// completed, or flagged to requeue on completion if in flight.
    ///
    /// Returns `true` when this call *transitioned* the slot into
    /// `Waiting` — the core uses that as its lifecycle hook to re-enqueue
    /// the slot in the event-driven wakeup index (a slot that was already
    /// `Waiting` is already indexed; an in-flight slot is re-enqueued when
    /// its discarded completion arrives).
    #[must_use = "a transition into Waiting must be re-enqueued in the wakeup index"]
    pub fn mark_reissue(&mut self, not_before: u64) -> bool {
        self.not_before = self.not_before.max(not_before);
        match self.state {
            SlotState::Done => {
                self.state = SlotState::Waiting;
                self.pending_reissue = false;
                true
            }
            SlotState::Waiting => false,
            _ => {
                self.pending_reissue = true;
                false
            }
        }
    }
}

/// Why a PE's trace was fetched (statistics and predictor training).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FetchSource {
    /// Predicted by the next-trace predictor and found in the trace cache.
    PredictedHit,
    /// Predicted by the next-trace predictor, constructed on a trace cache
    /// miss.
    PredictedMiss,
    /// No prediction: constructed from the fall-through PC with the BTB.
    Fallback,
}

/// A processing element: holds one trace and its execution state.
#[derive(Clone, Debug)]
pub struct Pe {
    /// Whether a trace currently occupies the PE.
    pub occupied: bool,
    /// Generation counter, bumped on every (re)allocation; stale references
    /// (bus queues, reader lists) are validated against it.
    pub gen: u64,
    /// The trace (kept in sync with repairs).
    pub trace: Arc<Trace>,
    /// Instruction slots, one per trace instruction.
    pub slots: Vec<Slot>,
    /// Rename map checkpoint *before* this trace.
    pub map_before: RenameMap,
    /// Rename map *after* this trace (before = after of the previous PE).
    pub map_after: RenameMap,
    /// Speculative fetch history checkpoint taken before this trace was
    /// predicted (restored on recovery).
    pub hist_before: TraceHistory,
    /// How the trace entered the window.
    pub source: FetchSource,
    /// Times the trace was repaired in place (committed-path trace
    /// mispredictions when it retires).
    pub repairs: u32,
    /// Cycle the trace was dispatched.
    pub dispatched_at: u64,
}

impl Pe {
    /// Creates an empty PE (placeholder trace replaced at first dispatch).
    pub fn empty(hist: TraceHistory) -> Pe {
        use tp_isa::Inst;
        use tp_trace::{EndReason, TraceId};
        let dummy = Arc::new(Trace::assemble(
            TraceId::new(0, 0, 0),
            &[(0, Inst::Nop, None, false)],
            EndReason::MaxLen,
            Some(0),
        ));
        Pe {
            occupied: false,
            gen: 0,
            trace: dummy,
            slots: Vec::new(),
            map_before: [PhysRegId::ZERO; tp_isa::Reg::COUNT],
            map_after: [PhysRegId::ZERO; tp_isa::Reg::COUNT],
            hist_before: hist,
            source: FetchSource::Fallback,
            repairs: 0,
            dispatched_at: 0,
        }
    }

    /// Index of the oldest slot holding an unresolved fault.
    pub fn first_fault(&self) -> Option<usize> {
        self.slots.iter().position(|s| s.fault.is_some())
    }

    /// Whether every slot has completed (trace is ready to retire, pending
    /// the logical-order checks done by the core).
    pub fn all_complete(&self) -> bool {
        self.slots.iter().all(Slot::is_complete)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_isa::{AluOp, Inst, Reg};
    use tp_trace::OperandRef;

    fn ti(inst: Inst) -> TraceInst {
        TraceInst {
            pc: 0,
            inst,
            embedded_taken: None,
            srcs: [None, None],
            dest: inst.dest(),
            fgci_covered: false,
        }
    }

    #[test]
    fn fresh_slot_is_waiting() {
        let s = Slot::new(ti(Inst::Nop));
        assert_eq!(s.state, SlotState::Waiting);
        assert!(!s.is_complete());
    }

    #[test]
    fn mark_reissue_from_done_requeues() {
        let mut s = Slot::new(ti(Inst::Nop));
        s.state = SlotState::Done;
        assert!(s.mark_reissue(5));
        assert_eq!(s.state, SlotState::Waiting);
        assert!(!s.pending_reissue);
        assert_eq!(s.not_before, 5);
    }

    #[test]
    fn mark_reissue_in_flight_sets_flag() {
        let mut s = Slot::new(ti(Inst::Nop));
        s.state = SlotState::Executing { done_at: 9 };
        assert!(!s.mark_reissue(3));
        assert_eq!(s.state, SlotState::Executing { done_at: 9 });
        assert!(s.pending_reissue);
    }

    #[test]
    fn completion_requires_no_fault_and_no_reissue() {
        let mut s = Slot::new(ti(Inst::Nop));
        s.state = SlotState::Done;
        assert!(s.is_complete());
        s.fault = Some(Fault::CondBranch { actual: true });
        assert!(!s.is_complete());
        s.fault = None;
        s.pending_reissue = true;
        assert!(!s.is_complete());
    }

    #[test]
    fn pe_first_fault_finds_oldest() {
        let mut pe = Pe::empty(TraceHistory::new(4));
        pe.slots =
            vec![Slot::new(ti(Inst::Nop)), Slot::new(ti(Inst::Nop)), Slot::new(ti(Inst::Nop))];
        assert_eq!(pe.first_fault(), None);
        pe.slots[2].fault = Some(Fault::CondBranch { actual: false });
        pe.slots[1].fault = Some(Fault::CondBranch { actual: true });
        assert_eq!(pe.first_fault(), Some(1));
    }

    #[test]
    fn operand_ref_metadata_survives_in_slot() {
        let inst = Inst::Alu { op: AluOp::Add, rd: Reg::new(1), rs: Reg::new(2), rt: Reg::new(3) };
        let mut t = ti(inst);
        t.srcs = [
            Some((Reg::new(2), OperandRef::LiveIn(Reg::new(2)))),
            Some((Reg::new(3), OperandRef::Local(0))),
        ];
        let s = Slot::new(t);
        assert_eq!(s.ti.srcs[1], Some((Reg::new(3), OperandRef::Local(0))));
    }
}
