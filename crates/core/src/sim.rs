//! The cycle-level trace processor simulator.
//!
//! See the crate-level docs for the big picture. The simulator advances one
//! cycle at a time through seven phases:
//!
//! 1. **complete** — finish in-flight instructions, publish values, verify
//!    branch outcomes and indirect targets (registering faults);
//! 2. **retire** — commit the head trace when every slot has completed;
//! 3. **recovery** — start/apply misprediction recoveries (oldest first),
//!    including FGCI/CGCI preservation decisions and squashes;
//! 4. **fetch** — predict the next trace, probe the trace cache, construct
//!    missing traces through the instruction cache;
//! 5. **dispatch** — rename and allocate one trace per cycle to a PE (or run
//!    one step of a re-dispatch pass — the dispatch bus is shared);
//! 6. **issue** — select up to four ready instructions per PE and begin
//!    execution (values are computed here: the simulator is
//!    execution-driven, wrong paths execute for real);
//! 7. **buses** — arbitrate the shared cache buses (ARB/data cache access,
//!    store snooping) and global result buses (inter-PE value bypass).

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::Arc;

use tp_cache::{Arb, DCache, ICache, SeqHandle, TraceCache};
use tp_isa::func::{effective_address, ArchState, Machine};
use tp_isa::{Addr, Inst, Pc, Program, Reg, Word};
use tp_predict::{Btb, NextTracePredictor, Ras, TraceHistory};
use tp_trace::{Bit, EndReason, OperandRef, OutcomeSource, Selector, Trace, TraceId};

use crate::config::{CgciHeuristic, TraceProcessorConfig};
use crate::pe::{Fault, FetchSource, Pe, Slot, SlotState};
use crate::pe_list::PeList;
use crate::physreg::{PhysRegFile, PhysRegId, RenameMap};
use crate::stats::SimStats;

/// Errors terminating a simulation abnormally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// No instruction retired for the configured number of cycles.
    Deadlock {
        /// Cycle at which the watchdog fired.
        cycle: u64,
        /// Human-readable window dump.
        detail: String,
    },
    /// Committed state diverged from the functional oracle
    /// (only with [`TraceProcessorConfig::verify_with_oracle`]).
    OracleMismatch {
        /// Cycle of the divergence.
        cycle: u64,
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock { cycle, detail } => {
                write!(f, "deadlock at cycle {cycle}: {detail}")
            }
            SimError::OracleMismatch { cycle, detail } => {
                write!(f, "oracle mismatch at cycle {cycle}: {detail}")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// Result of [`TraceProcessor::run`].
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Whether the program executed its `Halt`.
    pub halted: bool,
    /// Statistics at the end of the run.
    pub stats: SimStats,
}

/// What PC the frontend expects to fetch next.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ExpectedNext {
    /// Certain: a static fall-through or a resolved indirect target. A
    /// next-trace prediction that contradicts it is discarded.
    Known(Pc),
    /// A RAS/BTB guess after an unresolved indirect transfer. Used as the
    /// fallback sequencing point, but the next-trace predictor wins when it
    /// has an opinion (predicting through returns is its whole point).
    Predicted(Pc),
    /// Unknown until recovery or an indirect resolution redirects fetch.
    Stalled,
}

/// Frontend mode: normal tail dispatch, or CGCI insertion before a
/// preserved control-independent trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FetchMode {
    Normal,
    CgciInsert { before: usize, before_gen: u64, reconv_start: Pc, inserted: usize },
}

/// A trace fetched but not yet dispatched (an outstanding trace buffer).
#[derive(Clone, Debug)]
struct Pending {
    trace: Arc<Trace>,
    ready_at: u64,
    hist_before: TraceHistory,
    source: FetchSource,
}

/// Recovery plan decided at fault detection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RecoveryPlan {
    Fgci,
    Cgci,
    Full,
}

/// An in-progress branch-misprediction recovery.
#[derive(Clone, Debug)]
struct Recovery {
    pe: usize,
    gen: u64,
    slot: usize,
    repaired: Arc<Trace>,
    ready_at: u64,
    plan: RecoveryPlan,
}

/// A re-dispatch pass over preserved (control independent) traces.
#[derive(Clone, Debug)]
struct RedispatchPass {
    queue: VecDeque<usize>,
    rolling: TraceHistory,
    origin: &'static str,
}

#[derive(Clone, Copy, Debug)]
struct BusReq {
    pe: usize,
    gen: u64,
    slot: usize,
    since: u64,
}

/// The trace processor simulator.
///
/// See the [crate-level example](crate) for typical use.
pub struct TraceProcessor<'p> {
    program: &'p Program,
    cfg: TraceProcessorConfig,
    // Substrates.
    selector: Selector,
    bit: Bit,
    btb: Btb,
    ras: Ras,
    predictor: NextTracePredictor,
    tcache: TraceCache,
    icache: ICache,
    dcache: DCache,
    arb: Arb,
    // Window.
    pes: Vec<Pe>,
    list: PeList,
    pregs: PhysRegFile,
    readers: HashMap<PhysRegId, Vec<(usize, u64, usize)>>,
    current_map: RenameMap,
    /// Architectural rename map of *retired* state: the physical register
    /// holding each architectural register's committed value.
    retired_map: RenameMap,
    // Frontend.
    fetch_hist: TraceHistory,
    retire_hist: TraceHistory,
    fetch_queue: VecDeque<Pending>,
    expected: ExpectedNext,
    mode: FetchMode,
    construction_busy_until: u64,
    recovery: Option<Recovery>,
    redispatch: Option<RedispatchPass>,
    // Buses.
    cache_bus_queue: VecDeque<BusReq>,
    result_bus_queue: VecDeque<BusReq>,
    // Architectural state.
    arch_regs: [Word; Reg::COUNT],
    oracle: Option<Machine<'p>>,
    // Time.
    now: u64,
    last_retire_cycle: u64,
    halted: bool,
    stats: SimStats,
}

impl<'p> TraceProcessor<'p> {
    /// Creates a simulator for `program`.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent
    /// (see [`TraceProcessorConfig::validate`]).
    pub fn new(program: &'p Program, cfg: TraceProcessorConfig) -> TraceProcessor<'p> {
        cfg.validate();
        let mut pregs = PhysRegFile::new();
        // Architectural registers start as ready physical registers.
        let mut arch_map = [PhysRegId::ZERO; Reg::COUNT];
        for r in Reg::all().skip(1) {
            arch_map[r.index()] = pregs.alloc_ready(0);
        }
        let hist = TraceHistory::new(cfg.predictor.path_depth);
        let pes = (0..cfg.num_pes).map(|_| Pe::empty(hist.clone())).collect();
        let oracle = cfg.verify_with_oracle.then(|| Machine::new(program));
        TraceProcessor {
            program,
            selector: Selector::new(cfg.selection),
            bit: Bit::new(cfg.bit_entries, cfg.bit_ways),
            btb: Btb::new(cfg.btb_entries),
            ras: Ras::new(cfg.ras_depth),
            predictor: NextTracePredictor::new(cfg.predictor),
            tcache: TraceCache::new(cfg.tcache_sets, cfg.tcache_ways),
            icache: ICache::paper(),
            dcache: DCache::paper(),
            arb: Arb::new(program.data()),
            pes,
            list: PeList::new(cfg.num_pes),
            pregs,
            readers: HashMap::new(),
            current_map: arch_map,
            retired_map: arch_map,
            fetch_hist: hist.clone(),
            retire_hist: hist,
            fetch_queue: VecDeque::new(),
            expected: ExpectedNext::Known(program.entry()),
            mode: FetchMode::Normal,
            construction_busy_until: 0,
            recovery: None,
            redispatch: None,
            cache_bus_queue: VecDeque::new(),
            result_bus_queue: VecDeque::new(),
            arch_regs: [0; Reg::COUNT],
            oracle,
            now: 0,
            last_retire_cycle: 0,
            halted: false,
            stats: SimStats::default(),
            cfg,
        }
    }

    /// The simulator's configuration.
    pub fn config(&self) -> &TraceProcessorConfig {
        &self.cfg
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Committed architectural state (registers plus memory), normalized for
    /// comparison with [`Machine::arch_state`].
    pub fn arch_state(&self) -> ArchState {
        ArchState { regs: self.arch_regs, mem: self.arb.arch_mem() }
    }

    /// Whether the program's `Halt` has retired.
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Current cycle.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Runs until the program halts or `max_instrs` instructions retire.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] if no instruction retires for the
    /// configured watchdog window, or [`SimError::OracleMismatch`] when
    /// oracle verification is enabled and committed state diverges.
    pub fn run(&mut self, max_instrs: u64) -> Result<RunResult, SimError> {
        while !self.halted && self.stats.retired_instrs < max_instrs {
            self.step_cycle()?;
            if self.now - self.last_retire_cycle > self.cfg.deadlock_cycles {
                return Err(SimError::Deadlock { cycle: self.now, detail: self.dump_window() });
            }
        }
        Ok(RunResult { halted: self.halted, stats: self.stats })
    }

    /// Advances the simulation by one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::OracleMismatch`] under oracle verification.
    pub fn step_cycle(&mut self) -> Result<(), SimError> {
        self.complete_stage();
        self.paranoid_check("complete");
        self.retire_stage()?;
        self.paranoid_check("retire");
        self.recovery_stage();
        self.paranoid_check("recovery");
        self.fetch_stage();
        self.paranoid_check("fetch");
        self.dispatch_stage();
        self.paranoid_check("dispatch");
        self.issue_stage();
        self.bus_stage();
        self.now += 1;
        self.stats.cycles = self.now;
        Ok(())
    }

    /// Window-wide rename invariant: a trace's `map_before` must never
    /// reference a physical register produced by that trace or any younger
    /// trace. Gated behind `TP_PARANOID` because it is O(window^2).
    fn paranoid_check(&self, stage: &str) {
        if !std::env::var("TP_PARANOID").is_ok() {
            return;
        }
        let order: Vec<usize> = self.list.iter().collect();
        for (qi, &q) in order.iter().enumerate() {
            for r in Reg::all().skip(1) {
                let preg = self.pes[q].map_before[r.index()];
                for &younger in &order[qi..] {
                    for (si, sl) in self.pes[younger].slots.iter().enumerate() {
                        if sl.dest == Some(preg) {
                            panic!(
                                "cycle {} after {stage}: pe{q} map_before[{r}] = {preg:?} \
                                 is produced by pe{younger} slot {si} (not older)\n{}",
                                self.now,
                                self.dump_window()
                            );
                        }
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Helpers.

    fn handle(pe: usize, slot: usize) -> SeqHandle {
        SeqHandle(((pe as u64) << 8) | slot as u64)
    }

    /// Logical memory-order key of a sequence handle, derived from the PE
    /// linked list (the paper's physical-to-logical translation). Handles
    /// whose PE has left the window (a retired store that supplied a load's
    /// data, or a squashed store whose undo-triggered reissue has not run
    /// yet) rank as architectural memory — older than everything live.
    fn seq_key(&self, h: SeqHandle) -> u64 {
        let pe = (h.0 >> 8) as usize;
        let slot = h.0 & 0xff;
        if !self.list.contains(pe) {
            return 0;
        }
        // +1 so that key 0 is reserved for "architectural memory".
        ((self.list.logical(pe) + 1) << 8) | slot
    }

    fn dump_window(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(s, "mode={:?} recovery={:?} expected={:?} queue={} ", self.mode, self.recovery.as_ref().map(|r| (r.pe, r.slot, r.ready_at)), self.expected, self.fetch_queue.len());
        for pe in self.list.iter() {
            let p = &self.pes[pe];
            let waiting = p.slots.iter().filter(|s| s.state == SlotState::Waiting).count();
            let done = p.slots.iter().filter(|s| s.state == SlotState::Done).count();
            let _ = write!(
                s,
                "| pe{pe} {} len={} done={done} waiting={waiting} fault={:?} ",
                p.trace.id(),
                p.slots.len(),
                p.first_fault()
            );
            for (i, sl) in p.slots.iter().enumerate() {
                if sl.state != SlotState::Done || sl.pending_reissue {
                    let vals: Vec<(u32, Word, bool)> = sl
                        .srcs
                        .iter()
                        .flatten()
                        .map(|&pp| {
                            let r = self.pregs.get(pp);
                            (pp.0, r.value, r.ready)
                        })
                        .collect();
                    let _ = write!(
                        s,
                        "[slot {i} {:?} state={:?} pr={} nb={} iss={} srcs={vals:?}] ",
                        sl.ti.inst, sl.state, sl.pending_reissue, sl.not_before, sl.issues
                    );
                }
            }
        }
        s
    }

    fn register_reader(&mut self, preg: PhysRegId, pe: usize, slot: usize) {
        if preg == PhysRegId::ZERO {
            return;
        }
        let gen = self.pes[pe].gen;
        self.readers.entry(preg).or_default().push((pe, gen, slot));
    }

    /// Marks every live consumer of `preg` for selective reissue.
    fn propagate_value_change(&mut self, preg: PhysRegId, not_before: u64) {
        let Some(list) = self.readers.get_mut(&preg) else { return };
        let entries = std::mem::take(list);
        let mut kept = Vec::with_capacity(entries.len());
        for (pe, gen, slot) in entries {
            let p = &mut self.pes[pe];
            if p.occupied && p.gen == gen && slot < p.slots.len() {
                // Only reissue if this slot still actually reads the preg.
                if p.slots[slot].srcs.iter().flatten().any(|&s| s == preg) {
                    p.slots[slot].mark_reissue(not_before);
                    kept.push((pe, gen, slot));
                }
            }
        }
        *self.readers.entry(preg).or_default() = kept;
    }

    // ------------------------------------------------------------------
    // Stage 1: completion.

    fn complete_stage(&mut self) {
        let now = self.now;
        for pe in 0..self.pes.len() {
            if !self.pes[pe].occupied {
                continue;
            }
            for slot in 0..self.pes[pe].slots.len() {
                let done_at = match self.pes[pe].slots[slot].state {
                    SlotState::Executing { done_at } | SlotState::MemAccess { done_at } => done_at,
                    _ => continue,
                };
                if done_at > now {
                    continue;
                }
                self.complete_slot(pe, slot);
            }
        }
    }

    fn complete_slot(&mut self, pe: usize, slot: usize) {
        let now = self.now;
        {
            let s = &mut self.pes[pe].slots[slot];
            if s.pending_reissue {
                // A newer input arrived while in flight: discard and requeue.
                s.pending_reissue = false;
                s.state = SlotState::Waiting;
                return;
            }
            s.state = SlotState::Done;
        }
        // Publish the destination value.
        let (dest, value, is_liveout) = {
            let s = &self.pes[pe].slots[slot];
            (s.dest, s.value, s.is_liveout)
        };
        if let Some(d) = dest {
            let (first_production, value_changed) = {
                let r = self.pregs.get_mut(d);
                let first = !r.ready;
                let changed = r.ready && r.value != value;
                r.value = value;
                r.ready = true;
                r.local_ready_at = now;
                // Live-out values re-arm global visibility and (re)request a
                // result bus; local values are never read by other PEs.
                r.global_ready_at = if is_liveout { u64::MAX } else { now };
                (first, changed)
            };
            if is_liveout {
                self.result_bus_queue.push_back(BusReq { pe, gen: self.pes[pe].gen, slot, since: now });
            }
            if !first_production && value_changed {
                self.propagate_value_change(d, now + 1);
            }
        }
        self.pes[pe].slots[slot].has_value = true;
        // Verify control instructions.
        let inst = self.pes[pe].slots[slot].ti.inst;
        if inst.is_cond_branch() {
            let s = &mut self.pes[pe].slots[slot];
            let actual = s.outcome.expect("branch executed");
            s.fault = if Some(actual) != s.ti.embedded_taken {
                Some(Fault::CondBranch { actual })
            } else {
                None
            };
        } else if inst.is_indirect() {
            self.verify_indirect(pe, slot);
        }
    }

    /// Verifies a trace-ending indirect transfer against its successor.
    fn verify_indirect(&mut self, pe: usize, slot: usize) {
        let raw = self.pes[pe].slots[slot].indirect_target.expect("indirect executed");
        let actual: Option<Pc> = if raw >= 0 && self.program.contains(raw as Pc) {
            Some(raw as Pc)
        } else {
            None
        };
        let pc = self.pes[pe].slots[slot].ti.pc;
        if let Some(t) = actual {
            self.btb.update_indirect(pc, t);
        }
        debug_assert_eq!(slot, self.pes[pe].slots.len() - 1, "indirect must end its trace");
        match self.list.next(pe) {
            Some(succ) => {
                let ok = Some(self.pes[succ].trace.id().start()) == actual;
                self.pes[pe].slots[slot].fault =
                    if ok { None } else { Some(Fault::Indirect { actual }) };
            }
            None => {
                // This PE is the tail: redirect pending fetches if needed.
                self.pes[pe].slots[slot].fault = None;
                let front_start = self.fetch_queue.front().map(|p| p.trace.id().start());
                match (front_start, actual) {
                    (Some(f), Some(t)) if f == t => {}
                    (Some(_), t) => {
                        // Mispredicted successor still in the fetch queue.
                        self.stats.trace_mispredictions += 1;
                        self.fetch_queue.clear();
                        self.fetch_hist = self.rebuild_history();
                        self.expected = match t {
                            Some(t) => ExpectedNext::Known(t),
                            None => ExpectedNext::Stalled,
                        };
                    }
                    (None, Some(t)) => {
                        if self.expected != ExpectedNext::Known(t) {
                            self.expected = ExpectedNext::Known(t);
                        }
                    }
                    (None, None) => self.expected = ExpectedNext::Stalled,
                }
            }
        }
    }

    /// Rebuilds the speculative fetch history as of the end of the current
    /// window: the tail trace's checkpointed history plus the tail itself.
    /// (Using the checkpoints keeps histories at full path depth — a
    /// history built from the surviving window alone would be shorter than
    /// the retirement-side training contexts, and the path-based predictor
    /// would tag-miss after every squash.)
    fn rebuild_history(&self) -> TraceHistory {
        match self.list.tail() {
            Some(t) => {
                let mut h = self.pes[t].hist_before.clone();
                h.push(self.pes[t].trace.id());
                h
            }
            None => self.retire_hist.clone(),
        }
    }

    // ------------------------------------------------------------------
    // Stage 2: retirement.

    fn retire_stage(&mut self) -> Result<(), SimError> {
        let Some(head) = self.list.head() else { return Ok(()) };
        self.reground_head(head);
        let p = &self.pes[head];
        if !p.occupied || !p.all_complete() {
            return Ok(());
        }
        // A head targeted by an in-flight recovery cannot retire.
        if let Some(rec) = &self.recovery {
            if rec.pe == head {
                return Ok(());
            }
        }
        // A head awaiting a re-dispatch pass cannot retire.
        if let Some(pass) = &self.redispatch {
            if pass.queue.contains(&head) {
                return Ok(());
            }
        }
        // The preserved CI trace cannot retire while CGCI insertion is
        // still placing control-dependent traces before it.
        if let FetchMode::CgciInsert { before, .. } = self.mode {
            if before == head {
                return Ok(());
            }
        }
        // Safety net: the head must be followed by a consistent successor.
        // An abandoned CGCI insertion (e.g. preempted by a younger recovery)
        // can leave a stale boundary in the window; discovering it here
        // squashes the inconsistent tail and refetches.
        if let Some(next) = self.list.next(head) {
            let start = self.pes[next].trace.id().start();
            if !self.successor_consistent(head, start) {
                self.stats.full_squashes += 1;
                let victims: Vec<usize> = self.list.iter_after(head).collect();
                for v in victims {
                    self.squash_pe(v);
                }
                self.fetch_queue.clear();
                self.redispatch = None;
                self.mode = FetchMode::Normal;
                self.fetch_hist = self.rebuild_history();
                self.current_map = self.pes[head].map_after;
                self.expected = self.expected_after_pe(head);
                return Ok(());
            }
        }
        self.retire_pe(head)
    }

    /// The head trace has nothing older than retired state: every live-in
    /// must be bound to the retired architectural registers. Recovery corner
    /// cases (e.g. a CGCI insertion abandoned after its control-dependent
    /// traces were squashed) can leave stale bindings; re-grounding the head
    /// restores them and selectively reissues affected instructions —
    /// without it the head could wait forever on a squashed producer.
    fn reground_head(&mut self, head: usize) {
        if !self.pes[head].occupied {
            return;
        }
        let retired_map = self.retired_map;
        let gen = self.pes[head].gen;
        let now = self.now;
        let mut rebound: Vec<(PhysRegId, usize)> = Vec::new();
        {
            let slots = &mut self.pes[head].slots;
            for (i, slot) in slots.iter_mut().enumerate() {
                let tis = slot.ti.srcs;
                for (k, &(_, oref)) in tis.iter().flatten().enumerate() {
                    if let OperandRef::LiveIn(r) = oref {
                        if r.is_zero() {
                            continue;
                        }
                        let want = retired_map[r.index()];
                        if slot.srcs[k] != Some(want) {
                            slot.srcs[k] = Some(want);
                            slot.mark_reissue(now + 1);
                            rebound.push((want, i));
                        }
                    }
                }
            }
        }
        if rebound.is_empty() {
            return;
        }
        self.stats.head_rebinds += rebound.len() as u64;
        for (preg, i) in rebound {
            self.readers.entry(preg).or_default().push((head, gen, i));
        }
        // The map chain after the head starts from its (possibly corrected)
        // map; recompute map_before/map_after so later re-dispatch passes
        // chain correctly.
        let trace = self.pes[head].trace.clone();
        let mut map_before = self.pes[head].map_before;
        for r in trace.live_ins() {
            map_before[r.index()] = retired_map[r.index()];
        }
        self.pes[head].map_before = map_before;
        let mut map_after = map_before;
        for r in trace.live_outs() {
            let w = trace.last_writer(*r).expect("live-out has a writer");
            map_after[r.index()] =
                self.pes[head].slots[w].dest.expect("writer has a destination");
        }
        self.pes[head].map_after = map_after;
    }

    fn retire_pe(&mut self, pe: usize) -> Result<(), SimError> {
        let trace = self.pes[pe].trace.clone();
        // Commit in slot order: registers then stores.
        for slot in 0..self.pes[pe].slots.len() {
            let (dest_arch, value, is_store, addr, outcome, pc, inst) = {
                let s = &self.pes[pe].slots[slot];
                (s.ti.dest, s.value, matches!(s.ti.inst, Inst::Store { .. }), s.mem_addr, s.outcome, s.ti.pc, s.ti.inst)
            };
            if let Some(r) = dest_arch {
                self.arch_regs[r.index()] = value;
                let preg = self.pes[pe].slots[slot].dest.expect("dest register allocated");
                self.retired_map[r.index()] = preg;
            }
            if is_store {
                let addr = addr.expect("completed store has an address");
                self.arb.commit(addr, Self::handle(pe, slot));
            }
            if inst.is_cond_branch() {
                let taken = outcome.expect("completed branch has an outcome");
                self.btb.update_cond(pc, taken);
                self.stats.retired_cond_branches += 1;
                if self.pes[pe].slots[slot].was_mispredicted {
                    self.stats.retired_cond_mispredicts += 1;
                }
            }
            // Oracle verification, one instruction at a time.
            if let Some(oracle) = &mut self.oracle {
                let step = oracle.step().map_err(|e| SimError::OracleMismatch {
                    cycle: self.now,
                    detail: format!("oracle left program: {e}"),
                })?;
                if step.pc != pc {
                    return Err(SimError::OracleMismatch {
                        cycle: self.now,
                        detail: format!(
                            "retired pc {pc} but oracle executed pc {} (trace {})",
                            step.pc,
                            trace.id()
                        ),
                    });
                }
            }
        }
        if let Some(oracle) = &self.oracle {
            for r in Reg::all() {
                if oracle.reg(r) != self.arch_regs[r.index()] {
                    return Err(SimError::OracleMismatch {
                        cycle: self.now,
                        detail: format!(
                            "after trace {}: {r} committed {} but oracle has {}",
                            trace.id(),
                            self.arch_regs[r.index()],
                            oracle.reg(r)
                        ),
                    });
                }
            }
        }
        // Train the trace-level predictor with the canonical (actual) trace.
        self.predictor.train(&self.retire_hist, trace.id());
        self.retire_hist.push(trace.id());
        self.tcache.fill(trace.clone());
        // Statistics.
        self.stats.retired_traces += 1;
        self.stats.retired_instrs += self.pes[pe].slots.len() as u64;
        if self.pes[pe].source != FetchSource::Fallback {
            self.stats.predicted_traces += 1;
        }
        if self.pes[pe].repairs > 0 {
            self.stats.trace_mispredictions += 1;
        }
        self.last_retire_cycle = self.now;
        if trace.end() == EndReason::Halt {
            self.halted = true;
        }
        // Retirement writes values back to the global register file: they
        // become visible to every PE even if a result-bus grant was still
        // pending (the grant request dies with the generation bump below).
        for slot in 0..self.pes[pe].slots.len() {
            if let Some(d) = self.pes[pe].slots[slot].dest {
                let now = self.now;
                let r = self.pregs.get_mut(d);
                r.global_ready_at = r.global_ready_at.min(now);
                r.local_ready_at = r.local_ready_at.min(now);
            }
        }
        // Free the PE.
        self.list.remove(pe);
        self.pes[pe].occupied = false;
        self.pes[pe].gen += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Stage 3: recovery.

    /// `(a_pe, a_slot)` strictly older than `(b_pe, b_slot)` in program
    /// order?
    fn older(&self, a: (usize, usize), b: (usize, usize)) -> bool {
        if a.0 == b.0 {
            return a.1 < b.1;
        }
        self.list.logical(a.0) < self.list.logical(b.0)
    }

    fn oldest_fault(&self) -> Option<(usize, usize)> {
        for pe in self.list.iter() {
            if let Some(slot) = self.pes[pe].first_fault() {
                return Some((pe, slot));
            }
        }
        None
    }

    fn recovery_stage(&mut self) {
        // Validate the active recovery (its PE may have been squashed by an
        // older recovery preempting it).
        if let Some(rec) = &self.recovery {
            let p = &self.pes[rec.pe];
            if !p.occupied || p.gen != rec.gen || !self.list.contains(rec.pe) {
                self.recovery = None;
            }
        }
        let oldest = self.oldest_fault();
        match (&self.recovery, oldest) {
            (Some(rec), Some(f)) if self.older(f, (rec.pe, rec.slot)) => {
                // An older fault preempts the in-flight recovery.
                self.recovery = None;
                self.start_recovery(f.0, f.1);
            }
            (Some(_), _) => {
                let rec = self.recovery.clone().expect("checked above");
                if self.now >= rec.ready_at {
                    self.recovery = None;
                    self.apply_recovery(rec);
                }
            }
            (None, Some(f)) => self.start_recovery(f.0, f.1),
            (None, None) => {}
        }
    }

    fn start_recovery(&mut self, pe: usize, slot: usize) {
        let fault = self.pes[pe].slots[slot].fault.expect("fault present");
        match fault {
            Fault::Indirect { actual } => {
                // The trace itself is correct; its successors are not.
                // Squash everything younger and redirect fetch.
                self.stats.trace_mispredictions += 1;
                self.stats.full_squashes += 1;
                let victims: Vec<usize> = self.list.iter_after(pe).collect();
                for v in victims {
                    self.squash_pe(v);
                }
                self.fetch_queue.clear();
                self.redispatch = None;
                self.mode = FetchMode::Normal;
                self.pes[pe].slots[slot].fault = None;
                self.fetch_hist = self.rebuild_history();
                self.current_map = self.pes[pe].map_after;
                self.expected = match actual {
                    Some(t) => ExpectedNext::Known(t),
                    None => ExpectedNext::Stalled,
                };
            }
            Fault::CondBranch { actual } => {
                self.pes[pe].slots[slot].was_mispredicted = true;
                let repaired = self.repair_trace(pe, slot, actual);
                // Construction timing: refetch the repaired suffix through
                // the instruction cache, one basic block per cycle.
                let cycles = self.construction_cycles(&repaired, slot);
                let ready_at = self.now.max(self.construction_busy_until) + cycles as u64;
                self.construction_busy_until = ready_at;
                // Decide the recovery plan now; squash at detection.
                let covered = self.cfg.fgci && self.pes[pe].slots[slot].ti.fgci_covered;
                let plan = if covered {
                    RecoveryPlan::Fgci
                } else if let Some(reconv) = self.find_reconv(pe, slot) {
                    self.stats.cgci_attempts += 1;
                    // Squash strictly between the faulting PE and the first
                    // control independent trace.
                    let victims: Vec<usize> =
                        self.list.iter_after(pe).take_while(|&q| q != reconv).collect();
                    for v in victims {
                        self.squash_pe(v);
                    }
                    self.fetch_queue.clear();
                    self.redispatch = None;
                    let gen = self.pes[reconv].gen;
                    self.mode = FetchMode::CgciInsert {
                        before: reconv,
                        before_gen: gen,
                        reconv_start: self.pes[reconv].trace.id().start(),
                        inserted: 0,
                    };
                    RecoveryPlan::Cgci
                } else {
                    self.stats.full_squashes += 1;
                    let victims: Vec<usize> = self.list.iter_after(pe).collect();
                    for v in victims {
                        self.squash_pe(v);
                    }
                    self.fetch_queue.clear();
                    self.redispatch = None;
                    self.mode = FetchMode::Normal;
                    RecoveryPlan::Full
                };
                if plan == RecoveryPlan::Fgci {
                    // FGCI leaves the window untouched, but pending fetches
                    // were predicted under a stale history.
                    self.fetch_queue.clear();
                }
                let gen = self.pes[pe].gen;
                self.recovery = Some(Recovery { pe, gen, slot, repaired, ready_at, plan });
            }
        }
    }

    /// Locates the first assumed control-independent trace after `pe` using
    /// the configured CGCI heuristic.
    fn find_reconv(&self, pe: usize, slot: usize) -> Option<usize> {
        let heuristic = self.cfg.cgci?;
        let ti = &self.pes[pe].slots[slot].ti;
        if heuristic == CgciHeuristic::MlbRet && ti.inst.is_backward_branch(ti.pc) {
            // MLB: nearest trace starting at the branch's not-taken target.
            let target = ti.pc + 1;
            if let Some(q) =
                self.list.iter_after(pe).find(|&q| self.pes[q].trace.id().start() == target)
            {
                return Some(q);
            }
        }
        // RET: the trace following the nearest return-ending trace.
        let ret_pe = self.list.iter_after(pe).find(|&q| self.pes[q].trace.ends_in_return())?;
        self.list.next(ret_pe)
    }

    /// Re-selects the faulting trace with the branch's actual outcome
    /// (prefix outcomes embedded, suffix outcomes from the BTB).
    fn repair_trace(&mut self, pe: usize, slot: usize, actual: bool) -> Arc<Trace> {
        let trace = self.pes[pe].trace.clone();
        let fault_branch_idx =
            trace.insts()[..slot].iter().filter(|ti| ti.inst.is_cond_branch()).count() as u8;
        let id = trace.id();
        struct RepairOutcomes<'a> {
            id: TraceId,
            fault_idx: u8,
            actual: bool,
            btb: &'a Btb,
        }
        impl OutcomeSource for RepairOutcomes<'_> {
            fn cond_outcome(&mut self, index: u8, pc: Pc, _inst: Inst) -> bool {
                match index.cmp(&self.fault_idx) {
                    std::cmp::Ordering::Less => self.id.outcome(index),
                    std::cmp::Ordering::Equal => self.actual,
                    std::cmp::Ordering::Greater => self.btb.predict_cond(pc),
                }
            }
            fn indirect_target(&mut self, pc: Pc, _inst: Inst) -> Option<Pc> {
                self.btb.predict_indirect(pc)
            }
        }
        // Split field borrows: the selector reads the BTB while mutating
        // the BIT.
        let selector = self.selector;
        let (program, bit, btb) = (self.program, &mut self.bit, &self.btb);
        let mut outcomes = RepairOutcomes { id, fault_idx: fault_branch_idx, actual, btb };
        let sel = selector.select(program, id.start(), bit, &mut outcomes);
        self.stats.bit_miss_handlers += sel.stats.bit_misses as u64;
        self.stats.bit_miss_cycles += sel.stats.bit_miss_cycles as u64;
        Arc::new(sel.trace)
    }

    /// Construction-engine latency to (re)build `trace` starting at
    /// `from_slot`: one cycle per basic block plus instruction cache miss
    /// penalties.
    fn construction_cycles(&mut self, trace: &Trace, from_slot: usize) -> u32 {
        let insts = &trace.insts()[from_slot.min(trace.len().saturating_sub(1))..];
        if insts.is_empty() {
            return 1;
        }
        let mut cycles = 0u32;
        let mut seg_start = insts[0].pc;
        let mut prev = insts[0].pc;
        for ti in &insts[1..] {
            if ti.pc != prev + 1 {
                cycles += 1 + self.icache.access_range(seg_start, prev);
                seg_start = ti.pc;
            }
            prev = ti.pc;
        }
        cycles += 1 + self.icache.access_range(seg_start, prev);
        cycles
    }

    fn apply_recovery(&mut self, rec: Recovery) {
        let pe = rec.pe;
        // Abandon if the fault has vanished (outcome flipped back by a
        // selective reissue before the repair finished): re-verification at
        // the slot's next completion decides what happens next. The squashes
        // performed at detection stand — refetch proceeds normally.
        if self.pes[pe].slots.get(rec.slot).map_or(true, |s| s.fault.is_none()) {
            if let FetchMode::CgciInsert { .. } = self.mode {
                self.mode = FetchMode::Normal;
            }
            // An in-flight re-dispatch pass owns the map/history chain; it
            // restores fetch state itself when it completes.
            if self.redispatch.is_none() {
                self.fetch_hist = self.rebuild_history();
                self.current_map =
                    self.pes[self.list.tail().expect("window non-empty")].map_after;
                self.expected = self.expected_after_tail();
            }
            return;
        }
        // Replace the faulting PE's trace with the repaired one (prefix
        // slots keep their state; suffix slots are squashed and replaced).
        self.pes[pe].repairs += 1;
        self.replace_trace(pe, rec.slot, rec.repaired.clone());
        match rec.plan {
            RecoveryPlan::Fgci => {
                self.stats.fgci_recoveries += 1;
                let preserved: Vec<usize> = self.list.iter_after(pe).collect();
                self.stats.preserved_traces += preserved.len() as u64;
                self.begin_redispatch(pe, preserved);
            }
            RecoveryPlan::Cgci => {
                // Fetch will insert correct control-dependent traces before
                // the preserved trace; re-dispatch happens at re-convergence.
                let mut h = self.pes[pe].hist_before.clone();
                h.push(rec.repaired.id());
                self.redispatch = None;
                self.fetch_hist = h;
                self.current_map = self.pes[pe].map_after;
                self.expected = self.expected_after_pe(pe);
            }
            RecoveryPlan::Full => {
                let mut h = self.pes[pe].hist_before.clone();
                h.push(rec.repaired.id());
                self.redispatch = None;
                self.fetch_hist = h;
                self.current_map = self.pes[pe].map_after;
                self.expected = self.expected_after_pe(pe);
            }
        }
    }

    /// Expected fetch PC following the trace in `pe`.
    fn expected_after_pe(&self, pe: usize) -> ExpectedNext {
        let trace = &self.pes[pe].trace;
        match trace.end() {
            EndReason::MaxLen | EndReason::Ntb => {
                ExpectedNext::Known(trace.next_pc().expect("static end has next"))
            }
            EndReason::Indirect => {
                let last = self.pes[pe].slots.len() - 1;
                let s = &self.pes[pe].slots[last];
                if s.state == SlotState::Done {
                    match s.indirect_target {
                        Some(t) if t >= 0 && self.program.contains(t as Pc) => {
                            ExpectedNext::Known(t as Pc)
                        }
                        _ => ExpectedNext::Stalled,
                    }
                } else {
                    match trace.next_pc() {
                        Some(t) => ExpectedNext::Predicted(t),
                        None => ExpectedNext::Stalled,
                    }
                }
            }
            EndReason::Halt | EndReason::OutOfProgram => ExpectedNext::Stalled,
        }
    }

    fn expected_after_tail(&self) -> ExpectedNext {
        match self.list.tail() {
            Some(t) => self.expected_after_pe(t),
            None => ExpectedNext::Stalled,
        }
    }

    /// Starts a re-dispatch pass over the given preserved traces (in logical
    /// order), which updates their live-in renames one trace per cycle.
    /// Always replaces any pass already in flight: the new recovery's map
    /// chain supersedes the old one.
    fn begin_redispatch(&mut self, repaired_pe: usize, preserved: Vec<usize>) {
        let mut rolling = self.pes[repaired_pe].hist_before.clone();
        rolling.push(self.pes[repaired_pe].trace.id());
        self.current_map = self.pes[repaired_pe].map_after;
        if preserved.is_empty() {
            self.redispatch = None;
            self.fetch_hist = rolling;
            self.expected = self.expected_after_pe(repaired_pe);
            self.mode = FetchMode::Normal;
            return;
        }
        self.redispatch =
            Some(RedispatchPass { queue: preserved.into(), rolling, origin: "fgci" });
        self.mode = FetchMode::Normal;
    }

    /// Replaces the trace in `pe` from `keep_upto` (inclusive prefix bound)
    /// with `repaired`: prefix slots keep state, suffix slots are squashed
    /// and freshly renamed. Re-registers readers under a new generation.
    fn replace_trace(&mut self, pe: usize, fault_slot: usize, repaired: Arc<Trace>) {
        let old_len = self.pes[pe].slots.len();
        let prefix_len = (fault_slot + 1).min(repaired.len());
        debug_assert!(fault_slot < old_len);
        // Undo stores in the squashed suffix.
        for slot in prefix_len..old_len {
            self.undo_store_if_performed(pe, slot);
        }
        self.pes[pe].gen += 1;
        let map_before = self.pes[pe].map_before;
        let mut slots = std::mem::take(&mut self.pes[pe].slots);
        slots.truncate(prefix_len);
        // Refresh prefix metadata from the repaired trace (same
        // instructions; embedded outcomes/coverage may differ).
        for (i, s) in slots.iter_mut().enumerate() {
            let new_ti = repaired.insts()[i];
            debug_assert_eq!(s.ti.inst, new_ti.inst, "repair changed a prefix instruction");
            let was_misp = s.was_mispredicted;
            s.ti = new_ti;
            s.was_mispredicted = was_misp;
            // Re-verify the (former) fault branch against its new embedded
            // outcome.
            if new_ti.inst.is_cond_branch() && s.state == SlotState::Done {
                s.fault = match s.outcome {
                    Some(actual) if Some(actual) != new_ti.embedded_taken => {
                        Some(Fault::CondBranch { actual })
                    }
                    _ => None,
                };
            }
        }
        // Fresh suffix slots.
        for i in prefix_len..repaired.len() {
            slots.push(Slot::new(repaired.insts()[i]));
        }
        // Rebind all sources and (re)allocate suffix destinations.
        for i in 0..slots.len() {
            let ti = slots[i].ti;
            let mut srcs = [None; 2];
            for (k, &(r, oref)) in ti.srcs.iter().flatten().enumerate() {
                let preg = match oref {
                    OperandRef::LiveIn(lr) if lr.is_zero() => PhysRegId::ZERO,
                    OperandRef::LiveIn(lr) => map_before[lr.index()],
                    OperandRef::Local(j) => {
                        let _ = r;
                        slots[j as usize].dest.expect("local producer has a destination")
                    }
                };
                srcs[k] = Some(preg);
            }
            slots[i].srcs = srcs;
            if i >= prefix_len {
                slots[i].dest = ti.dest.map(|_| self.pregs.alloc(Some(pe as u8)));
            }
            let is_liveout = match ti.dest {
                Some(d) => repaired.last_writer(d) == Some(i),
                None => false,
            };
            let was_liveout = slots[i].is_liveout;
            slots[i].is_liveout = is_liveout;
            // A prefix slot promoted to live-out after completion must still
            // broadcast its value to other PEs.
            if i < prefix_len
                && is_liveout
                && !was_liveout
                && slots[i].state == SlotState::Done
                && slots[i].dest.is_some()
            {
                let d = slots[i].dest.expect("checked");
                self.pregs.get_mut(d).global_ready_at = u64::MAX;
            }
        }
        self.pes[pe].slots = slots;
        self.pes[pe].trace = repaired.clone();
        // Recompute map_after.
        let mut map_after = map_before;
        for r in repaired.live_outs() {
            let w = repaired.last_writer(*r).expect("live-out has a writer");
            map_after[r.index()] = self.pes[pe].slots[w].dest.expect("writer has a destination");
        }
        self.pes[pe].map_after = map_after;
        // Re-register readers and re-request buses under the new generation.
        for i in 0..self.pes[pe].slots.len() {
            for k in 0..2 {
                if let Some(preg) = self.pes[pe].slots[i].srcs[k] {
                    self.register_reader(preg, pe, i);
                }
            }
            let s = &self.pes[pe].slots[i];
            if s.is_liveout && s.state == SlotState::Done {
                if let Some(d) = s.dest {
                    if self.pregs.get(d).global_ready_at == u64::MAX {
                        self.result_bus_queue.push_back(BusReq {
                            pe,
                            gen: self.pes[pe].gen,
                            slot: i,
                            since: self.now,
                        });
                    }
                }
            }
        }
        // In-flight prefix mem operations keep their bus requests (now
        // stale-generation): requeue any that were pending.
        for i in 0..prefix_len.min(self.pes[pe].slots.len()) {
            if let SlotState::WaitingBus { since } = self.pes[pe].slots[i].state {
                self.cache_bus_queue.push_back(BusReq { pe, gen: self.pes[pe].gen, slot: i, since });
            }
        }
        // Fill the (possibly wrong-path) repaired trace into the trace cache
        // speculatively, as trace buffers do.
        self.tcache.fill(repaired);
    }

    fn undo_store_if_performed(&mut self, pe: usize, slot: usize) {
        let (performed, addr) = {
            let s = &self.pes[pe].slots[slot];
            (s.store_performed, s.mem_addr)
        };
        if !performed {
            return;
        }
        let addr = addr.expect("performed store has an address");
        let h = Self::handle(pe, slot);
        self.arb.undo(addr, h);
        self.pes[pe].slots[slot].store_performed = false;
        self.snoop_undo(addr, h, pe);
    }

    fn squash_pe(&mut self, pe: usize) {
        for slot in 0..self.pes[pe].slots.len() {
            self.undo_store_if_performed(pe, slot);
        }
        self.pes[pe].occupied = false;
        self.pes[pe].gen += 1;
        self.pes[pe].slots.clear();
        self.list.remove(pe);
        self.stats.squashed_traces += 1;
    }

    // ------------------------------------------------------------------
    // Stage 4: fetch.

    fn fetch_stage(&mut self) {
        if self.halted || self.recovery.is_some() || self.redispatch.is_some() {
            return;
        }
        if self.fetch_queue.len() >= self.cfg.num_pes {
            return;
        }
        // Validate CGCI insertion mode.
        if let FetchMode::CgciInsert { before, before_gen, .. } = self.mode {
            if !self.pes[before].occupied
                || self.pes[before].gen != before_gen
                || !self.list.contains(before)
            {
                self.mode = FetchMode::Normal;
                self.fetch_hist = self.rebuild_history();
                self.expected = self.expected_after_tail();
            }
        }
        // A stalled fetch re-derives its expectation from the window every
        // cycle: an indirect transfer at the effective tail may have
        // resolved since the stall began (this also lets CGCI re-convergence
        // be detected when the last control-dependent trace ends in an
        // indirect transfer).
        if self.expected == ExpectedNext::Stalled && self.fetch_queue.is_empty() {
            let effective_tail = match self.mode {
                FetchMode::CgciInsert { before, .. } => self.list.prev(before),
                FetchMode::Normal => self.list.tail(),
            };
            if let Some(t) = effective_tail {
                self.expected = self.expected_after_pe(t);
            }
        }
        // Resolve the expected PC.
        let (expected_pc, expected_certain) = match self.expected {
            ExpectedNext::Known(pc) => (Some(pc), true),
            ExpectedNext::Predicted(pc) => (Some(pc), false),
            ExpectedNext::Stalled => (None, false),
        };
        let hist_before = self.fetch_hist.clone();
        let prediction = self.predictor.predict(&self.fetch_hist);
        // Enforce statically-certain boundaries: a prediction contradicting
        // the known fall-through PC is discarded in favour of sequencing.
        // After an unresolved indirect the next-trace predictor wins.
        let prediction = match (prediction, expected_pc) {
            (Some(id), Some(e)) if expected_certain && id.start() != e => None,
            (p, _) => p,
        };
        let start = match prediction.map(|id| id.start()).or(expected_pc) {
            Some(s) if self.program.contains(s) => s,
            _ => return, // fetch stalled
        };
        // CGCI re-convergence detection: the next trace prediction matches
        // the preserved control-independent trace.
        if let FetchMode::CgciInsert { before, reconv_start, .. } = self.mode {
            if start == reconv_start {
                self.stats.cgci_reconverged += 1;
                let preserved: Vec<usize> = {
                    let mut v = vec![before];
                    v.extend(self.list.iter_after(before));
                    v
                };
                self.stats.preserved_traces += preserved.len() as u64;
                let repaired_pred =
                    self.list.prev(before).expect("faulting trace precedes the preserved trace");
                self.begin_redispatch_from_map(preserved, repaired_pred);
                self.mode = FetchMode::Normal;
                return;
            }
        }
        // Obtain the trace: trace cache, or construction.
        let (trace, ready_at, source) = match prediction {
            Some(id) => {
                self.stats.tcache_lookups += 1;
                match self.tcache.lookup(id) {
                    Some(t) => (t, self.now + self.cfg.frontend_latency, FetchSource::PredictedHit),
                    None => {
                        self.stats.tcache_misses += 1;
                        let (t, cycles) = self.construct_trace(start, Some(id));
                        let ready =
                            self.now.max(self.construction_busy_until) + cycles as u64
                                + self.cfg.frontend_latency;
                        self.construction_busy_until = ready;
                        (t, ready, FetchSource::PredictedMiss)
                    }
                }
            }
            None => {
                let (t, cycles) = self.construct_trace(start, None);
                let ready = self.now.max(self.construction_busy_until) + cycles as u64
                    + self.cfg.frontend_latency;
                self.construction_busy_until = ready;
                (t, ready, FetchSource::Fallback)
            }
        };
        // Speculatively maintain the RAS and compute the next expected PC.
        self.expected = self.advance_ras_and_expected(&trace);
        self.fetch_hist.push(trace.id());
        self.fetch_queue.push_back(Pending { trace, ready_at, hist_before, source });
    }

    /// Constructs a trace at `start` through the instruction cache, driven
    /// by the predicted id's outcomes (falling back to the BTB) or by the
    /// BTB alone. Returns the trace and the construction latency.
    fn construct_trace(&mut self, start: Pc, id: Option<TraceId>) -> (Arc<Trace>, u32) {
        struct ConstructOutcomes<'a> {
            id: Option<TraceId>,
            btb: &'a Btb,
            ras_top: Option<Pc>,
        }
        impl OutcomeSource for ConstructOutcomes<'_> {
            fn cond_outcome(&mut self, index: u8, pc: Pc, _inst: Inst) -> bool {
                match self.id {
                    Some(id) if index < id.branches() => id.outcome(index),
                    _ => self.btb.predict_cond(pc),
                }
            }
            fn indirect_target(&mut self, pc: Pc, inst: Inst) -> Option<Pc> {
                if inst.is_return() {
                    self.ras_top
                } else {
                    self.btb.predict_indirect(pc)
                }
            }
        }
        let selector = self.selector;
        let (program, bit, btb) = (self.program, &mut self.bit, &self.btb);
        let mut outcomes = ConstructOutcomes { id, btb, ras_top: self.ras.top() };
        let sel = selector.select(program, start, bit, &mut outcomes);
        self.stats.bit_miss_handlers += sel.stats.bit_misses as u64;
        self.stats.bit_miss_cycles += sel.stats.bit_miss_cycles as u64;
        let trace = Arc::new(sel.trace);
        let cycles = self.construction_cycles(&trace, 0) + sel.stats.bit_miss_cycles;
        self.tcache.fill(trace.clone());
        (trace, cycles)
    }

    /// Walks a fetched trace's calls/returns through the RAS and returns the
    /// expected next fetch PC.
    fn advance_ras_and_expected(&mut self, trace: &Trace) -> ExpectedNext {
        let mut ret_target = None;
        for ti in trace.insts() {
            match ti.inst {
                Inst::Call { .. } | Inst::CallIndirect { .. } => self.ras.push(ti.pc + 1),
                Inst::Ret => ret_target = self.ras.pop(),
                _ => {}
            }
        }
        match trace.end() {
            EndReason::MaxLen | EndReason::Ntb => {
                ExpectedNext::Known(trace.next_pc().expect("static end has next"))
            }
            EndReason::Indirect => {
                let last = trace.insts().last().expect("non-empty");
                let target = if last.inst.is_return() { ret_target } else { trace.next_pc() };
                match target {
                    Some(t) if self.program.contains(t) => ExpectedNext::Predicted(t),
                    _ => ExpectedNext::Stalled,
                }
            }
            EndReason::Halt | EndReason::OutOfProgram => ExpectedNext::Stalled,
        }
    }

    /// Starts the CGCI re-dispatch pass: `preserved` traces re-rename from
    /// the map after `pred` (the last inserted control-dependent trace or
    /// the repaired trace itself).
    fn begin_redispatch_from_map(&mut self, preserved: Vec<usize>, pred: usize) {
        let mut rolling = self.pes[pred].hist_before.clone();
        rolling.push(self.pes[pred].trace.id());
        self.current_map = self.pes[pred].map_after;
        self.redispatch = Some(RedispatchPass { queue: preserved.into(), rolling, origin: "cgci" });
    }

    // ------------------------------------------------------------------
    // Stage 5: dispatch (shared bus with re-dispatch passes).

    fn dispatch_stage(&mut self) {
        if self.halted {
            return;
        }
        // Re-dispatch passes own the dispatch bus.
        if self.redispatch.is_some() {
            self.redispatch_step();
            return;
        }
        let Some(front) = self.fetch_queue.front() else { return };
        if self.now < front.ready_at {
            return;
        }
        // Pick the PE: insertion point (CGCI) or tail.
        let insert_before = match self.mode {
            FetchMode::CgciInsert { before, before_gen, .. } => {
                if !self.pes[before].occupied
                    || self.pes[before].gen != before_gen
                    || !self.list.contains(before)
                {
                    self.mode = FetchMode::Normal;
                    None
                } else {
                    Some(before)
                }
            }
            FetchMode::Normal => None,
        };
        // Consistency: the front trace must follow the current predecessor.
        let pred = match insert_before {
            Some(b) => self.list.prev(b),
            None => self.list.tail(),
        };
        if let Some(pred) = pred {
            if !self.successor_consistent(pred, front.trace.id().start()) {
                // The window changed under the queue (recovery): refetch.
                self.fetch_queue.clear();
                self.fetch_hist = self.rebuild_history();
                self.expected = self.expected_after_tail();
                return;
            }
        }
        // Find a free PE.
        let free = (0..self.cfg.num_pes).find(|&i| !self.pes[i].occupied);
        let pe = match free {
            Some(pe) => pe,
            None => {
                match self.mode {
                    FetchMode::CgciInsert { before, .. } => {
                        // Reclaim the most speculative PE for the insertion.
                        let tail = self.list.tail().expect("window full implies non-empty");
                        if tail == before {
                            // The preserved trace itself must go: CGCI
                            // degenerates to a full squash.
                            self.squash_pe(tail);
                            self.stats.tail_reclaims += 1;
                            self.mode = FetchMode::Normal;
                        } else {
                            self.squash_pe(tail);
                            self.stats.tail_reclaims += 1;
                        }
                        return; // dispatch next cycle
                    }
                    FetchMode::Normal => return, // window full: stall
                }
            }
        };
        let pending = self.fetch_queue.pop_front().expect("checked front");
        if let FetchMode::CgciInsert { ref mut inserted, .. } = self.mode {
            *inserted += 1;
        }
        self.dispatch_trace(pe, pending, insert_before);
    }

    /// Whether a trace starting at `start` is a consistent successor of the
    /// trace in `pred`.
    fn successor_consistent(&self, pred: usize, start: Pc) -> bool {
        let t = &self.pes[pred].trace;
        match t.end() {
            EndReason::MaxLen | EndReason::Ntb => t.next_pc() == Some(start),
            EndReason::Indirect => {
                let last = self.pes[pred].slots.len() - 1;
                let s = &self.pes[pred].slots[last];
                if s.state == SlotState::Done && !s.pending_reissue {
                    s.indirect_target == Some(start as Word)
                } else {
                    true // unresolved: dispatch speculatively
                }
            }
            EndReason::Halt | EndReason::OutOfProgram => false,
        }
    }

    fn dispatch_trace(&mut self, pe: usize, pending: Pending, insert_before: Option<usize>) {
        let trace = pending.trace;
        let map_before = self.current_map;
        self.pes[pe].gen += 1;
        let gen = self.pes[pe].gen;
        let mut slots: Vec<Slot> = Vec::with_capacity(trace.len());
        for (i, ti) in trace.insts().iter().enumerate() {
            let mut slot = Slot::new(*ti);
            for (k, &(_, oref)) in ti.srcs.iter().flatten().enumerate() {
                let preg = match oref {
                    OperandRef::LiveIn(r) if r.is_zero() => PhysRegId::ZERO,
                    OperandRef::LiveIn(r) => map_before[r.index()],
                    OperandRef::Local(j) => {
                        slots[j as usize].dest.expect("local producer has a destination")
                    }
                };
                slot.srcs[k] = Some(preg);
            }
            if ti.dest.is_some() {
                slot.dest = Some(self.pregs.alloc(Some(pe as u8)));
            }
            slot.is_liveout = match ti.dest {
                Some(d) => trace.last_writer(d) == Some(i),
                None => false,
            };
            slots.push(slot);
        }
        let mut map_after = map_before;
        for r in trace.live_outs() {
            let w = trace.last_writer(*r).expect("live-out has a writer");
            map_after[r.index()] = slots[w].dest.expect("writer has a destination");
        }
        // Register readers.
        for (i, slot) in slots.iter().enumerate() {
            for preg in slot.srcs.iter().flatten() {
                if *preg != PhysRegId::ZERO {
                    self.readers.entry(*preg).or_default().push((pe, gen, i));
                }
            }
        }
        let p = &mut self.pes[pe];
        p.occupied = true;
        p.trace = trace;
        p.slots = slots;
        p.map_before = map_before;
        p.map_after = map_after;
        p.hist_before = pending.hist_before;
        p.source = pending.source;
        p.repairs = 0;
        p.dispatched_at = self.now;
        self.current_map = map_after;
        match insert_before {
            Some(b) => self.list.insert_before(pe, b),
            None => self.list.push_tail(pe),
        }
        self.stats.dispatched_traces += 1;
    }

    /// One step of a re-dispatch pass: update one preserved trace's live-in
    /// renames; only instructions with changed source names reissue.
    fn redispatch_step(&mut self) {
        let (pe, mut rolling, empty_after, origin) = {
            let Some(pass) = &mut self.redispatch else { return };
            let Some(pe) = pass.queue.pop_front() else {
                self.redispatch = None;
                return;
            };
            (pe, pass.rolling.clone(), pass.queue.is_empty(), pass.origin)
        };
        if !self.pes[pe].occupied || !self.list.contains(pe) {
            // Squashed while queued (e.g. tail reclamation): skip.
            if empty_after {
                self.finish_redispatch(rolling);
            }
            return;
        }
        let map_before = self.current_map;
        let gen = self.pes[pe].gen;
        let now = self.now;
        let trace = self.pes[pe].trace.clone();
        let mut new_readers: Vec<(PhysRegId, usize)> = Vec::new();
        {
            let slots = &mut self.pes[pe].slots;
            for (i, slot) in slots.iter_mut().enumerate() {
                let mut changed = false;
                for (k, &(_, oref)) in slot.ti.srcs.iter().flatten().enumerate() {
                    if let OperandRef::LiveIn(r) = oref {
                        if r.is_zero() {
                            continue;
                        }
                        let new_preg = map_before[r.index()];
                        // A re-dispatch must never bind a slot to its own
                        // destination: live-outs keep their mappings, so the
                        // chain map can only hold strictly older registers.
                        assert!(
                            slot.dest != Some(new_preg),
                            "redispatch({origin}) bound slot {i} of pe {pe} to its own destination"
                        );
                        if slot.srcs[k] != Some(new_preg) {
                            slot.srcs[k] = Some(new_preg);
                            changed = true;
                            new_readers.push((new_preg, i));
                        }
                    }
                }
                if changed {
                    slot.mark_reissue(now + 1);
                }
            }
        }
        for (preg, i) in new_readers {
            self.readers.entry(preg).or_default().push((pe, gen, i));
        }
        // Live-outs keep their physical registers; the map is re-asserted.
        self.pes[pe].map_before = map_before;
        let mut map_after = map_before;
        for r in trace.live_outs() {
            let w = trace.last_writer(*r).expect("live-out has a writer");
            map_after[r.index()] = self.pes[pe].slots[w].dest.expect("writer has a destination");
        }
        self.pes[pe].map_after = map_after;
        self.current_map = map_after;
        self.pes[pe].hist_before = rolling.clone();
        rolling.push(trace.id());
        self.stats.redispatched_traces += 1;
        if empty_after {
            self.finish_redispatch(rolling);
        } else if let Some(pass) = self.redispatch.as_mut() {
            pass.rolling = rolling;
        }
    }

    fn finish_redispatch(&mut self, rolling: TraceHistory) {
        self.redispatch = None;
        self.fetch_hist = rolling;
        self.expected = self.expected_after_tail();
    }

    // ------------------------------------------------------------------
    // Stage 6: issue.

    fn issue_stage(&mut self) {
        let now = self.now;
        let pes: Vec<usize> = self.list.iter().collect();
        for pe in pes {
            let mut issued = 0;
            for slot in 0..self.pes[pe].slots.len() {
                if issued >= self.cfg.pe_issue_width {
                    break;
                }
                let ready = {
                    let s = &self.pes[pe].slots[slot];
                    s.state == SlotState::Waiting
                        && s.not_before <= now
                        && s.srcs.iter().flatten().all(|&p| {
                            self.pregs.readable_by(p, pe as u8, now)
                        })
                };
                if !ready {
                    continue;
                }
                self.issue_slot(pe, slot);
                issued += 1;
            }
        }
    }

    fn issue_slot(&mut self, pe: usize, slot: usize) {
        let now = self.now;
        let gen = self.pes[pe].gen;
        let (inst, src_vals) = {
            let s = &self.pes[pe].slots[slot];
            let vals: Vec<Word> =
                s.srcs.iter().flatten().map(|&p| self.pregs.get(p).value).collect();
            (s.ti.inst, vals)
        };
        let a = src_vals.first().copied().unwrap_or(0);
        let b = src_vals.get(1).copied().unwrap_or(0);
        let s = &mut self.pes[pe].slots[slot];
        s.issues += 1;
        self.stats.issue_events += 1;
        if s.issues > 1 {
            self.stats.reissue_events += 1;
        }
        match inst {
            Inst::Alu { op, .. } => {
                s.value = op.apply(a, b);
                s.state = SlotState::Executing { done_at: now + op.latency() as u64 };
            }
            Inst::AluImm { op, imm, .. } => {
                s.value = op.apply(a, imm as Word);
                s.state = SlotState::Executing { done_at: now + op.latency() as u64 };
            }
            Inst::Load { offset, .. } => {
                s.value = 0;
                s.state = SlotState::WaitingBus { since: now + self.cfg.agen_latency };
                let ea = effective_address(a, offset);
                s.indirect_target = Some(ea as Word); // staging for bus grant
                self.cache_bus_queue.push_back(BusReq {
                    pe,
                    gen,
                    slot,
                    since: now + self.cfg.agen_latency,
                });
            }
            Inst::Store { offset, .. } => {
                // srcs order is [base, data].
                let ea = effective_address(a, offset);
                s.value = b;
                s.indirect_target = Some(ea as Word);
                s.state = SlotState::WaitingBus { since: now + self.cfg.agen_latency };
                self.cache_bus_queue.push_back(BusReq {
                    pe,
                    gen,
                    slot,
                    since: now + self.cfg.agen_latency,
                });
            }
            Inst::Branch { cond, .. } => {
                s.outcome = Some(cond.eval(a, b));
                s.state = SlotState::Executing { done_at: now + 1 };
            }
            Inst::Jump { .. } | Inst::Nop | Inst::Halt => {
                s.state = SlotState::Executing { done_at: now + 1 };
            }
            Inst::Call { .. } => {
                s.value = s.ti.pc as Word + 1;
                s.state = SlotState::Executing { done_at: now + 1 };
            }
            Inst::CallIndirect { .. } => {
                s.value = s.ti.pc as Word + 1;
                s.indirect_target = Some(a);
                s.state = SlotState::Executing { done_at: now + 1 };
            }
            Inst::JumpIndirect { .. } | Inst::Ret => {
                s.indirect_target = Some(a);
                s.state = SlotState::Executing { done_at: now + 1 };
            }
        }
    }

    // ------------------------------------------------------------------
    // Stage 7: buses.

    fn bus_stage(&mut self) {
        self.grant_cache_buses();
        self.grant_result_buses();
    }

    fn grant_cache_buses(&mut self) {
        let now = self.now;
        let mut granted_total = 0;
        let mut granted_per_pe = vec![0usize; self.cfg.num_pes];
        let mut requeue: VecDeque<BusReq> = VecDeque::new();
        while let Some(req) = self.cache_bus_queue.pop_front() {
            if granted_total >= self.cfg.cache_buses {
                requeue.push_back(req);
                // Keep draining to preserve order of the remaining queue.
                while let Some(r) = self.cache_bus_queue.pop_front() {
                    requeue.push_back(r);
                }
                break;
            }
            // Validate.
            let valid = {
                let p = &self.pes[req.pe];
                p.occupied
                    && p.gen == req.gen
                    && req.slot < p.slots.len()
                    && matches!(p.slots[req.slot].state, SlotState::WaitingBus { .. })
                    && self.list.contains(req.pe)
            };
            if !valid {
                continue; // dropped (squashed or replaced)
            }
            if req.since > now {
                requeue.push_back(req);
                continue;
            }
            if granted_per_pe[req.pe] >= self.cfg.cache_buses_per_pe {
                requeue.push_back(req);
                continue;
            }
            granted_total += 1;
            granted_per_pe[req.pe] += 1;
            self.perform_mem_access(req.pe, req.slot);
        }
        self.cache_bus_queue = requeue;
    }

    fn perform_mem_access(&mut self, pe: usize, slot: usize) {
        let now = self.now;
        let h = Self::handle(pe, slot);
        let (inst, ea, data) = {
            let s = &self.pes[pe].slots[slot];
            let ea = s.indirect_target.expect("agen ran") as Addr;
            (s.ti.inst, ea, s.value)
        };
        match inst {
            Inst::Load { .. } => {
                let latency = self.dcache.access(ea);
                // Split field borrows: the ARB is mutated while the logical
                // order comes from the PE list.
                let list = &self.list;
                let result = self.arb.load(ea, h, |sh: SeqHandle| {
                    let pe = (sh.0 >> 8) as usize;
                    if !list.contains(pe) {
                        return 0;
                    }
                    ((list.logical(pe) + 1) << 8) | (sh.0 & 0xff)
                });
                let s = &mut self.pes[pe].slots[slot];
                s.value = result.value;
                s.load_src = result.source.map(|sh| sh.0);
                s.mem_addr = Some(ea);
                s.state = SlotState::MemAccess { done_at: now + latency as u64 };
            }
            Inst::Store { .. } => {
                let _ = self.dcache.access(ea);
                let (old_performed, old_addr, old_value) = {
                    let s = &self.pes[pe].slots[slot];
                    (s.store_performed, s.mem_addr, s.has_value.then_some(s.value))
                };
                let _ = old_value;
                // A reissued store that moved must undo its old version.
                if old_performed {
                    if let Some(old) = old_addr {
                        if old >> 3 != ea >> 3 {
                            self.arb.undo(old, h);
                            self.snoop_undo(old, h, pe);
                        }
                    }
                }
                self.arb.store(ea, h, data);
                {
                    let s = &mut self.pes[pe].slots[slot];
                    s.store_performed = true;
                    s.mem_addr = Some(ea);
                    s.state = SlotState::MemAccess { done_at: now + 1 };
                }
                self.snoop_store(ea, h, data, pe);
            }
            _ => unreachable!("only memory ops use cache buses"),
        }
    }

    /// Loads snoop store traffic: a load must reissue if the store is
    /// program-order earlier than the load but later than the load's data
    /// source, or if it *is* the load's data source and the value changed.
    fn snoop_store(&mut self, addr: Addr, store_h: SeqHandle, value: Word, store_pe: usize) {
        let word = addr >> 3;
        let store_key = self.seq_key(store_h);
        let penalty = self.cfg.load_reissue_penalty;
        let now = self.now;
        let mut reissues: Vec<(usize, usize)> = Vec::new();
        for pe in self.list.iter() {
            for (i, s) in self.pes[pe].slots.iter().enumerate() {
                if !matches!(s.ti.inst, Inst::Load { .. }) {
                    continue;
                }
                let Some(la) = s.mem_addr else { continue };
                if la >> 3 != word {
                    continue;
                }
                // Only loads that already sampled memory can be victims.
                if !matches!(s.state, SlotState::MemAccess { .. } | SlotState::Done) {
                    continue;
                }
                let load_key = self.seq_key(Self::handle(pe, i));
                if store_key >= load_key {
                    continue; // store is later in program order
                }
                let must_reissue = match s.load_src {
                    Some(src) if src == store_h.0 => {
                        // Same source store re-executed: reissue if the value
                        // it previously supplied could differ. (The ARB has
                        // already been updated; conservatively reissue.)
                        let _ = value;
                        true
                    }
                    Some(src) => self.seq_key(SeqHandle(src)) < store_key,
                    None => true, // loaded from architectural memory
                };
                if must_reissue {
                    reissues.push((pe, i));
                }
            }
        }
        let _ = store_pe;
        for (pe, i) in reissues {
            self.stats.load_snoop_reissues += 1;
            self.pes[pe].slots[i].mark_reissue(now + penalty);
        }
    }

    /// Loads snoop store-undo traffic: any load whose data came from the
    /// undone store must reissue.
    fn snoop_undo(&mut self, addr: Addr, store_h: SeqHandle, skip_pe: usize) {
        let word = addr >> 3;
        let penalty = self.cfg.load_reissue_penalty;
        let now = self.now;
        let mut reissues: Vec<(usize, usize)> = Vec::new();
        for pe in self.list.iter() {
            if pe == skip_pe {
                continue;
            }
            for (i, s) in self.pes[pe].slots.iter().enumerate() {
                if !matches!(s.ti.inst, Inst::Load { .. }) {
                    continue;
                }
                if s.mem_addr.map(|a| a >> 3) != Some(word) {
                    continue;
                }
                if s.load_src == Some(store_h.0) {
                    reissues.push((pe, i));
                }
            }
        }
        for (pe, i) in reissues {
            self.stats.load_snoop_reissues += 1;
            self.pes[pe].slots[i].mark_reissue(now + penalty);
        }
    }

    fn grant_result_buses(&mut self) {
        let now = self.now;
        let mut granted_total = 0;
        let mut granted_per_pe = vec![0usize; self.cfg.num_pes];
        let mut requeue: VecDeque<BusReq> = VecDeque::new();
        while let Some(req) = self.result_bus_queue.pop_front() {
            if granted_total >= self.cfg.result_buses {
                requeue.push_back(req);
                while let Some(r) = self.result_bus_queue.pop_front() {
                    requeue.push_back(r);
                }
                break;
            }
            let valid = {
                let p = &self.pes[req.pe];
                p.occupied
                    && p.gen == req.gen
                    && req.slot < p.slots.len()
                    && p.slots[req.slot].is_liveout
                    && p.slots[req.slot].dest.is_some()
            };
            if !valid {
                continue;
            }
            if req.since > now {
                requeue.push_back(req);
                continue;
            }
            if granted_per_pe[req.pe] >= self.cfg.result_buses_per_pe {
                requeue.push_back(req);
                continue;
            }
            granted_total += 1;
            granted_per_pe[req.pe] += 1;
            let dest = self.pes[req.pe].slots[req.slot].dest.expect("validated");
            let r = self.pregs.get_mut(dest);
            if r.ready && r.global_ready_at == u64::MAX {
                r.global_ready_at = now + self.cfg.bypass_latency;
            }
        }
        self.result_bus_queue = requeue;
    }
}

impl fmt::Debug for TraceProcessor<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TraceProcessor")
            .field("cycle", &self.now)
            .field("halted", &self.halted)
            .field("window", &self.list.len())
            .field("retired", &self.stats.retired_instrs)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CiModel;
    use tp_isa::asm::Asm;
    use tp_isa::func::Machine;
    use tp_isa::synth::{self, SynthConfig};
    use tp_isa::{AluOp, Cond};

    const ALL_MODELS: [CiModel; 5] =
        [CiModel::None, CiModel::Ret, CiModel::MlbRet, CiModel::Fg, CiModel::FgMlbRet];

    fn run_verified(program: &Program, model: CiModel) -> RunResult {
        let cfg = TraceProcessorConfig::paper(model).with_oracle();
        let mut sim = TraceProcessor::new(program, cfg);
        let result = sim.run(5_000_000).unwrap_or_else(|e| panic!("{}: {e}", program.name()));
        assert!(result.halted, "{} did not halt under {model:?}", program.name());
        // Cross-check final architectural state against the oracle.
        let mut oracle = Machine::new(program);
        oracle.run(u64::MAX).expect("oracle runs");
        assert_eq!(sim.arch_state(), oracle.arch_state(), "{} state mismatch", program.name());
        assert_eq!(result.stats.retired_instrs, oracle.retired(), "{} retired-count mismatch", program.name());
        result
    }

    fn straightline_program() -> Program {
        let mut a = Asm::new("straight");
        let (r1, r2, r3) = (Reg::new(1), Reg::new(2), Reg::new(3));
        a.li(r1, 5);
        a.li(r2, 7);
        a.alu(AluOp::Mul, r3, r1, r2);
        a.li(r1, 0x200);
        a.store(r3, r1, 0);
        a.load(r2, r1, 0);
        a.addi(r2, r2, 1);
        a.halt();
        a.assemble().unwrap()
    }

    fn counted_loop_program(n: i32) -> Program {
        let mut a = Asm::new("loop");
        let (r1, r2) = (Reg::new(1), Reg::new(2));
        a.li(r1, n);
        a.li(r2, 0);
        a.label("top");
        a.addi(r2, r2, 3);
        a.addi(r1, r1, -1);
        a.branch(Cond::Gt, r1, Reg::ZERO, "top");
        a.halt();
        a.assemble().unwrap()
    }

    /// Data-dependent hammocks inside a loop: heavy FGCI territory.
    fn hammock_loop_program() -> Program {
        let mut a = Asm::new("hammocks");
        let (r1, r2, r3, r4, r5) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4), Reg::new(5));
        a.li64(r5, tp_isa::DATA_BASE as i64);
        a.li(r1, 200); // iterations
        a.li(r2, 0);
        a.label("top");
        // Load pseudo-random word and branch on it.
        a.alui(AluOp::And, r3, r1, 63);
        a.alui(AluOp::Shl, r3, r3, 3);
        a.add(r3, r3, r5);
        a.load(r4, r3, 0);
        a.branch(Cond::Lt, r4, Reg::ZERO, "else");
        a.addi(r2, r2, 1);
        a.jump("join");
        a.label("else");
        a.addi(r2, r2, 2);
        a.addi(r2, r2, 3);
        a.label("join");
        a.addi(r1, r1, -1);
        a.branch(Cond::Gt, r1, Reg::ZERO, "top");
        a.store(r2, r5, 0);
        a.halt();
        // Pseudo-random data.
        let mut x: i64 = 0x1234_5678;
        for i in 0..64u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            a.data_word(tp_isa::DATA_BASE + 8 * i, x >> 13);
        }
        a.assemble().unwrap()
    }

    /// Short loops with data-dependent trip counts inside an outer loop:
    /// heavy MLB territory.
    fn unpredictable_loops_program() -> Program {
        let mut a = Asm::new("mlb");
        let (r1, r2, r3, r4, r5) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4), Reg::new(5));
        a.li64(r5, tp_isa::DATA_BASE as i64);
        a.li(r1, 150);
        a.li(r2, 0);
        a.label("outer");
        a.alui(AluOp::And, r3, r1, 31);
        a.alui(AluOp::Shl, r3, r3, 3);
        a.add(r3, r3, r5);
        a.load(r4, r3, 0);
        a.alui(AluOp::And, r4, r4, 3);
        a.addi(r4, r4, 1); // inner trip 1..=4
        a.label("inner");
        a.addi(r2, r2, 1);
        a.addi(r4, r4, -1);
        a.branch(Cond::Gt, r4, Reg::ZERO, "inner");
        // Control independent work after the loop exit.
        a.addi(r2, r2, 10);
        a.alui(AluOp::Xor, r2, r2, 5);
        a.addi(r1, r1, -1);
        a.branch(Cond::Gt, r1, Reg::ZERO, "outer");
        a.store(r2, r5, 8);
        a.halt();
        let mut x: i64 = 99;
        for i in 0..32u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            a.data_word(tp_isa::DATA_BASE + 8 * i, (x >> 7).abs());
        }
        a.assemble().unwrap()
    }

    /// Function calls with a data-dependent branch inside the caller: RET
    /// territory (re-convergence at the return target).
    fn call_heavy_program() -> Program {
        let mut a = Asm::new("calls");
        let (r1, r2, r3, r4, r5) = (Reg::new(1), Reg::new(2), Reg::new(3), Reg::new(4), Reg::new(5));
        a.li64(Reg::SP, tp_isa::STACK_BASE as i64);
        a.li64(r5, tp_isa::DATA_BASE as i64);
        a.li(r1, 120);
        a.li(r2, 0);
        a.label("top");
        a.alui(AluOp::And, r3, r1, 15);
        a.alui(AluOp::Shl, r3, r3, 3);
        a.add(r3, r3, r5);
        a.load(r4, r3, 0);
        a.call("f");
        a.addi(r2, r2, 1);
        a.addi(r1, r1, -1);
        a.branch(Cond::Gt, r1, Reg::ZERO, "top");
        a.store(r2, r5, 16);
        a.halt();
        a.label("f");
        // Unpredictable branch inside the function; both paths return.
        a.branch(Cond::Lt, r4, Reg::ZERO, "neg");
        a.addi(r2, r2, 2);
        a.ret();
        a.label("neg");
        a.addi(r2, r2, 5);
        a.addi(r2, r2, 7);
        a.ret();
        let mut x: i64 = 7;
        for i in 0..16u64 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            a.data_word(tp_isa::DATA_BASE + 8 * i, x >> 3);
        }
        a.assemble().unwrap()
    }

    #[test]
    fn straightline_commits_correctly() {
        for model in ALL_MODELS {
            let r = run_verified(&straightline_program(), model);
            assert_eq!(r.stats.retired_instrs, 8);
        }
    }

    #[test]
    fn counted_loop_all_models() {
        for model in ALL_MODELS {
            let r = run_verified(&counted_loop_program(300), model);
            assert!(r.stats.ipc() > 0.3, "{model:?} ipc {}", r.stats.ipc());
        }
    }

    #[test]
    fn hammock_loop_all_models() {
        for model in ALL_MODELS {
            run_verified(&hammock_loop_program(), model);
        }
    }

    #[test]
    fn fgci_recoveries_trigger_on_hammocks() {
        let p = hammock_loop_program();
        let cfg = TraceProcessorConfig::paper(CiModel::Fg).with_oracle();
        let mut sim = TraceProcessor::new(&p, cfg);
        sim.run(5_000_000).unwrap();
        assert!(sim.stats().fgci_recoveries > 0, "expected FGCI recoveries: {:?}", sim.stats());
    }

    #[test]
    fn mlb_recoveries_trigger_on_unpredictable_loops() {
        let p = unpredictable_loops_program();
        let cfg = TraceProcessorConfig::paper(CiModel::MlbRet).with_oracle();
        let mut sim = TraceProcessor::new(&p, cfg);
        sim.run(5_000_000).unwrap();
        assert!(sim.stats().cgci_attempts > 0, "expected CGCI attempts: {:?}", sim.stats());
        assert!(sim.stats().cgci_reconverged > 0, "expected reconvergence: {:?}", sim.stats());
    }

    #[test]
    fn unpredictable_loops_all_models() {
        for model in ALL_MODELS {
            run_verified(&unpredictable_loops_program(), model);
        }
    }

    #[test]
    fn ret_recoveries_trigger_on_calls() {
        let p = call_heavy_program();
        let cfg = TraceProcessorConfig::paper(CiModel::Ret).with_oracle();
        let mut sim = TraceProcessor::new(&p, cfg);
        sim.run(5_000_000).unwrap();
        assert!(sim.stats().cgci_attempts > 0, "expected CGCI attempts: {:?}", sim.stats());
    }

    #[test]
    fn call_heavy_all_models() {
        for model in ALL_MODELS {
            run_verified(&call_heavy_program(), model);
        }
    }

    #[test]
    fn synthetic_programs_match_oracle_small() {
        let cfg = SynthConfig::small();
        for seed in 0..6 {
            let p = synth::generate(&cfg, seed);
            for model in ALL_MODELS {
                run_verified(&p, model);
            }
        }
    }

    #[test]
    fn synthetic_programs_match_oracle_default() {
        let cfg = SynthConfig::default();
        for seed in 100..104 {
            let p = synth::generate(&cfg, seed);
            for model in ALL_MODELS {
                run_verified(&p, model);
            }
        }
    }

    #[test]
    fn stats_are_consistent() {
        let p = hammock_loop_program();
        let cfg = TraceProcessorConfig::paper(CiModel::FgMlbRet);
        let mut sim = TraceProcessor::new(&p, cfg);
        let r = sim.run(5_000_000).unwrap();
        let s = r.stats;
        assert!(s.retired_traces > 0);
        assert!(s.avg_trace_len() > 1.0);
        assert!(s.dispatched_traces >= s.retired_traces);
        assert!(s.issue_events >= s.retired_instrs);
        assert!(s.cycles > 0);
        assert!(s.retired_cond_branches > 0);
    }

    #[test]
    fn small_config_works() {
        for model in ALL_MODELS {
            let cfg = TraceProcessorConfig::small(model).with_oracle();
            let p = counted_loop_program(50);
            let mut sim = TraceProcessor::new(&p, cfg);
            let r = sim.run(1_000_000).unwrap();
            assert!(r.halted);
        }
    }
}
