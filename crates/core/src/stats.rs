//! Simulation statistics.

use tp_stats::{pct, per_kilo};

/// Counters collected by one simulation run, with derived metrics for every
/// quantity the paper's tables report.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SimStats {
    /// Elapsed cycles.
    pub cycles: u64,
    /// Retired (committed) instructions.
    pub retired_instrs: u64,
    /// Retired traces.
    pub retired_traces: u64,
    /// Retired conditional branches.
    pub retired_cond_branches: u64,
    /// Retired conditional branches whose original embedded prediction was
    /// wrong (they required repair).
    pub retired_cond_mispredicts: u64,
    /// Traces dispatched (including wrong-path and re-fetched traces).
    pub dispatched_traces: u64,
    /// Retired traces that entered the window via next-trace prediction.
    pub predicted_traces: u64,
    /// Retired traces whose prediction proved wrong (they were repaired at
    /// least once, or were mispredicted successors of indirect transfers).
    pub trace_mispredictions: u64,
    /// Trace cache lookups (fetch-time probes, speculative included).
    pub tcache_lookups: u64,
    /// Trace cache misses.
    pub tcache_misses: u64,
    /// BIT miss-handler invocations (FGCI-algorithm runs).
    pub bit_miss_handlers: u64,
    /// Cycles the construction engine spent stalled in BIT miss handlers.
    pub bit_miss_cycles: u64,
    /// Fine-grain (intra-PE) recoveries applied.
    pub fgci_recoveries: u64,
    /// Coarse-grain recoveries attempted (re-convergent point located).
    pub cgci_attempts: u64,
    /// Coarse-grain recoveries that detected re-convergence and preserved
    /// control-independent traces.
    pub cgci_reconverged: u64,
    /// Full squashes (no control independence applied).
    pub full_squashes: u64,
    /// Traces squashed (all causes).
    pub squashed_traces: u64,
    /// Traces preserved across a misprediction by FGCI/CGCI.
    pub preserved_traces: u64,
    /// Traces processed by re-dispatch passes.
    pub redispatched_traces: u64,
    /// Instruction issue events (first issues plus selective reissues).
    pub issue_events: u64,
    /// Selective reissue events (issues beyond a slot's first).
    pub reissue_events: u64,
    /// Loads forced to reissue by ARB snooping (memory violations, store
    /// undo, or changed store data).
    pub load_snoop_reissues: u64,
    /// Slots marked for reissue because a producer's value changed after
    /// they consumed it (execution-driven selective recovery).
    pub value_change_marks: u64,
    /// Slots marked for reissue because a recovery rebound their source
    /// names (re-dispatch passes, head re-grounding, trace repair).
    pub rebind_marks: u64,
    /// Tail PEs reclaimed during CGCI insertion (window-full pressure).
    pub tail_reclaims: u64,
    /// Stale head live-in bindings re-grounded to retired state (recovery
    /// corner cases; should be rare).
    pub head_rebinds: u64,
}

impl SimStats {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_instrs as f64 / self.cycles as f64
        }
    }

    /// Average retired trace length (Table 4's "avg. trace length").
    pub fn avg_trace_len(&self) -> f64 {
        if self.retired_traces == 0 {
            0.0
        } else {
            self.retired_instrs as f64 / self.retired_traces as f64
        }
    }

    /// Trace mispredictions per 1000 retired instructions (Table 4).
    pub fn trace_misp_per_kilo(&self) -> f64 {
        per_kilo(self.trace_mispredictions, self.retired_instrs)
    }

    /// Trace misprediction rate in percent, per retired trace (Table 4).
    pub fn trace_misp_rate(&self) -> f64 {
        pct(self.trace_mispredictions as f64, self.retired_traces as f64)
    }

    /// Trace cache misses per 1000 retired instructions (Table 4).
    pub fn tcache_miss_per_kilo(&self) -> f64 {
        per_kilo(self.tcache_misses, self.retired_instrs)
    }

    /// Trace cache miss rate in percent (Table 4).
    pub fn tcache_miss_rate(&self) -> f64 {
        pct(self.tcache_misses as f64, self.tcache_lookups as f64)
    }

    /// Conditional branch misprediction rate in percent (Table 5 overall).
    pub fn branch_misp_rate(&self) -> f64 {
        pct(self.retired_cond_mispredicts as f64, self.retired_cond_branches as f64)
    }

    /// Conditional branch mispredictions per 1000 retired instructions.
    pub fn branch_misp_per_kilo(&self) -> f64 {
        per_kilo(self.retired_cond_mispredicts, self.retired_instrs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 100,
            retired_instrs: 420,
            retired_traces: 20,
            trace_mispredictions: 2,
            tcache_lookups: 50,
            tcache_misses: 5,
            retired_cond_branches: 40,
            retired_cond_mispredicts: 4,
            ..SimStats::default()
        };
        assert!((s.ipc() - 4.2).abs() < 1e-12);
        assert!((s.avg_trace_len() - 21.0).abs() < 1e-12);
        assert!((s.trace_misp_per_kilo() - 2.0 / 420.0 * 1000.0).abs() < 1e-9);
        assert!((s.trace_misp_rate() - 10.0).abs() < 1e-9);
        assert!((s.tcache_miss_rate() - 10.0).abs() < 1e-9);
        assert!((s.branch_misp_rate() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn zero_division_is_safe() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.avg_trace_len(), 0.0);
        assert_eq!(s.trace_misp_rate(), 0.0);
        assert_eq!(s.branch_misp_per_kilo(), 0.0);
    }
}
