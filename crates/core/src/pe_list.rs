//! Linked-list management of processing elements.
//!
//! With coarse-grain control independence, the logical (program) order of
//! PEs can no longer be inferred from head/tail pointers and physical
//! order: traces are inserted and removed from the *middle* of the window.
//! The paper's control structure is "a small table indexed by physical PE
//! number, with each entry containing three fields: logical PE number and
//! pointers to the previous and next PEs", plus head/tail pointers — which
//! is exactly what this module implements. The logical-number field exists
//! solely to translate physical sequence numbers for memory disambiguation.

/// The PE linked-list control structure.
#[derive(Clone, Debug)]
pub struct PeList {
    next: Vec<Option<usize>>,
    prev: Vec<Option<usize>>,
    logical: Vec<u64>,
    in_list: Vec<bool>,
    head: Option<usize>,
    tail: Option<usize>,
    len: usize,
}

impl PeList {
    /// Creates an empty list over `num_pes` physical PEs.
    pub fn new(num_pes: usize) -> PeList {
        PeList {
            next: vec![None; num_pes],
            prev: vec![None; num_pes],
            logical: vec![0; num_pes],
            in_list: vec![false; num_pes],
            head: None,
            tail: None,
            len: 0,
        }
    }

    /// The oldest PE.
    pub fn head(&self) -> Option<usize> {
        self.head
    }

    /// The youngest (most speculative) PE.
    pub fn tail(&self) -> Option<usize> {
        self.tail
    }

    /// Number of PEs currently in the list.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether `pe` is currently in the list.
    pub fn contains(&self, pe: usize) -> bool {
        self.in_list[pe]
    }

    /// The PE after `pe` in logical order.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is not in the list.
    pub fn next(&self, pe: usize) -> Option<usize> {
        assert!(self.in_list[pe], "PE {pe} not in list");
        self.next[pe]
    }

    /// The PE before `pe` in logical order.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is not in the list.
    pub fn prev(&self, pe: usize) -> Option<usize> {
        assert!(self.in_list[pe], "PE {pe} not in list");
        self.prev[pe]
    }

    /// The logical number of `pe` — its position in program order. Used to
    /// translate physical sequence numbers for the ARB.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is not in the list.
    pub fn logical(&self, pe: usize) -> u64 {
        assert!(self.in_list[pe], "PE {pe} not in list");
        self.logical[pe]
    }

    /// Appends `pe` at the tail (normal dispatch).
    ///
    /// # Panics
    ///
    /// Panics if `pe` is already in the list.
    pub fn push_tail(&mut self, pe: usize) {
        assert!(!self.in_list[pe], "PE {pe} already in list");
        self.prev[pe] = self.tail;
        self.next[pe] = None;
        if let Some(t) = self.tail {
            self.next[t] = Some(pe);
        } else {
            self.head = Some(pe);
        }
        self.tail = Some(pe);
        self.in_list[pe] = true;
        self.len += 1;
        self.renumber();
    }

    /// Inserts `pe` immediately before `before` (CGCI insertion of a
    /// control-dependent trace in the middle of the window).
    ///
    /// # Panics
    ///
    /// Panics if `pe` is already in the list or `before` is not.
    pub fn insert_before(&mut self, pe: usize, before: usize) {
        assert!(!self.in_list[pe], "PE {pe} already in list");
        assert!(self.in_list[before], "PE {before} not in list");
        let p = self.prev[before];
        self.prev[pe] = p;
        self.next[pe] = Some(before);
        self.prev[before] = Some(pe);
        match p {
            Some(p) => self.next[p] = Some(pe),
            None => self.head = Some(pe),
        }
        self.in_list[pe] = true;
        self.len += 1;
        self.renumber();
    }

    /// Removes `pe` (retirement at the head, or a squash anywhere).
    ///
    /// # Panics
    ///
    /// Panics if `pe` is not in the list.
    pub fn remove(&mut self, pe: usize) {
        assert!(self.in_list[pe], "PE {pe} not in list");
        let (p, n) = (self.prev[pe], self.next[pe]);
        match p {
            Some(p) => self.next[p] = n,
            None => self.head = n,
        }
        match n {
            Some(n) => self.prev[n] = p,
            None => self.tail = p,
        }
        self.in_list[pe] = false;
        self.prev[pe] = None;
        self.next[pe] = None;
        self.len -= 1;
        self.renumber();
    }

    /// PEs in logical (program) order, oldest first.
    pub fn iter(&self) -> PeListIter<'_> {
        PeListIter { list: self, cur: self.head }
    }

    /// PEs strictly after `pe`, in logical order.
    ///
    /// # Panics
    ///
    /// Panics if `pe` is not in the list.
    pub fn iter_after(&self, pe: usize) -> PeListIter<'_> {
        assert!(self.in_list[pe], "PE {pe} not in list");
        PeListIter { list: self, cur: self.next[pe] }
    }

    fn renumber(&mut self) {
        let mut n = 0;
        let mut cur = self.head;
        while let Some(pe) = cur {
            self.logical[pe] = n;
            n += 1;
            cur = self.next[pe];
        }
    }
}

/// Iterator over PEs in logical order (see [`PeList::iter`]).
#[derive(Clone, Debug)]
pub struct PeListIter<'a> {
    list: &'a PeList,
    cur: Option<usize>,
}

impl Iterator for PeListIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        let pe = self.cur?;
        self.cur = self.list.next[pe];
        Some(pe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(list: &PeList) -> Vec<usize> {
        list.iter().collect()
    }

    #[test]
    fn push_and_remove_fifo() {
        let mut l = PeList::new(4);
        assert!(l.is_empty());
        l.push_tail(2);
        l.push_tail(0);
        l.push_tail(3);
        assert_eq!(order(&l), vec![2, 0, 3]);
        assert_eq!(l.head(), Some(2));
        assert_eq!(l.tail(), Some(3));
        assert_eq!(l.logical(0), 1);
        l.remove(2); // retire head
        assert_eq!(order(&l), vec![0, 3]);
        assert_eq!(l.logical(0), 0);
        assert_eq!(l.logical(3), 1);
    }

    #[test]
    fn insert_before_middle_and_head() {
        let mut l = PeList::new(5);
        l.push_tail(0);
        l.push_tail(1);
        l.insert_before(2, 1);
        assert_eq!(order(&l), vec![0, 2, 1]);
        l.insert_before(3, 0);
        assert_eq!(order(&l), vec![3, 0, 2, 1]);
        assert_eq!(l.head(), Some(3));
        assert_eq!(l.logical(1), 3);
    }

    #[test]
    fn remove_middle_relinks() {
        let mut l = PeList::new(4);
        l.push_tail(0);
        l.push_tail(1);
        l.push_tail(2);
        l.remove(1);
        assert_eq!(order(&l), vec![0, 2]);
        assert_eq!(l.next(0), Some(2));
        assert_eq!(l.prev(2), Some(0));
        assert!(!l.contains(1));
    }

    #[test]
    fn remove_tail_updates_tail() {
        let mut l = PeList::new(3);
        l.push_tail(0);
        l.push_tail(1);
        l.remove(1);
        assert_eq!(l.tail(), Some(0));
        l.push_tail(2);
        assert_eq!(order(&l), vec![0, 2]);
    }

    #[test]
    fn iter_after_skips_older() {
        let mut l = PeList::new(4);
        for pe in [3, 1, 0, 2] {
            l.push_tail(pe);
        }
        let after: Vec<usize> = l.iter_after(1).collect();
        assert_eq!(after, vec![0, 2]);
    }

    #[test]
    fn logical_numbers_track_insertions() {
        let mut l = PeList::new(4);
        l.push_tail(0);
        l.push_tail(1);
        // Insert 2 between them: sequence numbers must re-translate.
        l.insert_before(2, 1);
        assert_eq!(l.logical(0), 0);
        assert_eq!(l.logical(2), 1);
        assert_eq!(l.logical(1), 2);
    }

    /// Checks every structural invariant of the list: forward/backward link
    /// agreement, head/tail endpoints, membership flags, length, and dense
    /// logical numbering in walk order.
    fn assert_invariants(l: &PeList, expected_order: &[usize]) {
        assert_eq!(order(l), expected_order, "forward walk order");
        assert_eq!(l.len(), expected_order.len());
        assert_eq!(l.is_empty(), expected_order.is_empty());
        assert_eq!(l.head(), expected_order.first().copied(), "head pointer");
        assert_eq!(l.tail(), expected_order.last().copied(), "tail pointer");
        // Backward walk from the tail must visit the same PEs reversed.
        let mut back = Vec::new();
        let mut cur = l.tail();
        while let Some(pe) = cur {
            back.push(pe);
            cur = l.prev(pe);
        }
        back.reverse();
        assert_eq!(back, expected_order, "backward walk order");
        for (i, &pe) in expected_order.iter().enumerate() {
            assert!(l.contains(pe));
            assert_eq!(l.logical(pe), i as u64, "logical number of PE {pe}");
            assert_eq!(l.prev(pe), (i > 0).then(|| expected_order[i - 1]));
            assert_eq!(l.next(pe), expected_order.get(i + 1).copied());
        }
    }

    /// CGCI recovery inserts control-dependent traces in the *middle* of the
    /// window, between the repaired branch trace and the preserved
    /// control-independent trace. The links on both sides, the endpoints,
    /// and the logical numbering must all survive repeated insertion.
    #[test]
    fn cgci_mid_window_insertion_preserves_invariants() {
        let mut l = PeList::new(6);
        // Window: [0] (faulting branch trace) -> [1, 2] (preserved CI).
        l.push_tail(0);
        l.push_tail(1);
        l.push_tail(2);
        assert_invariants(&l, &[0, 1, 2]);
        // Insert two control-dependent traces before the preserved trace 1,
        // i.e. between two traces that both stay in the window.
        l.insert_before(3, 1);
        assert_invariants(&l, &[0, 3, 1, 2]);
        l.insert_before(4, 1);
        assert_invariants(&l, &[0, 3, 4, 1, 2]);
        // The preserved suffix keeps its relative order, renumbered.
        assert_eq!(l.logical(1), 3);
        assert_eq!(l.logical(2), 4);
        // Retiring the head (oldest) leaves the inserted traces intact.
        l.remove(0);
        assert_invariants(&l, &[3, 4, 1, 2]);
    }

    /// A full squash after a mispredicted branch removes every PE younger
    /// than the branch (mid-window *and* tail removals), leaving the branch
    /// as the new tail with links and numbering intact — including when the
    /// squash victims were themselves CGCI mid-window insertions.
    #[test]
    fn squash_to_branch_preserves_invariants() {
        let mut l = PeList::new(6);
        for pe in [0, 1, 2, 3] {
            l.push_tail(pe);
        }
        // A CGCI insertion that will be caught in the squash shadow.
        l.insert_before(4, 2);
        assert_invariants(&l, &[0, 1, 4, 2, 3]);
        // Branch in PE 1 mispredicts without a re-convergent point: squash
        // everything younger (the simulator removes them in logical order).
        let victims: Vec<usize> = l.iter_after(1).collect();
        assert_eq!(victims, vec![4, 2, 3]);
        for v in victims {
            l.remove(v);
        }
        assert_invariants(&l, &[0, 1]);
        assert_eq!(l.tail(), Some(1), "branch PE becomes the tail");
        // The freed PEs are immediately reusable at any position.
        l.push_tail(2);
        l.insert_before(3, 2);
        assert_invariants(&l, &[0, 1, 3, 2]);
    }

    /// Alternating insertion and squash cycles (the steady state of CGCI
    /// recovery under pressure) never corrupt the structure.
    #[test]
    fn repeated_insert_squash_cycles_stay_consistent() {
        let mut l = PeList::new(4);
        l.push_tail(0);
        l.push_tail(1);
        let mut expected = vec![0, 1];
        for round in 0..50usize {
            // Insert a "control-dependent" trace before the youngest
            // preserved PE, using whichever PE index is free.
            let free = (0..4).find(|&pe| !l.contains(pe)).expect("a PE is free");
            let before = *expected.last().expect("non-empty");
            l.insert_before(free, before);
            expected.insert(expected.len() - 1, free);
            assert_invariants(&l, &expected);
            // Every other round, squash the tail (reclamation) or the
            // inserted PE (abandoned insertion).
            let victim = if round % 2 == 0 { *expected.last().expect("non-empty") } else { free };
            l.remove(victim);
            expected.retain(|&pe| pe != victim);
            assert_invariants(&l, &expected);
        }
    }

    #[test]
    #[should_panic(expected = "already in list")]
    fn double_insert_panics() {
        let mut l = PeList::new(2);
        l.push_tail(0);
        l.push_tail(0);
    }

    #[test]
    #[should_panic(expected = "not in list")]
    fn remove_absent_panics() {
        let mut l = PeList::new(2);
        l.remove(0);
    }
}
