//! Physical registers and the global register file.
//!
//! Every dispatched instruction with a destination allocates a fresh
//! physical register. Registers are never recycled within a run: selective
//! reissue and control-independent traces may read a value long after the
//! producing trace retired or was repaired, and an arena makes all such
//! reads trivially safe. (The paper's hardware sizes its register file
//! conventionally; register-file capacity is not one of the evaluated
//! bottlenecks, so the model spends memory to buy correctness.)

use tp_isa::Word;

/// Identifies a physical register.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysRegId(pub u32);

impl PhysRegId {
    /// The constant-zero register: always ready, value 0, visible to every
    /// PE at every cycle (architectural `r0` renames here).
    pub const ZERO: PhysRegId = PhysRegId(0);
}

/// One physical register's state.
#[derive(Clone, Copy, Debug)]
pub struct PhysReg {
    /// Current value (meaningful once `ready`).
    pub value: Word,
    /// Whether a value has been produced at all.
    pub ready: bool,
    /// Cycle from which the producing PE may consume the value.
    pub local_ready_at: u64,
    /// Cycle from which other PEs may consume the value (set when a global
    /// result bus was granted, plus the extra bypass latency).
    pub global_ready_at: u64,
    /// The PE that produced (or will produce) the value.
    pub producer_pe: Option<u8>,
}

/// A rename map: architectural register index to physical register.
pub type RenameMap = [PhysRegId; tp_isa::Reg::COUNT];

/// Returns the initial rename map, with every architectural register mapped
/// to the architectural-state register allocated at simulator start.
pub fn initial_map(arch_regs: &[PhysRegId; tp_isa::Reg::COUNT]) -> RenameMap {
    *arch_regs
}

/// The grow-only physical register file.
#[derive(Clone, Debug)]
pub struct PhysRegFile {
    regs: Vec<PhysReg>,
}

impl PhysRegFile {
    /// Creates the file containing only the constant-zero register.
    pub fn new() -> PhysRegFile {
        PhysRegFile {
            regs: vec![PhysReg {
                value: 0,
                ready: true,
                local_ready_at: 0,
                global_ready_at: 0,
                producer_pe: None,
            }],
        }
    }

    /// Allocates a fresh, not-yet-ready register owned by `producer_pe`.
    pub fn alloc(&mut self, producer_pe: Option<u8>) -> PhysRegId {
        let id = PhysRegId(self.regs.len() as u32);
        self.regs.push(PhysReg {
            value: 0,
            ready: false,
            local_ready_at: u64::MAX,
            global_ready_at: u64::MAX,
            producer_pe,
        });
        id
    }

    /// Allocates a register that is immediately ready with `value` and
    /// globally visible (used for initial architectural state).
    pub fn alloc_ready(&mut self, value: Word) -> PhysRegId {
        let id = PhysRegId(self.regs.len() as u32);
        self.regs.push(PhysReg {
            value,
            ready: true,
            local_ready_at: 0,
            global_ready_at: 0,
            producer_pe: None,
        });
        id
    }

    /// Immutable access.
    #[inline]
    pub fn get(&self, id: PhysRegId) -> &PhysReg {
        &self.regs[id.0 as usize]
    }

    /// Mutable access.
    ///
    /// # Panics
    ///
    /// Panics when attempting to mutate the constant-zero register.
    #[inline]
    pub fn get_mut(&mut self, id: PhysRegId) -> &mut PhysReg {
        assert!(id != PhysRegId::ZERO, "the zero register is immutable");
        &mut self.regs[id.0 as usize]
    }

    /// Whether `id`'s value may be consumed by `reader_pe` at cycle `now`.
    #[inline]
    pub fn readable_by(&self, id: PhysRegId, reader_pe: u8, now: u64) -> bool {
        let r = self.get(id);
        if !r.ready {
            return false;
        }
        if r.producer_pe == Some(reader_pe) {
            now >= r.local_ready_at
        } else {
            now >= r.global_ready_at
        }
    }

    /// Number of registers allocated so far.
    pub fn len(&self) -> usize {
        self.regs.len()
    }

    /// Never empty (the zero register always exists).
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Default for PhysRegFile {
    fn default() -> PhysRegFile {
        PhysRegFile::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_register_is_always_readable() {
        let f = PhysRegFile::new();
        assert!(f.readable_by(PhysRegId::ZERO, 0, 0));
        assert!(f.readable_by(PhysRegId::ZERO, 7, 123456));
        assert_eq!(f.get(PhysRegId::ZERO).value, 0);
    }

    #[test]
    #[should_panic(expected = "immutable")]
    fn zero_register_cannot_be_written() {
        let mut f = PhysRegFile::new();
        f.get_mut(PhysRegId::ZERO).value = 5;
    }

    #[test]
    fn fresh_registers_are_not_ready() {
        let mut f = PhysRegFile::new();
        let p = f.alloc(Some(2));
        assert!(!f.readable_by(p, 2, 100));
    }

    #[test]
    fn local_vs_global_visibility() {
        let mut f = PhysRegFile::new();
        let p = f.alloc(Some(1));
        {
            let r = f.get_mut(p);
            r.value = 9;
            r.ready = true;
            r.local_ready_at = 10;
            r.global_ready_at = 12;
        }
        // Producer PE 1 sees it from cycle 10; PE 2 only from cycle 12.
        assert!(!f.readable_by(p, 1, 9));
        assert!(f.readable_by(p, 1, 10));
        assert!(!f.readable_by(p, 2, 11));
        assert!(f.readable_by(p, 2, 12));
    }

    #[test]
    fn alloc_ready_is_globally_visible() {
        let mut f = PhysRegFile::new();
        let p = f.alloc_ready(-3);
        assert!(f.readable_by(p, 5, 0));
        assert_eq!(f.get(p).value, -3);
    }
}
