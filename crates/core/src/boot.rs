//! Booting a trace processor from a mid-run architectural checkpoint.
//!
//! The sampled-simulation subsystem (`tp-ckpt`) fast-forwards a program
//! functionally, then boots the detailed cycle model at an arbitrary
//! point: [`BootImage`] carries the architectural state to resume from
//! (PC, registers, full memory image) plus an optional [`WarmBoot`] of
//! predictor/cache structures functionally warmed during the fast-forward,
//! so a detailed measurement interval does not start cold. The inverse
//! direction — [`TraceProcessor::into_warm`](crate::TraceProcessor::into_warm)
//! — hands a finished interval's trained structures back to the
//! fast-forward engine, keeping warming continuous across the whole
//! sampled run.

use std::fmt;

use tp_cache::{DCache, ICache, TraceCache};
use tp_isa::{Pc, Program, Reg, Word};
use tp_predict::{Btb, NextTracePredictor, Ras, TraceHistory};
use tp_trace::Bit;

use crate::config::ConfigError;

/// Warmed frontend structures to install at boot: the branch predictor,
/// return-address stack, next-trace predictor, trace cache, branch
/// information table, and the trace history feeding the predictors.
///
/// Geometry must match the [`TraceProcessorConfig`](crate::TraceProcessorConfig)
/// the processor is booted with; mismatches are rejected as
/// [`BootError::WarmGeometry`] rather than silently mispredicting.
#[derive(Clone, Debug)]
pub struct WarmBoot {
    /// Warmed conditional/indirect branch predictor.
    pub btb: Btb,
    /// Warmed return address stack.
    pub ras: Ras,
    /// Warmed next-trace predictor.
    pub predictor: NextTracePredictor,
    /// Warmed trace cache.
    pub tcache: TraceCache,
    /// Warmed branch information table (FGCI region analyses).
    pub bit: Bit,
    /// Warmed instruction-cache tag state (construction latency).
    pub icache: ICache,
    /// Warmed data-cache tag state (load/store latency). Booting with the
    /// steady-state working set resident matters as much as warm
    /// predictors: a mid-run interval booted cold re-misses the entire
    /// working set and underestimates IPC.
    pub dcache: DCache,
    /// Trace history as of the checkpoint (seeds both the fetch-side and
    /// retirement-side histories).
    pub history: TraceHistory,
}

/// A resumable boot state for [`TraceProcessor::from_checkpoint`]
/// (crate::TraceProcessor::from_checkpoint): plain data, produced by the
/// `tp-ckpt` crate's checkpoint decoder (or any other driver).
#[derive(Clone, Debug)]
pub struct BootImage {
    /// Program counter to resume fetching at.
    pub pc: Pc,
    /// Architectural register values.
    pub regs: [Word; Reg::COUNT],
    /// The full committed memory image as `(word index, value)` pairs
    /// (word index = byte address `>> 3`). Words absent from the image
    /// read as zero, so a normalized (zero-word-free) image is lossless.
    pub mem: Vec<(u64, Word)>,
    /// Instructions retired before the checkpoint (bookkeeping only; the
    /// booted processor's own statistics start at zero).
    pub retired: u64,
    /// Whether the program had already halted (a degenerate checkpoint;
    /// the booted processor retires nothing).
    pub halted: bool,
    /// Functionally warmed frontend structures, if any.
    pub warm: Option<WarmBoot>,
}

impl BootImage {
    /// The boot image of a fresh run: entry PC, zero registers, the
    /// program's initial data image, and no warm state. Booting from this
    /// is identical to [`TraceProcessor::new`](crate::TraceProcessor::new).
    pub fn fresh(program: &Program) -> BootImage {
        BootImage {
            pc: program.entry(),
            regs: [0; Reg::COUNT],
            mem: program.data().map(|(addr, w)| (addr >> 3, w)).collect(),
            retired: 0,
            halted: false,
            warm: None,
        }
    }
}

/// Why a checkpoint boot was rejected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BootError {
    /// The processor configuration itself is inconsistent.
    Config(ConfigError),
    /// The boot PC is outside the program image.
    PcOutOfRange {
        /// The invalid program counter.
        pc: Pc,
    },
    /// A warm structure's geometry does not match the configuration
    /// (the contained message names the structure and both geometries).
    WarmGeometry(String),
}

impl fmt::Display for BootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootError::Config(e) => write!(f, "invalid configuration: {e}"),
            BootError::PcOutOfRange { pc } => write!(f, "boot pc {pc} outside the program"),
            BootError::WarmGeometry(msg) => write!(f, "warm-state geometry mismatch: {msg}"),
        }
    }
}

impl std::error::Error for BootError {}

impl From<ConfigError> for BootError {
    fn from(e: ConfigError) -> BootError {
        BootError::Config(e)
    }
}
