//! A fixed-width plain-text table printer for experiment reports.

use std::fmt;

/// A simple left-labelled, right-aligned table, rendered with `Display`.
///
/// # Example
///
/// ```
/// use tp_stats::Table;
/// let mut t = Table::new("IPC", &["base", "ntb"]);
/// t.row("compress", &[2.02, 1.92]);
/// t.row("gcc", &[4.44, 4.51]);
/// let s = t.to_string();
/// assert!(s.contains("compress"));
/// assert!(s.contains("2.02"));
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    corner: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<String>)>,
    precision: usize,
}

impl Table {
    /// Creates a table with a corner label and column headers.
    pub fn new(corner: impl Into<String>, columns: &[&str]) -> Table {
        Table {
            corner: corner.into(),
            columns: columns.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
            precision: 2,
        }
    }

    /// Sets the number of decimal places used by [`Table::row`] (default 2).
    pub fn precision(&mut self, digits: usize) -> &mut Table {
        self.precision = digits;
        self
    }

    /// Appends a row of numeric cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of values differs from the number of columns.
    pub fn row(&mut self, label: impl Into<String>, values: &[f64]) -> &mut Table {
        assert_eq!(values.len(), self.columns.len(), "row width mismatch");
        let cells = values.iter().map(|v| format!("{v:.prec$}", prec = self.precision)).collect();
        self.rows.push((label.into(), cells));
        self
    }

    /// Appends a row of pre-formatted cells.
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of columns.
    pub fn row_text(&mut self, label: impl Into<String>, cells: &[String]) -> &mut Table {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), cells.to_vec()));
        self
    }

    /// Number of data rows appended so far.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// The table as GitHub-flavored markdown (label column left-aligned,
    /// value columns right-aligned), so the same table feeds both terminal
    /// reports (`Display`) and markdown artifacts.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("| {} |", self.corner));
        for c in &self.columns {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
        out.push_str("|:--|");
        for _ in &self.columns {
            out.push_str("--:|");
        }
        out.push('\n');
        for (label, cells) in &self.rows {
            out.push_str(&format!("| {label} |"));
            for cell in cells {
                out.push_str(&format!(" {cell} |"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label_w =
            self.rows.iter().map(|(l, _)| l.len()).chain([self.corner.len()]).max().unwrap_or(0);
        let col_ws: Vec<usize> = self
            .columns
            .iter()
            .enumerate()
            .map(|(i, c)| {
                self.rows
                    .iter()
                    .map(|(_, cells)| cells[i].len())
                    .chain([c.len()])
                    .max()
                    .unwrap_or(0)
            })
            .collect();
        write!(f, "{:<label_w$}", self.corner)?;
        for (c, w) in self.columns.iter().zip(&col_ws) {
            write!(f, "  {c:>w$}")?;
        }
        writeln!(f)?;
        let total = label_w + col_ws.iter().map(|w| w + 2).sum::<usize>();
        writeln!(f, "{}", "-".repeat(total))?;
        for (label, cells) in &self.rows {
            write!(f, "{label:<label_w$}")?;
            for (cell, w) in cells.iter().zip(&col_ws) {
                write!(f, "  {cell:>w$}")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("bench", &["a", "bb"]);
        t.row("x", &[1.0, 2.5]);
        t.row("longer", &[10.25, 0.125]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("bench"));
        assert!(lines[2].starts_with("x"));
        assert!(s.contains("10.25"));
        // default precision 2
        assert!(s.contains("0.12")); // round-half-to-even
    }

    #[test]
    fn custom_precision_and_text_rows() {
        let mut t = Table::new("", &["v"]);
        t.precision(1);
        t.row("a", &[0.55]);
        t.row_text("b", &["n/a".to_string()]);
        let s = t.to_string();
        assert!(s.contains("0.6"));
        assert!(s.contains("n/a"));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("", &["a", "b"]);
        t.row("x", &[1.0]);
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new("cell", &["ipc", "d%"]);
        t.row("go/FG", &[1.5, -0.25]);
        let md = t.to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[0], "| cell | ipc | d% |");
        assert_eq!(lines[1], "|:--|--:|--:|");
        assert_eq!(lines[2], "| go/FG | 1.50 | -0.25 |");
        assert_eq!(t.row_count(), 1);
    }
}
