//! The misprediction outcome-attribution ledger.
//!
//! Every recovered conditional-branch misprediction is tagged with its
//! branch class (backward, FGCI-embedded forward, other forward), the
//! recovery heuristic consulted (RET / MLB-RET / FGCI / none), and the
//! recovery outcome (full squash, FGCI repair, CGCI re-converged, CGCI
//! attempt failed), together with its costs: traces squashed, preserved and
//! re-dispatched, and the cycles the recovery machinery was occupied.
//! The aggregate is a Table-6-style per-class breakdown that localizes
//! *why* a control-independence model won or lost a workload — predictor
//! pollution shows up as inflated per-class event counts, heuristic misfire
//! as failed CGCI attempts, and recovery-latency mismodeling as occupancy
//! cycles out of proportion to the squash savings.
//!
//! The ledger is pure observation: it carries no simulator behaviour.

use crate::Table;

/// Ledger branch classes: what kind of conditional branch mispredicted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchClass {
    /// Backward branch (loop-type; the MLB heuristic's target class).
    Backward,
    /// Forward branch inside an FGCI-embeddable padded region (repairable
    /// entirely within one PE).
    ForwardFgci,
    /// Any other forward branch.
    ForwardOther,
}

impl BranchClass {
    /// All classes, in table order.
    pub const ALL: [BranchClass; 3] =
        [BranchClass::Backward, BranchClass::ForwardFgci, BranchClass::ForwardOther];

    /// Row label used by the attribution table.
    pub fn label(self) -> &'static str {
        match self {
            BranchClass::Backward => "backward",
            BranchClass::ForwardFgci => "fwd-fgci",
            BranchClass::ForwardOther => "fwd-other",
        }
    }

    fn index(self) -> usize {
        match self {
            BranchClass::Backward => 0,
            BranchClass::ForwardFgci => 1,
            BranchClass::ForwardOther => 2,
        }
    }
}

/// Which recovery heuristic was consulted for the misprediction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Heuristic {
    /// No control-independence heuristic (base model, or CI disabled for
    /// this branch kind).
    None,
    /// The CGCI `RET` heuristic (re-convergence after the nearest
    /// return-ending trace).
    Ret,
    /// The CGCI `MLB` half of `MLB-RET` (re-convergence at a backward
    /// branch's not-taken target).
    Mlb,
    /// Fine-grain control independence (the branch's region is embedded).
    Fgci,
}

impl Heuristic {
    /// All heuristics, in table order.
    pub const ALL: [Heuristic; 4] =
        [Heuristic::None, Heuristic::Ret, Heuristic::Mlb, Heuristic::Fgci];

    /// Label used by the attribution table.
    pub fn label(self) -> &'static str {
        match self {
            Heuristic::None => "none",
            Heuristic::Ret => "RET",
            Heuristic::Mlb => "MLB",
            Heuristic::Fgci => "FGCI",
        }
    }

    fn index(self) -> usize {
        match self {
            Heuristic::None => 0,
            Heuristic::Ret => 1,
            Heuristic::Mlb => 2,
            Heuristic::Fgci => 3,
        }
    }
}

/// How the recovery resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RecoveryOutcome {
    /// Everything younger than the branch was squashed.
    FullSquash,
    /// Fine-grain repair inside the faulting PE; all younger traces
    /// preserved.
    FgciRepair,
    /// Coarse-grain recovery detected re-convergence and preserved the
    /// control-independent suffix.
    CgciReconverged,
    /// A coarse-grain attempt was abandoned (window pressure, preserved
    /// trace lost, or preempted) — it degenerates to a squash.
    CgciFailed,
}

impl RecoveryOutcome {
    /// All outcomes, in table order.
    pub const ALL: [RecoveryOutcome; 4] = [
        RecoveryOutcome::FullSquash,
        RecoveryOutcome::FgciRepair,
        RecoveryOutcome::CgciReconverged,
        RecoveryOutcome::CgciFailed,
    ];

    /// Label used by the attribution table.
    pub fn label(self) -> &'static str {
        match self {
            RecoveryOutcome::FullSquash => "full-squash",
            RecoveryOutcome::FgciRepair => "fgci-repair",
            RecoveryOutcome::CgciReconverged => "cgci-reconv",
            RecoveryOutcome::CgciFailed => "cgci-failed",
        }
    }

    fn index(self) -> usize {
        match self {
            RecoveryOutcome::FullSquash => 0,
            RecoveryOutcome::FgciRepair => 1,
            RecoveryOutcome::CgciReconverged => 2,
            RecoveryOutcome::CgciFailed => 3,
        }
    }
}

/// A full attribution key: one ledger cell coordinate.
pub type AttrKey = (BranchClass, Heuristic, RecoveryOutcome);

/// Counters for one `(class, heuristic, outcome)` cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AttrCell {
    /// Recovery events started (detection-side; includes events on paths
    /// that were later squashed).
    pub events: u64,
    /// Retired mispredicted conditional branches attributed to this cell
    /// (retirement-side; sums to the run's `retired_cond_mispredicts`).
    pub retired: u64,
    /// Traces squashed by these events.
    pub traces_squashed: u64,
    /// Control-independent traces preserved by these events.
    pub traces_preserved: u64,
    /// Preserved traces walked by the resulting re-dispatch passes.
    pub traces_redispatched: u64,
    /// Cycles the recovery machinery was occupied on behalf of these
    /// events (trace-repair construction, CGCI insertion windows).
    pub recovery_cycles: u64,
}

impl AttrCell {
    fn add(&mut self, other: &AttrCell) {
        self.events += other.events;
        self.retired += other.retired;
        self.traces_squashed += other.traces_squashed;
        self.traces_preserved += other.traces_preserved;
        self.traces_redispatched += other.traces_redispatched;
        self.recovery_cycles += other.recovery_cycles;
    }

    fn is_zero(&self) -> bool {
        *self == AttrCell::default()
    }
}

/// The misprediction outcome-attribution ledger: a dense
/// `class x heuristic x outcome` cube of [`AttrCell`]s.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RecoveryAttribution {
    cells: [[[AttrCell; 4]; 4]; 3],
}

impl RecoveryAttribution {
    /// A fresh, all-zero ledger.
    pub fn new() -> RecoveryAttribution {
        RecoveryAttribution::default()
    }

    /// Read access to one cell.
    pub fn cell(&self, key: AttrKey) -> &AttrCell {
        &self.cells[key.0.index()][key.1.index()][key.2.index()]
    }

    /// Write access to one cell.
    pub fn cell_mut(&mut self, key: AttrKey) -> &mut AttrCell {
        &mut self.cells[key.0.index()][key.1.index()][key.2.index()]
    }

    /// Iterates the non-zero cells in canonical (class, heuristic, outcome)
    /// order.
    pub fn nonzero(&self) -> impl Iterator<Item = (AttrKey, &AttrCell)> {
        BranchClass::ALL.iter().flat_map(move |&c| {
            Heuristic::ALL.iter().flat_map(move |&h| {
                RecoveryOutcome::ALL.iter().filter_map(move |&o| {
                    let cell = self.cell((c, h, o));
                    (!cell.is_zero()).then_some(((c, h, o), cell))
                })
            })
        })
    }

    /// Sums a projection over every cell.
    fn sum(&self, f: impl Fn(&AttrCell) -> u64) -> u64 {
        self.cells.iter().flatten().flatten().map(f).sum()
    }

    /// Total retirement-side attributed mispredictions. By construction
    /// this equals the run's `retired_cond_mispredicts`.
    pub fn retired_total(&self) -> u64 {
        self.sum(|c| c.retired)
    }

    /// Total detection-side recovery events.
    pub fn events_total(&self) -> u64 {
        self.sum(|c| c.events)
    }

    /// Per-class retirement-side totals, in [`BranchClass::ALL`] order.
    pub fn retired_by_class(&self) -> [u64; 3] {
        let mut out = [0; 3];
        for (i, plane) in self.cells.iter().enumerate() {
            out[i] = plane.iter().flatten().map(|c| c.retired).sum();
        }
        out
    }

    /// Folds another ledger into this one (sweep aggregation).
    pub fn merge(&mut self, other: &RecoveryAttribution) {
        for (a, b) in
            self.cells.iter_mut().flatten().flatten().zip(other.cells.iter().flatten().flatten())
        {
            a.add(b);
        }
    }

    /// Cell-wise difference `self - earlier`, for extracting the events of
    /// one measurement window from a cumulative ledger (counters are
    /// monotone within a run, so saturation only triggers on misuse).
    pub fn since(&self, earlier: &RecoveryAttribution) -> RecoveryAttribution {
        let mut out = self.clone();
        for (a, b) in
            out.cells.iter_mut().flatten().flatten().zip(earlier.cells.iter().flatten().flatten())
        {
            a.events = a.events.saturating_sub(b.events);
            a.retired = a.retired.saturating_sub(b.retired);
            a.traces_squashed = a.traces_squashed.saturating_sub(b.traces_squashed);
            a.traces_preserved = a.traces_preserved.saturating_sub(b.traces_preserved);
            a.traces_redispatched = a.traces_redispatched.saturating_sub(b.traces_redispatched);
            a.recovery_cycles = a.recovery_cycles.saturating_sub(b.recovery_cycles);
        }
        out
    }

    /// Renders the ledger as a JSON array of cell objects (one per
    /// non-zero `(class, heuristic, outcome)` cell, canonical order) — the
    /// machine-readable counterpart of [`RecoveryAttribution::table`],
    /// shared by `BENCH_speed.json` and `cistats --json`. Hand-rolled
    /// because the build is offline.
    pub fn to_json(&self) -> String {
        let mut s = String::from("[");
        for (i, ((class, heur, outcome), cell)) in self.nonzero().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!(
                "{{\"class\": \"{}\", \"heuristic\": \"{}\", \"outcome\": \"{}\", \
                 \"events\": {}, \"retired\": {}, \"squashed\": {}, \"preserved\": {}, \
                 \"redispatched\": {}, \"recovery_cycles\": {}}}",
                class.label(),
                heur.label(),
                outcome.label(),
                cell.events,
                cell.retired,
                cell.traces_squashed,
                cell.traces_preserved,
                cell.traces_redispatched,
                cell.recovery_cycles
            ));
        }
        s.push(']');
        s
    }

    /// Renders the Table-6-style per-class breakdown: one row per non-zero
    /// `(class, heuristic, outcome)` cell.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "class/heur/outcome",
            &["events", "retired", "squashed", "preserved", "redisp", "occupancy"],
        );
        for ((c, h, o), cell) in self.nonzero() {
            t.row_text(
                format!("{}/{}/{}", c.label(), h.label(), o.label()),
                &[
                    cell.events.to_string(),
                    cell.retired.to_string(),
                    cell.traces_squashed.to_string(),
                    cell.traces_preserved.to_string(),
                    cell.traces_redispatched.to_string(),
                    cell.recovery_cycles.to_string(),
                ],
            );
        }
        t.row_text(
            "total",
            &[
                self.events_total().to_string(),
                self.retired_total().to_string(),
                self.sum(|c| c.traces_squashed).to_string(),
                self.sum(|c| c.traces_preserved).to_string(),
                self.sum(|c| c.traces_redispatched).to_string(),
                self.sum(|c| c.recovery_cycles).to_string(),
            ],
        );
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cells_accumulate_and_project() {
        let mut a = RecoveryAttribution::new();
        let key = (BranchClass::Backward, Heuristic::Mlb, RecoveryOutcome::CgciReconverged);
        a.cell_mut(key).events += 2;
        a.cell_mut(key).retired += 1;
        a.cell_mut(key).traces_preserved += 5;
        let other = (BranchClass::ForwardFgci, Heuristic::Fgci, RecoveryOutcome::FgciRepair);
        a.cell_mut(other).retired += 3;
        assert_eq!(a.events_total(), 2);
        assert_eq!(a.retired_total(), 4);
        assert_eq!(a.retired_by_class(), [1, 3, 0]);
        assert_eq!(a.nonzero().count(), 2);
    }

    #[test]
    fn merge_sums_cellwise() {
        let key = (BranchClass::ForwardOther, Heuristic::None, RecoveryOutcome::FullSquash);
        let mut a = RecoveryAttribution::new();
        a.cell_mut(key).events = 1;
        let mut b = RecoveryAttribution::new();
        b.cell_mut(key).events = 2;
        b.cell_mut(key).recovery_cycles = 7;
        a.merge(&b);
        assert_eq!(a.cell(key).events, 3);
        assert_eq!(a.cell(key).recovery_cycles, 7);
    }

    #[test]
    fn table_renders_nonzero_rows_and_total() {
        let mut a = RecoveryAttribution::new();
        let key = (BranchClass::Backward, Heuristic::Ret, RecoveryOutcome::CgciFailed);
        a.cell_mut(key).events = 4;
        a.cell_mut(key).traces_squashed = 9;
        let s = a.table().to_string();
        assert!(s.contains("backward/RET/cgci-failed"), "{s}");
        assert!(s.contains("total"), "{s}");
        // Header + rule + one cell row + total row.
        assert_eq!(s.lines().count(), 4, "{s}");
    }

    #[test]
    fn since_subtracts_cellwise() {
        let key = (BranchClass::Backward, Heuristic::Mlb, RecoveryOutcome::CgciReconverged);
        let mut earlier = RecoveryAttribution::new();
        earlier.cell_mut(key).events = 2;
        earlier.cell_mut(key).recovery_cycles = 10;
        let mut later = earlier.clone();
        later.cell_mut(key).events = 5;
        later.cell_mut(key).recovery_cycles = 25;
        let delta = later.since(&earlier);
        assert_eq!(delta.cell(key).events, 3);
        assert_eq!(delta.cell(key).recovery_cycles, 15);
        assert_eq!(delta.events_total(), 3);
    }

    #[test]
    fn json_lists_nonzero_cells_in_order() {
        let mut a = RecoveryAttribution::new();
        let key = (BranchClass::Backward, Heuristic::Mlb, RecoveryOutcome::CgciReconverged);
        a.cell_mut(key).events = 2;
        a.cell_mut(key).traces_preserved = 5;
        let json = a.to_json();
        assert_eq!(json.matches('{').count(), 1);
        assert!(json.contains("\"class\": \"backward\""), "{json}");
        assert!(json.contains("\"heuristic\": \"MLB\""), "{json}");
        assert!(json.contains("\"preserved\": 5"), "{json}");
        assert_eq!(RecoveryAttribution::new().to_json(), "[]");
    }

    #[test]
    fn empty_ledger_has_empty_table_body() {
        let a = RecoveryAttribution::new();
        assert_eq!(a.nonzero().count(), 0);
        assert_eq!(a.retired_total(), 0);
        // Only header, rule, and the total row.
        assert_eq!(a.table().to_string().lines().count(), 3);
    }
}
