//! Statistics utilities shared by the simulator and the experiment
//! harnesses: rate helpers, means, a fixed-width table printer that the
//! benches use to reproduce the paper's tables, and the misprediction
//! outcome-attribution ledger ([`attr`]).

pub mod attr;
pub mod table;

pub use attr::{AttrCell, AttrKey, BranchClass, Heuristic, RecoveryAttribution, RecoveryOutcome};
pub use table::Table;

/// Harmonic mean of a sequence of values (the paper summarizes IPC across
/// benchmarks with a harmonic mean).
///
/// Returns 0.0 for an empty input.
///
/// # Panics
///
/// Panics if any value is not strictly positive.
///
/// # Example
///
/// ```
/// use tp_stats::harmonic_mean;
/// let hm = harmonic_mean([2.0, 6.0]);
/// assert!((hm - 3.0).abs() < 1e-12);
/// ```
pub fn harmonic_mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut n = 0usize;
    let mut sum_inv = 0.0;
    for v in values {
        assert!(v > 0.0, "harmonic mean requires positive values, got {v}");
        n += 1;
        sum_inv += 1.0 / v;
    }
    if n == 0 {
        0.0
    } else {
        n as f64 / sum_inv
    }
}

/// Arithmetic mean; 0.0 for an empty input.
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut n = 0usize;
    let mut sum = 0.0;
    for v in values {
        n += 1;
        sum += v;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// `part / whole` as a percentage; 0.0 when `whole` is zero.
///
/// # Example
///
/// ```
/// assert_eq!(tp_stats::pct(1.0, 4.0), 25.0);
/// assert_eq!(tp_stats::pct(1.0, 0.0), 0.0);
/// ```
pub fn pct(part: f64, whole: f64) -> f64 {
    if whole == 0.0 {
        0.0
    } else {
        100.0 * part / whole
    }
}

/// Events per 1000 instructions; 0.0 when `instructions` is zero.
///
/// The paper reports trace mispredictions, trace cache misses and branch
/// mispredictions in this unit.
pub fn per_kilo(events: u64, instructions: u64) -> f64 {
    if instructions == 0 {
        0.0
    } else {
        1000.0 * events as f64 / instructions as f64
    }
}

/// Relative improvement of `new` over `base`, in percent (positive means
/// `new` is better), as plotted in the paper's Figures 9 and 10.
pub fn improvement_pct(new: f64, base: f64) -> f64 {
    if base == 0.0 {
        0.0
    } else {
        100.0 * (new - base) / base
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_mean_basics() {
        assert_eq!(harmonic_mean([]), 0.0);
        assert!((harmonic_mean([4.0]) - 4.0).abs() < 1e-12);
        // HM of 1 and 3 is 1.5.
        assert!((harmonic_mean([1.0, 3.0]) - 1.5).abs() < 1e-12);
        // HM is dominated by small values.
        assert!(harmonic_mean([1.0, 100.0]) < 2.1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn harmonic_mean_rejects_zero() {
        let _ = harmonic_mean([0.0]);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean([]), 0.0);
        assert!((mean([1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pct_and_per_kilo() {
        assert_eq!(pct(3.0, 12.0), 25.0);
        assert_eq!(per_kilo(5, 1000), 5.0);
        assert_eq!(per_kilo(5, 0), 0.0);
    }

    #[test]
    fn improvement_sign_convention() {
        assert!((improvement_pct(1.1, 1.0) - 10.0).abs() < 1e-9);
        assert!(improvement_pct(0.9, 1.0) < 0.0);
        assert_eq!(improvement_pct(1.0, 0.0), 0.0);
    }
}
