//! The simple branch predictor: a tagless BTB with 2-bit counters.

use tp_isa::Pc;

/// A tagless branch target buffer with 2-bit saturating counters for
/// conditional branches and last-target storage for indirect branches.
///
/// The paper's configuration is 16K entries. Taglessness means distinct
/// branches may alias — a deliberate part of the model.
///
/// # Example
///
/// ```
/// use tp_predict::Btb;
/// let mut btb = Btb::new(16 * 1024);
/// // Counters start weakly taken.
/// assert!(btb.predict_cond(100));
/// btb.update_cond(100, false);
/// btb.update_cond(100, false);
/// assert!(!btb.predict_cond(100));
/// ```
#[derive(Clone, Debug)]
pub struct Btb {
    counters: Vec<u8>,
    targets: Vec<Option<Pc>>,
    mask: usize,
    stats: BtbStats,
}

/// A plain-data image of a BTB's trained state, for checkpointing.
///
/// Counters are stored densely (they are small and mostly non-default after
/// warming); indirect targets sparsely as `(index, target)` pairs. Produced
/// by [`Btb::image`], consumed by [`Btb::from_image`]; statistics are not
/// part of the image (a resumed run starts its own counts).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BtbImage {
    /// The 2-bit counter array, one byte per entry.
    pub counters: Vec<u8>,
    /// Trained indirect targets as `(entry index, target)` pairs.
    pub targets: Vec<(u32, Pc)>,
}

/// Prediction/update statistics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BtbStats {
    /// Conditional-branch outcome updates performed.
    pub cond_updates: u64,
    /// Conditional-branch updates where the counter had predicted wrongly.
    pub cond_mispredicts: u64,
}

impl Btb {
    /// Creates a BTB with `entries` entries (must be a power of two).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two.
    pub fn new(entries: usize) -> Btb {
        assert!(entries.is_power_of_two(), "BTB entries must be a power of two");
        Btb {
            counters: vec![2; entries], // weakly taken
            targets: vec![None; entries],
            mask: entries - 1,
            stats: BtbStats::default(),
        }
    }

    /// The paper's 16K-entry configuration.
    pub fn paper() -> Btb {
        Btb::new(16 * 1024)
    }

    #[inline]
    fn index(&self, pc: Pc) -> usize {
        pc as usize & self.mask
    }

    /// Predicts the outcome of the conditional branch at `pc`.
    #[inline]
    pub fn predict_cond(&self, pc: Pc) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Whether the counter for `pc` is in a *weak* (hovering) state.
    /// Loop-heavy consumers (`ntb` trace selection) treat a weak counter
    /// as uninformative: a loop-exit counter is retrained on every exit,
    /// so it hovers between the weak states and predicts near coin flips,
    /// while a saturated counter reflects a genuinely biased branch.
    #[inline]
    pub fn cond_is_weak(&self, pc: Pc) -> bool {
        matches!(self.counters[self.index(pc)], 1 | 2)
    }

    /// Trains the 2-bit counter for the branch at `pc` with the actual
    /// outcome.
    pub fn update_cond(&mut self, pc: Pc, taken: bool) {
        self.stats.cond_updates += 1;
        if self.predict_cond(pc) != taken {
            self.stats.cond_mispredicts += 1;
        }
        let c = &mut self.counters[pc as usize & self.mask];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
    }

    /// Predicts the target of the indirect branch at `pc` (last target
    /// seen), or `None` if never trained.
    #[inline]
    pub fn predict_indirect(&self, pc: Pc) -> Option<Pc> {
        self.targets[self.index(pc)]
    }

    /// Records the actual target of the indirect branch at `pc`.
    pub fn update_indirect(&mut self, pc: Pc, target: Pc) {
        let i = self.index(pc);
        self.targets[i] = Some(target);
    }

    /// Whether replaying `updates` through [`Btb::update_cond`] would leave
    /// every counter unchanged: each update's counter already saturated in
    /// the update's direction. Checkpoint images carry counters but not
    /// statistics, so a saturated run is unobservable in captured state.
    pub fn cond_run_saturated(&self, updates: &[(Pc, bool)]) -> bool {
        updates
            .iter()
            .all(|&(pc, taken)| self.counters[self.index(pc)] == if taken { 3 } else { 0 })
    }

    /// Whether the indirect target trained for `pc` is already `target`
    /// (an [`Btb::update_indirect`] with it would be a no-op).
    pub fn indirect_is(&self, pc: Pc, target: Pc) -> bool {
        self.targets[self.index(pc)] == Some(target)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> BtbStats {
        self.stats
    }

    /// Number of entries.
    pub fn entries(&self) -> usize {
        self.counters.len()
    }

    /// Captures the trained state as a plain-data [`BtbImage`].
    pub fn image(&self) -> BtbImage {
        BtbImage {
            counters: self.counters.clone(),
            targets: self
                .targets
                .iter()
                .enumerate()
                .filter_map(|(i, t)| t.map(|pc| (i as u32, pc)))
                .collect(),
        }
    }

    /// Creates a warmed BTB from an image (statistics start at zero).
    ///
    /// # Panics
    ///
    /// Panics if the image's entry count is not a power of two or a target
    /// index is out of range.
    pub fn from_image(image: &BtbImage) -> Btb {
        let mut btb = Btb::new(image.counters.len());
        btb.counters.copy_from_slice(&image.counters);
        for &(i, pc) in &image.targets {
            btb.targets[i as usize] = Some(pc);
        }
        btb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_saturate_both_directions() {
        let mut btb = Btb::new(16);
        for _ in 0..10 {
            btb.update_cond(3, true);
        }
        assert!(btb.predict_cond(3));
        for _ in 0..2 {
            btb.update_cond(3, false);
        }
        // From saturated taken (3), two not-taken updates reach 1: predict
        // not taken — classic 2-bit hysteresis.
        assert!(!btb.predict_cond(3));
        btb.update_cond(3, true);
        assert!(btb.predict_cond(3));
    }

    #[test]
    fn tagless_aliasing_shares_counters() {
        let mut btb = Btb::new(16);
        for _ in 0..4 {
            btb.update_cond(1, false);
        }
        // pc 17 aliases pc 1 in a 16-entry table.
        assert!(!btb.predict_cond(17));
    }

    #[test]
    fn indirect_targets_remember_last() {
        let mut btb = Btb::new(16);
        assert_eq!(btb.predict_indirect(5), None);
        btb.update_indirect(5, 100);
        assert_eq!(btb.predict_indirect(5), Some(100));
        btb.update_indirect(5, 200);
        assert_eq!(btb.predict_indirect(5), Some(200));
    }

    #[test]
    fn stats_count_mispredicts() {
        let mut btb = Btb::new(16);
        btb.update_cond(0, true); // initial weakly-taken: correct
        btb.update_cond(0, false); // predicted taken: mispredict
        assert_eq!(btb.stats().cond_updates, 2);
        assert_eq!(btb.stats().cond_mispredicts, 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = Btb::new(12);
    }

    /// Tagless replacement of indirect targets: an aliasing branch
    /// overwrites the entry outright (last-writer-wins, no tag check), and
    /// the victim observes the alias's target afterwards.
    #[test]
    fn indirect_alias_replaces_target() {
        let mut btb = Btb::new(16);
        btb.update_indirect(2, 100);
        assert_eq!(btb.predict_indirect(2), Some(100));
        // pc 18 aliases pc 2 in a 16-entry table: replacement evicts the
        // old target for *both* PCs.
        btb.update_indirect(18, 200);
        assert_eq!(btb.predict_indirect(18), Some(200));
        assert_eq!(btb.predict_indirect(2), Some(200), "victim must see the replaced target");
        // Re-training the original pc replaces it back.
        btb.update_indirect(2, 100);
        assert_eq!(btb.predict_indirect(18), Some(100));
    }

    /// An image round-trip reproduces every prediction the source BTB would
    /// make, with statistics reset.
    #[test]
    fn image_roundtrip_preserves_predictions() {
        let mut btb = Btb::new(32);
        for _ in 0..3 {
            btb.update_cond(5, true);
            btb.update_cond(9, false);
        }
        btb.update_indirect(7, 123);
        let warm = Btb::from_image(&btb.image());
        for pc in 0..64u32 {
            assert_eq!(warm.predict_cond(pc), btb.predict_cond(pc), "pc {pc}");
            assert_eq!(warm.predict_indirect(pc), btb.predict_indirect(pc), "pc {pc}");
        }
        assert_eq!(warm.stats(), BtbStats::default());
        assert_eq!(warm.entries(), 32);
    }

    /// Conditional counters are replaced (retrained) by aliasing branches
    /// rather than duplicated: opposing-bias aliases fight over one
    /// counter, so neither can saturate.
    #[test]
    fn cond_alias_retrains_shared_counter() {
        let mut btb = Btb::new(8);
        // Saturate taken at pc 5.
        for _ in 0..4 {
            btb.update_cond(5, true);
        }
        assert!(btb.predict_cond(5));
        // Alias pc 13 trains strongly not-taken: the shared counter moves.
        for _ in 0..4 {
            btb.update_cond(13, false);
        }
        assert!(!btb.predict_cond(5), "alias retrained the shared counter");
        // Non-aliasing entries are untouched by the fight.
        assert!(btb.predict_cond(6), "fresh counters stay weakly taken");
    }
}
