//! A gshare-style two-level branch predictor.
//!
//! Used by the Table 5 profiling harness: the paper measured its branch
//! statistics with real history-based predictors (trace predictions embed
//! implicit branch history), and a plain per-PC 2-bit table grossly
//! overstates mispredictions for periodic branch patterns. Gshare XORs a
//! global outcome history into the table index, capturing exactly those
//! patterns.

use tp_isa::Pc;

/// A plain-data image of a gshare predictor's trained state
/// ([`Gshare::image`] / [`Gshare::from_image`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GshareImage {
    /// The 2-bit counter array, one byte per entry.
    pub counters: Vec<u8>,
    /// Number of global-history bits.
    pub history_bits: u32,
    /// The global outcome-history register.
    pub history: u64,
}

/// A gshare predictor: 2-bit counters indexed by `pc XOR global history`.
///
/// # Example
///
/// ```
/// use tp_predict::Gshare;
/// let mut g = Gshare::new(1 << 14, 12);
/// // An alternating branch becomes perfectly predictable with history.
/// for i in 0..64 {
///     g.update(10, i % 2 == 0);
/// }
/// let p1 = g.predict(10);
/// g.update(10, p1); // keep the pattern going
/// ```
#[derive(Clone, Debug)]
pub struct Gshare {
    counters: Vec<u8>,
    mask: u64,
    history: u64,
    history_mask: u64,
}

impl Gshare {
    /// Creates a predictor with `entries` 2-bit counters (power of two) and
    /// `history_bits` bits of global history.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power of two or `history_bits > 32`.
    pub fn new(entries: usize, history_bits: u32) -> Gshare {
        assert!(entries.is_power_of_two(), "entries must be a power of two");
        assert!(history_bits <= 32, "history too deep");
        Gshare {
            counters: vec![2; entries],
            mask: entries as u64 - 1,
            history: 0,
            history_mask: (1u64 << history_bits) - 1,
        }
    }

    /// A 16K-entry, 12-bit-history configuration comparable to the paper's
    /// predictor budget.
    pub fn paper() -> Gshare {
        Gshare::new(16 * 1024, 12)
    }

    #[inline]
    fn index(&self, pc: Pc) -> usize {
        ((pc as u64 ^ (self.history & self.history_mask)) & self.mask) as usize
    }

    /// Predicts the branch at `pc` under the current global history.
    #[inline]
    pub fn predict(&self, pc: Pc) -> bool {
        self.counters[self.index(pc)] >= 2
    }

    /// Trains with the actual outcome and shifts the global history.
    pub fn update(&mut self, pc: Pc, taken: bool) {
        let i = self.index(pc);
        let c = &mut self.counters[i];
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        self.history = (self.history << 1) | taken as u64;
    }

    /// The history bits that currently feed table indexing.
    #[inline]
    pub fn masked_history(&self) -> u64 {
        self.history & self.history_mask
    }

    /// Whether replaying `updates` through [`Gshare::update`] would leave
    /// every counter unchanged: simulating the history shifts each update
    /// performs, every indexed counter is already saturated in the
    /// update's direction. The history register itself still advances on a
    /// replay — apply that part with [`Gshare::push_outcomes`].
    pub fn run_saturated(&self, updates: &[(Pc, bool)]) -> bool {
        let mut h = self.history;
        for &(pc, taken) in updates {
            let i = ((pc as u64 ^ (h & self.history_mask)) & self.mask) as usize;
            if self.counters[i] != if taken { 3 } else { 0 } {
                return false;
            }
            h = (h << 1) | taken as u64;
        }
        true
    }

    /// Shifts `n` outcome bits into the global history without training —
    /// the history half of a run [`Gshare::run_saturated`] proved to be a
    /// counter no-op. `bits` holds the outcomes with the first update in
    /// the most significant of the low `n` bits, exactly as `n` successive
    /// [`Gshare::update`] calls would shift them in.
    #[inline]
    pub fn push_outcomes(&mut self, n: u32, bits: u64) {
        self.history = (self.history << n) | bits;
    }

    /// Captures the trained state as a plain-data [`GshareImage`].
    pub fn image(&self) -> GshareImage {
        GshareImage {
            counters: self.counters.clone(),
            history_bits: self.history_mask.count_ones(),
            history: self.history,
        }
    }

    /// Creates a warmed predictor from an image.
    ///
    /// # Panics
    ///
    /// Panics if the image's geometry is invalid (see [`Gshare::new`]).
    pub fn from_image(image: &GshareImage) -> Gshare {
        let mut g = Gshare::new(image.counters.len(), image.history_bits);
        g.counters.copy_from_slice(&image.counters);
        g.history = image.history;
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_periodic_patterns() {
        let mut g = Gshare::new(1 << 14, 12);
        // Period-16 pattern a 2-bit table cannot learn.
        let pattern = [
            true, true, false, true, false, false, true, true, false, true, true, true, false,
            false, true, false,
        ];
        let mut misp = 0;
        for i in 0..3200 {
            let t = pattern[i % 16];
            if g.predict(100) != t && i > 320 {
                misp += 1;
            }
            g.update(100, t);
        }
        assert!(misp < 100, "gshare failed to learn the pattern: {misp}");
    }

    #[test]
    fn random_branches_stay_hard() {
        let mut g = Gshare::paper();
        let mut x: u64 = 12345;
        let mut misp = 0;
        for _ in 0..4000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let t = (x >> 40) & 1 == 1;
            if g.predict(7) != t {
                misp += 1;
            }
            g.update(7, t);
        }
        assert!(misp > 1200, "random branches should stay near 50%: {misp}");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_rejected() {
        let _ = Gshare::new(100, 8);
    }

    /// An image round-trip reproduces predictions *and* the history
    /// register — a restored predictor must continue the stream exactly.
    #[test]
    fn image_roundtrip_continues_the_stream() {
        let mut g = Gshare::new(1 << 10, 6);
        for i in 0..200 {
            g.update(40 + (i % 3), i % 5 < 2);
        }
        let mut warm = Gshare::from_image(&g.image());
        for step in 0..50 {
            let pc = 40 + (step % 3);
            assert_eq!(warm.predict(pc), g.predict(pc), "step {step}");
            let t = step % 7 < 4;
            g.update(pc, t);
            warm.update(pc, t);
        }
        assert_eq!(warm.image(), g.image());
    }

    /// Two PCs that collide modulo the table size share a counter when the
    /// global history is identical — gshare is deliberately tagless, and
    /// destructive aliasing is part of the model.
    #[test]
    fn index_aliasing_shares_counters() {
        let entries = 16;
        let mut g = Gshare::new(entries, 4);
        // Saturate "not taken" at pc 3 with an all-zero history (train an
        // aliasing pc in lockstep so the history stays identical: updates
        // shift in the outcome regardless of pc).
        for _ in 0..4 {
            g.update(3, false);
            g.update(3 + entries as u32, false);
        }
        // Same (all-false) history, aliasing pc: same counter, same
        // prediction.
        assert_eq!(g.predict(3), g.predict(3 + entries as u32));
        assert!(!g.predict(3 + entries as u32), "alias must see the trained counter");
        // A pc with a different low index is unaffected (fresh counter
        // starts weakly taken).
        assert!(g.predict(4));
    }

    /// Outcomes older than `history_bits` fall off the register: after any
    /// prehistory, feeding the same `history_bits`-long tail of outcomes
    /// yields the same table index as a fresh predictor that saw only the
    /// tail — prehistory can never influence the indexed counter.
    #[test]
    fn history_wraps_beyond_configured_bits() {
        let bits = 6u32;
        let mut seen_prehistory = Gshare::new(1 << 10, bits);
        // Divergent prehistory, much longer than the 6-bit register.
        for i in 0..64 {
            seen_prehistory.update(500, i % 3 == 0);
        }
        let mut fresh = Gshare::new(1 << 10, bits);
        // Identical tail, exactly filling the masked history window.
        let tail = [true, false, false, true, true, true];
        assert_eq!(tail.len(), bits as usize);
        for &t in &tail {
            seen_prehistory.update(500, t);
            fresh.update(500, t);
        }
        for pc in [0u32, 7, 500, 1023] {
            assert_eq!(
                seen_prehistory.index(pc),
                fresh.index(pc),
                "pc {pc}: index depends on outcomes older than {bits} bits"
            );
        }
        // The register does shift: one more outcome changes the index of a
        // pc whose low bits it flips.
        let before = fresh.index(500);
        fresh.update(500, true);
        assert_ne!(before, fresh.index(500), "history register does not shift");
    }
}
