//! Return address stack.

use tp_isa::Pc;

/// A bounded return address stack used by trace construction to predict
/// return targets.
///
/// The stack is circular: pushing beyond capacity overwrites the oldest
/// entry, and popping an empty stack returns `None` — both behaviours of a
/// real hardware RAS. [`Ras::snapshot`]/[`Ras::restore`] support recovery.
///
/// # Example
///
/// ```
/// use tp_predict::Ras;
/// let mut ras = Ras::new(8);
/// ras.push(10);
/// ras.push(20);
/// assert_eq!(ras.pop(), Some(20));
/// assert_eq!(ras.pop(), Some(10));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ras {
    entries: Vec<Pc>,
    capacity: usize,
}

impl Ras {
    /// Creates a RAS with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Ras {
        assert!(capacity > 0, "RAS capacity must be non-zero");
        Ras { entries: Vec::with_capacity(capacity), capacity }
    }

    /// Pushes a return address, evicting the oldest entry when full.
    pub fn push(&mut self, pc: Pc) {
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(pc);
    }

    /// Pops the most recent return address.
    pub fn pop(&mut self) -> Option<Pc> {
        self.entries.pop()
    }

    /// Peeks at the most recent return address without popping.
    pub fn top(&self) -> Option<Pc> {
        self.entries.last().copied()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Takes a copy of the stack for later [`Ras::restore`].
    pub fn snapshot(&self) -> Ras {
        self.clone()
    }

    /// Restores a previously snapshotted state.
    pub fn restore(&mut self, snapshot: &Ras) {
        self.entries.clone_from(&snapshot.entries);
        self.capacity = snapshot.capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = Ras::new(4);
        for pc in [1, 2, 3] {
            ras.push(pc);
        }
        assert_eq!(ras.top(), Some(3));
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
        assert!(ras.is_empty());
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut ras = Ras::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut ras = Ras::new(4);
        ras.push(7);
        let snap = ras.snapshot();
        ras.push(8);
        ras.pop();
        ras.pop();
        assert!(ras.is_empty());
        ras.restore(&snap);
        assert_eq!(ras.top(), Some(7));
        assert_eq!(ras.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = Ras::new(0);
    }
}
