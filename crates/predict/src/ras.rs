//! Return address stack.

use tp_isa::Pc;

/// A bounded return address stack used by trace construction to predict
/// return targets.
///
/// The stack is circular: pushing beyond capacity overwrites the oldest
/// entry, and popping an empty stack returns `None` — both behaviours of a
/// real hardware RAS. [`Ras::snapshot`]/[`Ras::restore`] support recovery.
///
/// # Example
///
/// ```
/// use tp_predict::Ras;
/// let mut ras = Ras::new(8);
/// ras.push(10);
/// ras.push(20);
/// assert_eq!(ras.pop(), Some(20));
/// assert_eq!(ras.pop(), Some(10));
/// assert_eq!(ras.pop(), None);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ras {
    entries: Vec<Pc>,
    capacity: usize,
}

impl Ras {
    /// Creates a RAS with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Ras {
        assert!(capacity > 0, "RAS capacity must be non-zero");
        Ras { entries: Vec::with_capacity(capacity), capacity }
    }

    /// Pushes a return address, evicting the oldest entry when full.
    pub fn push(&mut self, pc: Pc) {
        if self.entries.len() == self.capacity {
            self.entries.remove(0);
        }
        self.entries.push(pc);
    }

    /// Pops the most recent return address.
    pub fn pop(&mut self) -> Option<Pc> {
        self.entries.pop()
    }

    /// Peeks at the most recent return address without popping.
    pub fn top(&self) -> Option<Pc> {
        self.entries.last().copied()
    }

    /// Current depth.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The stack contents, oldest first (checkpoint capture).
    pub fn entries(&self) -> &[Pc] {
        &self.entries
    }

    /// Rebuilds a RAS from captured entries, oldest first (entries beyond
    /// `capacity` evict the oldest, as live pushes would).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn from_entries(capacity: usize, entries: &[Pc]) -> Ras {
        let mut ras = Ras::new(capacity);
        for &pc in entries {
            ras.push(pc);
        }
        ras
    }

    /// Takes a copy of the stack for later [`Ras::restore`].
    pub fn snapshot(&self) -> Ras {
        self.clone()
    }

    /// Restores a previously snapshotted state.
    pub fn restore(&mut self, snapshot: &Ras) {
        self.entries.clone_from(&snapshot.entries);
        self.capacity = snapshot.capacity;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut ras = Ras::new(4);
        for pc in [1, 2, 3] {
            ras.push(pc);
        }
        assert_eq!(ras.top(), Some(3));
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), Some(1));
        assert!(ras.is_empty());
    }

    #[test]
    fn overflow_drops_oldest() {
        let mut ras = Ras::new(2);
        ras.push(1);
        ras.push(2);
        ras.push(3);
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(3));
        assert_eq!(ras.pop(), Some(2));
        assert_eq!(ras.pop(), None);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let mut ras = Ras::new(4);
        ras.push(7);
        let snap = ras.snapshot();
        ras.push(8);
        ras.pop();
        ras.pop();
        assert!(ras.is_empty());
        ras.restore(&snap);
        assert_eq!(ras.top(), Some(7));
        assert_eq!(ras.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_capacity_rejected() {
        let _ = Ras::new(0);
    }

    /// Misprediction recovery across an overflow: the snapshot taken before
    /// a deep (capacity-exceeding) call chain restores the pre-overflow
    /// view exactly, even though the wrong path evicted its oldest entries.
    #[test]
    fn overflow_then_restore_recovers_pre_overflow_state() {
        let mut ras = Ras::new(3);
        ras.push(10);
        ras.push(20);
        let snap = ras.snapshot();
        // Wrong path: calls deep enough to wrap the circular stack twice.
        for pc in [30, 40, 50, 60, 70] {
            ras.push(pc);
        }
        assert_eq!(ras.len(), 3, "circular stack stays bounded");
        assert_eq!(ras.pop(), Some(70), "wrong path sees its own pushes");
        ras.restore(&snap);
        assert_eq!(ras.len(), 2);
        assert_eq!(ras.pop(), Some(20));
        assert_eq!(ras.pop(), Some(10));
        assert_eq!(ras.pop(), None);
    }

    /// Misprediction recovery across an underflow: a wrong path that pops
    /// through the bottom of the stack (returning more than it called)
    /// yields `None` without corrupting state, and restore brings back the
    /// checkpointed entries.
    #[test]
    fn underflow_then_restore_recovers_entries() {
        let mut ras = Ras::new(4);
        ras.push(11);
        let snap = ras.snapshot();
        // Wrong path: two returns against a one-deep stack.
        assert_eq!(ras.pop(), Some(11));
        assert_eq!(ras.pop(), None, "underflow is a miss, not a panic");
        assert_eq!(ras.pop(), None, "repeated underflow stays empty");
        assert!(ras.is_empty());
        // The empty stack still accepts new pushes.
        ras.push(99);
        assert_eq!(ras.top(), Some(99));
        ras.restore(&snap);
        assert_eq!(ras.len(), 1);
        assert_eq!(ras.top(), Some(11));
    }

    /// Restoring a snapshot taken when empty clears a stack that both
    /// overflowed and underflowed in between.
    #[test]
    fn restore_empty_snapshot_after_churn() {
        let mut ras = Ras::new(2);
        let snap = ras.snapshot();
        ras.push(1);
        ras.push(2);
        ras.push(3); // overflow
        ras.pop();
        ras.pop();
        ras.pop(); // underflow
        ras.push(4);
        ras.restore(&snap);
        assert!(ras.is_empty());
        assert_eq!(ras.pop(), None);
    }
}
