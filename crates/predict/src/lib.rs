//! Branch- and trace-level predictors for the trace processor.
//!
//! Three predictors from the paper's Table 1 configuration:
//!
//! * [`Btb`] — the "simple branch predictor": a 16K-entry tagless BTB with
//!   2-bit saturating counters, plus last-target storage for indirect
//!   branches. Used by trace construction and misprediction repair.
//! * [`Ras`] — a return address stack used alongside the BTB to predict
//!   return targets during trace construction.
//! * [`NextTracePredictor`] — the hybrid next-trace predictor of Jacobson,
//!   Rotenberg and Smith (1997): a path-based component indexed by a hash of
//!   the last eight trace ids and a simple component indexed by the last
//!   trace id alone, each 2^16 entries with tags and saturating-counter
//!   replacement. A single trace prediction implicitly predicts multiple
//!   branches per cycle.
//!
//! Histories ([`TraceHistory`]) are owned by the caller, which makes
//! checkpoint/restore on misprediction recovery trivial — the trace
//! processor snapshots the speculative history at every trace dispatch and
//! maintains a separate retirement-side history for predictor training.

pub mod btb;
pub mod gshare;
pub mod ras;
pub mod trace_pred;

pub use btb::{Btb, BtbImage};
pub use gshare::{Gshare, GshareImage};
pub use ras::Ras;
pub use trace_pred::{
    NextTracePredictor, PredictionSource, TraceHistory, TracePredictorConfig, TracePredictorImage,
    TracePredictorStats,
};
