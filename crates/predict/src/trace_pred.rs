//! The hybrid path-based next-trace predictor (Jacobson et al. 1997).

use tp_trace::TraceId;

/// Configuration of the next-trace predictor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TracePredictorConfig {
    /// log2 of the number of entries in each component table (the paper uses
    /// 2^16-entry tables).
    pub index_bits: u32,
    /// Path history depth of the path-based component (the paper uses 8).
    pub path_depth: usize,
    /// Confidence threshold at or above which the path-based component's
    /// prediction is preferred over the simple component's.
    pub confidence_threshold: u8,
}

impl Default for TracePredictorConfig {
    fn default() -> TracePredictorConfig {
        TracePredictorConfig::paper()
    }
}

impl TracePredictorConfig {
    /// The paper's configuration: two 2^16-entry tables, 8-deep path
    /// history.
    pub fn paper() -> TracePredictorConfig {
        TracePredictorConfig { index_bits: 16, path_depth: 8, confidence_threshold: 1 }
    }

    /// A small configuration for tests.
    pub fn tiny() -> TracePredictorConfig {
        TracePredictorConfig { index_bits: 8, path_depth: 4, confidence_threshold: 1 }
    }
}

/// A rolling history of recently committed (or speculatively fetched) trace
/// ids.
///
/// Histories are plain values so the trace processor can checkpoint one per
/// dispatched trace and restore it on misprediction recovery.
///
/// # Example
///
/// ```
/// use tp_predict::TraceHistory;
/// use tp_trace::TraceId;
/// let mut h = TraceHistory::new(4);
/// h.push(TraceId::new(10, 0, 0));
/// h.push(TraceId::new(20, 1, 1));
/// assert_eq!(h.last(), Some(TraceId::new(20, 1, 1)));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceHistory {
    ids: Vec<TraceId>,
    depth: usize,
}

impl TraceHistory {
    /// Creates an empty history with the given depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero.
    pub fn new(depth: usize) -> TraceHistory {
        assert!(depth > 0, "history depth must be non-zero");
        TraceHistory { ids: Vec::with_capacity(depth), depth }
    }

    /// Appends a trace id, discarding the oldest beyond the depth.
    pub fn push(&mut self, id: TraceId) {
        if self.ids.len() == self.depth {
            self.ids.remove(0);
        }
        self.ids.push(id);
    }

    /// The most recent trace id.
    pub fn last(&self) -> Option<TraceId> {
        self.ids.last().copied()
    }

    /// Number of ids currently recorded.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no ids have been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The configured depth.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// The recorded ids, oldest first (checkpoint capture; rebuild with
    /// [`TraceHistory::new`] plus [`TraceHistory::push`]).
    pub fn ids(&self) -> &[TraceId] {
        &self.ids
    }

    /// Hash of the full path history.
    fn path_hash(&self) -> u64 {
        let mut h: u64 = 0x9e37_79b9_7f4a_7c15;
        for id in &self.ids {
            h = h.rotate_left(7) ^ id.hash64();
        }
        h
    }

    /// Hash of the most recent id only.
    fn last_hash(&self) -> u64 {
        self.ids.last().map_or(0x1234_5678_9abc_def0, |id| id.hash64())
    }
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    tag: u16,
    pred: TraceId,
    confidence: u8,
}

#[derive(Clone, Debug)]
struct Component {
    entries: Vec<Option<Entry>>,
    mask: u64,
}

/// What a single training update did to a component entry — the raw signal
/// behind the index-pollution counters in [`TracePredictorStats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TrainEvent {
    /// Same tag, same successor: confidence reinforced (or decayed without
    /// repointing).
    Trained,
    /// Same tag, confidence exhausted: the entry now predicts a different
    /// successor (a genuine successor change for this context).
    Repointed,
    /// The slot held a *different* context's entry (tag mismatch) and was
    /// evicted — index aliasing pollution.
    TagEvicted,
    /// The slot was empty and allocated.
    Allocated,
}

impl Component {
    fn new(index_bits: u32) -> Component {
        let n = 1usize << index_bits;
        Component { entries: vec![None; n], mask: n as u64 - 1 }
    }

    fn probe(&self, hash: u64) -> Option<Entry> {
        let idx = (hash & self.mask) as usize;
        let tag = (hash >> 16) as u16;
        self.entries[idx].filter(|e| e.tag == tag)
    }

    /// Whether training `(hash, actual)` would leave the table unchanged:
    /// the slot already holds this context's entry, predicting `actual`
    /// at saturated confidence.
    fn train_is_noop(&self, hash: u64, actual: TraceId) -> bool {
        self.probe(hash).is_some_and(|e| e.pred == actual && e.confidence == 3)
    }

    fn train(&mut self, hash: u64, actual: TraceId) -> TrainEvent {
        let idx = (hash & self.mask) as usize;
        let tag = (hash >> 16) as u16;
        match &mut self.entries[idx] {
            Some(e) if e.tag == tag => {
                if e.pred == actual {
                    e.confidence = (e.confidence + 1).min(3);
                    TrainEvent::Trained
                } else if e.confidence > 0 {
                    e.confidence -= 1;
                    TrainEvent::Trained
                } else {
                    e.pred = actual;
                    e.confidence = 1;
                    TrainEvent::Repointed
                }
            }
            slot => {
                let evicted = slot.is_some();
                *slot = Some(Entry { tag, pred: actual, confidence: 1 });
                if evicted {
                    TrainEvent::TagEvicted
                } else {
                    TrainEvent::Allocated
                }
            }
        }
    }
}

/// One trained component entry in a [`TracePredictorImage`]: the table
/// index it occupies plus the full entry contents.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImageEntry {
    /// Table index.
    pub index: u32,
    /// Stored tag (upper hash bits).
    pub tag: u16,
    /// Predicted successor trace id.
    pub pred: TraceId,
    /// Confidence counter.
    pub confidence: u8,
}

/// A plain-data image of a trained next-trace predictor
/// ([`NextTracePredictor::image`] / [`NextTracePredictor::from_image`]).
/// Only occupied entries are stored; statistics are not part of the image.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TracePredictorImage {
    /// The predictor's configuration (table geometry must match at restore).
    pub config: TracePredictorConfig,
    /// Occupied path-component entries, in index order.
    pub path: Vec<ImageEntry>,
    /// Occupied simple-component entries, in index order.
    pub simple: Vec<ImageEntry>,
}

/// Statistics for the next-trace predictor, including the index-pollution
/// counters the attribution ledger uses to tell *selection-induced
/// predictor pollution* apart from recovery mismodeling: a workload whose
/// trace selection fragments the stream shows up here as tag evictions
/// (contexts aliasing in the component tables) and repoints (unstable
/// successors for one context) out of proportion to its retired traces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TracePredictorStats {
    /// Predictions requested.
    pub predictions: u64,
    /// Requests for which neither component had a (tag-matching) entry.
    pub no_prediction: u64,
    /// Predictions served by the path-based component.
    pub path_hits: u64,
    /// Predictions served by the simple (last-trace) component.
    pub simple_hits: u64,
    /// Training updates applied.
    pub updates: u64,
    /// Path-component entries evicted by a different context (tag
    /// mismatch) — index aliasing pollution.
    pub path_tag_evictions: u64,
    /// Path-component entries repointed to a new successor after their
    /// confidence was exhausted.
    pub path_repoints: u64,
    /// Simple-component tag evictions.
    pub simple_tag_evictions: u64,
    /// Simple-component repoints.
    pub simple_repoints: u64,
}

/// Which component (index/history) fed a prediction — exposed so the bench
/// harness can attribute a cell's mispredictions to the history that
/// produced them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PredictionSource {
    /// The path-based component (full path-history hash) with the given
    /// confidence.
    Path {
        /// The matching entry's confidence counter.
        confidence: u8,
    },
    /// The simple component (last trace id only).
    Simple,
    /// Neither component matched; the frontend falls back to sequencing.
    None,
}

/// The hybrid next-trace predictor.
///
/// The path-based component indexes a 2^16-entry table with a hash of the
/// last eight trace ids; the simple component uses only the last id. The
/// path-based prediction is used when it tag-matches with sufficient
/// confidence, otherwise the simple component's, otherwise there is no
/// prediction and the frontend falls back to instruction-level sequencing
/// with the BTB.
///
/// # Example
///
/// ```
/// use tp_predict::{NextTracePredictor, TraceHistory, TracePredictorConfig};
/// use tp_trace::TraceId;
///
/// let mut pred = NextTracePredictor::new(TracePredictorConfig::paper());
/// let mut h = TraceHistory::new(8);
/// let (a, b) = (TraceId::new(0, 0, 0), TraceId::new(32, 3, 2));
///
/// // Train "after a comes b" a few times.
/// for _ in 0..3 {
///     let mut ctx = h.clone();
///     ctx.push(a);
///     pred.train(&ctx, b);
/// }
/// let mut ctx = h.clone();
/// ctx.push(a);
/// assert_eq!(pred.predict(&ctx), Some(b));
/// ```
#[derive(Clone, Debug)]
pub struct NextTracePredictor {
    config: TracePredictorConfig,
    path: Component,
    simple: Component,
    stats: TracePredictorStats,
}

impl NextTracePredictor {
    /// Creates a predictor.
    pub fn new(config: TracePredictorConfig) -> NextTracePredictor {
        NextTracePredictor {
            config,
            path: Component::new(config.index_bits),
            simple: Component::new(config.index_bits),
            stats: TracePredictorStats::default(),
        }
    }

    /// The predictor's configuration.
    pub fn config(&self) -> TracePredictorConfig {
        self.config
    }

    /// Predicts the next trace id given the current (speculative) history.
    pub fn predict(&mut self, history: &TraceHistory) -> Option<TraceId> {
        self.predict_explained(history).0
    }

    /// Predicts the next trace id and reports which component (index /
    /// history) fed the prediction.
    pub fn predict_explained(
        &mut self,
        history: &TraceHistory,
    ) -> (Option<TraceId>, PredictionSource) {
        self.stats.predictions += 1;
        let path_entry = self.path.probe(history.path_hash());
        let simple_entry = self.simple.probe(history.last_hash());
        let (pred, source) = match (path_entry, simple_entry) {
            (Some(p), _) if p.confidence >= self.config.confidence_threshold => {
                (Some(p.pred), PredictionSource::Path { confidence: p.confidence })
            }
            (_, Some(s)) => (Some(s.pred), PredictionSource::Simple),
            (Some(p), None) => (Some(p.pred), PredictionSource::Path { confidence: p.confidence }),
            (None, None) => (None, PredictionSource::None),
        };
        match source {
            PredictionSource::Path { .. } => self.stats.path_hits += 1,
            PredictionSource::Simple => self.stats.simple_hits += 1,
            PredictionSource::None => self.stats.no_prediction += 1,
        }
        (pred, source)
    }

    /// Trains both components: `history` is the (retirement-side) history
    /// *before* the trace, `actual` the trace id that actually followed.
    pub fn train(&mut self, history: &TraceHistory, actual: TraceId) {
        self.stats.updates += 1;
        match self.path.train(history.path_hash(), actual) {
            TrainEvent::TagEvicted => self.stats.path_tag_evictions += 1,
            TrainEvent::Repointed => self.stats.path_repoints += 1,
            TrainEvent::Trained | TrainEvent::Allocated => {}
        }
        match self.simple.train(history.last_hash(), actual) {
            TrainEvent::TagEvicted => self.stats.simple_tag_evictions += 1,
            TrainEvent::Repointed => self.stats.simple_repoints += 1,
            TrainEvent::Trained | TrainEvent::Allocated => {}
        }
    }

    /// Whether [`NextTracePredictor::train`] with this `(history, actual)`
    /// pair would leave both component tables unchanged (each slot already
    /// predicts `actual` at saturated confidence). Images carry tables but
    /// not statistics, so such a training round is unobservable in
    /// captured state.
    pub fn train_is_noop(&self, history: &TraceHistory, actual: TraceId) -> bool {
        self.path.train_is_noop(history.path_hash(), actual)
            && self.simple.train_is_noop(history.last_hash(), actual)
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> TracePredictorStats {
        self.stats
    }

    /// Captures the trained state as a plain-data [`TracePredictorImage`].
    pub fn image(&self) -> TracePredictorImage {
        fn entries(c: &Component) -> Vec<ImageEntry> {
            c.entries
                .iter()
                .enumerate()
                .filter_map(|(i, e)| {
                    e.map(|e| ImageEntry {
                        index: i as u32,
                        tag: e.tag,
                        pred: e.pred,
                        confidence: e.confidence,
                    })
                })
                .collect()
        }
        TracePredictorImage {
            config: self.config,
            path: entries(&self.path),
            simple: entries(&self.simple),
        }
    }

    /// Creates a warmed predictor from an image (statistics start at zero).
    ///
    /// # Panics
    ///
    /// Panics if an entry index is outside the configured table size.
    pub fn from_image(image: &TracePredictorImage) -> NextTracePredictor {
        let mut p = NextTracePredictor::new(image.config);
        for (component, entries) in [(&mut p.path, &image.path), (&mut p.simple, &image.simple)] {
            for e in entries {
                component.entries[e.index as usize] =
                    Some(Entry { tag: e.tag, pred: e.pred, confidence: e.confidence });
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(start: u32) -> TraceId {
        TraceId::new(start, 0, 0)
    }

    #[test]
    fn empty_history_has_no_prediction_initially() {
        let mut p = NextTracePredictor::new(TracePredictorConfig::tiny());
        let h = TraceHistory::new(4);
        assert_eq!(p.predict(&h), None);
        assert_eq!(p.stats().no_prediction, 1);
    }

    #[test]
    fn learns_a_simple_sequence() {
        let mut p = NextTracePredictor::new(TracePredictorConfig::paper());
        let seq = [id(0), id(32), id(64), id(96)];
        let mut h = TraceHistory::new(8);
        // Two training passes over the cyclic sequence.
        for _ in 0..2 {
            for w in 0..seq.len() {
                let next = seq[(w + 1) % seq.len()];
                h.push(seq[w]);
                p.train(&h, next);
            }
        }
        // Now every step is predicted correctly.
        for w in 0..seq.len() {
            h.push(seq[w]);
            assert_eq!(p.predict(&h), Some(seq[(w + 1) % seq.len()]), "step {w}");
        }
    }

    #[test]
    fn path_component_disambiguates_by_context() {
        // The same last trace B is followed by C after (A,B) but by D after
        // (X,B): only path context can get both right.
        let mut p = NextTracePredictor::new(TracePredictorConfig::paper());
        let (a, b, c, d, x) = (id(1), id(2), id(3), id(4), id(5));
        for _ in 0..8 {
            let mut h = TraceHistory::new(8);
            h.push(a);
            h.push(b);
            p.train(&h, c);
            let mut h = TraceHistory::new(8);
            h.push(x);
            h.push(b);
            p.train(&h, d);
        }
        let mut h = TraceHistory::new(8);
        h.push(a);
        h.push(b);
        assert_eq!(p.predict(&h), Some(c));
        let mut h = TraceHistory::new(8);
        h.push(x);
        h.push(b);
        assert_eq!(p.predict(&h), Some(d));
    }

    #[test]
    fn counter_replacement_needs_two_strikes() {
        let mut p = NextTracePredictor::new(TracePredictorConfig::tiny());
        let mut h = TraceHistory::new(4);
        h.push(id(7));
        p.train(&h, id(100));
        p.train(&h, id(100)); // confidence 2
        p.train(&h, id(200)); // confidence 1, still predicts 100
        assert_eq!(p.predict(&h), Some(id(100)));
        p.train(&h, id(200)); // confidence 0
        p.train(&h, id(200)); // replaced
        assert_eq!(p.predict(&h), Some(id(200)));
    }

    #[test]
    fn prediction_source_attributes_component() {
        let mut p = NextTracePredictor::new(TracePredictorConfig::paper());
        let mut h = TraceHistory::new(8);
        h.push(id(1));
        assert_eq!(p.predict_explained(&h), (None, PredictionSource::None));
        // Two trainings lift the path entry to confidence >= threshold.
        p.train(&h, id(2));
        p.train(&h, id(2));
        let (pred, source) = p.predict_explained(&h);
        assert_eq!(pred, Some(id(2)));
        assert!(matches!(source, PredictionSource::Path { .. }), "{source:?}");
        let s = p.stats();
        assert_eq!(s.no_prediction, 1);
        assert_eq!(s.path_hits, 1);
        assert_eq!(s.updates, 2);
    }

    #[test]
    fn training_counts_repoints_and_evictions() {
        let mut p = NextTracePredictor::new(TracePredictorConfig::tiny());
        let mut h = TraceHistory::new(4);
        h.push(id(7));
        p.train(&h, id(100)); // allocate (confidence 1)
        p.train(&h, id(200)); // decay to 0
        p.train(&h, id(200)); // repoint
        let s = p.stats();
        assert_eq!(s.path_repoints, 1);
        assert_eq!(s.simple_repoints, 1);
        // Find a history whose hashes collide in the 256-entry tables with
        // a different tag, forcing an eviction.
        let mut evicted = false;
        for i in 0..5000u32 {
            let mut g = TraceHistory::new(4);
            g.push(id(i + 8));
            p.train(&g, id(3));
            if p.stats().path_tag_evictions > 0 || p.stats().simple_tag_evictions > 0 {
                evicted = true;
                break;
            }
        }
        assert!(evicted, "no tag eviction in 5000 distinct contexts over 256 entries");
    }

    /// An image round-trip reproduces every prediction (both components,
    /// including tag-mismatch behaviour) with statistics reset.
    #[test]
    fn image_roundtrip_preserves_predictions() {
        let mut p = NextTracePredictor::new(TracePredictorConfig::tiny());
        let seq = [id(0), id(32), id(64), id(96), id(7)];
        let mut h = TraceHistory::new(4);
        for _ in 0..3 {
            for w in 0..seq.len() {
                h.push(seq[w]);
                p.train(&h, seq[(w + 1) % seq.len()]);
            }
        }
        let mut warm = NextTracePredictor::from_image(&p.image());
        assert_eq!(warm.stats(), TracePredictorStats::default());
        let mut g = TraceHistory::new(4);
        for (w, &id) in seq.iter().enumerate() {
            g.push(id);
            assert_eq!(warm.predict(&g), p.predict(&g), "step {w}");
        }
        assert_eq!(warm.image(), p.image());
    }

    #[test]
    fn history_exposes_ids_and_depth() {
        let mut h = TraceHistory::new(3);
        h.push(id(1));
        h.push(id(2));
        assert_eq!(h.depth(), 3);
        assert_eq!(h.ids(), &[id(1), id(2)]);
    }

    #[test]
    fn history_is_bounded() {
        let mut h = TraceHistory::new(2);
        h.push(id(1));
        h.push(id(2));
        h.push(id(3));
        assert_eq!(h.len(), 2);
        assert_eq!(h.last(), Some(id(3)));
    }

    #[test]
    fn histories_checkpoint_by_clone() {
        let mut h = TraceHistory::new(4);
        h.push(id(1));
        let snap = h.clone();
        h.push(id(2));
        assert_ne!(h, snap);
        let h = snap;
        assert_eq!(h.last(), Some(id(1)));
    }

    #[test]
    fn distinct_histories_usually_map_to_distinct_indices() {
        // Smoke-test the hash spread: 64 distinct histories should not all
        // collide in a 256-entry table.
        let mut hashes = std::collections::HashSet::new();
        for i in 0..64u32 {
            let mut h = TraceHistory::new(4);
            h.push(id(i));
            h.push(id(i * 7 + 1));
            hashes.insert(h.path_hash() & 0xff);
        }
        assert!(hashes.len() > 32, "path hash spreads poorly: {}", hashes.len());
    }
}
