//! The RV64 workload corpus: six real programs written in RV assembly.
//!
//! Where the synthetic suite *engineers* branch populations to match the
//! paper's Table 5, these are ordinary programs whose control flow falls
//! out of the algorithm — compiler-shaped hammocks, loop exits, recursion
//! and indirect dispatch:
//!
//! | program | control-flow character |
//! |---|---|
//! | `crc32` | counted bit loop with a ~50% data-dependent XOR hammock |
//! | `qsort` | recursive quicksort: unpredictable partition compare, call/ret depth |
//! | `dijkstra` | argmin scan + relaxation, two nested data-dependent hammocks |
//! | `matmul` | dense 6x6 multiply, fully counted and predictable |
//! | `strhash` | FNV-1a stream hash with a 1-in-8 bucket-update hammock |
//! | `fsm` | bytecode interpreter: indirect dispatch through a jump table |
//!
//! Every builder takes the suite iteration scale `n`
//! ([`tp_workloads::Size::iters`] upstream) and produces a validated
//! [`Program`] through the full assemble → encode → **decode** path, so
//! simply constructing the suite exercises the frontend end to end. Input
//! data is generated from fixed per-program seeds; builds are bit-for-bit
//! deterministic.
//!
//! Each program writes a result digest to its `OUT` region and the crate
//! tests check it against an independent Rust reference implementation —
//! the corpus is self-verifying, not just self-consistent.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tp_isa::{Addr, Program, Word};

use crate::asm::{RvAsm, RvModule};
use crate::module_to_program;

/// Byte address of a program's primary input region. Input streams scale
/// with the suite size and grow *upward* from here, so every fixed-size
/// auxiliary region (output, literal pools, tables) lives below it.
pub const DATA: Addr = tp_isa::DATA_BASE;
/// Byte address of the result/output region shared by all corpus programs.
pub const OUT: Addr = 0x8000;
/// Stack base for corpus programs that call (grows downward; far above
/// the largest long-suite input stream).
pub const RV_STACK: Addr = 0x80_0000;

/// One corpus entry.
#[derive(Clone, Debug)]
pub struct RvProgram {
    /// Program name (the workload registry key).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The decoded, validated program.
    pub program: Program,
}

/// One corpus program before assembly: name, source text, data image.
struct Spec {
    name: &'static str,
    src: String,
    data: Vec<(Addr, Word)>,
}

fn assemble_spec(spec: &Spec) -> RvModule {
    let mut a = RvAsm::new(spec.name);
    a.source(&spec.src).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
    for &(addr, v) in &spec.data {
        a.data_word(addr, v);
    }
    a.assemble().unwrap_or_else(|e| panic!("{}: {e}", spec.name))
}

fn build_spec(spec: &Spec) -> Program {
    module_to_program(&assemble_spec(spec)).unwrap_or_else(|e| panic!("{}: {e}", spec.name))
}

fn specs(n: u32) -> Vec<Spec> {
    vec![
        crc32_spec(n),
        qsort_spec(n),
        dijkstra_spec(n),
        matmul_spec(n),
        strhash_spec(n),
        fsm_spec(n),
    ]
}

/// The whole corpus as assembled modules — raw 32-bit encodings plus data
/// images — in canonical order. The round-trip tests decode and re-encode
/// these words.
pub fn all_modules(n: u32) -> Vec<RvModule> {
    specs(n).iter().map(assemble_spec).collect()
}

/// The random byte stream hashed by [`crc32`].
pub fn crc32_data(n: u32) -> Vec<Word> {
    let mut rng = StdRng::seed_from_u64(0xc7c3_2001);
    (0..n).map(|_| rng.gen_range(0..256)).collect()
}

/// CRC-32 (polynomial `0x04C11DB7`, MSB-first) over `n` random bytes.
fn crc32_spec(n: u32) -> Spec {
    let src = format!(
        "
        main:
            li   s0, {DATA:#x}
            li   s1, {n}
            li   s2, 0x04C11DB7
            li   s6, -1
            srli s6, s6, 32          # 32-bit mask
            mv   s3, s6              # crc = 0xFFFFFFFF
            li   t0, 0               # byte index
        byte_loop:
            slli t1, t0, 3
            add  t1, t1, s0
            ld   t2, (t1)
            slli t2, t2, 24
            xor  s3, s3, t2
            li   t3, 8
        bit_loop:
            srli t4, s3, 31
            slli s3, s3, 1
            and  s3, s3, s6
            beqz t4, no_xor          # ~50% data-dependent hammock
            xor  s3, s3, s2
        no_xor:
            addi t3, t3, -1
            bnez t3, bit_loop
            addi t0, t0, 1
            blt  t0, s1, byte_loop
            li   t5, {OUT:#x}
            sd   s3, (t5)
            ecall
        "
    );
    let data: Vec<(Addr, Word)> =
        crc32_data(n).into_iter().enumerate().map(|(i, b)| (DATA + 8 * i as Addr, b)).collect();
    Spec { name: "crc32", src, data }
}

#[doc = "See the corpus table in the module docs."]
pub fn crc32(n: u32) -> Program {
    build_spec(&crc32_spec(n))
}

/// Reference CRC-32 for the [`crc32`] input (what `OUT` must hold).
pub fn crc32_reference(n: u32) -> u64 {
    let mut crc: u64 = 0xffff_ffff;
    for b in crc32_data(n) {
        crc ^= (b as u64) << 24;
        for _ in 0..8 {
            let msb = crc >> 31 & 1;
            crc = (crc << 1) & 0xffff_ffff;
            if msb == 1 {
                crc ^= 0x04C1_1DB7;
            }
        }
    }
    crc
}

/// The random word stream sorted by [`qsort`].
pub fn qsort_data(n: u32) -> Vec<Word> {
    let n = n.max(8);
    let mut rng = StdRng::seed_from_u64(0x9507_0042);
    (0..n).map(|_| rng.gen_range(0..1_000_000)).collect()
}

/// Recursive quicksort (Lomuto partition) of `max(n, 8)` random words,
/// followed by an in-place sortedness check that counts inversions into
/// `OUT` (zero for a correct sort).
fn qsort_spec(n: u32) -> Spec {
    let n = n.max(8);
    let last = DATA + 8 * (n as Addr - 1);
    let src = format!(
        "
        main:
            li   sp, {RV_STACK:#x}
            li   a0, {DATA:#x}
            li   a1, {last:#x}
            call qsort
            # verification pass: count adjacent inversions
            li   t0, {DATA:#x}
            li   t1, {last:#x}
            li   t2, 0
        vloop:
            ld   t3, (t0)
            ld   t4, 8(t0)
            ble  t3, t4, vok
            addi t2, t2, 1
        vok:
            addi t0, t0, 8
            blt  t0, t1, vloop
            li   t5, {OUT:#x}
            sd   t2, (t5)
            ecall

        qsort:                        # a0 = &a[lo], a1 = &a[hi]
            bltu a0, a1, qs_go
            ret
        qs_go:
            addi sp, sp, -32
            sd   ra, (sp)
            sd   s0, 8(sp)
            sd   s1, 16(sp)
            sd   s2, 24(sp)
            mv   s0, a0
            mv   s1, a1
            ld   t0, (s1)             # pivot = a[hi]
            mv   s2, a0               # store ptr
            mv   t1, a0               # scan ptr
        part_loop:
            ld   t2, (t1)
            bge  t2, t0, part_skip    # unpredictable partition compare
            ld   t3, (s2)
            sd   t2, (s2)
            sd   t3, (t1)
            addi s2, s2, 8
        part_skip:
            addi t1, t1, 8
            bltu t1, s1, part_loop
            ld   t2, (s2)
            ld   t3, (s1)
            sd   t3, (s2)
            sd   t2, (s1)
            mv   a0, s0               # left half
            addi a1, s2, -8
            call qsort
            addi a0, s2, 8            # right half
            mv   a1, s1
            call qsort
            ld   ra, (sp)
            ld   s0, 8(sp)
            ld   s1, 16(sp)
            ld   s2, 24(sp)
            addi sp, sp, 32
            ret
        ",
    );
    let data: Vec<(Addr, Word)> =
        qsort_data(n).into_iter().enumerate().map(|(i, v)| (DATA + 8 * i as Addr, v)).collect();
    Spec { name: "qsort", src, data }
}

#[doc = "See the corpus table in the module docs."]
pub fn qsort(n: u32) -> Program {
    build_spec(&qsort_spec(n))
}

/// Number of vertices in the [`dijkstra`] graph.
pub const DIJKSTRA_V: u32 = 12;

/// The dense random weight matrix of [`dijkstra`] (row-major, `V*V`).
pub fn dijkstra_data(_n: u32) -> Vec<Word> {
    let v = DIJKSTRA_V as usize;
    let mut rng = StdRng::seed_from_u64(0xd1ca_57a0);
    (0..v * v).map(|_| rng.gen_range(1..100)).collect()
}

/// Dijkstra on a dense 12-vertex graph, one full single-source run per
/// rep (`n/30 + 1` reps, rotating the source), summing the far-corner
/// distances into `OUT`.
fn dijkstra_spec(n: u32) -> Spec {
    let reps = n / 30 + 1;
    let dist = 0xb000;
    let visited = 0xb800;
    let src = format!(
        "
        main:
            li   s0, {DATA:#x}       # weights
            li   s1, {dist:#x}
            li   s2, {visited:#x}
            li   s3, {reps}
            li   s4, 0               # checksum
            li   s5, 0               # source
            li   s6, {v}
        rep:
            li   t0, 0
            li   t1, 0x100000        # INF
        init:
            slli t2, t0, 3
            add  t3, t2, s1
            sd   t1, (t3)
            add  t3, t2, s2
            sd   zero, (t3)
            addi t0, t0, 1
            blt  t0, s6, init
            slli t2, s5, 3
            add  t2, t2, s1
            sd   zero, (t2)          # dist[src] = 0
            li   s7, 0
        outer:
            li   t0, 0               # argmin over unvisited
            li   t1, 0x200000
            li   t2, -1
        sel:
            slli t3, t0, 3
            add  t4, t3, s2
            ld   t5, (t4)
            bnez t5, sel_skip        # already visited
            add  t4, t3, s1
            ld   t5, (t4)
            bge  t5, t1, sel_skip    # not an improvement
            mv   t1, t5
            mv   t2, t0
        sel_skip:
            addi t0, t0, 1
            blt  t0, s6, sel
            bltz t2, done_rep
            slli t3, t2, 3
            add  t4, t3, s2
            li   t5, 1
            sd   t5, (t4)            # visit u
            add  t4, t3, s1
            ld   s8, (t4)            # du
            li   t4, {row}
            mul  t4, t2, t4
            add  s9, t4, s0          # row of W
            li   t0, 0
        relax:
            slli t3, t0, 3
            add  t4, t3, s2
            ld   t5, (t4)
            bnez t5, relax_skip
            add  t6, t3, s9
            ld   t6, (t6)
            add  t6, t6, s8          # nd = du + w
            add  t4, t3, s1
            ld   t5, (t4)
            bge  t6, t5, relax_skip  # relaxation hammock
            sd   t6, (t4)
        relax_skip:
            addi t0, t0, 1
            blt  t0, s6, relax
            addi s7, s7, 1
            blt  s7, s6, outer
        done_rep:
            addi t0, s6, -1
            slli t0, t0, 3
            add  t0, t0, s1
            ld   t0, (t0)
            add  s4, s4, t0          # checksum += dist[V-1]
            addi s5, s5, 1
            blt  s5, s6, src_ok
            li   s5, 0
        src_ok:
            addi s3, s3, -1
            bnez s3, rep
            li   t0, {OUT:#x}
            sd   s4, (t0)
            ecall
        ",
        v = DIJKSTRA_V,
        row = 8 * DIJKSTRA_V,
    );
    let data: Vec<(Addr, Word)> =
        dijkstra_data(n).into_iter().enumerate().map(|(i, w)| (DATA + 8 * i as Addr, w)).collect();
    Spec { name: "dijkstra", src, data }
}

#[doc = "See the corpus table in the module docs."]
pub fn dijkstra(n: u32) -> Program {
    build_spec(&dijkstra_spec(n))
}

/// Matrix order of [`matmul`].
pub const MATMUL_K: u32 = 6;

/// The two random input matrices of [`matmul`], concatenated (A then B).
pub fn matmul_data(_n: u32) -> Vec<Word> {
    let k = (MATMUL_K * MATMUL_K) as usize;
    let mut rng = StdRng::seed_from_u64(0x3a73_0001);
    (0..2 * k).map(|_| rng.gen_range(0..16)).collect()
}

/// Dense 6x6 integer matrix multiply, repeated `n/60 + 1` times with a
/// feedback write so no rep is dead code; `OUT` holds the final `C[35]`.
///
/// The inner product is fully unrolled — exactly what a compiler does to
/// a constant-trip-count inner loop at `-O2` — so the hot code is long
/// straight-line blocks of load/`mul`/`add` with one backward branch per
/// output element, heavy on ILP and nearly branch-free.
fn matmul_spec(n: u32) -> Spec {
    let reps = n / 60 + 1;
    let k = MATMUL_K;
    let row = 8 * k;
    // The unrolled dot product: A's row is contiguous (offsets 0,8,..),
    // B's column strides by a full row.
    let mut dot = String::new();
    for l in 0..k {
        dot.push_str(&format!(
            "            ld   t6, {a_off}(t4)\n            ld   s4, {b_off}(t5)\n            \
             mul  t6, t6, s4\n            add  t3, t3, t6\n",
            a_off = 8 * l,
            b_off = row * l,
        ));
    }
    let b_base = DATA + 8 * (k * k) as Addr;
    let c_base = 0xc000;
    let src = format!(
        "
        main:
            li   s0, {DATA:#x}       # A
            li   s1, {b_base:#x}     # B
            li   s2, {c_base:#x}     # C
            li   s3, {reps}
            li   s7, {k}
        rep_loop:
            li   t0, 0               # i
            mv   t4, s0              # &A[i][0]
            mv   s6, s2              # &C[i][0]
        i_loop:
            li   t1, 0               # j
            mv   t5, s1              # &B[0][j]
            mv   s5, s6              # &C[i][j]
        j_loop:
            li   t3, 0               # acc
{dot}            sd   t3, (s5)            # C[i][j] = acc
            addi t5, t5, 8
            addi s5, s5, 8
            addi t1, t1, 1
            blt  t1, s7, j_loop
            addi t4, t4, {row}
            addi s6, s6, {row}
            addi t0, t0, 1
            blt  t0, s7, i_loop
            ld   t0, {last_c}(s2)    # feedback keeps reps live
            srai t0, t0, 3
            ld   t1, (s0)
            xor  t1, t1, t0
            sd   t1, (s0)
            addi s3, s3, -1
            bnez s3, rep_loop
            ld   t0, {last_c}(s2)
            li   t1, {OUT:#x}
            sd   t0, (t1)
            ecall
        ",
        last_c = 8 * (k * k - 1),
    );
    let data: Vec<(Addr, Word)> =
        matmul_data(n).into_iter().enumerate().map(|(i, v)| (DATA + 8 * i as Addr, v)).collect();
    Spec { name: "matmul", src, data }
}

#[doc = "See the corpus table in the module docs."]
pub fn matmul(n: u32) -> Program {
    build_spec(&matmul_spec(n))
}

/// The random word stream hashed by [`strhash`].
pub fn strhash_data(n: u32) -> Vec<Word> {
    let mut rng = StdRng::seed_from_u64(0x57a5_4a11);
    (0..4 * n).map(|_| rng.gen::<u32>() as Word).collect()
}

/// FNV-1a over `4n` random words with a 1-in-8 data-dependent bucket
/// update; `OUT` holds the final hash.
fn strhash_spec(n: u32) -> Spec {
    let words = 4 * n;
    let pool = 0x9000;
    let buckets = 0x9800;
    let src = format!(
        "
            .org {pool:#x}
            .word 0xcbf29ce484222325  # FNV-1a offset basis
            .word 0x100000001b3       # FNV-1a prime
        main:
            li   s0, {DATA:#x}
            li   s1, {words}
            li   s4, {pool:#x}
            ld   s2, (s4)             # h
            ld   s3, 8(s4)            # prime
            li   s5, {buckets:#x}
            li   t0, 0
        loop:
            slli t1, t0, 3
            add  t1, t1, s0
            ld   t2, (t1)
            xor  s2, s2, t2
            mul  s2, s2, s3
            andi t3, s2, 7
            bnez t3, skip             # 1-in-8 hammock
            srli t4, s2, 3
            andi t4, t4, 63
            slli t4, t4, 3
            add  t4, t4, s5
            ld   t5, (t4)
            addi t5, t5, 1
            sd   t5, (t4)
        skip:
            addi t0, t0, 1
            blt  t0, s1, loop
            li   t6, {OUT:#x}
            sd   s2, (t6)
            ecall
        "
    );
    let data: Vec<(Addr, Word)> =
        strhash_data(n).into_iter().enumerate().map(|(i, v)| (DATA + 8 * i as Addr, v)).collect();
    Spec { name: "strhash", src, data }
}

#[doc = "See the corpus table in the module docs."]
pub fn strhash(n: u32) -> Program {
    build_spec(&strhash_spec(n))
}

/// Reference FNV-1a hash for the [`strhash`] input.
pub fn strhash_reference(n: u32) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for w in strhash_data(n) {
        h ^= w as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// The packed opcode stream interpreted by [`fsm`]: low 3 bits opcode
/// (0..6), the rest a signed operand.
pub fn fsm_data(n: u32) -> Vec<Word> {
    let mut rng = StdRng::seed_from_u64(0xf5a_0a77);
    (0..4 * n.max(16))
        .map(|_| {
            let op = rng.gen_range(0..6i64);
            let operand = rng.gen_range(-5_000..5_000i64);
            (operand << 3) | op
        })
        .collect()
}

/// A six-opcode bytecode interpreter dispatching through a `.wordpc` jump
/// table with `jr` — every step is an indirect jump whose target depends
/// on data. `OUT` holds the final accumulator and state counter.
fn fsm_spec(n: u32) -> Spec {
    let steps = 4 * n.max(16);
    let table = 0xa000;
    let src = format!(
        "
            .org {table:#x}
            .wordpc op_add
            .wordpc op_xor
            .wordpc op_shift
            .wordpc op_cmp
            .wordpc op_load
            .wordpc op_mix
        main:
            li   s0, {DATA:#x}        # instruction stream
            li   s1, {steps}
            li   s2, {table:#x}
            li   s3, 0                # acc
            li   s4, 0                # state
            li   t0, 0                # step index
        loop:
            slli t1, t0, 3
            add  t1, t1, s0
            ld   t2, (t1)
            andi t3, t2, 7
            srai t4, t2, 3            # operand
            slli t3, t3, 3
            add  t3, t3, s2
            ld   t3, (t3)
            jr   t3                   # data-dependent indirect dispatch
        op_add:
            add  s3, s3, t4
            j    next
        op_xor:
            xor  s3, s3, t4
            j    next
        op_shift:
            andi t5, t4, 31
            srl  t5, s3, t5
            xor  s3, s3, t5
            j    next
        op_cmp:
            blt  s3, t4, cmp_lt       # data-dependent hammock in a handler
            addi s4, s4, -1
            j    next
        cmp_lt:
            addi s4, s4, 1
            j    next
        op_load:
            andi t5, t4, 63
            slli t5, t5, 3
            add  t5, t5, s0
            ld   t5, (t5)
            add  s3, s3, t5
            j    next
        op_mix:
            mul  s3, s3, t4
            xor  s3, s3, s4
            j    next
        next:
            addi t0, t0, 1
            blt  t0, s1, loop
            li   t1, {OUT:#x}
            sd   s3, (t1)
            sd   s4, 8(t1)
            ecall
        "
    );
    let data: Vec<(Addr, Word)> =
        fsm_data(n).into_iter().enumerate().map(|(i, v)| (DATA + 8 * i as Addr, v)).collect();
    Spec { name: "fsm", src, data }
}

#[doc = "See the corpus table in the module docs."]
pub fn fsm(n: u32) -> Program {
    build_spec(&fsm_spec(n))
}

/// Builds the whole corpus at iteration scale `n`, in canonical order.
pub fn all(n: u32) -> Vec<RvProgram> {
    vec![
        RvProgram {
            name: "crc32",
            description: "bitwise CRC-32: counted bit loop + ~50% XOR hammock",
            program: crc32(n),
        },
        RvProgram {
            name: "qsort",
            description: "recursive quicksort: unpredictable partition, deep call/ret",
            program: qsort(n),
        },
        RvProgram {
            name: "dijkstra",
            description: "dense-graph shortest paths: argmin scan + relaxation hammocks",
            program: dijkstra(n),
        },
        RvProgram {
            name: "matmul",
            description: "dense 6x6 integer matmul: fully counted, highly predictable",
            program: matmul(n),
        },
        RvProgram {
            name: "strhash",
            description: "FNV-1a stream hash with 1-in-8 bucket-update hammock",
            program: strhash(n),
        },
        RvProgram {
            name: "fsm",
            description: "bytecode interpreter: indirect dispatch through a jump table",
            program: fsm(n),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::map_reg;
    use tp_isa::func::Machine;

    const N: u32 = 60; // the tiny-suite scale

    fn run(p: &Program) -> Machine<'_> {
        let mut m = Machine::new(p);
        let s = m.run(50_000_000).unwrap_or_else(|e| panic!("{}: {e}", p.name()));
        assert!(s.halted, "{} did not halt", p.name());
        m
    }

    #[test]
    fn crc32_matches_the_reference() {
        let p = crc32(N);
        let m = run(&p);
        assert_eq!(m.mem_word(OUT) as u64, crc32_reference(N));
    }

    #[test]
    fn qsort_sorts_and_counts_zero_inversions() {
        let p = qsort(N);
        let m = run(&p);
        assert_eq!(m.mem_word(OUT), 0, "inversions remain");
        let mut expected = qsort_data(N);
        expected.sort();
        for (i, v) in expected.iter().enumerate() {
            assert_eq!(m.mem_word(DATA + 8 * i as Addr), *v, "element {i}");
        }
    }

    #[test]
    fn dijkstra_matches_a_reference_solver() {
        let p = dijkstra(N);
        let m = run(&p);
        let v = DIJKSTRA_V as usize;
        let w = dijkstra_data(N);
        let reps = N / 30 + 1;
        let mut checksum = 0i64;
        let mut source = 0usize;
        for _ in 0..reps {
            let mut dist = vec![0x100000i64; v];
            let mut visited = vec![false; v];
            dist[source] = 0;
            for _ in 0..v {
                let u =
                    (0..v).filter(|&i| !visited[i] && dist[i] < 0x200000).min_by_key(|&i| dist[i]);
                let Some(u) = u else { break };
                visited[u] = true;
                for x in 0..v {
                    let nd = dist[u] + w[u * v + x];
                    if !visited[x] && nd < dist[x] {
                        dist[x] = nd;
                    }
                }
            }
            checksum += dist[v - 1];
            source = (source + 1) % v;
        }
        assert_eq!(m.mem_word(OUT), checksum);
    }

    #[test]
    fn matmul_matches_a_reference_multiply() {
        let p = matmul(N);
        let m = run(&p);
        let k = MATMUL_K as usize;
        let data = matmul_data(N);
        let (mut a, b) = (data[..k * k].to_vec(), &data[k * k..]);
        let reps = N / 60 + 1;
        let mut c = vec![0i64; k * k];
        for _ in 0..reps {
            for i in 0..k {
                for j in 0..k {
                    c[i * k + j] = (0..k)
                        .map(|l| a[i * k + l].wrapping_mul(b[l * k + j]))
                        .fold(0i64, i64::wrapping_add);
                }
            }
            a[0] ^= c[k * k - 1] >> 3;
        }
        assert_eq!(m.mem_word(OUT), c[k * k - 1]);
    }

    #[test]
    fn strhash_matches_the_reference() {
        let p = strhash(N);
        let m = run(&p);
        assert_eq!(m.mem_word(OUT) as u64, strhash_reference(N));
    }

    #[test]
    fn fsm_matches_a_reference_interpreter() {
        let p = fsm(N);
        let m = run(&p);
        let stream = fsm_data(N);
        let (mut acc, mut state) = (0i64, 0i64);
        for &w in &stream {
            let (op, operand) = (w & 7, w >> 3);
            match op {
                0 => acc = acc.wrapping_add(operand),
                1 => acc ^= operand,
                2 => acc ^= ((acc as u64) >> (operand & 31)) as i64,
                3 => {
                    if acc < operand {
                        state += 1;
                    } else {
                        state -= 1;
                    }
                }
                4 => acc = acc.wrapping_add(stream[(operand & 63) as usize]),
                _ => {
                    acc = acc.wrapping_mul(operand);
                    acc ^= state;
                }
            }
        }
        assert_eq!(m.mem_word(OUT), acc);
        assert_eq!(m.mem_word(OUT + 8), state);
    }

    #[test]
    fn corpus_is_deterministic_and_scales() {
        let a = all(60);
        let b = all(60);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.program, y.program, "{}", x.name);
        }
        for (small, big) in all(60).iter().zip(all(600).iter()) {
            let mut ms = Machine::new(&small.program);
            let mut mb = Machine::new(&big.program);
            let rs = ms.run(100_000_000).unwrap();
            let rb = mb.run(100_000_000).unwrap();
            assert!(rs.halted && rb.halted);
            assert!(
                rb.retired > 3 * rs.retired,
                "{}: {} !>> {}",
                small.name,
                rb.retired,
                rs.retired
            );
        }
    }

    #[test]
    fn corpus_register_use_respects_the_zero_register() {
        // No corpus program may write a meaningful value through x0.
        for p in all(60) {
            let m = run(&p.program);
            assert_eq!(m.reg(map_reg(0)), 0, "{}", p.name);
        }
    }
}
