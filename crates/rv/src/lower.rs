//! Lowering decoded [`RvInst`]s onto the internal [`tp_isa::Inst`] stream.
//!
//! The mapping is one instruction to one instruction, so dynamic behaviour
//! (branch populations, region sizes, trace shapes) is exactly the RV
//! program's. Three conventions make that possible:
//!
//! * **PCs are word-indexed.** RV text address `4*i` becomes internal PC
//!   `i`. Branch/`jal` byte offsets divide by 4 at lowering.
//! * **Code addresses the program can observe are word-indexed too.** A
//!   `jal ra` link value, and any jump-table entry the program loads and
//!   jumps through, holds an instruction *index*, not a byte address (the
//!   assembler's `.wordpc` directive emits indices for exactly this
//!   reason). Data addresses are ordinary byte addresses throughout.
//! * **Register numbers are permuted, not renamed away.** The internal ISA
//!   hardwires `r31` as the link register and `r30` as the conventional
//!   stack pointer where RV uses `x1`/`x2`, so lowering swaps those pairs
//!   (`x1↔r31`, `x2↔r30`) and maps every other register to itself. The map
//!   is an involution — applying it twice is the identity — which keeps it
//!   trivially invertible for debugging.
//!
//! `jal`/`jalr` lower onto the internal control classes the trace selector,
//! CGCI detection and the attribution ledger already understand:
//!
//! | RV form                  | internal class  |
//! |--------------------------|-----------------|
//! | `beq`..`bgeu`            | `Branch` (conditional direct) |
//! | `jal x0`                 | `Jump`          |
//! | `jal x1`                 | `Call`          |
//! | `jalr x0, x1, 0` (`ret`) | `Ret`           |
//! | `jalr x0, rs, 0`         | `JumpIndirect`  |
//! | `jalr x1, rs, 0`         | `CallIndirect`  |
//! | `ecall`                  | `Halt`          |
//!
//! `jal`/`jalr` with any other link register, or `jalr` with a non-zero
//! displacement, have no internal equivalent and are rejected (compilers
//! emit them only for millicode thunks the corpus doesn't use).
//!
//! One semantic divergence is deliberate: `div`/`rem` by zero follow the
//! simulator's total-ALU convention (result 0) rather than the RV spec's
//! (-1 / dividend), so wrong-path execution can never fault. Corpus
//! programs must not divide by zero on the committed path.

use std::fmt;

use tp_isa::{AluOp, Cond, Inst, Pc, Reg};

use crate::inst::{reg_name, RvCond, RvIOp, RvInst, RvOp, RvShift};

/// Maps an RV register number onto the internal architectural register.
///
/// The permutation swaps `x1↔r31` (link) and `x2↔r30` (stack pointer) and
/// is the identity elsewhere; `x0` stays the hardwired zero.
pub fn map_reg(x: u8) -> Reg {
    Reg::new(match x {
        1 => 31,
        31 => 1,
        2 => 30,
        30 => 2,
        r => r,
    })
}

/// Error produced when a decoded instruction has no internal equivalent.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// `jal` with a link register other than `x0`/`x1`.
    JalLinkReg {
        /// The unsupported link register.
        rd: u8,
    },
    /// `jalr` outside the three supported forms.
    JalrForm {
        /// Link register.
        rd: u8,
        /// Base register.
        rs1: u8,
        /// Displacement.
        imm: i32,
    },
    /// A branch or jump whose byte offset is not a multiple of 4, or whose
    /// resolved target is before instruction 0.
    BadTarget {
        /// PC (word index) of the instruction.
        pc: Pc,
        /// The encoded byte offset.
        offset: i32,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            LowerError::JalLinkReg { rd } => {
                write!(f, "jal with link register {} (only x0/x1 lower)", reg_name(rd))
            }
            LowerError::JalrForm { rd, rs1, imm } => write!(
                f,
                "jalr {}, {}, {imm} has no internal equivalent (need rd in x0/x1 and imm 0)",
                reg_name(rd),
                reg_name(rs1)
            ),
            LowerError::BadTarget { pc, offset } => {
                write!(f, "instruction {pc}: byte offset {offset} is not a valid word target")
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// Resolves a byte offset relative to word-indexed `pc` into a target PC.
fn target(pc: Pc, offset: i32) -> Result<Pc, LowerError> {
    if offset % 4 != 0 {
        return Err(LowerError::BadTarget { pc, offset });
    }
    let t = pc as i64 + (offset / 4) as i64;
    u32::try_from(t).map_err(|_| LowerError::BadTarget { pc, offset })
}

impl RvCond {
    /// The internal branch condition (same operand order).
    pub fn cond(self) -> Cond {
        match self {
            RvCond::Beq => Cond::Eq,
            RvCond::Bne => Cond::Ne,
            RvCond::Blt => Cond::Lt,
            RvCond::Bge => Cond::Ge,
            RvCond::Bltu => Cond::Ltu,
            RvCond::Bgeu => Cond::Geu,
        }
    }
}

impl RvOp {
    /// The internal ALU operation.
    pub fn alu(self) -> AluOp {
        match self {
            RvOp::Add => AluOp::Add,
            RvOp::Sub => AluOp::Sub,
            RvOp::Sll => AluOp::Shl,
            RvOp::Slt => AluOp::Slt,
            RvOp::Sltu => AluOp::Sltu,
            RvOp::Xor => AluOp::Xor,
            RvOp::Srl => AluOp::Shru,
            RvOp::Sra => AluOp::Shr,
            RvOp::Or => AluOp::Or,
            RvOp::And => AluOp::And,
            RvOp::Mul => AluOp::Mul,
            RvOp::Div => AluOp::Div,
            RvOp::Rem => AluOp::Rem,
        }
    }
}

impl RvIOp {
    /// The internal ALU operation.
    pub fn alu(self) -> AluOp {
        match self {
            RvIOp::Addi => AluOp::Add,
            RvIOp::Slti => AluOp::Slt,
            RvIOp::Sltiu => AluOp::Sltu,
            RvIOp::Xori => AluOp::Xor,
            RvIOp::Ori => AluOp::Or,
            RvIOp::Andi => AluOp::And,
        }
    }
}

impl RvShift {
    /// The internal ALU operation.
    pub fn alu(self) -> AluOp {
        match self {
            RvShift::Slli => AluOp::Shl,
            RvShift::Srli => AluOp::Shru,
            RvShift::Srai => AluOp::Shr,
        }
    }
}

/// Lowers one decoded instruction at word-indexed `pc` onto the internal
/// ISA.
///
/// # Errors
///
/// Returns a [`LowerError`] for the `jal`/`jalr` forms and offsets
/// documented in the module docs.
pub fn lower(inst: RvInst, pc: Pc) -> Result<Inst, LowerError> {
    Ok(match inst {
        RvInst::Lui { rd, imm20 } => {
            Inst::AluImm { op: AluOp::Add, rd: map_reg(rd), rs: Reg::ZERO, imm: imm20 << 12 }
        }
        RvInst::Jal { rd: 0, offset } => Inst::Jump { target: target(pc, offset)? },
        RvInst::Jal { rd: 1, offset } => Inst::Call { target: target(pc, offset)? },
        RvInst::Jal { rd, .. } => return Err(LowerError::JalLinkReg { rd }),
        RvInst::Jalr { rd: 0, rs1: 1, imm: 0 } => Inst::Ret,
        RvInst::Jalr { rd: 0, rs1, imm: 0 } => Inst::JumpIndirect { rs: map_reg(rs1) },
        RvInst::Jalr { rd: 1, rs1, imm: 0 } => Inst::CallIndirect { rs: map_reg(rs1) },
        RvInst::Jalr { rd, rs1, imm } => return Err(LowerError::JalrForm { rd, rs1, imm }),
        RvInst::Branch { cond, rs1, rs2, offset } => Inst::Branch {
            cond: cond.cond(),
            rs: map_reg(rs1),
            rt: map_reg(rs2),
            target: target(pc, offset)?,
        },
        RvInst::Ld { rd, rs1, imm } => {
            Inst::Load { rd: map_reg(rd), base: map_reg(rs1), offset: imm }
        }
        RvInst::Sd { rs2, rs1, imm } => {
            Inst::Store { rs: map_reg(rs2), base: map_reg(rs1), offset: imm }
        }
        RvInst::OpImm { op, rd, rs1, imm } => {
            Inst::AluImm { op: op.alu(), rd: map_reg(rd), rs: map_reg(rs1), imm }
        }
        RvInst::ShiftImm { op, rd, rs1, shamt } => {
            Inst::AluImm { op: op.alu(), rd: map_reg(rd), rs: map_reg(rs1), imm: shamt as i32 }
        }
        RvInst::Op { op, rd, rs1, rs2 } => {
            Inst::Alu { op: op.alu(), rd: map_reg(rd), rs: map_reg(rs1), rt: map_reg(rs2) }
        }
        RvInst::Ecall => Inst::Halt,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_map_is_an_involution_and_a_bijection() {
        let mut seen = [false; 32];
        for x in 0..32u8 {
            let r = map_reg(x);
            assert!(!seen[r.index()], "x{x} collides");
            seen[r.index()] = true;
            assert_eq!(map_reg(r.index() as u8), Reg::new(x), "involution at x{x}");
        }
        assert_eq!(map_reg(0), Reg::ZERO);
        assert_eq!(map_reg(1), Reg::RA);
        assert_eq!(map_reg(2), Reg::SP);
    }

    #[test]
    fn control_classes_map_per_the_table() {
        assert_eq!(lower(RvInst::Jal { rd: 0, offset: 8 }, 10), Ok(Inst::Jump { target: 12 }));
        assert_eq!(lower(RvInst::Jal { rd: 1, offset: -8 }, 10), Ok(Inst::Call { target: 8 }));
        assert_eq!(lower(RvInst::Jalr { rd: 0, rs1: 1, imm: 0 }, 0), Ok(Inst::Ret));
        assert_eq!(
            lower(RvInst::Jalr { rd: 0, rs1: 5, imm: 0 }, 0),
            Ok(Inst::JumpIndirect { rs: Reg::new(5) })
        );
        assert_eq!(
            lower(RvInst::Jalr { rd: 1, rs1: 5, imm: 0 }, 0),
            Ok(Inst::CallIndirect { rs: Reg::new(5) })
        );
        assert_eq!(lower(RvInst::Ecall, 0), Ok(Inst::Halt));
    }

    #[test]
    fn unsupported_link_forms_error() {
        assert_eq!(
            lower(RvInst::Jal { rd: 5, offset: 8 }, 0),
            Err(LowerError::JalLinkReg { rd: 5 })
        );
        assert_eq!(
            lower(RvInst::Jalr { rd: 0, rs1: 5, imm: 8 }, 0),
            Err(LowerError::JalrForm { rd: 0, rs1: 5, imm: 8 })
        );
        assert_eq!(
            lower(RvInst::Jalr { rd: 2, rs1: 5, imm: 0 }, 0),
            Err(LowerError::JalrForm { rd: 2, rs1: 5, imm: 0 })
        );
    }

    #[test]
    fn branch_offsets_become_word_targets() {
        let b = RvInst::Branch { cond: RvCond::Bltu, rs1: 10, rs2: 11, offset: -16 };
        assert_eq!(
            lower(b, 20),
            Ok(Inst::Branch { cond: Cond::Ltu, rs: Reg::new(10), rt: Reg::new(11), target: 16 })
        );
        // Underflow and misalignment are rejected.
        assert!(matches!(
            lower(RvInst::Branch { cond: RvCond::Beq, rs1: 0, rs2: 0, offset: -16 }, 2),
            Err(LowerError::BadTarget { .. })
        ));
        assert!(matches!(
            lower(RvInst::Jal { rd: 0, offset: 6 }, 0),
            Err(LowerError::BadTarget { .. })
        ));
    }

    #[test]
    fn lui_materializes_the_sign_extended_page() {
        let i = lower(RvInst::Lui { rd: 10, imm20: 0x10 }, 0).unwrap();
        assert_eq!(
            i,
            Inst::AluImm { op: AluOp::Add, rd: Reg::new(10), rs: Reg::ZERO, imm: 0x10000 }
        );
        let i = lower(RvInst::Lui { rd: 10, imm20: -1 }, 0).unwrap();
        assert_eq!(i, Inst::AluImm { op: AluOp::Add, rd: Reg::new(10), rs: Reg::ZERO, imm: -4096 });
    }
}
