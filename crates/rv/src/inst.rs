//! The supported RV64IM instruction forms and their 32-bit encodings.
//!
//! [`RvInst`] models exactly the subset the frontend accepts (see the crate
//! docs for the subset rationale). [`RvInst::encode`] produces the standard
//! RISC-V encoding; [`crate::decode::decode`] is its inverse, and the pair
//! is property-tested for equivalence over the whole subset.

use std::fmt;

/// An RV register number, `x0`..`x31`.
pub type RvReg = u8;

/// Canonical ABI name of an RV register (`x10` → `a0`).
pub fn reg_name(r: RvReg) -> &'static str {
    const NAMES: [&str; 32] = [
        "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
        "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
        "t5", "t6",
    ];
    NAMES[(r & 31) as usize]
}

/// Parses an RV register name: `x0`..`x31` or any standard ABI name.
pub fn parse_reg(s: &str) -> Option<RvReg> {
    if let Some(num) = s.strip_prefix('x') {
        let n: u8 = num.parse().ok()?;
        return (n < 32).then_some(n);
    }
    if s == "fp" {
        return Some(8);
    }
    (0..32u8).find(|&r| reg_name(r) == s)
}

/// A register-register operation (`OP` opcode, including the M extension).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RvOp {
    /// `add`
    Add,
    /// `sub`
    Sub,
    /// `sll`
    Sll,
    /// `slt`
    Slt,
    /// `sltu`
    Sltu,
    /// `xor`
    Xor,
    /// `srl`
    Srl,
    /// `sra`
    Sra,
    /// `or`
    Or,
    /// `and`
    And,
    /// `mul` (M extension)
    Mul,
    /// `div` (M extension, signed)
    Div,
    /// `rem` (M extension, signed)
    Rem,
}

impl RvOp {
    /// `(funct7, funct3)` of the encoding.
    pub fn functs(self) -> (u32, u32) {
        match self {
            RvOp::Add => (0b000_0000, 0b000),
            RvOp::Sub => (0b010_0000, 0b000),
            RvOp::Sll => (0b000_0000, 0b001),
            RvOp::Slt => (0b000_0000, 0b010),
            RvOp::Sltu => (0b000_0000, 0b011),
            RvOp::Xor => (0b000_0000, 0b100),
            RvOp::Srl => (0b000_0000, 0b101),
            RvOp::Sra => (0b010_0000, 0b101),
            RvOp::Or => (0b000_0000, 0b110),
            RvOp::And => (0b000_0000, 0b111),
            RvOp::Mul => (0b000_0001, 0b000),
            RvOp::Div => (0b000_0001, 0b100),
            RvOp::Rem => (0b000_0001, 0b110),
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            RvOp::Add => "add",
            RvOp::Sub => "sub",
            RvOp::Sll => "sll",
            RvOp::Slt => "slt",
            RvOp::Sltu => "sltu",
            RvOp::Xor => "xor",
            RvOp::Srl => "srl",
            RvOp::Sra => "sra",
            RvOp::Or => "or",
            RvOp::And => "and",
            RvOp::Mul => "mul",
            RvOp::Div => "div",
            RvOp::Rem => "rem",
        }
    }

    /// Every operation of the class, for subset enumeration in tests.
    pub const ALL: [RvOp; 13] = [
        RvOp::Add,
        RvOp::Sub,
        RvOp::Sll,
        RvOp::Slt,
        RvOp::Sltu,
        RvOp::Xor,
        RvOp::Srl,
        RvOp::Sra,
        RvOp::Or,
        RvOp::And,
        RvOp::Mul,
        RvOp::Div,
        RvOp::Rem,
    ];
}

/// A register-immediate operation (`OP-IMM` opcode, non-shift forms).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RvIOp {
    /// `addi`
    Addi,
    /// `slti`
    Slti,
    /// `sltiu`
    Sltiu,
    /// `xori`
    Xori,
    /// `ori`
    Ori,
    /// `andi`
    Andi,
}

impl RvIOp {
    /// funct3 of the encoding.
    pub fn funct3(self) -> u32 {
        match self {
            RvIOp::Addi => 0b000,
            RvIOp::Slti => 0b010,
            RvIOp::Sltiu => 0b011,
            RvIOp::Xori => 0b100,
            RvIOp::Ori => 0b110,
            RvIOp::Andi => 0b111,
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            RvIOp::Addi => "addi",
            RvIOp::Slti => "slti",
            RvIOp::Sltiu => "sltiu",
            RvIOp::Xori => "xori",
            RvIOp::Ori => "ori",
            RvIOp::Andi => "andi",
        }
    }

    /// Every operation of the class.
    pub const ALL: [RvIOp; 6] =
        [RvIOp::Addi, RvIOp::Slti, RvIOp::Sltiu, RvIOp::Xori, RvIOp::Ori, RvIOp::Andi];
}

/// An immediate shift (`OP-IMM` opcode, RV64 6-bit shamt).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RvShift {
    /// `slli`
    Slli,
    /// `srli`
    Srli,
    /// `srai`
    Srai,
}

impl RvShift {
    /// `(imm[11:6] pattern, funct3)` of the encoding.
    pub fn functs(self) -> (u32, u32) {
        match self {
            RvShift::Slli => (0b000000, 0b001),
            RvShift::Srli => (0b000000, 0b101),
            RvShift::Srai => (0b010000, 0b101),
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            RvShift::Slli => "slli",
            RvShift::Srli => "srli",
            RvShift::Srai => "srai",
        }
    }

    /// Every shift of the class.
    pub const ALL: [RvShift; 3] = [RvShift::Slli, RvShift::Srli, RvShift::Srai];
}

/// A conditional branch comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RvCond {
    /// `beq`
    Beq,
    /// `bne`
    Bne,
    /// `blt`
    Blt,
    /// `bge`
    Bge,
    /// `bltu`
    Bltu,
    /// `bgeu`
    Bgeu,
}

impl RvCond {
    /// funct3 of the encoding.
    pub fn funct3(self) -> u32 {
        match self {
            RvCond::Beq => 0b000,
            RvCond::Bne => 0b001,
            RvCond::Blt => 0b100,
            RvCond::Bge => 0b101,
            RvCond::Bltu => 0b110,
            RvCond::Bgeu => 0b111,
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            RvCond::Beq => "beq",
            RvCond::Bne => "bne",
            RvCond::Blt => "blt",
            RvCond::Bge => "bge",
            RvCond::Bltu => "bltu",
            RvCond::Bgeu => "bgeu",
        }
    }

    /// Every branch comparison.
    pub const ALL: [RvCond; 6] =
        [RvCond::Beq, RvCond::Bne, RvCond::Blt, RvCond::Bge, RvCond::Bltu, RvCond::Bgeu];
}

/// One instruction of the supported RV64IM subset.
///
/// Branch/jump offsets are *byte* offsets relative to the instruction's own
/// address, exactly as encoded (always multiples of 4 here: every target is
/// a 4-byte-aligned instruction).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RvInst {
    /// `lui rd, imm20` — `rd = imm20 << 12` (sign-extended to 64 bits).
    Lui {
        /// Destination register.
        rd: RvReg,
        /// Sign-extended 20-bit immediate (`-2^19 .. 2^19`).
        imm20: i32,
    },
    /// `jal rd, offset`.
    Jal {
        /// Link register (`x0` = plain jump, `x1` = call).
        rd: RvReg,
        /// Byte offset, 21-bit signed, multiple of 2.
        offset: i32,
    },
    /// `jalr rd, rs1, imm`.
    Jalr {
        /// Link register.
        rd: RvReg,
        /// Target-holding register.
        rs1: RvReg,
        /// 12-bit signed immediate.
        imm: i32,
    },
    /// A conditional branch.
    Branch {
        /// Comparison.
        cond: RvCond,
        /// Left operand.
        rs1: RvReg,
        /// Right operand.
        rs2: RvReg,
        /// Byte offset, 13-bit signed, multiple of 2.
        offset: i32,
    },
    /// `ld rd, imm(rs1)`.
    Ld {
        /// Destination register.
        rd: RvReg,
        /// Base register.
        rs1: RvReg,
        /// 12-bit signed displacement.
        imm: i32,
    },
    /// `sd rs2, imm(rs1)`.
    Sd {
        /// Source register.
        rs2: RvReg,
        /// Base register.
        rs1: RvReg,
        /// 12-bit signed displacement.
        imm: i32,
    },
    /// A non-shift register-immediate operation.
    OpImm {
        /// Operation.
        op: RvIOp,
        /// Destination register.
        rd: RvReg,
        /// Source register.
        rs1: RvReg,
        /// 12-bit signed immediate.
        imm: i32,
    },
    /// An immediate shift.
    ShiftImm {
        /// Shift kind.
        op: RvShift,
        /// Destination register.
        rd: RvReg,
        /// Source register.
        rs1: RvReg,
        /// Shift amount, `0..64`.
        shamt: u8,
    },
    /// A register-register operation.
    Op {
        /// Operation.
        op: RvOp,
        /// Destination register.
        rd: RvReg,
        /// Left source register.
        rs1: RvReg,
        /// Right source register.
        rs2: RvReg,
    },
    /// `ecall` — the frontend's halt convention (there is no OS below the
    /// simulated machine; environment call = "program done").
    Ecall,
}

/// Opcode field constants (bits `[6:0]`).
pub mod opcode {
    /// `LUI`
    pub const LUI: u32 = 0b011_0111;
    /// `JAL`
    pub const JAL: u32 = 0b110_1111;
    /// `JALR`
    pub const JALR: u32 = 0b110_0111;
    /// `BRANCH`
    pub const BRANCH: u32 = 0b110_0011;
    /// `LOAD`
    pub const LOAD: u32 = 0b000_0011;
    /// `STORE`
    pub const STORE: u32 = 0b010_0011;
    /// `OP-IMM`
    pub const OP_IMM: u32 = 0b001_0011;
    /// `OP`
    pub const OP: u32 = 0b011_0011;
    /// `SYSTEM`
    pub const SYSTEM: u32 = 0b111_0011;
}

fn r_type(f7: u32, rs2: RvReg, rs1: RvReg, f3: u32, rd: RvReg, op: u32) -> u32 {
    (f7 << 25) | ((rs2 as u32) << 20) | ((rs1 as u32) << 15) | (f3 << 12) | ((rd as u32) << 7) | op
}

fn i_type(imm: i32, rs1: RvReg, f3: u32, rd: RvReg, op: u32) -> u32 {
    ((imm as u32 & 0xfff) << 20) | ((rs1 as u32) << 15) | (f3 << 12) | ((rd as u32) << 7) | op
}

fn s_type(imm: i32, rs2: RvReg, rs1: RvReg, f3: u32, op: u32) -> u32 {
    let imm = imm as u32;
    ((imm >> 5 & 0x7f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (f3 << 12)
        | ((imm & 0x1f) << 7)
        | op
}

fn b_type(offset: i32, rs2: RvReg, rs1: RvReg, f3: u32, op: u32) -> u32 {
    let imm = offset as u32;
    ((imm >> 12 & 1) << 31)
        | ((imm >> 5 & 0x3f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (f3 << 12)
        | ((imm >> 1 & 0xf) << 8)
        | ((imm >> 11 & 1) << 7)
        | op
}

fn j_type(offset: i32, rd: RvReg, op: u32) -> u32 {
    let imm = offset as u32;
    ((imm >> 20 & 1) << 31)
        | ((imm >> 1 & 0x3ff) << 21)
        | ((imm >> 11 & 1) << 20)
        | ((imm >> 12 & 0xff) << 12)
        | ((rd as u32) << 7)
        | op
}

impl RvInst {
    /// Encodes the instruction into its standard 32-bit RISC-V encoding.
    ///
    /// Immediates are truncated to their field widths (the assembler range-
    /// checks before constructing an `RvInst`; [`crate::decode::decode`] of
    /// the result always reproduces a field-width-respecting instruction).
    pub fn encode(self) -> u32 {
        match self {
            RvInst::Lui { rd, imm20 } => {
                ((imm20 as u32 & 0xf_ffff) << 12) | ((rd as u32) << 7) | opcode::LUI
            }
            RvInst::Jal { rd, offset } => j_type(offset, rd, opcode::JAL),
            RvInst::Jalr { rd, rs1, imm } => i_type(imm, rs1, 0b000, rd, opcode::JALR),
            RvInst::Branch { cond, rs1, rs2, offset } => {
                b_type(offset, rs2, rs1, cond.funct3(), opcode::BRANCH)
            }
            RvInst::Ld { rd, rs1, imm } => i_type(imm, rs1, 0b011, rd, opcode::LOAD),
            RvInst::Sd { rs2, rs1, imm } => s_type(imm, rs2, rs1, 0b011, opcode::STORE),
            RvInst::OpImm { op, rd, rs1, imm } => i_type(imm, rs1, op.funct3(), rd, opcode::OP_IMM),
            RvInst::ShiftImm { op, rd, rs1, shamt } => {
                let (hi6, f3) = op.functs();
                i_type(((hi6 << 6) | (shamt as u32 & 0x3f)) as i32, rs1, f3, rd, opcode::OP_IMM)
            }
            RvInst::Op { op, rd, rs1, rs2 } => {
                let (f7, f3) = op.functs();
                r_type(f7, rs2, rs1, f3, rd, opcode::OP)
            }
            RvInst::Ecall => i_type(0, 0, 0b000, 0, opcode::SYSTEM),
        }
    }
}

impl fmt::Display for RvInst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = reg_name;
        match *self {
            RvInst::Lui { rd, imm20 } => write!(f, "lui {}, {:#x}", r(rd), imm20),
            RvInst::Jal { rd, offset } => write!(f, "jal {}, . {offset:+}", r(rd)),
            RvInst::Jalr { rd, rs1, imm } => write!(f, "jalr {}, {}, {imm}", r(rd), r(rs1)),
            RvInst::Branch { cond, rs1, rs2, offset } => {
                write!(f, "{} {}, {}, . {offset:+}", cond.mnemonic(), r(rs1), r(rs2))
            }
            RvInst::Ld { rd, rs1, imm } => write!(f, "ld {}, {imm}({})", r(rd), r(rs1)),
            RvInst::Sd { rs2, rs1, imm } => write!(f, "sd {}, {imm}({})", r(rs2), r(rs1)),
            RvInst::OpImm { op, rd, rs1, imm } => {
                write!(f, "{} {}, {}, {imm}", op.mnemonic(), r(rd), r(rs1))
            }
            RvInst::ShiftImm { op, rd, rs1, shamt } => {
                write!(f, "{} {}, {}, {shamt}", op.mnemonic(), r(rd), r(rs1))
            }
            RvInst::Op { op, rd, rs1, rs2 } => {
                write!(f, "{} {}, {}, {}", op.mnemonic(), r(rd), r(rs1), r(rs2))
            }
            RvInst::Ecall => write!(f, "ecall"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_names_roundtrip() {
        for x in 0..32u8 {
            assert_eq!(parse_reg(reg_name(x)), Some(x), "abi name of x{x}");
            assert_eq!(parse_reg(&format!("x{x}")), Some(x));
        }
        assert_eq!(parse_reg("fp"), Some(8));
        assert_eq!(parse_reg("x32"), None);
        assert_eq!(parse_reg("q7"), None);
    }

    #[test]
    fn known_encodings_match_the_spec() {
        // Cross-checked against riscv-tests / an external assembler.
        assert_eq!(RvInst::OpImm { op: RvIOp::Addi, rd: 10, rs1: 0, imm: 1 }.encode(), 0x0010_0513);
        assert_eq!(RvInst::Lui { rd: 5, imm20: 0x10 }.encode(), 0x0001_02b7);
        assert_eq!(RvInst::Op { op: RvOp::Add, rd: 1, rs1: 2, rs2: 3 }.encode(), 0x0031_00b3);
        assert_eq!(RvInst::Op { op: RvOp::Sub, rd: 1, rs1: 2, rs2: 3 }.encode(), 0x4031_00b3);
        assert_eq!(RvInst::Op { op: RvOp::Mul, rd: 1, rs1: 2, rs2: 3 }.encode(), 0x0231_00b3);
        assert_eq!(RvInst::Ld { rd: 10, rs1: 2, imm: 8 }.encode(), 0x0081_3503);
        assert_eq!(RvInst::Sd { rs2: 10, rs1: 2, imm: 8 }.encode(), 0x00a1_3423);
        assert_eq!(
            RvInst::Branch { cond: RvCond::Beq, rs1: 10, rs2: 11, offset: -4 }.encode(),
            0xfeb5_0ee3
        );
        assert_eq!(RvInst::Jal { rd: 0, offset: 8 }.encode(), 0x0080_006f);
        assert_eq!(RvInst::Jalr { rd: 0, rs1: 1, imm: 0 }.encode(), 0x0000_8067);
        assert_eq!(RvInst::Ecall.encode(), 0x0000_0073);
        assert_eq!(
            RvInst::ShiftImm { op: RvShift::Srai, rd: 1, rs1: 2, shamt: 63 }.encode(),
            0x43f1_5093
        );
    }
}
