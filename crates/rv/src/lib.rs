//! RV64IM frontend for the trace processor.
//!
//! Everything measured so far ran on synthetic kernels hand-written in the
//! internal ISA; this crate opens the real-ISA axis. It provides
//!
//! * a **decoder** ([`decode::decode`]) from standard 32-bit RV64
//!   encodings into [`RvInst`], and a **lowering** ([`lower::lower`]) from
//!   `RvInst` onto the internal [`tp_isa::Inst`] stream — one instruction
//!   to one instruction, with RV branches/`jal`/`jalr` mapped onto the
//!   branch classes the trace selector, CGCI detection and the attribution
//!   ledger already understand (see the table in [`lower`]);
//! * an embedded **assembler** ([`asm::RvAsm`]): the container has no
//!   RISC-V cross-compiler, so corpus programs are assembly text
//!   assembled in-process, and the assemble → decode round trip is the
//!   frontend's self-test;
//! * a **corpus** ([`corpus`]) of real RV64 programs (crc32, quicksort,
//!   dijkstra, matmul, string hash, state-machine interpreter) registered
//!   by `tp-workloads` as the second workload suite.
//!
//! # Supported subset
//!
//! RV64I base integer instructions restricted to what the 64-bit-word
//! internal machine can express faithfully, plus the signed M-extension
//! ops:
//!
//! * `lui`, `jal`, `jalr`, `beq/bne/blt/bge/bltu/bgeu`;
//! * `ld`/`sd` (the internal memory is an array of 64-bit words, so
//!   sub-word loads/stores have no faithful equivalent);
//! * `addi/slti/sltiu/xori/ori/andi`, `slli/srli/srai` (6-bit shamt);
//! * `add/sub/sll/slt/sltu/xor/srl/sra/or/and`, `mul/div/rem`;
//! * `ecall`, used as the halt convention.
//!
//! Excluded: compressed encodings, `auipc` (PC-relative data addressing
//! has no meaning under word-indexed PCs), W-form 32-bit arithmetic,
//! unsigned divide/remainder, `lr/sc/amo`, CSRs and `fence`. The decoder
//! rejects all of these with an error naming the encoding, never a silent
//! mis-decode. `div`/`rem` by zero follow the simulator's total-ALU
//! convention (0), not the RV spec.
//!
//! # Example
//!
//! ```
//! use tp_rv::assemble_program;
//! use tp_isa::func::Machine;
//!
//! let program = assemble_program(
//!     "sum",
//!     "    li a0, 0
//!          li a1, 5
//!     loop:
//!          add a0, a0, a1
//!          addi a1, a1, -1
//!          bnez a1, loop
//!          ecall",
//! )
//! .expect("assembles");
//! let mut m = Machine::new(&program);
//! m.run(100).expect("runs");
//! assert_eq!(m.reg(tp_rv::lower::map_reg(10)), 15); // a0
//! ```

pub mod asm;
pub mod corpus;
pub mod decode;
pub mod inst;
pub mod lower;

use std::fmt;

use tp_isa::{Pc, Program, ProgramError};

pub use asm::{RvAsm, RvAsmError, RvModule};
pub use decode::{decode, DecodeError};
pub use inst::{RvCond, RvIOp, RvInst, RvOp, RvShift};
pub use lower::{lower, LowerError};

/// Error building a [`Program`] through the frontend.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RvError {
    /// The assembly source failed to assemble.
    Asm(RvAsmError),
    /// A 32-bit word failed to decode.
    Decode {
        /// Word-indexed PC of the word.
        pc: Pc,
        /// The decoder's diagnosis.
        err: DecodeError,
    },
    /// A decoded instruction has no internal equivalent.
    Lower {
        /// Word-indexed PC of the instruction.
        pc: Pc,
        /// The lowering diagnosis.
        err: LowerError,
    },
    /// The lowered program failed [`Program`] validation.
    Program(ProgramError),
}

impl fmt::Display for RvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RvError::Asm(e) => write!(f, "assembly failed: {e}"),
            RvError::Decode { pc, err } => write!(f, "instruction {pc}: {err}"),
            RvError::Lower { pc, err } => write!(f, "instruction {pc}: {err}"),
            RvError::Program(e) => write!(f, "invalid program: {e}"),
        }
    }
}

impl std::error::Error for RvError {}

impl From<RvAsmError> for RvError {
    fn from(e: RvAsmError) -> RvError {
        RvError::Asm(e)
    }
}

impl From<ProgramError> for RvError {
    fn from(e: ProgramError) -> RvError {
        RvError::Program(e)
    }
}

/// Decodes and lowers an assembled [`RvModule`] into a validated
/// [`Program`].
///
/// This is the only path from encodings to the simulator: the program the
/// machine runs is built from the 32-bit words, not from the assembler's
/// internal instruction list, so every corpus program exercises the
/// decoder end to end.
///
/// # Errors
///
/// Decode, lowering, and program-validation failures, each naming the
/// offending instruction.
pub fn module_to_program(module: &RvModule) -> Result<Program, RvError> {
    let mut insts = Vec::with_capacity(module.words.len());
    for (i, &word) in module.words.iter().enumerate() {
        let pc = i as Pc;
        let rv = decode::decode(word).map_err(|err| RvError::Decode { pc, err })?;
        insts.push(lower::lower(rv, pc).map_err(|err| RvError::Lower { pc, err })?);
    }
    Ok(Program::new(module.name.clone(), insts, module.entry, module.data.iter().copied())?
        .with_code_ptrs(module.code_ptrs.iter().copied())?)
}

/// Assembles source text straight into a validated [`Program`]
/// (convenience wrapper: [`RvAsm`] + [`module_to_program`]).
///
/// # Errors
///
/// As [`RvAsm::assemble`] and [`module_to_program`].
pub fn assemble_program(name: impl Into<String>, src: &str) -> Result<Program, RvError> {
    let mut a = RvAsm::new(name);
    a.source(src)?;
    module_to_program(&a.assemble()?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_isa::func::Machine;
    use tp_isa::Inst;

    #[test]
    fn module_to_program_goes_through_the_decoder() {
        let mut a = RvAsm::new("t");
        a.source("  li a0, 7\n  ecall\n").unwrap();
        let mut m = a.assemble().unwrap();
        let p = module_to_program(&m).unwrap();
        assert!(matches!(p.insts()[1], Inst::Halt));
        // Corrupt a word: the error comes from the decoder and names the pc.
        m.words[0] = 0x0000_0007; // unassigned opcode
        let e = module_to_program(&m).unwrap_err();
        assert!(matches!(e, RvError::Decode { pc: 0, .. }), "{e}");
        assert!(e.to_string().contains("instruction 0"), "{e}");
    }

    #[test]
    fn call_ret_roundtrip_with_word_indexed_links() {
        let p = assemble_program(
            "callret",
            "    call f
                 li a1, 2
                 ecall
             f:  li a0, 1
                 ret",
        )
        .unwrap();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert!(m.halted());
        assert_eq!(m.reg(lower::map_reg(10)), 1);
        assert_eq!(m.reg(lower::map_reg(11)), 2);
    }

    #[test]
    fn jump_table_dispatch_through_wordpc() {
        let p = assemble_program(
            "dispatch",
            "    .org 0x100
                 .wordpc h0
                 .wordpc h1
                 li t0, 0x108      # &table[1]
                 ld t1, (t0)
                 jr t1
             h0: li a0, 10
                 ecall
             h1: li a0, 20
                 ecall",
        )
        .unwrap();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert_eq!(m.reg(lower::map_reg(10)), 20);
    }

    #[test]
    fn unsigned_ops_execute_with_rv_semantics() {
        let p = assemble_program(
            "unsigned",
            "    li a0, -1
                 li a1, 1
                 sltu a2, a1, a0    # 1 <u 2^64-1 -> 1
                 sltu a3, a0, a1    # -> 0
                 srli a4, a0, 60    # logical -> 0xf
                 srai a5, a0, 60    # arithmetic -> -1
                 bltu a1, a0, big
                 li a6, 111
                 ecall
             big:
                 li a6, 222
                 ecall",
        )
        .unwrap();
        let mut m = Machine::new(&p);
        m.run(100).unwrap();
        assert_eq!(m.reg(lower::map_reg(12)), 1);
        assert_eq!(m.reg(lower::map_reg(13)), 0);
        assert_eq!(m.reg(lower::map_reg(14)), 0xf);
        assert_eq!(m.reg(lower::map_reg(15)), -1);
        assert_eq!(m.reg(lower::map_reg(16)), 222);
    }
}
