//! Decoding 32-bit RV64 encodings into [`RvInst`].
//!
//! [`decode`] is the exact inverse of [`RvInst::encode`] over the supported
//! subset; anything outside it — compressed instructions, W-form arithmetic,
//! sub-word memory accesses, unsigned divide, CSR ops — is rejected with an
//! error naming the offending fields, never silently mis-decoded.

use std::fmt;

use crate::inst::{opcode, RvCond, RvIOp, RvInst, RvOp, RvShift};

/// Error produced when a 32-bit word is not a supported instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    /// The raw word that failed to decode.
    pub word: u32,
    /// What the decoder recognized (or didn't) about it.
    pub reason: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot decode {:#010x}: {}", self.word, self.reason)
    }
}

impl std::error::Error for DecodeError {}

fn err(word: u32, reason: impl Into<String>) -> DecodeError {
    DecodeError { word, reason: reason.into() }
}

/// Sign-extends the low `bits` bits of `v`.
fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

/// Decodes one 32-bit word into the supported RV64IM subset.
///
/// # Errors
///
/// Returns a [`DecodeError`] naming the unsupported opcode/funct
/// combination. Decoding is total over the subset: for every `RvInst`,
/// `decode(inst.encode()) == Ok(inst)`.
pub fn decode(word: u32) -> Result<RvInst, DecodeError> {
    let op = word & 0x7f;
    if word & 0b11 != 0b11 {
        return Err(err(word, "compressed (16-bit) encodings are not supported"));
    }
    let rd = (word >> 7 & 0x1f) as u8;
    let f3 = word >> 12 & 0b111;
    let rs1 = (word >> 15 & 0x1f) as u8;
    let rs2 = (word >> 20 & 0x1f) as u8;
    let f7 = word >> 25;
    let imm_i = sext(word >> 20, 12);
    match op {
        opcode::LUI => Ok(RvInst::Lui { rd, imm20: sext(word >> 12, 20) }),
        opcode::JAL => {
            let imm = (word >> 31 & 1) << 20
                | (word >> 12 & 0xff) << 12
                | (word >> 20 & 1) << 11
                | (word >> 21 & 0x3ff) << 1;
            Ok(RvInst::Jal { rd, offset: sext(imm, 21) })
        }
        opcode::JALR => {
            if f3 != 0 {
                return Err(err(word, format!("JALR funct3 {f3:#b} (only 000 exists)")));
            }
            Ok(RvInst::Jalr { rd, rs1, imm: imm_i })
        }
        opcode::BRANCH => {
            let cond = RvCond::ALL
                .into_iter()
                .find(|c| c.funct3() == f3)
                .ok_or_else(|| err(word, format!("BRANCH funct3 {f3:#b}")))?;
            let imm = (word >> 31 & 1) << 12
                | (word >> 7 & 1) << 11
                | (word >> 25 & 0x3f) << 5
                | (word >> 8 & 0xf) << 1;
            Ok(RvInst::Branch { cond, rs1, rs2, offset: sext(imm, 13) })
        }
        opcode::LOAD => {
            if f3 != 0b011 {
                return Err(err(
                    word,
                    format!("LOAD funct3 {f3:#b} (only 64-bit `ld` is supported)"),
                ));
            }
            Ok(RvInst::Ld { rd, rs1, imm: imm_i })
        }
        opcode::STORE => {
            if f3 != 0b011 {
                return Err(err(
                    word,
                    format!("STORE funct3 {f3:#b} (only 64-bit `sd` is supported)"),
                ));
            }
            let imm = (word >> 25) << 5 | (word >> 7 & 0x1f);
            Ok(RvInst::Sd { rs2, rs1, imm: sext(imm, 12) })
        }
        opcode::OP_IMM => match f3 {
            0b001 | 0b101 => {
                let hi6 = word >> 26;
                let shamt = (word >> 20 & 0x3f) as u8;
                let op = RvShift::ALL
                    .into_iter()
                    .find(|s| s.functs() == (hi6, f3))
                    .ok_or_else(|| err(word, format!("shift funct {hi6:#08b}/{f3:#b}")))?;
                Ok(RvInst::ShiftImm { op, rd, rs1, shamt })
            }
            _ => {
                let op = RvIOp::ALL
                    .into_iter()
                    .find(|o| o.funct3() == f3)
                    .ok_or_else(|| err(word, format!("OP-IMM funct3 {f3:#b}")))?;
                Ok(RvInst::OpImm { op, rd, rs1, imm: imm_i })
            }
        },
        opcode::OP => {
            let op = RvOp::ALL
                .into_iter()
                .find(|o| o.functs() == (f7, f3))
                .ok_or_else(|| err(word, format!("OP funct7/funct3 {f7:#09b}/{f3:#b}")))?;
            Ok(RvInst::Op { op, rd, rs1, rs2 })
        }
        opcode::SYSTEM => {
            if word == RvInst::Ecall.encode() {
                Ok(RvInst::Ecall)
            } else {
                Err(err(word, "SYSTEM: only `ecall` is supported (CSR/ebreak are not)"))
            }
        }
        _ => Err(err(word, format!("opcode {op:#09b}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_inverts_encode_on_known_cases() {
        let cases = [
            RvInst::Lui { rd: 7, imm20: -1 },
            RvInst::Lui { rd: 7, imm20: 0x7ffff },
            RvInst::Jal { rd: 1, offset: -1048576 },
            RvInst::Jal { rd: 0, offset: 1048574 },
            RvInst::Jalr { rd: 1, rs1: 5, imm: -2048 },
            RvInst::Branch { cond: RvCond::Bgeu, rs1: 3, rs2: 4, offset: -4096 },
            RvInst::Branch { cond: RvCond::Blt, rs1: 3, rs2: 4, offset: 4094 },
            RvInst::Ld { rd: 31, rs1: 2, imm: 2047 },
            RvInst::Sd { rs2: 31, rs1: 2, imm: -2048 },
            RvInst::OpImm { op: RvIOp::Sltiu, rd: 9, rs1: 10, imm: -1 },
            RvInst::ShiftImm { op: RvShift::Srli, rd: 9, rs1: 10, shamt: 63 },
            RvInst::Op { op: RvOp::Rem, rd: 11, rs1: 12, rs2: 13 },
            RvInst::Ecall,
        ];
        for inst in cases {
            assert_eq!(decode(inst.encode()), Ok(inst), "{inst}");
        }
    }

    #[test]
    fn unsupported_forms_are_named() {
        // lw (LOAD funct3=010)
        let e = decode(0x0081_2503).unwrap_err();
        assert!(e.to_string().contains("ld"), "{e}");
        // addiw (opcode 0011011)
        let e = decode(0x0015_051b).unwrap_err();
        assert!(e.to_string().contains("opcode"), "{e}");
        // divu (OP f7=1, f3=101)
        let e = decode(0x0231_5133).unwrap_err();
        assert!(e.to_string().contains("OP funct7"), "{e}");
        // ebreak
        let e = decode(0x0010_0073).unwrap_err();
        assert!(e.to_string().contains("ecall"), "{e}");
        // a compressed halfword pair
        let e = decode(0x0000_4501).unwrap_err();
        assert!(e.to_string().contains("compressed"), "{e}");
    }
}
