//! A small embedded RV64 assembler.
//!
//! The container has no RISC-V cross-compiler, so the corpus programs are
//! written as assembly text and assembled here into genuine 32-bit RV64
//! encodings. The assembler → decoder round trip doubles as the frontend's
//! self-test: the simulator only ever sees the *decoded* words, never the
//! assembler's internal instruction list.
//!
//! # Syntax
//!
//! One instruction, label or directive per line; `#` starts a comment.
//! Registers accept both `x0`..`x31` and ABI names. Operands follow the
//! standard forms (`addi a0, a1, -4`, `ld a0, 8(sp)`, `beq a0, a1, label`).
//!
//! Directives:
//!
//! * `.entry LABEL` — program entry point (default: first instruction).
//! * `.org ADDR` — set the data cursor (byte address, 8-aligned).
//! * `.word VALUE` — place a 64-bit word at the cursor, advance by 8.
//! * `.wordpc LABEL` — place the label's *instruction index* at the cursor
//!   (the frontend's jump-table convention; see [`crate::lower`]).
//!
//! Pseudo-instructions: `li`, `mv`, `nop`, `j`, `jr`, `call`, `ret`,
//! `beqz`, `bnez`, `bltz`, `bgez`, `ble`, `bgt`, `bleu`, `bgtu`, `seqz`,
//! `snez`, `neg`, `not`. Each expands to one or two real instructions at
//! parse time, so labels always resolve to exact instruction indices.

use std::collections::HashMap;
use std::fmt;

use tp_isa::{Addr, Pc, Word};

use crate::inst::{parse_reg, RvCond, RvIOp, RvInst, RvOp, RvReg, RvShift};

/// Error produced by [`RvAsm`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RvAsmError {
    /// A line failed to parse; the message names line and cause.
    Parse {
        /// 1-based source line.
        line: usize,
        /// What went wrong.
        msg: String,
    },
    /// A label was defined more than once.
    DuplicateLabel(String),
    /// A referenced label was never defined.
    UnknownLabel(String),
    /// A resolved branch/jump offset exceeds its encoding's range.
    OffsetOutOfRange {
        /// 1-based source line of the branch.
        line: usize,
        /// The target label.
        label: String,
        /// The resolved byte offset.
        offset: i64,
    },
}

impl fmt::Display for RvAsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RvAsmError::Parse { line, msg } => write!(f, "line {line}: {msg}"),
            RvAsmError::DuplicateLabel(l) => write!(f, "label `{l}` defined twice"),
            RvAsmError::UnknownLabel(l) => write!(f, "label `{l}` referenced but never defined"),
            RvAsmError::OffsetOutOfRange { line, label, offset } => {
                write!(f, "line {line}: offset {offset} to `{label}` exceeds the encoding range")
            }
        }
    }
}

impl std::error::Error for RvAsmError {}

/// An instruction awaiting label resolution.
#[derive(Clone, Debug)]
enum Pending {
    Ready(RvInst),
    Branch { cond: RvCond, rs1: RvReg, rs2: RvReg, label: String, line: usize },
    Jal { rd: RvReg, label: String, line: usize },
}

#[derive(Clone, Debug)]
enum DataVal {
    Value(Word),
    LabelPc(String),
}

/// An assembled module: encodings plus data image, ready to decode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RvModule {
    /// Program name.
    pub name: String,
    /// The 32-bit instruction encodings, one per word-indexed PC.
    pub words: Vec<u32>,
    /// Entry point (word index).
    pub entry: Pc,
    /// Initial data image as `(byte address, word)` pairs.
    pub data: Vec<(Addr, Word)>,
    /// Data addresses placed via `.wordpc` — their words are resolved
    /// instruction PCs (jump-table / function-pointer slots). Carried into
    /// [`Program`](tp_isa::Program) code-pointer metadata for static
    /// analysis; execution ignores it.
    pub code_ptrs: Vec<Addr>,
}

/// The assembler.
#[derive(Clone, Debug)]
pub struct RvAsm {
    name: String,
    insts: Vec<Pending>,
    labels: HashMap<String, Pc>,
    duplicate: Option<String>,
    data: Vec<(Addr, DataVal)>,
    data_cursor: Addr,
    entry: Option<String>,
    line: usize,
}

impl RvAsm {
    /// An empty assembler for a program called `name`.
    pub fn new(name: impl Into<String>) -> RvAsm {
        RvAsm {
            name: name.into(),
            insts: Vec::new(),
            labels: HashMap::new(),
            duplicate: None,
            data: Vec::new(),
            data_cursor: 0,
            entry: None,
            line: 0,
        }
    }

    /// Parses and appends a block of assembly source.
    ///
    /// # Errors
    ///
    /// [`RvAsmError::Parse`] naming the offending line.
    pub fn source(&mut self, src: &str) -> Result<(), RvAsmError> {
        for raw in src.lines() {
            self.line += 1;
            let line = self.line;
            let mut text = raw.split('#').next().unwrap_or("").trim();
            // Leading `label:` definitions (possibly several).
            while let Some(colon) = text.find(':') {
                let (head, rest) = text.split_at(colon);
                let head = head.trim();
                if head.is_empty() || !head.chars().all(|c| c.is_alphanumeric() || c == '_') {
                    return Err(RvAsmError::Parse { line, msg: format!("bad label `{head}`") });
                }
                self.define_label(head);
                text = rest[1..].trim();
            }
            if text.is_empty() {
                continue;
            }
            if let Some(directive) = text.strip_prefix('.') {
                self.directive(directive, line)?;
            } else {
                self.instruction(text, line)?;
            }
        }
        Ok(())
    }

    /// Places `value` at byte address `addr` in the data image.
    pub fn data_word(&mut self, addr: Addr, value: Word) {
        self.data.push((addr, DataVal::Value(value)));
    }

    /// The word-indexed PC a defined label resolves to, or `None` if the
    /// label has not been defined. Labels resolve at parse time, so this is
    /// exact once the defining source block has been fed to [`RvAsm::source`].
    pub fn label_pc(&self, label: &str) -> Option<Pc> {
        self.labels.get(label).copied()
    }

    fn define_label(&mut self, label: &str) {
        let here = self.insts.len() as Pc;
        if self.labels.insert(label.to_string(), here).is_some() && self.duplicate.is_none() {
            self.duplicate = Some(label.to_string());
        }
    }

    fn directive(&mut self, d: &str, line: usize) -> Result<(), RvAsmError> {
        let mut parts = d.split_whitespace();
        let name = parts.next().unwrap_or("");
        let arg = parts.next();
        let perr = |msg: String| RvAsmError::Parse { line, msg };
        match name {
            "entry" => {
                let l = arg.ok_or_else(|| perr(".entry needs a label".into()))?;
                self.entry = Some(l.to_string());
            }
            "org" => {
                let a = arg.ok_or_else(|| perr(".org needs an address".into()))?;
                let addr = parse_imm(a).filter(|&v| v >= 0 && v % 8 == 0).ok_or_else(|| {
                    perr(format!("bad address `{a}` (need a non-negative 8-aligned byte address)"))
                })?;
                self.data_cursor = addr as Addr;
            }
            "word" => {
                let a = arg.ok_or_else(|| perr(".word needs a value".into()))?;
                let v = parse_imm(a).ok_or_else(|| perr(format!("bad value `{a}`")))?;
                self.data.push((self.data_cursor, DataVal::Value(v)));
                self.data_cursor += 8;
            }
            "wordpc" => {
                let l = arg.ok_or_else(|| perr(".wordpc needs a label".into()))?;
                self.data.push((self.data_cursor, DataVal::LabelPc(l.to_string())));
                self.data_cursor += 8;
            }
            other => return Err(perr(format!("unknown directive `.{other}`"))),
        }
        Ok(())
    }

    fn instruction(&mut self, text: &str, line: usize) -> Result<(), RvAsmError> {
        let (mnemonic, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m, r.trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = rest.split(',').map(str::trim).filter(|s| !s.is_empty()).collect();
        let perr = |msg: String| RvAsmError::Parse { line, msg };
        let reg = |s: &str| parse_reg(s).ok_or_else(|| perr(format!("bad register `{s}`")));
        let imm12 = |s: &str| {
            parse_imm(s)
                .filter(|v| (-2048..=2047).contains(v))
                .ok_or_else(|| perr(format!("bad 12-bit immediate `{s}`")))
                .map(|v| v as i32)
        };
        let nops = |want: usize| {
            if ops.len() == want {
                Ok(())
            } else {
                Err(perr(format!("{mnemonic} takes {want} operands, got {}", ops.len())))
            }
        };
        // `imm(base)` memory operand.
        let mem = |s: &str| -> Result<(i32, RvReg), RvAsmError> {
            let open = s.find('(').ok_or_else(|| perr(format!("bad memory operand `{s}`")))?;
            let close = s.rfind(')').ok_or_else(|| perr(format!("bad memory operand `{s}`")))?;
            let imm_part = s[..open].trim();
            let imm = if imm_part.is_empty() { 0 } else { imm12(imm_part)? };
            Ok((imm, reg(s[open + 1..close].trim())?))
        };

        if let Some(op) = RvOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
            nops(3)?;
            let i = RvInst::Op { op: *op, rd: reg(ops[0])?, rs1: reg(ops[1])?, rs2: reg(ops[2])? };
            self.insts.push(Pending::Ready(i));
            return Ok(());
        }
        if let Some(op) = RvIOp::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
            nops(3)?;
            let i =
                RvInst::OpImm { op: *op, rd: reg(ops[0])?, rs1: reg(ops[1])?, imm: imm12(ops[2])? };
            self.insts.push(Pending::Ready(i));
            return Ok(());
        }
        if let Some(op) = RvShift::ALL.iter().find(|o| o.mnemonic() == mnemonic) {
            nops(3)?;
            let shamt = parse_imm(ops[2])
                .filter(|v| (0..64).contains(v))
                .ok_or_else(|| perr(format!("bad shift amount `{}`", ops[2])))?;
            let i = RvInst::ShiftImm {
                op: *op,
                rd: reg(ops[0])?,
                rs1: reg(ops[1])?,
                shamt: shamt as u8,
            };
            self.insts.push(Pending::Ready(i));
            return Ok(());
        }
        if let Some(cond) = RvCond::ALL.iter().find(|c| c.mnemonic() == mnemonic) {
            nops(3)?;
            self.insts.push(Pending::Branch {
                cond: *cond,
                rs1: reg(ops[0])?,
                rs2: reg(ops[1])?,
                label: ops[2].to_string(),
                line,
            });
            return Ok(());
        }
        match mnemonic {
            "lui" => {
                nops(2)?;
                let v = parse_imm(ops[1])
                    .filter(|v| (-(1 << 19)..(1 << 19)).contains(v))
                    .ok_or_else(|| perr(format!("bad 20-bit immediate `{}`", ops[1])))?;
                self.insts.push(Pending::Ready(RvInst::Lui { rd: reg(ops[0])?, imm20: v as i32 }));
            }
            "jal" => match ops.len() {
                1 => self.insts.push(Pending::Jal { rd: 1, label: ops[0].to_string(), line }),
                2 => self.insts.push(Pending::Jal {
                    rd: reg(ops[0])?,
                    label: ops[1].to_string(),
                    line,
                }),
                n => return Err(perr(format!("jal takes 1 or 2 operands, got {n}"))),
            },
            "jalr" => match ops.len() {
                1 => self.insts.push(Pending::Ready(RvInst::Jalr {
                    rd: 1,
                    rs1: reg(ops[0])?,
                    imm: 0,
                })),
                3 => self.insts.push(Pending::Ready(RvInst::Jalr {
                    rd: reg(ops[0])?,
                    rs1: reg(ops[1])?,
                    imm: imm12(ops[2])?,
                })),
                n => return Err(perr(format!("jalr takes 1 or 3 operands, got {n}"))),
            },
            "ld" => {
                nops(2)?;
                let (imm, rs1) = mem(ops[1])?;
                self.insts.push(Pending::Ready(RvInst::Ld { rd: reg(ops[0])?, rs1, imm }));
            }
            "sd" => {
                nops(2)?;
                let (imm, rs1) = mem(ops[1])?;
                self.insts.push(Pending::Ready(RvInst::Sd { rs2: reg(ops[0])?, rs1, imm }));
            }
            "ecall" => {
                nops(0)?;
                self.insts.push(Pending::Ready(RvInst::Ecall));
            }
            // --- pseudo-instructions ---
            "li" => {
                nops(2)?;
                let v =
                    parse_imm(ops[1]).ok_or_else(|| perr(format!("bad immediate `{}`", ops[1])))?;
                let rd = reg(ops[0])?;
                for i in expand_li(rd, v).map_err(&perr)? {
                    self.insts.push(Pending::Ready(i));
                }
            }
            "mv" => {
                nops(2)?;
                self.insts.push(Pending::Ready(RvInst::OpImm {
                    op: RvIOp::Addi,
                    rd: reg(ops[0])?,
                    rs1: reg(ops[1])?,
                    imm: 0,
                }));
            }
            "nop" => {
                nops(0)?;
                self.insts.push(Pending::Ready(RvInst::OpImm {
                    op: RvIOp::Addi,
                    rd: 0,
                    rs1: 0,
                    imm: 0,
                }));
            }
            "j" => {
                nops(1)?;
                self.insts.push(Pending::Jal { rd: 0, label: ops[0].to_string(), line });
            }
            "jr" => {
                nops(1)?;
                self.insts.push(Pending::Ready(RvInst::Jalr { rd: 0, rs1: reg(ops[0])?, imm: 0 }));
            }
            "call" => {
                nops(1)?;
                self.insts.push(Pending::Jal { rd: 1, label: ops[0].to_string(), line });
            }
            "ret" => {
                nops(0)?;
                self.insts.push(Pending::Ready(RvInst::Jalr { rd: 0, rs1: 1, imm: 0 }));
            }
            "beqz" | "bnez" | "bltz" | "bgez" => {
                nops(2)?;
                let cond = match mnemonic {
                    "beqz" => RvCond::Beq,
                    "bnez" => RvCond::Bne,
                    "bltz" => RvCond::Blt,
                    _ => RvCond::Bge,
                };
                self.insts.push(Pending::Branch {
                    cond,
                    rs1: reg(ops[0])?,
                    rs2: 0,
                    label: ops[1].to_string(),
                    line,
                });
            }
            "ble" | "bgt" | "bleu" | "bgtu" => {
                nops(3)?;
                // `ble a, b` is `bge b, a` — operands swap.
                let cond = match mnemonic {
                    "ble" => RvCond::Bge,
                    "bgt" => RvCond::Blt,
                    "bleu" => RvCond::Bgeu,
                    _ => RvCond::Bltu,
                };
                self.insts.push(Pending::Branch {
                    cond,
                    rs1: reg(ops[1])?,
                    rs2: reg(ops[0])?,
                    label: ops[2].to_string(),
                    line,
                });
            }
            "seqz" => {
                nops(2)?;
                self.insts.push(Pending::Ready(RvInst::OpImm {
                    op: RvIOp::Sltiu,
                    rd: reg(ops[0])?,
                    rs1: reg(ops[1])?,
                    imm: 1,
                }));
            }
            "snez" => {
                nops(2)?;
                self.insts.push(Pending::Ready(RvInst::Op {
                    op: RvOp::Sltu,
                    rd: reg(ops[0])?,
                    rs1: 0,
                    rs2: reg(ops[1])?,
                }));
            }
            "neg" => {
                nops(2)?;
                self.insts.push(Pending::Ready(RvInst::Op {
                    op: RvOp::Sub,
                    rd: reg(ops[0])?,
                    rs1: 0,
                    rs2: reg(ops[1])?,
                }));
            }
            "not" => {
                nops(2)?;
                self.insts.push(Pending::Ready(RvInst::OpImm {
                    op: RvIOp::Xori,
                    rd: reg(ops[0])?,
                    rs1: reg(ops[1])?,
                    imm: -1,
                }));
            }
            other => return Err(perr(format!("unknown mnemonic `{other}`"))),
        }
        Ok(())
    }

    /// Resolves labels and encodes every instruction.
    ///
    /// # Errors
    ///
    /// Duplicate/unknown labels and out-of-range resolved offsets.
    pub fn assemble(self) -> Result<RvModule, RvAsmError> {
        if let Some(dup) = self.duplicate {
            return Err(RvAsmError::DuplicateLabel(dup));
        }
        let resolve = |label: &str| -> Result<Pc, RvAsmError> {
            self.labels.get(label).copied().ok_or_else(|| RvAsmError::UnknownLabel(label.into()))
        };
        let mut words = Vec::with_capacity(self.insts.len());
        for (idx, p) in self.insts.iter().enumerate() {
            let inst = match p {
                Pending::Ready(i) => *i,
                Pending::Branch { cond, rs1, rs2, label, line } => {
                    let offset = (resolve(label)? as i64 - idx as i64) * 4;
                    if !(-4096..4096).contains(&offset) {
                        return Err(RvAsmError::OffsetOutOfRange {
                            line: *line,
                            label: label.clone(),
                            offset,
                        });
                    }
                    RvInst::Branch { cond: *cond, rs1: *rs1, rs2: *rs2, offset: offset as i32 }
                }
                Pending::Jal { rd, label, line } => {
                    let offset = (resolve(label)? as i64 - idx as i64) * 4;
                    if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                        return Err(RvAsmError::OffsetOutOfRange {
                            line: *line,
                            label: label.clone(),
                            offset,
                        });
                    }
                    RvInst::Jal { rd: *rd, offset: offset as i32 }
                }
            };
            words.push(inst.encode());
        }
        let entry = match &self.entry {
            None => 0,
            Some(l) => resolve(l)?,
        };
        let mut data = Vec::with_capacity(self.data.len());
        for (addr, v) in &self.data {
            let value = match v {
                DataVal::Value(w) => *w,
                DataVal::LabelPc(l) => resolve(l)? as Word,
            };
            data.push((*addr, value));
        }
        let code_ptrs = self
            .data
            .iter()
            .filter(|(_, v)| matches!(v, DataVal::LabelPc(_)))
            .map(|(addr, _)| *addr)
            .collect();
        Ok(RvModule { name: self.name, words, entry, data, code_ptrs })
    }
}

/// Parses a decimal or `0x` hexadecimal immediate (optionally negative).
/// Values outside the 64-bit range are rejected (`None`), never wrapped —
/// with one deliberate exception: a *positive* hex literal is a bit
/// pattern and may use the full unsigned range (`.word
/// 0xcbf29ce484222325`).
fn parse_imm(s: &str) -> Option<i64> {
    let t = s.replace('_', "");
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        return i64::from_str_radix(hex, 16)
            .ok()
            .or_else(|| u64::from_str_radix(hex, 16).ok().map(|u| u as i64));
    }
    if let Some(hex) = t.strip_prefix("-0x").or_else(|| t.strip_prefix("-0X")) {
        // Negative hex goes through signed parsing so overflow is an
        // error, not a silent wrap.
        return i64::from_str_radix(&format!("-{hex}"), 16).ok();
    }
    t.parse::<i64>().ok()
}

/// Expands `li rd, v` into `addi` or `lui [+ addi]`.
fn expand_li(rd: RvReg, v: i64) -> Result<Vec<RvInst>, String> {
    if (-2048..=2047).contains(&v) {
        return Ok(vec![RvInst::OpImm { op: RvIOp::Addi, rd, rs1: 0, imm: v as i32 }]);
    }
    let too_big = || format!("li immediate {v:#x} does not fit lui+addi");
    let hi = v.checked_add(0x800).ok_or_else(too_big)? >> 12;
    if !(-(1i64 << 19)..(1i64 << 19)).contains(&hi) {
        return Err(too_big());
    }
    let lo = (v - (hi << 12)) as i32;
    debug_assert_eq!((hi << 12) + lo as i64, v);
    let mut out = vec![RvInst::Lui { rd, imm20: hi as i32 }];
    if lo != 0 {
        out.push(RvInst::OpImm { op: RvIOp::Addi, rd, rs1: rd, imm: lo });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    fn assemble(src: &str) -> RvModule {
        let mut a = RvAsm::new("t");
        a.source(src).unwrap();
        a.assemble().unwrap()
    }

    #[test]
    fn labels_and_branches_resolve_by_word() {
        let m = assemble(
            "top:\n  addi a0, a0, -1\n  bnez a0, top\n  beq a0, zero, done\n  nop\ndone:\n  ecall\n",
        );
        assert_eq!(m.words.len(), 5);
        let insts: Vec<RvInst> = m.words.iter().map(|&w| decode(w).unwrap()).collect();
        assert_eq!(insts[1], RvInst::Branch { cond: RvCond::Bne, rs1: 10, rs2: 0, offset: -4 });
        assert_eq!(insts[2], RvInst::Branch { cond: RvCond::Beq, rs1: 10, rs2: 0, offset: 8 });
    }

    #[test]
    fn li_expansion_covers_the_i32_range() {
        use tp_isa::func::Machine;
        for v in [0i64, 1, -1, 2047, -2048, 2048, 0x10000, 0x7ffff000, -0x8000_0000, 0x1234_5678] {
            let m = assemble(&format!("li a0, {v}\n ecall\n"));
            let p = crate::module_to_program(&m).unwrap();
            let mut mach = Machine::new(&p);
            mach.run(10).unwrap();
            assert_eq!(mach.reg(crate::lower::map_reg(10)), v, "li {v:#x}");
        }
    }

    #[test]
    fn li_out_of_range_is_reported() {
        let mut a = RvAsm::new("t");
        let e = a.source("li a0, 0x7fffffff9\n").unwrap_err();
        assert!(e.to_string().contains("lui+addi"), "{e}");
    }

    #[test]
    fn extreme_immediates_error_instead_of_panicking_or_wrapping() {
        // Each of these once panicked in debug builds (add/negate
        // overflow) or silently wrapped in release; all must be named
        // assembly errors now.
        for src in [
            "li a0, 0x7fffffffffffffff",
            "li a0, -0x8000000000000001",
            "li a0, -0xffffffffffffffff",
        ] {
            let mut a = RvAsm::new("t");
            assert!(a.source(src).is_err(), "{src} must be rejected");
        }
        // The i64 boundary values still parse where they fit the consumer.
        assert_eq!(parse_imm("-0x8000000000000000"), Some(i64::MIN));
        assert_eq!(parse_imm("0xffffffffffffffff"), Some(-1)); // bit pattern
        assert_eq!(parse_imm("-9223372036854775808"), Some(i64::MIN));
        assert_eq!(parse_imm("9223372036854775808"), None);
    }

    #[test]
    fn org_requires_aligned_nonnegative_addresses() {
        for bad in [".org 0x104\n", ".org -8\n"] {
            let mut a = RvAsm::new("t");
            let e = a.source(bad).unwrap_err();
            assert!(e.to_string().contains("8-aligned"), "{bad}: {e}");
        }
    }

    #[test]
    fn memory_operands_parse() {
        let m = assemble("ld a0, 8(sp)\n sd a0, -16(s0)\n ld a1, (a2)\n ecall\n");
        assert_eq!(decode(m.words[0]).unwrap(), RvInst::Ld { rd: 10, rs1: 2, imm: 8 });
        assert_eq!(decode(m.words[1]).unwrap(), RvInst::Sd { rs2: 10, rs1: 8, imm: -16 });
        assert_eq!(decode(m.words[2]).unwrap(), RvInst::Ld { rd: 11, rs1: 12, imm: 0 });
    }

    #[test]
    fn data_directives_place_words_and_pcs() {
        let m = assemble(
            ".org 0x100\n.word 42\n.wordpc handler\n  nop\nhandler:\n  ecall\n.entry handler\n",
        );
        assert_eq!(m.data, vec![(0x100, 42), (0x108, 1)]);
        assert_eq!(m.entry, 1);
        // Only the `.wordpc` slot is recorded as a code pointer.
        assert_eq!(m.code_ptrs, vec![0x108]);
    }

    #[test]
    fn swapped_compare_pseudos() {
        let m = assemble("loop:\n ble a0, a1, loop\n bgtu a2, a3, loop\n ecall\n");
        assert_eq!(
            decode(m.words[0]).unwrap(),
            RvInst::Branch { cond: RvCond::Bge, rs1: 11, rs2: 10, offset: 0 }
        );
        assert_eq!(
            decode(m.words[1]).unwrap(),
            RvInst::Branch { cond: RvCond::Bltu, rs1: 13, rs2: 12, offset: -4 }
        );
    }

    #[test]
    fn errors_name_line_and_cause() {
        let mut a = RvAsm::new("t");
        let e = a.source("addi a0, a1\n").unwrap_err();
        assert_eq!(e.to_string(), "line 1: addi takes 3 operands, got 2");
        let mut a = RvAsm::new("t");
        let e = a.source("frobnicate a0\n").unwrap_err();
        assert!(e.to_string().contains("unknown mnemonic"));
        let mut a = RvAsm::new("t");
        a.source("j nowhere\n").unwrap();
        assert_eq!(a.assemble().unwrap_err(), RvAsmError::UnknownLabel("nowhere".into()));
        let mut a = RvAsm::new("t");
        a.source("x: nop\nx: nop\n").unwrap();
        assert_eq!(a.assemble().unwrap_err(), RvAsmError::DuplicateLabel("x".into()));
    }

    #[test]
    fn branch_range_is_enforced() {
        let mut a = RvAsm::new("t");
        a.source("beq a0, a1, far\n").unwrap();
        for _ in 0..1100 {
            a.source("nop\n").unwrap();
        }
        a.source("far: ecall\n").unwrap();
        assert!(matches!(a.assemble(), Err(RvAsmError::OffsetOutOfRange { .. })));
    }
}
