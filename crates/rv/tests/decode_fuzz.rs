//! Decoder robustness fuzz: arbitrary 32-bit words must either decode to
//! a supported instruction or return a named [`DecodeError`] — never
//! panic, and never mis-decode (every `Ok` decode re-encodes to the exact
//! input word). The dual property — every encodable instruction decodes
//! back to itself — is checked over randomly sampled instructions of all
//! variants, not just the hand-picked cases in the unit tests.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tp_rv::{decode, RvCond, RvIOp, RvInst, RvOp, RvShift};

/// `decode` is total and exact: random words (biased towards the 32-bit
/// encoding space that passes the compressed-word check) never panic,
/// and a successful decode re-encodes to the identical word — no
/// don't-care bits are silently accepted.
#[test]
fn random_words_never_panic_and_reencode_exactly() {
    let mut rng = StdRng::seed_from_u64(0xdec0de);
    let mut decoded = 0u32;
    for i in 0..200_000u32 {
        let mut word: u32 = rng.gen();
        // Half the draws are forced past the compressed-encoding reject so
        // the opcode/funct space actually gets exercised.
        if i % 2 == 0 {
            word |= 0b11;
        }
        if let Ok(inst) = decode(word) {
            decoded += 1;
            assert_eq!(inst.encode(), word, "{inst} re-encodes differently");
        }
    }
    // Sanity: the sweep must actually hit the supported subset.
    assert!(decoded > 100, "only {decoded} words decoded; sweep too weak");
}

/// Exhaustive sweep of every opcode/funct3/funct7 skeleton (operands
/// zeroed): the decoder classifies each one without panicking, and every
/// `Ok` is exact.
#[test]
fn all_opcode_funct_skeletons_classify() {
    for op in 0..128u32 {
        for f3 in 0..8u32 {
            for f7 in [0u32, 1, 0x20, 0x7f] {
                let word = (f7 << 25) | (f3 << 12) | op;
                if let Ok(inst) = decode(word) {
                    assert_eq!(inst.encode(), word, "{inst}");
                }
            }
        }
    }
}

/// The dual direction over random *valid* instructions: every variant,
/// with operands drawn across their full legal ranges, survives
/// `encode` → `decode` unchanged.
#[test]
fn random_instructions_roundtrip_through_encode_decode() {
    let mut rng = StdRng::seed_from_u64(0x5eed);
    for _ in 0..50_000 {
        let rd = rng.gen_range(0..32u8);
        let rs1 = rng.gen_range(0..32u8);
        let rs2 = rng.gen_range(0..32u8);
        let imm12 = rng.gen_range(-2048..2048i32);
        let inst = match rng.gen_range(0..10u8) {
            0 => RvInst::Lui { rd, imm20: rng.gen_range(-(1 << 19)..1 << 19) },
            1 => RvInst::Jal { rd, offset: rng.gen_range(-(1 << 19)..1 << 19) << 1 },
            2 => RvInst::Jalr { rd, rs1, imm: imm12 },
            3 => RvInst::Branch {
                cond: RvCond::ALL[rng.gen_range(0..RvCond::ALL.len())],
                rs1,
                rs2,
                offset: rng.gen_range(-(1 << 11)..1 << 11) << 1,
            },
            4 => RvInst::Ld { rd, rs1, imm: imm12 },
            5 => RvInst::Sd { rs2, rs1, imm: imm12 },
            6 => RvInst::OpImm {
                op: RvIOp::ALL[rng.gen_range(0..RvIOp::ALL.len())],
                rd,
                rs1,
                imm: imm12,
            },
            7 => RvInst::ShiftImm {
                op: RvShift::ALL[rng.gen_range(0..RvShift::ALL.len())],
                rd,
                rs1,
                shamt: rng.gen_range(0..64u8),
            },
            8 => RvInst::Op { op: RvOp::ALL[rng.gen_range(0..RvOp::ALL.len())], rd, rs1, rs2 },
            _ => RvInst::Ecall,
        };
        assert_eq!(decode(inst.encode()), Ok(inst), "{inst}");
    }
}
