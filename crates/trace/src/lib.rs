//! Traces and trace selection for the trace processor.
//!
//! A *trace* is a long dynamic instruction sequence spanning multiple basic
//! blocks, constrained primarily by a hardware-determined maximum length
//! (32 instructions in the paper's configuration). This crate implements:
//!
//! * [`Trace`]/[`TraceId`] — the unit of prediction, caching, dispatch and
//!   squash, with intra-trace pre-renaming (live-in/live-out analysis) done
//!   once at trace-construction time, exactly like the paper's trace cache;
//! * [`fgci`] — the hardware FGCI-algorithm of Section 3: a single forward
//!   scan that finds a forward branch's *embeddable region*, its
//!   re-convergent point and its *dynamic region size* (longest control
//!   dependent path);
//! * [`bit`] — the branch information table (BIT) that caches FGCI-algorithm
//!   results;
//! * [`select`] — trace selection: the default algorithm (stop at maximum
//!   length or any indirect branch), the `ntb` constraint (stop at predicted
//!   not-taken backward branches, exposing loop exits for CGCI), and `fg`
//!   padding (Section 3.2) which guarantees trace-level re-convergence for
//!   embeddable regions.

pub mod bit;
pub mod fgci;
pub mod select;
pub mod trace;

pub use bit::Bit;
pub use fgci::{analyze_region, RegionInfo};
pub use select::{
    ClosureOutcomes, IdOutcomes, OutcomeSource, SelectionConfig, SelectionStats, Selector,
};
pub use trace::{EndReason, OperandRef, Trace, TraceId, TraceInst};
