//! Trace selection: dividing the dynamic instruction stream into traces.
//!
//! Default selection terminates a trace at the maximum trace length or at
//! any indirect control transfer (jump indirect, call indirect, return).
//! Two additional, composable constraints implement the paper's control
//! independence support:
//!
//! * **`ntb`** terminates traces at predicted not-taken backward branches,
//!   exposing loop exits as global re-convergent points for CGCI;
//! * **`fg`** consults the [BIT](crate::Bit) at every forward conditional
//!   branch and *pads* the accrued trace length by the branch's dynamic
//!   region size, so that every path through an embeddable region ends the
//!   trace at the same instruction — trace-level re-convergence for FGCI.

use crate::bit::Bit;
use crate::fgci::analyze_region;
use crate::trace::{EndReason, Trace, TraceId};
use tp_isa::{Inst, Pc, Program};

/// Trace selection configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SelectionConfig {
    /// Maximum trace length in instructions (the paper uses 32).
    pub max_len: u32,
    /// Terminate traces at predicted not-taken backward branches.
    pub ntb: bool,
    /// Apply FGCI region padding.
    pub fg: bool,
}

impl Default for SelectionConfig {
    fn default() -> SelectionConfig {
        SelectionConfig::base()
    }
}

impl SelectionConfig {
    /// Default selection only (`base` in the paper's experiments).
    pub fn base() -> SelectionConfig {
        SelectionConfig { max_len: 32, ntb: false, fg: false }
    }

    /// Default + `ntb` (`base(ntb)`).
    pub fn with_ntb() -> SelectionConfig {
        SelectionConfig { ntb: true, ..SelectionConfig::base() }
    }

    /// Default + `fg` (`base(fg)`).
    pub fn with_fg() -> SelectionConfig {
        SelectionConfig { fg: true, ..SelectionConfig::base() }
    }

    /// Default + `fg` + `ntb` (`base(fg,ntb)`).
    pub fn with_fg_ntb() -> SelectionConfig {
        SelectionConfig { fg: true, ntb: true, ..SelectionConfig::base() }
    }

    /// A short human-readable name matching the paper's notation.
    pub fn name(&self) -> &'static str {
        match (self.fg, self.ntb) {
            (false, false) => "base",
            (false, true) => "base(ntb)",
            (true, false) => "base(fg)",
            (true, true) => "base(fg,ntb)",
        }
    }
}

/// Supplies branch outcomes and indirect targets to the selector.
///
/// During trace construction in the frontend this is backed by the predicted
/// trace id plus the branch predictor; at retirement it is backed by the
/// actual executed outcomes.
pub trait OutcomeSource {
    /// The outcome of the `index`-th conditional branch of the trace under
    /// construction, located at `pc`.
    fn cond_outcome(&mut self, index: u8, pc: Pc, inst: Inst) -> bool;

    /// The target of a trace-ending indirect transfer at `pc`, or `None`
    /// when no prediction is available.
    fn indirect_target(&mut self, pc: Pc, inst: Inst) -> Option<Pc>;
}

/// An [`OutcomeSource`] built from two closures.
#[derive(Debug)]
pub struct ClosureOutcomes<F, G> {
    cond: F,
    indirect: G,
}

impl<F, G> ClosureOutcomes<F, G>
where
    F: FnMut(u8, Pc, Inst) -> bool,
    G: FnMut(Pc, Inst) -> Option<Pc>,
{
    /// Wraps closures for conditional outcomes and indirect targets.
    pub fn new(cond: F, indirect: G) -> ClosureOutcomes<F, G> {
        ClosureOutcomes { cond, indirect }
    }
}

impl<F, G> OutcomeSource for ClosureOutcomes<F, G>
where
    F: FnMut(u8, Pc, Inst) -> bool,
    G: FnMut(Pc, Inst) -> Option<Pc>,
{
    fn cond_outcome(&mut self, index: u8, pc: Pc, inst: Inst) -> bool {
        (self.cond)(index, pc, inst)
    }

    fn indirect_target(&mut self, pc: Pc, inst: Inst) -> Option<Pc> {
        (self.indirect)(pc, inst)
    }
}

/// An [`OutcomeSource`] that replays the outcomes embedded in a [`TraceId`]
/// (a next-trace prediction *is* a starting PC plus branch outcomes).
/// Branches beyond the id's depth and indirect targets fall back to
/// not-taken / unknown.
#[derive(Clone, Copy, Debug)]
pub struct IdOutcomes {
    id: TraceId,
}

impl IdOutcomes {
    /// Replays the outcomes of `id`.
    pub fn new(id: TraceId) -> IdOutcomes {
        IdOutcomes { id }
    }
}

impl OutcomeSource for IdOutcomes {
    fn cond_outcome(&mut self, index: u8, _pc: Pc, _inst: Inst) -> bool {
        self.id.outcome(index)
    }

    fn indirect_target(&mut self, _pc: Pc, _inst: Inst) -> Option<Pc> {
        None
    }
}

/// Per-selection bookkeeping returned alongside the trace.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SelectionStats {
    /// Cycles spent in the BIT miss handler (the FGCI-algorithm scans one
    /// instruction per cycle); the frontend stalls trace construction for
    /// this long.
    pub bit_miss_cycles: u32,
    /// Number of BIT misses taken.
    pub bit_misses: u32,
    /// Number of embeddable regions padded into the trace.
    pub padded_regions: u32,
    /// Total padding added (dynamic region sizes minus actual path lengths).
    pub pad_instructions: u32,
}

/// A selected trace plus its selection bookkeeping.
#[derive(Clone, Debug)]
pub struct Selection {
    /// The selected trace.
    pub trace: Trace,
    /// Selection bookkeeping (BIT miss stalls, padding counts).
    pub stats: SelectionStats,
}

/// The trace selector.
///
/// A selector is stateless apart from its configuration; the BIT is passed
/// in by the caller because it is a shared hardware structure with its own
/// timing.
///
/// # Example
///
/// ```
/// use tp_isa::{asm::Asm, Cond, Reg};
/// use tp_trace::{Bit, SelectionConfig, Selector};
///
/// let mut a = Asm::new("tiny");
/// a.li(Reg::new(1), 5);
/// a.label("top");
/// a.addi(Reg::new(1), Reg::new(1), -1);
/// a.branch(Cond::Gt, Reg::new(1), Reg::ZERO, "top");
/// a.halt();
/// let p = a.assemble()?;
///
/// let selector = Selector::new(SelectionConfig::base());
/// let mut bit = Bit::paper();
/// // Take both loop branches as taken: the trace revisits the loop body.
/// let sel = selector.select_with(&p, 0, &mut bit, |_, _, _| true, |_, _| None);
/// assert_eq!(sel.trace.id().start(), 0);
/// assert!(sel.trace.len() > 3);
/// # Ok::<(), tp_isa::asm::AsmError>(())
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Selector {
    config: SelectionConfig,
}

impl Selector {
    /// Creates a selector.
    ///
    /// # Panics
    ///
    /// Panics if `max_len` is 0 or exceeds 32 (a trace id records at most 32
    /// conditional-branch outcomes).
    pub fn new(config: SelectionConfig) -> Selector {
        assert!(config.max_len >= 1 && config.max_len <= 32, "max_len must be in 1..=32");
        Selector { config }
    }

    /// The selector's configuration.
    pub fn config(&self) -> SelectionConfig {
        self.config
    }

    /// Selects one trace starting at `start`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a valid PC of `program`.
    pub fn select(
        &self,
        program: &Program,
        start: Pc,
        bit: &mut Bit,
        outcomes: &mut impl OutcomeSource,
    ) -> Selection {
        self.select_bounded(program, start, bit, outcomes, None)
    }

    /// Like [`Selector::select`], but terminates the trace just before
    /// `stop_before = (pc, min_len)` whenever the selected path reaches
    /// that PC with at least `min_len` instructions already selected
    /// (`min_len` lets a caller skip over early encounters of a revisited
    /// PC). Used by CGCI insertion to bound control-dependent traces at
    /// the known re-convergent PC (`min_len = 1`), so the next trace
    /// starts exactly there and re-convergence detection fires instead of
    /// the path overshooting it mid-trace.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a valid PC of `program`.
    pub fn select_bounded(
        &self,
        program: &Program,
        start: Pc,
        bit: &mut Bit,
        outcomes: &mut impl OutcomeSource,
        stop_before: Option<(Pc, usize)>,
    ) -> Selection {
        self.select_inner(program, start, bit, outcomes, stop_before, None)
    }

    /// Like [`Selector::select_bounded`], recording into `consults` the PC
    /// of every BIT query the selection makes, in query order.
    ///
    /// The consulted PCs are a function of the selected path alone (BIT
    /// contents change stats and LRU order, never the path), so a caller
    /// that memoizes a selection can later replay the exact BIT
    /// lookup/insert sequence with [`Selector::replay_bit`] instead of
    /// re-running selection.
    pub fn select_bounded_recording(
        &self,
        program: &Program,
        start: Pc,
        bit: &mut Bit,
        outcomes: &mut impl OutcomeSource,
        stop_before: Option<(Pc, usize)>,
        consults: &mut Vec<Pc>,
    ) -> Selection {
        self.select_inner(program, start, bit, outcomes, stop_before, Some(consults))
    }

    /// Replays one recorded BIT consult: an LRU-touching lookup, with the
    /// miss path re-running the (pure) FGCI region analysis and inserting
    /// the result — exactly the BIT state transition
    /// [`Selector::select_bounded`] performs at a forward branch.
    pub fn replay_bit(&self, program: &Program, bit: &mut Bit, pc: Pc) {
        if bit.lookup(pc).is_none() {
            bit.insert(pc, analyze_region(program, pc, self.config.max_len));
        }
    }

    fn select_inner(
        &self,
        program: &Program,
        start: Pc,
        bit: &mut Bit,
        outcomes: &mut impl OutcomeSource,
        stop_before: Option<(Pc, usize)>,
        mut consults: Option<&mut Vec<Pc>>,
    ) -> Selection {
        assert!(program.contains(start), "trace start pc {start} out of program");
        let cfg = self.config;
        let mut raw: Vec<(Pc, Inst, Option<bool>, bool)> = Vec::with_capacity(cfg.max_len as usize);
        let mut stats = SelectionStats::default();
        let mut accrued: u32 = 0;
        let mut region_end: Option<Pc> = None;
        let mut mask: u32 = 0;
        let mut branches: u8 = 0;
        let mut pc = start;

        let (end, next_pc) = loop {
            // Leaving an active padding region: accrual resumes at the
            // re-convergent instruction.
            if region_end == Some(pc) {
                region_end = None;
            }

            // Reached the caller's stop PC: end the trace right before it.
            // Never inside an active padding region — cutting a region in
            // half would emit `fgci_covered` slots whose embedded
            // alternate path is missing, breaking FGCI's same-successor
            // repair invariant (mirrors the max-len gating below).
            if region_end.is_none() {
                if let Some((sp, min_len)) = stop_before {
                    if sp == pc && raw.len() >= min_len.max(1) {
                        break (EndReason::MaxLen, Some(pc));
                    }
                }
            }

            // The accrued (padded) length is the trace's logical length;
            // selection stops the moment it reaches the maximum. Inside a
            // padded region this cannot trigger: region entry guaranteed the
            // whole region fits.
            if region_end.is_none() && accrued >= cfg.max_len {
                break (EndReason::MaxLen, Some(pc));
            }

            let Some(inst) = program.fetch(pc) else {
                break (EndReason::OutOfProgram, None);
            };

            // FGCI region padding: consult the BIT at forward conditional
            // branches outside any active region.
            if cfg.fg && region_end.is_none() && inst.is_forward_branch(pc) {
                if let Some(rec) = consults.as_deref_mut() {
                    rec.push(pc);
                }
                let info = match bit.lookup(pc) {
                    Some(info) => info,
                    None => {
                        let info = analyze_region(program, pc, cfg.max_len);
                        stats.bit_misses += 1;
                        stats.bit_miss_cycles += info.scan_cycles;
                        bit.insert(pc, info);
                        info
                    }
                };
                if info.embeddable {
                    if accrued + info.region_size <= cfg.max_len {
                        region_end = Some(info.reconv_pc);
                        accrued += info.region_size;
                        stats.padded_regions += 1;
                    } else {
                        // The region does not fit: terminate the trace
                        // *before* the branch so the next trace exposes the
                        // full region (Section 3.2). `raw` cannot be empty
                        // here: an embeddable region always fits an empty
                        // trace.
                        debug_assert!(!raw.is_empty());
                        break (EndReason::MaxLen, Some(pc));
                    }
                }
            }

            let covered = region_end.is_some();
            let in_region = region_end.is_some();

            // Execute the selection step.
            let mut embedded = None;
            let next = match inst {
                Inst::Branch { target, .. } => {
                    if branches == 32 {
                        // Cannot embed another outcome bit; end before the
                        // branch (only reachable with max_len == 32 and all
                        // slots branches).
                        break (EndReason::MaxLen, Some(pc));
                    }
                    let taken = outcomes.cond_outcome(branches, pc, inst);
                    if taken {
                        mask |= 1 << branches;
                    }
                    branches += 1;
                    embedded = Some(taken);
                    if taken {
                        target
                    } else {
                        pc + 1
                    }
                }
                Inst::Jump { target } | Inst::Call { target } => target,
                Inst::CallIndirect { .. } | Inst::JumpIndirect { .. } | Inst::Ret => {
                    raw.push((pc, inst, None, covered));
                    let target = outcomes.indirect_target(pc, inst);
                    break (EndReason::Indirect, target);
                }
                Inst::Halt => {
                    raw.push((pc, inst, None, covered));
                    break (EndReason::Halt, None);
                }
                _ => pc + 1,
            };
            raw.push((pc, inst, embedded, covered));

            // Instructions inside a padded region were pre-accounted by the
            // region's dynamic size at entry.
            if !in_region {
                accrued += 1;
            }

            // ntb: terminate at predicted not-taken backward branches.
            if cfg.ntb && embedded == Some(false) && inst.is_backward_branch(pc) {
                break (EndReason::Ntb, Some(pc + 1));
            }

            if !program.contains(next) {
                break (EndReason::OutOfProgram, None);
            }
            pc = next;
        };

        // Realized padding: the accrued length minus the physical length.
        stats.pad_instructions = accrued.saturating_sub(raw.len() as u32);

        let id = TraceId::new(start, mask, branches);
        Selection { trace: Trace::assemble(id, &raw, end, next_pc), stats }
    }

    /// Convenience wrapper around [`Selector::select`] taking closures.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a valid PC of `program`.
    pub fn select_with(
        &self,
        program: &Program,
        start: Pc,
        bit: &mut Bit,
        cond: impl FnMut(u8, Pc, Inst) -> bool,
        indirect: impl FnMut(Pc, Inst) -> Option<Pc>,
    ) -> Selection {
        let mut outcomes = ClosureOutcomes::new(cond, indirect);
        self.select(program, start, bit, &mut outcomes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_isa::{asm::Asm, Cond, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// if (r1) { 1 op } else { 3 ops }; then 4 more ops; halt.
    fn hammock_program() -> Program {
        let mut a = Asm::new("hammock");
        a.branch(Cond::Ne, r(1), Reg::ZERO, "else"); // pc 0
        a.addi(r(2), r(2), 1); // pc 1 (then)
        a.jump("end"); // pc 2
        a.label("else");
        a.addi(r(2), r(2), 2); // pc 3
        a.addi(r(2), r(2), 3); // pc 4
        a.addi(r(2), r(2), 4); // pc 5
        a.label("end");
        for _ in 0..4 {
            a.addi(r(3), r(3), 1); // pc 6..=9
        }
        a.halt(); // pc 10
        a.assemble().unwrap()
    }

    #[test]
    fn default_selection_stops_at_max_len() {
        let mut a = Asm::new("line");
        for _ in 0..100 {
            a.nop();
        }
        a.halt();
        let p = a.assemble().unwrap();
        let sel = Selector::new(SelectionConfig::base());
        let mut bit = Bit::paper();
        let s = sel.select_with(&p, 0, &mut bit, |_, _, _| false, |_, _| None);
        assert_eq!(s.trace.len(), 32);
        assert_eq!(s.trace.end(), EndReason::MaxLen);
        assert_eq!(s.trace.next_pc(), Some(32));
    }

    #[test]
    fn default_selection_stops_at_indirect() {
        let mut a = Asm::new("ret");
        a.nop();
        a.nop();
        a.ret();
        a.halt();
        let p = a.assemble().unwrap();
        let sel = Selector::new(SelectionConfig::base());
        let mut bit = Bit::paper();
        let s = sel.select_with(&p, 0, &mut bit, |_, _, _| false, |_, _| Some(3));
        assert_eq!(s.trace.len(), 3);
        assert_eq!(s.trace.end(), EndReason::Indirect);
        assert_eq!(s.trace.next_pc(), Some(3));
        assert!(s.trace.ends_in_return());

        // Unknown indirect target.
        let s = sel.select_with(&p, 0, &mut bit, |_, _, _| false, |_, _| None);
        assert_eq!(s.trace.next_pc(), None);
    }

    #[test]
    fn halt_terminates_trace() {
        let mut a = Asm::new("h");
        a.nop();
        a.halt();
        let p = a.assemble().unwrap();
        let sel = Selector::new(SelectionConfig::base());
        let mut bit = Bit::paper();
        let s = sel.select_with(&p, 0, &mut bit, |_, _, _| false, |_, _| None);
        assert_eq!(s.trace.end(), EndReason::Halt);
        assert_eq!(s.trace.next_pc(), None);
        assert_eq!(s.trace.len(), 2);
    }

    #[test]
    fn ntb_terminates_at_not_taken_backward_branch() {
        let mut a = Asm::new("loop");
        a.label("top");
        a.addi(r(1), r(1), -1);
        a.branch(Cond::Gt, r(1), Reg::ZERO, "top");
        a.addi(r(2), r(2), 1);
        a.halt();
        let p = a.assemble().unwrap();

        let mut bit = Bit::paper();
        // Predicted not taken: ntb stops the trace right after the branch.
        let s = Selector::new(SelectionConfig::with_ntb()).select_with(
            &p,
            0,
            &mut bit,
            |_, _, _| false,
            |_, _| None,
        );
        assert_eq!(s.trace.end(), EndReason::Ntb);
        assert_eq!(s.trace.len(), 2);
        assert_eq!(s.trace.next_pc(), Some(2));

        // Without ntb the trace continues through the fall-through path.
        let s = Selector::new(SelectionConfig::base()).select_with(
            &p,
            0,
            &mut bit,
            |_, _, _| false,
            |_, _| None,
        );
        assert_eq!(s.trace.end(), EndReason::Halt);

        // Predicted taken: ntb does not fire.
        let mut count = 0;
        let s = Selector::new(SelectionConfig::with_ntb()).select_with(
            &p,
            0,
            &mut bit,
            |_, _, _| {
                count += 1;
                count <= 2 // take twice, then fall out
            },
            |_, _| None,
        );
        assert!(s.trace.len() > 4);
        assert_eq!(s.trace.end(), EndReason::Ntb);
    }

    #[test]
    fn trace_id_mask_matches_outcomes() {
        let p = hammock_program();
        let sel = Selector::new(SelectionConfig::base());
        let mut bit = Bit::paper();
        let s = sel.select_with(&p, 0, &mut bit, |i, _, _| i == 0, |_, _| None);
        let id = s.trace.id();
        assert_eq!(id.branches(), 1);
        assert!(id.outcome(0));
    }

    #[test]
    fn fg_padding_synchronizes_trace_ends() {
        let p = hammock_program();
        let sel = Selector::new(Selector::fg_cfg(8));
        // Both paths through the hammock must end the trace at the same
        // instruction, despite different physical lengths.
        let mut bit = Bit::paper();
        let taken = sel.select_with(&p, 0, &mut bit, |_, _, _| true, |_, _| None);
        let not_taken = sel.select_with(&p, 0, &mut bit, |_, _, _| false, |_, _| None);
        assert_eq!(taken.trace.end(), EndReason::MaxLen);
        assert_eq!(not_taken.trace.end(), EndReason::MaxLen);
        assert_eq!(taken.trace.next_pc(), not_taken.trace.next_pc());
        // taken path: branch + 3 ops + 4 tail = 8 accrued at region size 4.
        // not-taken path: branch + 1 op + jump (3 physical) padded to 4.
        assert_eq!(
            taken.trace.insts().last().unwrap().pc,
            not_taken.trace.insts().last().unwrap().pc
        );
        assert!(not_taken.stats.pad_instructions > 0);
        assert_eq!(taken.stats.padded_regions, 1);
    }

    impl Selector {
        fn fg_cfg(max_len: u32) -> SelectionConfig {
            SelectionConfig { max_len, ntb: false, fg: true }
        }
    }

    #[test]
    fn fg_marks_covered_instructions() {
        let p = hammock_program();
        let sel = Selector::new(Selector::fg_cfg(8));
        let mut bit = Bit::paper();
        let s = sel.select_with(&p, 0, &mut bit, |_, _, _| false, |_, _| None);
        // Branch (pc 0) and hammock body are covered; tail ops are not.
        assert!(s.trace.insts()[0].fgci_covered);
        assert!(s.trace.insts()[1].fgci_covered);
        let last = s.trace.insts().last().unwrap();
        assert!(!last.fgci_covered);
    }

    #[test]
    fn fg_defers_region_that_does_not_fit() {
        let p = hammock_program();
        // max_len 5: after one leading op... build a trace starting at pc 0
        // is fine (region size 4 <= 5); instead start selection at a point
        // where accrued > 1 before reaching the branch.
        let mut a = Asm::new("prefix");
        a.addi(r(5), r(5), 1);
        a.addi(r(5), r(5), 2);
        a.addi(r(5), r(5), 3);
        a.branch(Cond::Ne, r(1), Reg::ZERO, "else");
        a.addi(r(2), r(2), 1);
        a.jump("end");
        a.label("else");
        a.addi(r(2), r(2), 2);
        a.addi(r(2), r(2), 3);
        a.addi(r(2), r(2), 4);
        a.label("end");
        a.halt();
        let p2 = a.assemble().unwrap();
        let _ = p;

        let sel = Selector::new(SelectionConfig { max_len: 5, ntb: false, fg: true });
        let mut bit = Bit::paper();
        let s = sel.select_with(&p2, 0, &mut bit, |_, _, _| false, |_, _| None);
        // 3 accrued + region 4 > 5: trace ends before the branch.
        assert_eq!(s.trace.len(), 3);
        assert_eq!(s.trace.end(), EndReason::MaxLen);
        assert_eq!(s.trace.next_pc(), Some(3));

        // The follow-on trace starts at the branch and pads the region.
        let s2 = sel.select_with(&p2, 3, &mut bit, |_, _, _| false, |_, _| None);
        assert!(s2.trace.insts()[0].fgci_covered);
    }

    #[test]
    fn bit_miss_cycles_accumulate_once() {
        let p = hammock_program();
        let sel = Selector::new(Selector::fg_cfg(16));
        let mut bit = Bit::paper();
        let s1 = sel.select_with(&p, 0, &mut bit, |_, _, _| false, |_, _| None);
        assert_eq!(s1.stats.bit_misses, 1);
        assert!(s1.stats.bit_miss_cycles > 0);
        let s2 = sel.select_with(&p, 0, &mut bit, |_, _, _| false, |_, _| None);
        assert_eq!(s2.stats.bit_misses, 0);
        assert_eq!(s2.stats.bit_miss_cycles, 0);
    }

    #[test]
    fn recorded_bit_consults_replay_to_equivalent_bit_state() {
        let p = hammock_program();
        let sel = Selector::new(SelectionConfig::with_fg());
        let mut bit_a = Bit::paper();
        let mut consults = Vec::new();
        let mut outcomes = ClosureOutcomes::new(|_, _, _| false, |_, _| None);
        let s1 =
            sel.select_bounded_recording(&p, 0, &mut bit_a, &mut outcomes, None, &mut consults);
        assert!(!consults.is_empty());
        assert_eq!(consults.len() as u32, s1.stats.bit_misses);

        // Replaying the consult list on a fresh BIT reproduces the lookup
        // and insert sequence: a re-selection afterwards misses nowhere on
        // either table and picks identical traces.
        let mut bit_b = Bit::paper();
        for &pc in &consults {
            sel.replay_bit(&p, &mut bit_b, pc);
        }
        let s_a = sel.select_with(&p, 0, &mut bit_a, |_, _, _| false, |_, _| None);
        let s_b = sel.select_with(&p, 0, &mut bit_b, |_, _, _| false, |_, _| None);
        assert_eq!(s_a.stats.bit_misses, 0);
        assert_eq!(s_b.stats.bit_misses, 0);
        assert_eq!(s_a.trace, s_b.trace);
    }

    #[test]
    fn id_outcomes_replays_mask() {
        let p = hammock_program();
        let sel = Selector::new(SelectionConfig::base());
        let mut bit = Bit::paper();
        let id = TraceId::new(0, 0b1, 1);
        let s = sel.select(&p, 0, &mut bit, &mut IdOutcomes::new(id));
        assert_eq!(s.trace.id(), id);
    }

    #[test]
    fn selection_is_deterministic() {
        let p = hammock_program();
        let sel = Selector::new(SelectionConfig::with_fg_ntb());
        let mut bit = Bit::paper();
        let a = sel.select_with(&p, 0, &mut bit, |_, _, _| true, |_, _| None);
        let b = sel.select_with(&p, 0, &mut bit, |_, _, _| true, |_, _| None);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    #[should_panic(expected = "out of program")]
    fn select_rejects_bad_start() {
        let p = hammock_program();
        let sel = Selector::new(SelectionConfig::base());
        let mut bit = Bit::paper();
        let _ = sel.select_with(&p, 999, &mut bit, |_, _, _| false, |_, _| None);
    }

    #[test]
    fn config_names_match_paper() {
        assert_eq!(SelectionConfig::base().name(), "base");
        assert_eq!(SelectionConfig::with_ntb().name(), "base(ntb)");
        assert_eq!(SelectionConfig::with_fg().name(), "base(fg)");
        assert_eq!(SelectionConfig::with_fg_ntb().name(), "base(fg,ntb)");
    }
}
