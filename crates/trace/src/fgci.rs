//! The hardware FGCI-algorithm (paper Section 3.1).
//!
//! Given a forward conditional branch, the algorithm serially scans the
//! static code after the branch — a single pass, one instruction per cycle
//! in hardware — propagating longest-path lengths along control-flow edges.
//! Each instruction is a node whose value is `max(incoming edge values) + 1`;
//! branch taken-edges are held in a small associative array of
//! `(target, path length)` pairs; the *most distant* taken target seen so far
//! is the candidate re-convergent point, detected when the scan reaches it.
//!
//! The branch is **not** an FGCI candidate if, before re-convergence, the
//! scan encounters a backward branch, a call, an indirect branch (or halt),
//! if any computed path length exceeds the maximum trace length, or if the
//! edge array overflows (a hardware capacity limit, 4–8 entries in the
//! paper).

use tp_isa::{Inst, Pc, Program};

/// Result of analyzing one forward conditional branch.
///
/// This is what a branch information table (BIT) entry caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RegionInfo {
    /// Whether the branch has an embeddable region (is an FGCI candidate).
    pub embeddable: bool,
    /// The *dynamic region size*: the longest control-dependent path through
    /// the region, in instructions, **including** the branch itself. Trace
    /// selection pads every selected path to this length. Zero when not
    /// embeddable.
    pub region_size: u32,
    /// The re-convergent PC closing the region (the most distant taken
    /// target). Zero when not embeddable.
    pub reconv_pc: Pc,
    /// The *static region size*: the number of static instructions spanned
    /// by the region, `reconv_pc - branch_pc` (Table 5 reports this next to
    /// the dynamic size).
    pub static_size: u32,
    /// Number of conditional branches enclosed in the region, including the
    /// region-opening branch (Table 5's "# cond. br. in reg.").
    pub cond_branches: u32,
    /// Number of instructions scanned (the hardware scans one instruction
    /// per cycle, so this is also the BIT miss-handler latency in cycles).
    pub scan_cycles: u32,
}

impl RegionInfo {
    /// The canonical "not embeddable" record (still cached in the BIT so the
    /// analysis is not re-run).
    pub fn not_embeddable(scan_cycles: u32) -> RegionInfo {
        RegionInfo {
            embeddable: false,
            region_size: 0,
            reconv_pc: 0,
            static_size: 0,
            cond_branches: 0,
            scan_cycles,
        }
    }
}

/// Maximum live edges the hardware associative array holds (paper: "a 4- to
/// 8-entry associative array for edges").
pub const EDGE_CAPACITY: usize = 8;

/// Runs the FGCI-algorithm for the forward conditional branch at `branch_pc`.
///
/// `max_len` is the maximum trace length: regions whose longest path exceeds
/// it are rejected (pass a large value to classify regions for Table 5's
/// `>32` row).
///
/// Returns [`RegionInfo::not_embeddable`] when the instruction at
/// `branch_pc` is not a forward conditional branch or when any failure
/// condition triggers.
///
/// # Example
///
/// ```
/// use tp_isa::{asm::Asm, Cond, Reg};
/// use tp_trace::analyze_region;
///
/// // if (r1 == 0) { r2 += 1 } else { r2 += 2; r2 += 3 }
/// let mut a = Asm::new("hammock");
/// a.branch(Cond::Ne, Reg::new(1), Reg::ZERO, "else");
/// a.addi(Reg::new(2), Reg::new(2), 1);
/// a.jump("end");
/// a.label("else");
/// a.addi(Reg::new(2), Reg::new(2), 2);
/// a.addi(Reg::new(2), Reg::new(2), 3);
/// a.label("end");
/// a.halt();
/// let p = a.assemble()?;
///
/// let info = analyze_region(&p, 0, 32);
/// assert!(info.embeddable);
/// assert_eq!(info.reconv_pc, 5);
/// // Longest path: branch, addi, addi = 3 instructions.
/// assert_eq!(info.region_size, 3);
/// # Ok::<(), tp_isa::asm::AsmError>(())
/// ```
pub fn analyze_region(program: &Program, branch_pc: Pc, max_len: u32) -> RegionInfo {
    let branch_target = match program.fetch(branch_pc) {
        Some(Inst::Branch { target, .. }) if target > branch_pc => target,
        _ => return RegionInfo::not_embeddable(1),
    };

    // Live edges: (target_pc, longest path length reaching that edge).
    let mut edges: Vec<(Pc, u32)> = Vec::with_capacity(EDGE_CAPACITY);
    let mut most_distant = branch_target;
    let mut cond_branches: u32 = 1; // the region-opening branch itself
    let mut scanned: u32 = 1;

    // The branch node's value is 1 (the branch itself); both its outgoing
    // edges (taken and fall-through) carry that value.
    edges.push((branch_target, 1));
    // `seq` models the implicit sequential edge between adjacent
    // instructions: None when the previous instruction cannot fall through.
    let mut seq: Option<u32> = Some(1);

    let mut pc = branch_pc + 1;
    loop {
        scanned += 1;
        // Collect incoming edges for this node: the sequential edge plus any
        // recorded branch-target edges, which are consumed (freeing array
        // entries, as the hardware does).
        let mut incoming = seq;
        edges.retain(|&(t, len)| {
            if t == pc {
                incoming = Some(incoming.map_or(len, |v| v.max(len)));
                false
            } else {
                true
            }
        });

        if pc == most_distant {
            // Re-convergence: every path through the region meets here.
            let Some(region_size) = incoming else {
                return RegionInfo::not_embeddable(scanned);
            };
            if region_size > max_len {
                return RegionInfo::not_embeddable(scanned);
            }
            return RegionInfo {
                embeddable: true,
                region_size,
                reconv_pc: pc,
                static_size: pc - branch_pc,
                cond_branches,
                scan_cycles: scanned,
            };
        }

        let Some(inst) = program.fetch(pc) else {
            return RegionInfo::not_embeddable(scanned);
        };

        // The node's value: longest path reaching it, plus itself. Dead
        // slots (no incoming edge — code after an unconditional jump that
        // nothing branches to) propagate nothing but are still scanned, and
        // still trigger the failure conditions a serial hardware scan would
        // hit.
        let value = incoming.map(|v| v + 1);
        if let Some(v) = value {
            if v > max_len {
                return RegionInfo::not_embeddable(scanned);
            }
        }

        match inst {
            Inst::Branch { target, .. } => {
                if target <= pc {
                    // Backward branch inside the region: failure.
                    return RegionInfo::not_embeddable(scanned);
                }
                cond_branches += 1;
                if let Some(v) = value {
                    if !record_edge(&mut edges, target, v) {
                        return RegionInfo::not_embeddable(scanned);
                    }
                    most_distant = most_distant.max(target);
                }
                seq = value;
            }
            Inst::Jump { target } => {
                if target <= pc {
                    return RegionInfo::not_embeddable(scanned);
                }
                if let Some(v) = value {
                    if !record_edge(&mut edges, target, v) {
                        return RegionInfo::not_embeddable(scanned);
                    }
                    most_distant = most_distant.max(target);
                }
                seq = None; // no fall-through
            }
            Inst::Call { .. }
            | Inst::CallIndirect { .. }
            | Inst::JumpIndirect { .. }
            | Inst::Ret
            | Inst::Halt => {
                // Calls, indirect branches and halts end the analysis.
                return RegionInfo::not_embeddable(scanned);
            }
            _ => {
                seq = value;
            }
        }
        pc += 1;
    }
}

/// Records a taken edge, merging with an existing edge to the same target
/// (keeping the max path length). Returns `false` on capacity overflow.
fn record_edge(edges: &mut Vec<(Pc, u32)>, target: Pc, len: u32) -> bool {
    if let Some(e) = edges.iter_mut().find(|(t, _)| *t == target) {
        e.1 = e.1.max(len);
        return true;
    }
    if edges.len() >= EDGE_CAPACITY {
        return false;
    }
    edges.push((target, len));
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_isa::{asm::Asm, Cond, Reg};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    /// Builds the example CFG of the paper's Figure 7:
    /// A(1 branch) -> {B(5) -> {C(2)|D(2)} -> F(1) | E(3) -> {F(1)|G(6)}} -> H(6).
    /// Longest control-dependent path: A,E,G = 1+3+6 = 10.
    fn figure7() -> tp_isa::Program {
        let mut a = Asm::new("fig7");
        // A: the region-opening branch (1 instruction).
        a.branch(Cond::Eq, r(1), Reg::ZERO, "E"); // A -> E (taken) or B (fall)
                                                  // B: 5 instructions, ending in a branch to D.
        for _ in 0..4 {
            a.addi(r(2), r(2), 1);
        }
        a.branch(Cond::Eq, r(2), Reg::ZERO, "D");
        // C: 2 instructions, then jump to F.
        a.addi(r(3), r(3), 1);
        a.jump("F");
        // D: 2 instructions, falls into F.
        a.label("D");
        a.addi(r(3), r(3), 2);
        a.addi(r(3), r(3), 3);
        a.jump("F");
        // E: 3 instructions ending in a branch to G (else fall to F).
        a.label("E");
        a.addi(r(4), r(4), 1);
        a.addi(r(4), r(4), 2);
        a.branch(Cond::Ne, r(4), Reg::ZERO, "G");
        // F: 1 instruction, jump to H.
        a.label("F");
        a.jump("H");
        // G: 6 instructions, falls into H.
        a.label("G");
        for _ in 0..6 {
            a.addi(r(5), r(5), 1);
        }
        // H: re-convergent point.
        a.label("H");
        for _ in 0..6 {
            a.addi(r(6), r(6), 1);
        }
        a.halt();
        a.assemble().unwrap()
    }

    #[test]
    fn figure7_region_matches_paper() {
        let p = figure7();
        let info = analyze_region(&p, 0, 16);
        assert!(info.embeddable);
        // Longest path A(1) + E(3) + G(6) = 10, as in the paper.
        assert_eq!(info.region_size, 10);
        // Three conditional branches enclosed: in A, B and E.
        assert_eq!(info.cond_branches, 3);
        // The re-convergent point is the start of H (pc 21 in this layout).
        assert_eq!(info.reconv_pc, 21);
        assert_eq!(info.static_size, 21);
    }

    #[test]
    fn region_too_long_is_rejected() {
        let p = figure7();
        let info = analyze_region(&p, 0, 9); // longest path is 10
        assert!(!info.embeddable);
    }

    #[test]
    fn simple_if_then() {
        // branch over a single instruction.
        let mut a = Asm::new("ifthen");
        a.branch(Cond::Eq, r(1), Reg::ZERO, "end");
        a.addi(r(2), r(2), 1);
        a.label("end");
        a.halt();
        let p = a.assemble().unwrap();
        let info = analyze_region(&p, 0, 32);
        assert!(info.embeddable);
        assert_eq!(info.region_size, 2); // branch + addi
        assert_eq!(info.reconv_pc, 2);
        assert_eq!(info.static_size, 2);
        assert_eq!(info.cond_branches, 1);
    }

    #[test]
    fn branch_to_next_instruction_is_trivial_region() {
        let mut a = Asm::new("triv");
        a.branch(Cond::Eq, r(1), Reg::ZERO, "next");
        a.label("next");
        a.halt();
        let p = a.assemble().unwrap();
        let info = analyze_region(&p, 0, 32);
        assert!(info.embeddable);
        assert_eq!(info.region_size, 1);
        assert_eq!(info.reconv_pc, 1);
    }

    #[test]
    fn call_in_region_rejects() {
        let mut a = Asm::new("call");
        a.branch(Cond::Eq, r(1), Reg::ZERO, "end");
        a.call("f");
        a.label("end");
        a.halt();
        a.label("f");
        a.ret();
        let p = a.assemble().unwrap();
        assert!(!analyze_region(&p, 0, 32).embeddable);
    }

    #[test]
    fn backward_branch_in_region_rejects() {
        let mut a = Asm::new("loop");
        a.branch(Cond::Eq, r(1), Reg::ZERO, "end");
        a.label("top");
        a.addi(r(2), r(2), -1);
        a.branch(Cond::Gt, r(2), Reg::ZERO, "top");
        a.label("end");
        a.halt();
        let p = a.assemble().unwrap();
        assert!(!analyze_region(&p, 0, 32).embeddable);
    }

    #[test]
    fn indirect_and_halt_reject() {
        let mut a = Asm::new("ind");
        a.branch(Cond::Eq, r(1), Reg::ZERO, "end");
        a.jump_indirect(r(5));
        a.label("end");
        a.halt();
        let p = a.assemble().unwrap();
        assert!(!analyze_region(&p, 0, 32).embeddable);

        let mut a = Asm::new("halt");
        a.branch(Cond::Eq, r(1), Reg::ZERO, "end");
        a.halt();
        a.label("end");
        a.halt();
        let p = a.assemble().unwrap();
        assert!(!analyze_region(&p, 0, 32).embeddable);
    }

    #[test]
    fn backward_branch_itself_is_not_analyzed() {
        let mut a = Asm::new("bw");
        a.label("top");
        a.addi(r(1), r(1), -1);
        a.branch(Cond::Gt, r(1), Reg::ZERO, "top");
        a.halt();
        let p = a.assemble().unwrap();
        assert!(!analyze_region(&p, 1, 32).embeddable);
        // Non-branch PCs are not analyzed either.
        assert!(!analyze_region(&p, 0, 32).embeddable);
    }

    #[test]
    fn nested_hammocks_compute_longest_path() {
        // if a { if b { x1 } else { x1; x2 } } else { y1 }  -> longest = 4.
        let mut a = Asm::new("nested");
        a.branch(Cond::Eq, r(1), Reg::ZERO, "else_outer"); // 1
        a.branch(Cond::Eq, r(2), Reg::ZERO, "else_inner"); // 2
        a.addi(r(3), r(3), 1); // then_inner (3)
        a.jump("end"); // 4 (jump doesn't add path beyond)
        a.label("else_inner");
        a.addi(r(3), r(3), 2); // 3
        a.addi(r(3), r(3), 3); // 4
        a.jump("end");
        a.label("else_outer");
        a.addi(r(4), r(4), 1);
        a.label("end");
        a.halt();
        let p = a.assemble().unwrap();
        let info = analyze_region(&p, 0, 32);
        assert!(info.embeddable);
        // Longest: branch(1) + inner branch(2) + addi(3) + addi(4) + jump(5).
        assert_eq!(info.region_size, 5);
        assert_eq!(info.cond_branches, 2);
    }

    #[test]
    fn edge_capacity_overflow_rejects() {
        // A chain of many forward branches, each to a distinct far target,
        // keeps > EDGE_CAPACITY live edges.
        let mut a = Asm::new("many");
        let n = EDGE_CAPACITY + 3;
        for i in 0..n {
            a.branch(Cond::Eq, r(1), Reg::ZERO, format!("t{i}"));
        }
        for i in 0..n {
            a.label(format!("t{i}"));
            a.nop();
        }
        a.label("end");
        a.halt();
        let p = a.assemble().unwrap();
        assert!(!analyze_region(&p, 0, 1024).embeddable);
    }

    #[test]
    fn matches_graph_longest_path_oracle_on_random_hammocks() {
        // Cross-check region_size against a brute-force DAG longest-path
        // computation for a family of generated nested hammocks.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for case in 0..40 {
            let mut a = Asm::new(format!("h{case}"));
            emit_hammock(&mut a, &mut rng, 0);
            a.label("END");
            a.halt();
            let p = a.assemble().unwrap();
            let info = analyze_region(&p, 0, 4096);
            if !info.embeddable {
                continue; // capacity overflow cases are allowed to bail
            }
            let oracle = longest_path(&p, 0, info.reconv_pc);
            assert_eq!(info.region_size, oracle, "case {case}\n{p}");
        }

        fn emit_hammock(a: &mut Asm, rng: &mut StdRng, depth: usize) {
            let else_l = a.fresh_label("e");
            let end_l = a.fresh_label("n");
            a.branch(Cond::Eq, Reg::new(1), Reg::ZERO, else_l.clone());
            emit_body(a, rng, depth);
            a.jump(end_l.clone());
            a.label(else_l);
            emit_body(a, rng, depth);
            a.label(end_l);
        }

        fn emit_body(a: &mut Asm, rng: &mut StdRng, depth: usize) {
            for _ in 0..rng.gen_range(0..3) {
                a.addi(Reg::new(2), Reg::new(2), 1);
            }
            if depth < 2 && rng.gen_bool(0.5) {
                emit_hammock(a, rng, depth + 1);
            }
            for _ in 0..rng.gen_range(0..2) {
                a.addi(Reg::new(3), Reg::new(3), 1);
            }
        }

        /// Brute-force longest path (in instructions, inclusive of `from`,
        /// exclusive of `to`) over the forward-only CFG.
        fn longest_path(p: &tp_isa::Program, from: Pc, to: Pc) -> u32 {
            fn go(p: &tp_isa::Program, pc: Pc, to: Pc) -> u32 {
                if pc == to {
                    return 0;
                }
                match p.fetch(pc).unwrap() {
                    Inst::Branch { target, .. } => 1 + go(p, pc + 1, to).max(go(p, target, to)),
                    Inst::Jump { target } => 1 + go(p, target, to),
                    _ => 1 + go(p, pc + 1, to),
                }
            }
            go(p, from, to)
        }
    }
}
