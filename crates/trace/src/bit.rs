//! The branch information table (BIT).
//!
//! The BIT caches the FGCI-algorithm's result per forward conditional
//! branch: whether the branch has an embeddable region, the region's dynamic
//! size and the re-convergent point. All forward conditional branches
//! allocate entries — embeddable or not — because trace selection needs the
//! determination either way (paper Section 3.1). The paper's configuration
//! is an 8K-entry, 4-way set-associative table.

use crate::fgci::RegionInfo;
use tp_isa::Pc;

#[derive(Clone, Debug)]
struct Entry {
    tag: u64,
    info: RegionInfo,
    lru: u64,
}

/// Statistics kept by the BIT.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BitStats {
    /// Lookups performed.
    pub lookups: u64,
    /// Lookups that missed (requiring the FGCI-algorithm miss handler).
    pub misses: u64,
}

/// A set-associative branch information table.
///
/// # Example
///
/// ```
/// use tp_trace::{Bit, RegionInfo};
/// let mut bit = Bit::new(8192, 4);
/// assert_eq!(bit.lookup(100), None);
/// bit.insert(100, RegionInfo::not_embeddable(5));
/// assert!(bit.lookup(100).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Bit {
    sets: Vec<Vec<Entry>>,
    ways: usize,
    tick: u64,
    stats: BitStats,
}

impl Bit {
    /// Creates a BIT with `entries` total entries and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a power-of-two multiple of `ways`, or if
    /// either is zero.
    pub fn new(entries: usize, ways: usize) -> Bit {
        assert!(entries > 0 && ways > 0, "BIT geometry must be non-zero");
        assert!(entries.is_multiple_of(ways), "entries must be a multiple of ways");
        let sets = entries / ways;
        assert!(sets.is_power_of_two(), "BIT set count must be a power of two");
        Bit { sets: vec![Vec::new(); sets], ways, tick: 0, stats: BitStats::default() }
    }

    /// The paper's configuration: 8K entries, 4-way.
    pub fn paper() -> Bit {
        Bit::new(8192, 4)
    }

    fn set_and_tag(&self, pc: Pc) -> (usize, u64) {
        let sets = self.sets.len() as u64;
        ((pc as u64 & (sets - 1)) as usize, pc as u64 / sets)
    }

    /// Looks up the cached analysis for the branch at `pc`, updating LRU and
    /// statistics.
    pub fn lookup(&mut self, pc: Pc) -> Option<RegionInfo> {
        self.stats.lookups += 1;
        self.tick += 1;
        let (set, tag) = self.set_and_tag(pc);
        if let Some(e) = self.sets[set].iter_mut().find(|e| e.tag == tag) {
            e.lru = self.tick;
            return Some(e.info);
        }
        self.stats.misses += 1;
        None
    }

    /// Inserts (or replaces) the analysis for the branch at `pc`, evicting
    /// the least recently used way when the set is full.
    pub fn insert(&mut self, pc: Pc, info: RegionInfo) {
        self.tick += 1;
        let ways = self.ways;
        let tick = self.tick;
        let (set, tag) = self.set_and_tag(pc);
        let set = &mut self.sets[set];
        if let Some(e) = set.iter_mut().find(|e| e.tag == tag) {
            e.info = info;
            e.lru = tick;
            return;
        }
        if set.len() >= ways {
            let victim = set
                .iter()
                .enumerate()
                .min_by_key(|(_, e)| e.lru)
                .map(|(i, _)| i)
                .expect("set is non-empty");
            set.swap_remove(victim);
        }
        set.push(Entry { tag, info, lru: tick });
    }

    /// Lookup statistics.
    pub fn stats(&self) -> BitStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(n: u32) -> RegionInfo {
        RegionInfo {
            embeddable: true,
            region_size: n,
            reconv_pc: n,
            static_size: n,
            cond_branches: 1,
            scan_cycles: n,
        }
    }

    #[test]
    fn lookup_miss_then_hit() {
        let mut bit = Bit::new(64, 4);
        assert_eq!(bit.lookup(5), None);
        bit.insert(5, info(3));
        assert_eq!(bit.lookup(5), Some(info(3)));
        assert_eq!(bit.stats().lookups, 2);
        assert_eq!(bit.stats().misses, 1);
    }

    #[test]
    fn distinct_pcs_mapping_to_same_set_coexist_up_to_ways() {
        let mut bit = Bit::new(16, 4); // 4 sets
                                       // PCs 0, 4, 8, 12 all map to set 0.
        for i in 0..4u32 {
            bit.insert(i * 4, info(i + 1));
        }
        for i in 0..4u32 {
            assert_eq!(bit.lookup(i * 4), Some(info(i + 1)));
        }
    }

    #[test]
    fn lru_eviction_removes_coldest() {
        let mut bit = Bit::new(16, 4); // 4 sets, set 0 holds pcs = 0 mod 4
        for i in 0..4u32 {
            bit.insert(i * 4, info(i + 1));
        }
        // Touch everything except pc 4.
        assert!(bit.lookup(0).is_some());
        assert!(bit.lookup(8).is_some());
        assert!(bit.lookup(12).is_some());
        // A fifth entry in set 0 evicts pc 4.
        bit.insert(16, info(9));
        assert_eq!(bit.lookup(4), None);
        assert!(bit.lookup(0).is_some());
        assert!(bit.lookup(16).is_some());
    }

    #[test]
    fn reinsert_replaces_in_place() {
        let mut bit = Bit::new(16, 4);
        bit.insert(0, info(1));
        bit.insert(0, info(2));
        assert_eq!(bit.lookup(0), Some(info(2)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_geometry_panics() {
        let _ = Bit::new(12, 4);
    }

    #[test]
    fn paper_geometry() {
        let mut bit = Bit::paper();
        bit.insert(123456, info(7));
        assert_eq!(bit.lookup(123456), Some(info(7)));
    }
}
