//! The [`Trace`] type: the fundamental unit of control flow in a trace
//! processor.

use std::fmt;

use tp_isa::{Inst, Pc, Reg};
use tp_stats::attr::BranchClass;

/// Identifies a trace: its starting PC plus the embedded outcomes of its
/// conditional branches, in fetch order.
///
/// This is exactly the information a next-trace prediction carries in the
/// paper ("starting PC and branch outcomes"): it fully determines the
/// instruction sequence of the trace under a fixed selection algorithm.
///
/// # Example
///
/// ```
/// use tp_trace::TraceId;
/// let id = TraceId::new(64, 0b101, 3); // starts at 64, outcomes T,NT,T
/// assert_eq!(id.start(), 64);
/// assert_eq!(id.outcome(0), true);
/// assert_eq!(id.outcome(1), false);
/// assert_eq!(id.outcome(2), true);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId {
    start: Pc,
    mask: u32,
    branches: u8,
}

impl TraceId {
    /// Creates a trace id from a start PC, an outcome bitmask (bit `i` is the
    /// outcome of the `i`-th conditional branch) and the number of embedded
    /// conditional branches.
    ///
    /// # Panics
    ///
    /// Panics if `branches > 32`.
    pub fn new(start: Pc, mask: u32, branches: u8) -> TraceId {
        assert!(branches <= 32, "a trace embeds at most 32 conditional branches");
        let mask = if branches == 32 { mask } else { mask & ((1u32 << branches) - 1) };
        TraceId { start, mask, branches }
    }

    /// The trace's starting PC.
    pub fn start(self) -> Pc {
        self.start
    }

    /// The embedded-outcome bitmask.
    pub fn mask(self) -> u32 {
        self.mask
    }

    /// Number of embedded conditional branches.
    pub fn branches(self) -> u8 {
        self.branches
    }

    /// The embedded outcome of the `i`-th conditional branch.
    ///
    /// Branches beyond [`TraceId::branches`] report `false` (not taken),
    /// which lets predicted ids drive selection past their recorded depth.
    pub fn outcome(self, i: u8) -> bool {
        i < 32 && (self.mask >> i) & 1 == 1
    }

    /// A stable 64-bit hash of the id, used for predictor/cache indexing.
    pub fn hash64(self) -> u64 {
        // A small xorshift-multiply mix; determinism matters (same inputs on
        // every run), cryptographic quality does not.
        let mut x = (self.start as u64) << 40 ^ (self.mask as u64) << 8 ^ self.branches as u64;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
        x ^ (x >> 33)
    }
}

impl fmt::Debug for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T@{}", self.start)?;
        if self.branches > 0 {
            write!(f, ":")?;
            for i in 0..self.branches {
                write!(f, "{}", if self.outcome(i) { 'T' } else { 'N' })?;
            }
        }
        Ok(())
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Where an instruction operand's value comes from, as pre-computed by trace
/// construction ("intra-trace values are pre-renamed in the trace cache").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OperandRef {
    /// The value is live-in to the trace: produced by an older trace (or
    /// architectural state) for the given architectural register.
    LiveIn(Reg),
    /// The value is produced inside the trace by the instruction at the
    /// given trace slot index.
    Local(u8),
}

/// One instruction within a trace, with its pre-renamed operands.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceInst {
    /// The instruction's PC.
    pub pc: Pc,
    /// The instruction itself.
    pub inst: Inst,
    /// For conditional branches, the embedded (predicted) outcome.
    pub embedded_taken: Option<bool>,
    /// Pre-renamed sources: `(architectural register, where its value comes
    /// from)`, in the order reported by [`Inst::sources`].
    pub srcs: [Option<(Reg, OperandRef)>; 2],
    /// Destination architectural register, if any.
    pub dest: Option<Reg>,
    /// Whether this instruction lies inside an active FGCI padding region
    /// (including the region-opening branch itself). Mispredictions of
    /// covered conditional branches are repairable with fine-grain control
    /// independence: the repaired trace is guaranteed to end at the same
    /// point.
    pub fgci_covered: bool,
}

impl TraceInst {
    /// The attribution-ledger class of this instruction, if it is a
    /// conditional branch: backward (loop-type), forward inside an
    /// FGCI-embedded region, or other forward.
    pub fn ci_branch_class(&self) -> Option<BranchClass> {
        if !self.inst.is_cond_branch() {
            return None;
        }
        Some(if self.inst.is_backward_branch(self.pc) {
            BranchClass::Backward
        } else if self.fgci_covered {
            BranchClass::ForwardFgci
        } else {
            BranchClass::ForwardOther
        })
    }
}

/// Why trace selection terminated a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EndReason {
    /// Reached the maximum trace length.
    MaxLen,
    /// Ended at an indirect control transfer (jump indirect, call indirect,
    /// or return) — default selection.
    Indirect,
    /// Ended at a predicted not-taken backward branch — `ntb` selection,
    /// exposing a loop exit as a global re-convergent point.
    Ntb,
    /// Ended at a `Halt`.
    Halt,
    /// Ended because the next PC left the program image (wrong-path
    /// construction only).
    OutOfProgram,
}

/// A constructed trace: instructions plus the metadata the trace cache
/// stores (pre-renames, live-ins/live-outs, end reason, fall-out PC).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Trace {
    id: TraceId,
    insts: Vec<TraceInst>,
    end: EndReason,
    next_pc: Option<Pc>,
    live_ins: Vec<Reg>,
    live_outs: Vec<Reg>,
}

impl Trace {
    /// Assembles a trace from raw per-instruction records, computing
    /// pre-renames and live-in/live-out sets.
    ///
    /// `raw` carries `(pc, inst, embedded_taken, fgci_covered)` per
    /// instruction; `next_pc` is the PC the trace falls out to.
    ///
    /// # Panics
    ///
    /// Panics if `raw` is empty or longer than 256 instructions.
    pub fn assemble(
        id: TraceId,
        raw: &[(Pc, Inst, Option<bool>, bool)],
        end: EndReason,
        next_pc: Option<Pc>,
    ) -> Trace {
        assert!(!raw.is_empty(), "a trace holds at least one instruction");
        assert!(raw.len() <= 256, "trace too long");
        let mut last_writer: [Option<u8>; Reg::COUNT] = [None; Reg::COUNT];
        let mut live_ins: Vec<Reg> = Vec::new();
        let mut insts: Vec<TraceInst> = Vec::with_capacity(raw.len());
        for (slot, &(pc, inst, embedded_taken, fgci_covered)) in raw.iter().enumerate() {
            let mut srcs = [None; 2];
            for (i, r) in inst.sources().iter().enumerate() {
                let op = if r.is_zero() {
                    // r0 always reads zero: model as a live-in of r0, which
                    // renames to the constant-zero physical register.
                    OperandRef::LiveIn(Reg::ZERO)
                } else {
                    match last_writer[r.index()] {
                        Some(s) => OperandRef::Local(s),
                        None => {
                            if !live_ins.contains(&r) {
                                live_ins.push(r);
                            }
                            OperandRef::LiveIn(r)
                        }
                    }
                };
                srcs[i] = Some((r, op));
            }
            let dest = inst.dest();
            if let Some(d) = dest {
                last_writer[d.index()] = Some(slot as u8);
            }
            insts.push(TraceInst { pc, inst, embedded_taken, srcs, dest, fgci_covered });
        }
        let live_outs: Vec<Reg> = Reg::all().filter(|r| last_writer[r.index()].is_some()).collect();
        Trace { id, insts, end, next_pc, live_ins, live_outs }
    }

    /// The trace's identifier.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// The trace's instructions, in fetch order.
    pub fn insts(&self) -> &[TraceInst] {
        &self.insts
    }

    /// Number of instructions in the trace.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// Whether the trace is empty (never true).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Why selection terminated the trace.
    pub fn end(&self) -> EndReason {
        self.end
    }

    /// The PC control falls out to after the trace, when known at
    /// construction time. `None` for halt-ending traces, traces that ran off
    /// the program image on a wrong path, and indirect-ending traces whose
    /// target could not be predicted.
    pub fn next_pc(&self) -> Option<Pc> {
        self.next_pc
    }

    /// Architectural registers read before being written inside the trace.
    pub fn live_ins(&self) -> &[Reg] {
        &self.live_ins
    }

    /// Architectural registers written by the trace (each register's last
    /// writer defines the trace's live-out value).
    pub fn live_outs(&self) -> &[Reg] {
        &self.live_outs
    }

    /// Slot index of the last writer of `r` inside the trace, if any.
    pub fn last_writer(&self, r: Reg) -> Option<usize> {
        self.insts.iter().rposition(|ti| ti.dest == Some(r))
    }

    /// Whether the trace's final instruction is a return (needed by the RET
    /// CGCI heuristic).
    pub fn ends_in_return(&self) -> bool {
        self.insts.last().is_some_and(|ti| ti.inst.is_return())
    }

    /// The attribution-ledger class of the conditional branch in `slot`,
    /// if that slot holds one (see [`TraceInst::ci_branch_class`]).
    pub fn branch_class(&self, slot: usize) -> Option<BranchClass> {
        self.insts.get(slot).and_then(TraceInst::ci_branch_class)
    }

    /// The attribution-ledger class of the trace's endpoint, when the
    /// trace ends at a conditional branch (an `ntb`-terminated loop exit).
    pub fn endpoint_class(&self) -> Option<BranchClass> {
        self.insts.last().and_then(TraceInst::ci_branch_class)
    }

    /// Iterates over `(slot, &TraceInst)` for the trace's conditional
    /// branches.
    pub fn cond_branches(&self) -> impl Iterator<Item = (usize, &TraceInst)> {
        self.insts.iter().enumerate().filter(|(_, ti)| ti.inst.is_cond_branch())
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let next = match self.next_pc {
            Some(pc) => format!("@{pc}"),
            None => "?".to_string(),
        };
        writeln!(f, "trace {} ({} insts, end {:?}, next {next})", self.id, self.len(), self.end)?;
        for (i, ti) in self.insts.iter().enumerate() {
            let cover = if ti.fgci_covered { " [fg]" } else { "" };
            let emb = match ti.embedded_taken {
                Some(true) => " (T)",
                Some(false) => " (N)",
                None => "",
            };
            writeln!(f, "  {i:3} @{:5} {}{emb}{cover}", ti.pc, ti.inst)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tp_isa::{AluOp, Cond};

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn trace_id_masks_extra_bits() {
        let id = TraceId::new(10, 0xff, 3);
        assert_eq!(id.mask(), 0b111);
        assert!(!id.outcome(3));
        assert!(!id.outcome(40));
    }

    #[test]
    fn trace_id_debug_format() {
        let id = TraceId::new(5, 0b01, 2);
        assert_eq!(format!("{id:?}"), "T@5:TN");
        assert_eq!(TraceId::new(5, 0, 0).to_string(), "T@5");
    }

    #[test]
    fn trace_id_hash_is_deterministic_and_spreads() {
        let a = TraceId::new(1, 0, 0).hash64();
        let b = TraceId::new(1, 0, 0).hash64();
        let c = TraceId::new(2, 0, 0).hash64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "at most 32")]
    fn trace_id_rejects_too_many_branches() {
        let _ = TraceId::new(0, 0, 33);
    }

    #[test]
    fn assemble_computes_pre_renames() {
        // slot0: r1 = r2 + 1   (r2 live-in)
        // slot1: r3 = r1 + r2  (r1 local from slot0, r2 live-in)
        // slot2: r1 = r3 + 2   (r3 local from slot1)
        let raw = vec![
            (0, Inst::AluImm { op: AluOp::Add, rd: r(1), rs: r(2), imm: 1 }, None, false),
            (1, Inst::Alu { op: AluOp::Add, rd: r(3), rs: r(1), rt: r(2) }, None, false),
            (2, Inst::AluImm { op: AluOp::Add, rd: r(1), rs: r(3), imm: 2 }, None, false),
        ];
        let t = Trace::assemble(TraceId::new(0, 0, 0), &raw, EndReason::MaxLen, Some(3));
        assert_eq!(t.live_ins(), &[r(2)]);
        assert_eq!(t.live_outs(), &[r(1), r(3)]);
        assert_eq!(t.insts()[0].srcs[0], Some((r(2), OperandRef::LiveIn(r(2)))));
        assert_eq!(t.insts()[1].srcs[0], Some((r(1), OperandRef::Local(0))));
        assert_eq!(t.insts()[1].srcs[1], Some((r(2), OperandRef::LiveIn(r(2)))));
        assert_eq!(t.insts()[2].srcs[0], Some((r(3), OperandRef::Local(1))));
        assert_eq!(t.last_writer(r(1)), Some(2));
        assert_eq!(t.last_writer(r(3)), Some(1));
        assert_eq!(t.last_writer(r(9)), None);
    }

    #[test]
    fn r0_sources_are_zero_live_ins() {
        let raw = vec![(
            0,
            Inst::AluImm { op: AluOp::Add, rd: r(1), rs: Reg::ZERO, imm: 7 },
            None,
            false,
        )];
        let t = Trace::assemble(TraceId::new(0, 0, 0), &raw, EndReason::Halt, None);
        assert_eq!(t.insts()[0].srcs[0], Some((Reg::ZERO, OperandRef::LiveIn(Reg::ZERO))));
        // r0 never appears in the live-in set proper.
        assert!(t.live_ins().is_empty());
    }

    #[test]
    fn ends_in_return_detects_ret() {
        let raw = vec![(0, Inst::Ret, None, false)];
        let t = Trace::assemble(TraceId::new(0, 0, 0), &raw, EndReason::Indirect, Some(0));
        assert!(t.ends_in_return());
    }

    #[test]
    fn cond_branches_iterates_branch_slots() {
        let raw = vec![
            (0, Inst::Nop, None, false),
            (1, Inst::Branch { cond: Cond::Eq, rs: r(1), rt: r(2), target: 5 }, Some(true), false),
            (2, Inst::Nop, None, false),
        ];
        let t = Trace::assemble(TraceId::new(0, 1, 1), &raw, EndReason::MaxLen, Some(3));
        let brs: Vec<usize> = t.cond_branches().map(|(i, _)| i).collect();
        assert_eq!(brs, vec![1]);
        assert_eq!(t.insts()[1].embedded_taken, Some(true));
    }

    #[test]
    fn branch_class_metadata() {
        let raw = vec![
            // Forward branch inside a padded region.
            (0, Inst::Branch { cond: Cond::Eq, rs: r(1), rt: r(2), target: 2 }, Some(false), true),
            (1, Inst::Nop, None, true),
            // Plain forward branch.
            (2, Inst::Branch { cond: Cond::Eq, rs: r(1), rt: r(2), target: 4 }, Some(false), false),
            (3, Inst::Nop, None, false),
            // Backward branch endpoint (an ntb-terminated loop exit).
            (4, Inst::Branch { cond: Cond::Gt, rs: r(1), rt: r(2), target: 0 }, Some(false), false),
        ];
        let t = Trace::assemble(TraceId::new(0, 0, 3), &raw, EndReason::Ntb, Some(5));
        assert_eq!(t.branch_class(0), Some(BranchClass::ForwardFgci));
        assert_eq!(t.branch_class(1), None);
        assert_eq!(t.branch_class(2), Some(BranchClass::ForwardOther));
        assert_eq!(t.branch_class(4), Some(BranchClass::Backward));
        assert_eq!(t.endpoint_class(), Some(BranchClass::Backward));
        assert_eq!(t.branch_class(99), None);
    }

    #[test]
    fn display_shows_coverage_and_outcomes() {
        let raw = vec![
            (0, Inst::Branch { cond: Cond::Eq, rs: r(1), rt: r(2), target: 2 }, Some(false), true),
            (1, Inst::Nop, None, true),
        ];
        let t = Trace::assemble(TraceId::new(0, 0, 1), &raw, EndReason::MaxLen, Some(2));
        let s = t.to_string();
        assert!(s.contains("[fg]"));
        assert!(s.contains("(N)"));
    }
}
