//! Table 5: conditional branch statistics.
//!
//! Profiles every benchmark's dynamic branch stream through the functional
//! simulator and the BTB predictor, classifying branches as FGCI-type
//! (embeddable region <= 32 / > 32 instructions), other forward, or
//! backward — with the region-size metrics the paper reports. Also prints
//! Table 2-style dynamic instruction counts.

use tp_bench::profile::{profile_branches, BranchClass};
use tp_bench::{paper, runner};
use tp_stats::Table;
use tp_workloads::{suite, Size};

fn main() {
    println!("Table 2: benchmarks and dynamic instruction counts\n");
    let mut t2 = Table::new("bench", &["dyn. instrs"]);
    t2.precision(0);
    let workloads = suite(Size::Full);
    for w in &workloads {
        let p = profile_branches(&w.program, runner::RUN_BUDGET);
        t2.row(w.name, &[p.instructions as f64]);
    }
    println!("{t2}");

    println!("Table 5: conditional branch statistics (gshare profiling)\n");
    let mut table = Table::new(
        "bench",
        &[
            "fgci%br", "fgci%mp", ">32%br", "fwd%br", "fwd%mp", "bwd%br", "bwd%mp", "dynreg",
            "statreg", "br/reg", "misp%", "mp/1k",
        ],
    );
    table.precision(1);
    for w in &workloads {
        let p = profile_branches(&w.program, runner::RUN_BUDGET);
        table.row(
            w.name,
            &[
                p.frac_branches(BranchClass::FgciSmall),
                p.frac_mispredicts(BranchClass::FgciSmall),
                p.frac_branches(BranchClass::FgciLarge),
                p.frac_branches(BranchClass::OtherForward),
                p.frac_mispredicts(BranchClass::OtherForward),
                p.frac_branches(BranchClass::Backward),
                p.frac_mispredicts(BranchClass::Backward),
                p.avg_dyn_region(),
                p.avg_static_region(),
                p.avg_region_branches(),
                p.overall_misp_rate(),
                p.misp_per_kilo(),
            ],
        );
    }
    println!("{table}");

    println!("paper reference (Table 5 selected columns)");
    let mut pt = Table::new("bench", &["fgci%br", "fgci%mp", "bwd%mp", "misp%"]);
    pt.precision(1);
    for b in paper::BENCHMARKS {
        pt.row(
            b,
            &[
                paper::lookup1(&paper::TABLE5_FGCI_FRAC_BR, b).expect("known"),
                paper::lookup1(&paper::TABLE5_FGCI_FRAC_MISP, b).expect("known"),
                paper::lookup1(&paper::TABLE5_BACKWARD_FRAC_MISP, b).expect("known"),
                paper::lookup1(&paper::TABLE5_OVERALL_MISP, b).expect("known"),
            ],
        );
    }
    println!("{pt}");
}
