//! Criterion micro-benchmarks: component throughput (FGCI-algorithm scan,
//! next-trace predictor, trace selection) and whole-simulator speed.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tp_core::{CiModel, TraceProcessor, TraceProcessorConfig};
use tp_predict::{NextTracePredictor, TraceHistory, TracePredictorConfig};
use tp_trace::{analyze_region, Bit, SelectionConfig, Selector, TraceId};
use tp_workloads::{by_name, Size};

fn bench_fgci_algorithm(c: &mut Criterion) {
    let w = by_name("gcc", Size::Tiny);
    let branches: Vec<u32> = w
        .program
        .insts()
        .iter()
        .enumerate()
        .filter(|(pc, i)| i.is_forward_branch(*pc as u32))
        .map(|(pc, _)| pc as u32)
        .collect();
    c.bench_function("fgci_algorithm_scan", |b| {
        b.iter(|| {
            for &pc in &branches {
                black_box(analyze_region(&w.program, pc, 32));
            }
        })
    });
}

fn bench_trace_predictor(c: &mut Criterion) {
    let mut pred = NextTracePredictor::new(TracePredictorConfig::paper());
    let ids: Vec<TraceId> = (0..64).map(|i| TraceId::new(i * 32, i, 5)).collect();
    let mut hist = TraceHistory::new(8);
    for w in ids.windows(2) {
        hist.push(w[0]);
        pred.train(&hist, w[1]);
    }
    c.bench_function("next_trace_predict", |b| {
        b.iter(|| {
            for id in &ids {
                hist.push(*id);
                black_box(pred.predict(&hist));
            }
        })
    });
}

fn bench_trace_selection(c: &mut Criterion) {
    let w = by_name("compress", Size::Tiny);
    let selector = Selector::new(SelectionConfig::with_fg_ntb());
    let mut bit = Bit::paper();
    c.bench_function("trace_selection_fg_ntb", |b| {
        b.iter(|| {
            let sel = selector.select_with(&w.program, 0, &mut bit, |_, _, _| true, |_, _| None);
            black_box(sel.trace.len())
        })
    });
}

fn bench_simulator_throughput(c: &mut Criterion) {
    let w = by_name("compress", Size::Small);
    c.bench_function("simulate_compress_small", |b| {
        b.iter(|| {
            let cfg = TraceProcessorConfig::paper(CiModel::FgMlbRet);
            let mut sim = TraceProcessor::new(&w.program, cfg);
            let r = sim.run(10_000_000).expect("runs");
            black_box(r.stats.retired_instrs)
        })
    });
}

criterion_group!(
    benches,
    bench_fgci_algorithm,
    bench_trace_predictor,
    bench_trace_selection,
    bench_simulator_throughput
);
criterion_main!(benches);
