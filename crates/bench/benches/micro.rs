//! Micro-benchmarks: component throughput (FGCI-algorithm scan, next-trace
//! predictor, trace selection) and whole-simulator speed.
//!
//! A plain `harness = false` timing harness (the offline build cannot fetch
//! `criterion`): each benchmark warms up once, then reports the best of
//! several timed batches in ns/op.

use std::hint::black_box;
use std::time::Instant;

use tp_core::{CiModel, TraceProcessor, TraceProcessorConfig};
use tp_predict::{NextTracePredictor, TraceHistory, TracePredictorConfig};
use tp_trace::{analyze_region, Bit, SelectionConfig, Selector, TraceId};
use tp_workloads::{by_name, Size};

/// Times `f` over `iters` calls per batch, best of `batches`, in ns/op.
fn bench(name: &str, iters: u32, batches: u32, mut f: impl FnMut()) {
    f(); // warm-up
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_nanos() as f64 / iters as f64);
    }
    println!("{name:<28} {best:>12.0} ns/op");
}

fn bench_fgci_algorithm() {
    let w = by_name("gcc", Size::Tiny).unwrap();
    let branches: Vec<u32> = w
        .program
        .insts()
        .iter()
        .enumerate()
        .filter(|(pc, i)| i.is_forward_branch(*pc as u32))
        .map(|(pc, _)| pc as u32)
        .collect();
    bench("fgci_algorithm_scan", 100, 5, || {
        for &pc in &branches {
            black_box(analyze_region(&w.program, pc, 32));
        }
    });
}

fn bench_trace_predictor() {
    let mut pred = NextTracePredictor::new(TracePredictorConfig::paper());
    let ids: Vec<TraceId> = (0..64).map(|i| TraceId::new(i * 32, i, 5)).collect();
    let mut hist = TraceHistory::new(8);
    for w in ids.windows(2) {
        hist.push(w[0]);
        pred.train(&hist, w[1]);
    }
    bench("next_trace_predict", 1000, 5, || {
        for id in &ids {
            hist.push(*id);
            black_box(pred.predict(&hist));
        }
    });
}

fn bench_trace_selection() {
    let w = by_name("compress", Size::Tiny).unwrap();
    let selector = Selector::new(SelectionConfig::with_fg_ntb());
    let mut bit = Bit::paper();
    bench("trace_selection_fg_ntb", 1000, 5, || {
        let sel = selector.select_with(&w.program, 0, &mut bit, |_, _, _| true, |_, _| None);
        black_box(sel.trace.len());
    });
}

fn bench_simulator_throughput() {
    let w = by_name("compress", Size::Small).unwrap();
    bench("simulate_compress_small", 1, 3, || {
        let cfg = TraceProcessorConfig::paper(CiModel::FgMlbRet);
        let mut sim = TraceProcessor::new(&w.program, cfg);
        let r = sim.run(10_000_000).expect("runs");
        black_box(r.stats.retired_instrs);
    });
}

fn main() {
    bench_fgci_algorithm();
    bench_trace_predictor();
    bench_trace_selection();
    bench_simulator_throughput();
}
