//! Figure 9: performance impact of trace selection.
//!
//! Reproduces the paper's Figure 9: % IPC improvement (usually a
//! degradation) of `base(ntb)`, `base(fg)` and `base(fg,ntb)` over `base`,
//! per benchmark — the cost of the selection constraints that expose
//! control independence, before any CI mechanism is enabled.

use tp_bench::runner::run_selection;
use tp_stats::{improvement_pct, Table};
use tp_trace::SelectionConfig;
use tp_workloads::{suite, Size};

fn main() {
    println!("Figure 9: % IPC impact of trace selection over base (no CI)\n");
    let mut table = Table::new("% IPC over base", &["base(ntb)", "base(fg)", "base(fg,ntb)"]);
    table.precision(1);
    for w in suite(Size::Full) {
        let base = run_selection(&w.program, SelectionConfig::base()).stats.ipc();
        let row = [
            improvement_pct(
                run_selection(&w.program, SelectionConfig::with_ntb()).stats.ipc(),
                base,
            ),
            improvement_pct(
                run_selection(&w.program, SelectionConfig::with_fg()).stats.ipc(),
                base,
            ),
            improvement_pct(
                run_selection(&w.program, SelectionConfig::with_fg_ntb()).stats.ipc(),
                base,
            ),
        ];
        table.row(w.name, &row);
    }
    println!("{table}");
    println!("(paper's Figure 9 shows selection constraints costing 0-10% IPC, -2% avg)");
}
