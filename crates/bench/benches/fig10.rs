//! Figure 10: performance of control independence.
//!
//! Reproduces the paper's Figure 10: % IPC improvement over `base` for the
//! four control-independence models `RET`, `MLB-RET`, `FG` and
//! `FG+MLB-RET`, per benchmark. Also prints the paper's summary statistics:
//! the average improvement of `FG+MLB-RET` and the best-per-benchmark
//! average (the paper's headline "2% to 25%, and 13% on average").

use tp_bench::paper;
use tp_bench::runner::{run_model, run_selection};
use tp_core::CiModel;
use tp_stats::{improvement_pct, mean, Table};
use tp_trace::SelectionConfig;
use tp_workloads::{suite, Size};

fn main() {
    let models = [CiModel::Ret, CiModel::MlbRet, CiModel::Fg, CiModel::FgMlbRet];
    let mut table =
        Table::new("% IPC over base", &["RET", "MLB-RET", "FG", "FG+MLB-RET", "paper(FG+MLB)"]);
    table.precision(1);
    let mut best = Vec::new();
    let mut fg_mlb = Vec::new();
    println!("Figure 10: % IPC improvement over base (paper: Rotenberg & Smith 1999)\n");
    for w in suite(Size::Full) {
        let base = run_selection(&w.program, SelectionConfig::base()).stats.ipc();
        let mut row = Vec::new();
        for model in models {
            let ipc = run_model(&w.program, model).stats.ipc();
            row.push(improvement_pct(ipc, base));
        }
        let paper_row = paper::lookup(&paper::FIG10_IMPROVEMENT, w.name).expect("known benchmark");
        best.push(row.iter().copied().fold(f64::MIN, f64::max));
        fg_mlb.push(row[3]);
        row.push(paper_row[3]);
        table.row(w.name, &row);
    }
    println!("{table}");
    println!(
        "average improvement, FG+MLB-RET : {:+.1}% (paper: ~10%)",
        mean(fg_mlb.iter().copied())
    );
    println!(
        "average improvement, best model : {:+.1}% (paper: 13%, range 2%..25%)",
        mean(best.iter().copied())
    );
}
